//! The 2-D PIC computational cycle, mirroring the 1-D `Simulation`.
//!
//! Stepping and diagnostics conventions are identical to the 1-D crate:
//! velocities are staggered half a step behind positions; each
//! [`Simulation2D::step`] records diagnostics for the time level `tⁿ` at
//! which it starts (field energy from `Eⁿ`, time-centred kinetic energy,
//! momentum right after the velocity push); [`Simulation2D::run`] appends
//! a final instantaneous snapshot, so an `n`-step run yields `n + 1`
//! samples.

use crate::diagnostics2d::{field_mode_amplitude, instantaneous_report, EnergyReport2D};
use crate::efield2d::field_energy;
use crate::fused2d::fused_gather_push_move;
use crate::gather2d::gather_field;
use crate::grid2d::Grid2D;
use crate::init2d::TwoStream2DInit;
use crate::mover2d::half_step_back;
use crate::particles2d::Particles2D;
use crate::solver2d::FieldSolver2D;
use dlpic_pic::shape::Shape;

/// Full configuration of a 2-D PIC run.
#[derive(Debug, Clone)]
pub struct Pic2DConfig {
    /// The periodic field grid.
    pub grid: Grid2D,
    /// Two-stream initial condition.
    pub init: TwoStream2DInit,
    /// Time step.
    pub dt: f64,
    /// Number of steps a [`Simulation2D::run`] performs.
    pub n_steps: usize,
    /// Shape used to gather E to the particles (keep equal to the
    /// solver's deposition shape for momentum conservation).
    pub gather_shape: Shape,
    /// `(mx, my)` field modes of `Ex` recorded each step.
    pub tracked_modes: Vec<(usize, usize)>,
}

/// Recorded per-step diagnostics of a 2-D run.
#[derive(Debug, Clone, Default)]
pub struct History2D {
    /// Sample times.
    pub times: Vec<f64>,
    /// Kinetic energy per sample.
    pub kinetic: Vec<f64>,
    /// Field energy per sample.
    pub field: Vec<f64>,
    /// Total energy per sample.
    pub total: Vec<f64>,
    /// Momentum along `x` per sample.
    pub momentum_x: Vec<f64>,
    /// Momentum along `y` per sample.
    pub momentum_y: Vec<f64>,
    /// The tracked `(mx, my)` modes.
    pub tracked_modes: Vec<(usize, usize)>,
    /// Amplitude series per tracked mode (outer index = mode).
    pub mode_amps: Vec<Vec<f64>>,
}

impl History2D {
    /// Creates an empty history tracking the given modes.
    pub fn new(tracked_modes: Vec<(usize, usize)>) -> Self {
        let mode_amps = vec![Vec::new(); tracked_modes.len()];
        Self {
            tracked_modes,
            mode_amps,
            ..Default::default()
        }
    }

    /// Appends one sample.
    pub fn push(&mut self, t: f64, report: EnergyReport2D, amps: &[f64]) {
        assert_eq!(
            amps.len(),
            self.tracked_modes.len(),
            "amplitude count mismatch"
        );
        self.times.push(t);
        self.kinetic.push(report.kinetic);
        self.field.push(report.field);
        self.total.push(report.total());
        self.momentum_x.push(report.momentum_x);
        self.momentum_y.push(report.momentum_y);
        for (series, &a) in self.mode_amps.iter_mut().zip(amps) {
            series.push(a);
        }
    }

    /// Reserves capacity for `additional` further samples in every
    /// series, so a sized run records without reallocating.
    pub fn reserve(&mut self, additional: usize) {
        self.times.reserve(additional);
        self.kinetic.reserve(additional);
        self.field.reserve(additional);
        self.total.reserve(additional);
        self.momentum_x.reserve(additional);
        self.momentum_y.reserve(additional);
        for series in &mut self.mode_amps {
            series.reserve(additional);
        }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// True when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// The most recently recorded row in the cross-solver
    /// [`SampleRow`](dlpic_pic::history::SampleRow) shape (momentum maps
    /// to the `x` component), or `None` before the first sample.
    pub fn last_sample(&self) -> Option<dlpic_pic::history::SampleRow> {
        let i = self.len().checked_sub(1)?;
        Some(dlpic_pic::history::SampleRow {
            time: self.times[i],
            kinetic: self.kinetic[i],
            field: self.field[i],
            momentum: self.momentum_x[i],
            mode_amps: self.mode_amps.iter().map(|s| s[i]).collect(),
        })
    }

    /// Amplitude series of a tracked mode, if present.
    pub fn mode_series(&self, mode: (usize, usize)) -> Option<(&[f64], &[f64])> {
        let idx = self.tracked_modes.iter().position(|&m| m == mode)?;
        Some((&self.times, &self.mode_amps[idx]))
    }
}

/// A running 2-D PIC simulation (traditional or DL-based, depending on the
/// injected field solver).
pub struct Simulation2D {
    cfg: Pic2DConfig,
    particles: Particles2D,
    solver: Box<dyn FieldSolver2D>,
    ex: Vec<f64>,
    ey: Vec<f64>,
    history: History2D,
    amps_scratch: Vec<f64>,
    time: f64,
    steps_done: usize,
}

impl Simulation2D {
    /// Initializes the simulation: loads particles, performs the initial
    /// field solve and sets up the leap-frog stagger.
    pub fn new(cfg: Pic2DConfig, solver: Box<dyn FieldSolver2D>) -> Self {
        let particles = cfg.init.build(&cfg.grid);
        let n_part = particles.len();
        let mut history = History2D::new(cfg.tracked_modes.clone());
        // One sample per step plus the final snapshot: reserving up front
        // keeps the per-step path free of reallocation.
        history.reserve(cfg.n_steps + 1);
        let mut sim = Self {
            ex: cfg.grid.zeros(),
            ey: cfg.grid.zeros(),
            history,
            amps_scratch: Vec::with_capacity(cfg.tracked_modes.len()),
            particles,
            solver,
            time: 0.0,
            steps_done: 0,
            cfg,
        };
        sim.solver
            .solve(&sim.particles, &sim.cfg.grid, &mut sim.ex, &mut sim.ey);
        // The per-particle buffers live only for this set-up gather; the
        // stepping loop is fused and needs none.
        let mut ex_part = vec![0.0; n_part];
        let mut ey_part = vec![0.0; n_part];
        gather_field(
            &sim.particles,
            &sim.cfg.grid,
            sim.cfg.gather_shape,
            &sim.ex,
            &sim.ey,
            &mut ex_part,
            &mut ey_part,
        );
        half_step_back(&mut sim.particles, &ex_part, &ey_part, sim.cfg.dt);
        sim
    }

    /// Advances one step and records diagnostics for the starting time
    /// level (see module docs).
    pub fn step(&mut self) {
        self.step_pre_solve();
        self.solver
            .solve(&self.particles, &self.cfg.grid, &mut self.ex, &mut self.ey);
        self.step_post_solve();
    }

    /// The first half of a split step: diagnostics, the fused particle
    /// push and the history row — everything [`Self::step`] does before
    /// the field solve. An external driver then solves through
    /// [`Self::split_for_solve`] (possibly batching the DL inference of
    /// many simulations) and completes with [`Self::step_post_solve`];
    /// the sequence is exactly [`Self::step`].
    pub fn step_pre_solve(&mut self) {
        let grid = &self.cfg.grid;
        let dt = self.cfg.dt;

        let fe = field_energy(grid, &self.ex, &self.ey);
        self.amps_scratch.clear();
        self.amps_scratch.extend(
            self.cfg
                .tracked_modes
                .iter()
                .map(|&(mx, my)| field_mode_amplitude(&self.ex, grid, mx, my)),
        );

        // Fused gather → velocity push → position push: one pass over the
        // particles, trajectories identical to the unfused pipeline.
        let moments = fused_gather_push_move(
            &mut self.particles,
            grid,
            self.cfg.gather_shape,
            &self.ex,
            &self.ey,
            dt,
        );

        self.history.push(
            self.time,
            EnergyReport2D {
                kinetic: moments.centred_kinetic,
                field: fe,
                momentum_x: moments.momentum_x,
                momentum_y: moments.momentum_y,
            },
            &self.amps_scratch,
        );
    }

    /// The second half of a split step: advances the clock and step
    /// counter. Call only after [`Self::step_pre_solve`] and the external
    /// field solve.
    pub fn step_post_solve(&mut self) {
        self.time += self.cfg.dt;
        self.steps_done += 1;
    }

    /// Disjoint borrows of the pieces an external field solve needs
    /// (between [`Self::step_pre_solve`] and [`Self::step_post_solve`]).
    #[allow(clippy::type_complexity)]
    pub fn split_for_solve(
        &mut self,
    ) -> (
        &mut dyn FieldSolver2D,
        &Particles2D,
        &Grid2D,
        &mut [f64],
        &mut [f64],
    ) {
        (
            self.solver.as_mut(),
            &self.particles,
            &self.cfg.grid,
            &mut self.ex,
            &mut self.ey,
        )
    }

    /// Runs the configured number of steps and appends a final snapshot.
    pub fn run(&mut self) {
        for _ in 0..self.cfg.n_steps {
            self.step();
        }
        self.finish();
    }

    /// Appends the final diagnostics snapshot at the current time.
    /// External step-by-step drivers (the engine facade) call this once at
    /// the end to reproduce the `n + 1`-sample convention of [`Self::run`].
    pub fn finish(&mut self) {
        let report = instantaneous_report(&self.particles, &self.cfg.grid, &self.ex, &self.ey);
        self.amps_scratch.clear();
        self.amps_scratch.extend(
            self.cfg
                .tracked_modes
                .iter()
                .map(|&(mx, my)| field_mode_amplitude(&self.ex, &self.cfg.grid, mx, my)),
        );
        self.history.push(self.time, report, &self.amps_scratch);
    }

    /// Current simulation time.
    pub fn time(&self) -> f64 {
        self.time
    }

    /// Steps performed so far.
    pub fn steps_done(&self) -> usize {
        self.steps_done
    }

    /// The particle state.
    pub fn particles(&self) -> &Particles2D {
        &self.particles
    }

    /// The current `Ex` node field.
    pub fn ex(&self) -> &[f64] {
        &self.ex
    }

    /// The current `Ey` node field.
    pub fn ey(&self) -> &[f64] {
        &self.ey
    }

    /// The configuration.
    pub fn config(&self) -> &Pic2DConfig {
        &self.cfg
    }

    /// The recorded diagnostics.
    pub fn history(&self) -> &History2D {
        &self.history
    }

    /// The injected field solver.
    pub fn solver(&self) -> &dyn FieldSolver2D {
        self.solver.as_ref()
    }

    /// Overwrites the mutable state with a checkpointed snapshot: particle
    /// phase space (velocities at their staggered `v^{n−1/2}` level — no
    /// leap-frog set-up is re-applied), both field components, clock and
    /// step counter. The internal history is *not* rewound; external
    /// drivers (the engine's sessions) keep the pre-restore record.
    ///
    /// # Panics
    /// Panics if the buffer lengths do not match the simulation's particle
    /// count or grid.
    #[allow(clippy::too_many_arguments)]
    pub fn restore_state(
        &mut self,
        x: &[f64],
        y: &[f64],
        vx: &[f64],
        vy: &[f64],
        ex: &[f64],
        ey: &[f64],
        time: f64,
        steps_done: usize,
    ) {
        let n = self.particles.len();
        assert!(
            x.len() == n && y.len() == n && vx.len() == n && vy.len() == n,
            "particle count mismatch"
        );
        assert!(
            ex.len() == self.ex.len() && ey.len() == self.ey.len(),
            "grid size mismatch"
        );
        self.particles.x.copy_from_slice(x);
        self.particles.y.copy_from_slice(y);
        self.particles.vx.copy_from_slice(vx);
        self.particles.vy.copy_from_slice(vy);
        self.ex.copy_from_slice(ex);
        self.ey.copy_from_slice(ey);
        self.time = time;
        self.steps_done = steps_done;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver2d::TraditionalSolver2D;

    fn small_config(v0: f64, vth: f64, n_steps: usize) -> Pic2DConfig {
        Pic2DConfig {
            grid: Grid2D::new(16, 16, 2.0532, 2.0532),
            init: TwoStream2DInit::quiet(v0, vth, 8_192, 1e-3, 1),
            dt: 0.2,
            n_steps,
            gather_shape: Shape::Cic,
            tracked_modes: vec![(1, 0), (0, 1)],
        }
    }

    #[test]
    fn run_produces_n_plus_one_samples() {
        let cfg = small_config(0.2, 0.0, 10);
        let mut sim = Simulation2D::new(cfg, Box::new(TraditionalSolver2D::default_config()));
        sim.run();
        assert_eq!(sim.history().len(), 11);
        assert_eq!(sim.steps_done(), 10);
        assert!((sim.time() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn energy_stays_bounded_over_short_run() {
        let cfg = small_config(0.2, 0.0, 25);
        let mut sim = Simulation2D::new(cfg, Box::new(TraditionalSolver2D::default_config()));
        sim.run();
        let h = sim.history();
        let e0 = h.total[0];
        for (i, e) in h.total.iter().enumerate() {
            assert!((e - e0).abs() / e0 < 0.05, "step {i}: {e} vs {e0}");
            assert!(e.is_finite());
        }
    }

    #[test]
    fn momentum_conserved_by_traditional_solver() {
        // Matched deposit/gather shapes ⇒ momentum conservation to
        // round-off, exactly as in 1-D.
        let cfg = small_config(0.2, 0.0, 25);
        let mut sim = Simulation2D::new(cfg, Box::new(TraditionalSolver2D::default_config()));
        sim.run();
        let h = sim.history();
        for (px, py) in h.momentum_x.iter().zip(&h.momentum_y) {
            assert!(px.abs() < 1e-9, "px = {px}");
            assert!(py.abs() < 1e-9, "py = {py}");
        }
    }

    #[test]
    fn mode_series_lookup() {
        let cfg = small_config(0.2, 0.0, 5);
        let mut sim = Simulation2D::new(cfg, Box::new(TraditionalSolver2D::default_config()));
        sim.run();
        assert!(sim.history().mode_series((1, 0)).is_some());
        assert!(sim.history().mode_series((3, 3)).is_none());
        let (t, a) = sim.history().mode_series((1, 0)).unwrap();
        assert_eq!(t.len(), a.len());
    }
}

//! Fully connected layer: `Y = X·W + b`.

use crate::frozen::{FrozenLayer, Precision};
use crate::init::Init;
use crate::layer::{cache_input, Layer};
use crate::linalg::{add_bias, col_sums_into, matmul_nn, matmul_nt, matmul_tn};
use crate::tensor::Tensor;

/// A dense (fully connected) layer with weights stored `[in, out]`
/// row-major.
pub struct Dense {
    in_features: usize,
    out_features: usize,
    w: Vec<f32>,
    b: Vec<f32>,
    dw: Vec<f32>,
    db: Vec<f32>,
    cached_input: Option<Tensor>,
    // Per-step weight-gradient staging buffer, reused across calls.
    dw_step: Vec<f32>,
}

impl Dense {
    /// Creates a dense layer with the given initialization and seed.
    pub fn new(in_features: usize, out_features: usize, init: Init, seed: u64) -> Self {
        assert!(
            in_features > 0 && out_features > 0,
            "degenerate dense layer"
        );
        let mut w = vec![0.0f32; in_features * out_features];
        init.fill(&mut w, in_features, out_features, seed);
        Self {
            in_features,
            out_features,
            w,
            b: vec![0.0; out_features],
            dw: vec![0.0; in_features * out_features],
            db: vec![0.0; out_features],
            cached_input: None,
            dw_step: Vec::new(),
        }
    }

    /// Input width.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Output width.
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    /// Immutable weight access (tests, inspection).
    pub fn weights(&self) -> &[f32] {
        &self.w
    }

    /// Immutable bias access.
    pub fn bias(&self) -> &[f32] {
        &self.b
    }
}

impl Dense {
    /// Shared forward: `out = X·W + b`, resized in place.
    fn forward_core(&mut self, input: &Tensor, out: &mut Tensor) {
        let batch = input.batch();
        assert_eq!(
            input.row_len(),
            self.in_features,
            "dense expected {} features, got {:?}",
            self.in_features,
            input.shape()
        );
        out.resize_in_place(&[batch, self.out_features]);
        matmul_nn(
            input.data(),
            &self.w,
            out.data_mut(),
            batch,
            self.in_features,
            self.out_features,
        );
        add_bias(out.data_mut(), &self.b, batch, self.out_features);
    }

    /// Shared backward: accumulates `dW`/`db`, writes `dX` into
    /// `grad_in` (resized in place).
    fn backward_core(&mut self, grad_out: &Tensor, grad_in: &mut Tensor) {
        let input = self
            .cached_input
            .as_ref()
            .expect("backward before forward(training)");
        let batch = input.batch();
        assert_eq!(
            grad_out.shape(),
            &[batch, self.out_features],
            "grad_out shape"
        );

        // dW += Xᵀ·dY (accumulate: stage into the reusable scratch, then
        // sum). matmul_tn overwrites every element, so the scratch only
        // needs sizing, not zeroing.
        if self.dw_step.len() != self.w.len() {
            self.dw_step.resize(self.w.len(), 0.0);
        }
        matmul_tn(
            input.data(),
            grad_out.data(),
            &mut self.dw_step,
            self.in_features,
            batch,
            self.out_features,
        );
        for (d, s) in self.dw.iter_mut().zip(&self.dw_step) {
            *d += s;
        }
        // db += column sums of dY.
        col_sums_into(grad_out.data(), &mut self.db, batch, self.out_features);

        // dX = dY·Wᵀ.
        grad_in.resize_in_place(&[batch, self.in_features]);
        matmul_nt(
            grad_out.data(),
            &self.w,
            grad_in.data_mut(),
            batch,
            self.out_features,
            self.in_features,
        );
    }
}

impl Layer for Dense {
    fn forward(&mut self, input: &Tensor, training: bool) -> Tensor {
        let mut out = Tensor::zeros(&[0]);
        self.forward_core(input, &mut out);
        if training {
            cache_input(&mut self.cached_input, input);
        }
        out
    }

    fn infer_into(&mut self, input: &Tensor, out: &mut Tensor) {
        self.forward_core(input, out);
    }

    fn train_forward_into(&mut self, input: &Tensor, out: &mut Tensor) {
        self.forward_core(input, out);
        cache_input(&mut self.cached_input, input);
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mut grad_in = Tensor::zeros(&[0]);
        self.backward_core(grad_out, &mut grad_in);
        grad_in
    }

    fn backward_into(&mut self, grad_out: &Tensor, grad_in: &mut Tensor) {
        self.backward_core(grad_out, grad_in);
    }

    fn freeze(&self, precision: Precision) -> Option<FrozenLayer> {
        Some(FrozenLayer::dense(
            self.in_features,
            self.out_features,
            &self.w,
            &self.b,
            precision,
        ))
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut [f32], &mut [f32])) {
        f(&mut self.w, &mut self.dw);
        f(&mut self.b, &mut self.db);
    }

    fn zero_grads(&mut self) {
        self.dw.fill(0.0);
        self.db.fill(0.0);
    }

    fn name(&self) -> &'static str {
        "dense"
    }

    fn param_count(&self) -> usize {
        self.w.len() + self.b.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_dense() -> Dense {
        // 2 -> 3 with hand-set weights.
        let mut d = Dense::new(2, 3, Init::Zeros, 0);
        d.w.copy_from_slice(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]); // [in=2, out=3]
        d.b.copy_from_slice(&[0.1, 0.2, 0.3]);
        d
    }

    #[test]
    fn forward_matches_hand_computation() {
        let mut d = tiny_dense();
        let x = Tensor::new(vec![1.0, -1.0], &[1, 2]);
        let y = d.forward(&x, false);
        // y = [1*1 + (-1)*4, 1*2 + (-1)*5, 1*3 + (-1)*6] + b
        assert_eq!(y.data(), &[-3.0 + 0.1, -3.0 + 0.2, -3.0 + 0.3]);
    }

    #[test]
    fn backward_computes_expected_gradients() {
        let mut d = tiny_dense();
        let x = Tensor::new(vec![1.0, -1.0], &[1, 2]);
        let _ = d.forward(&x, true);
        let gy = Tensor::new(vec![1.0, 0.0, -1.0], &[1, 3]);
        let gx = d.backward(&gy);
        // dX = gy · Wᵀ: [1*1 + 0*2 + (-1)*3, 1*4 + 0*5 + (-1)*6] = [-2, -2]
        assert_eq!(gx.data(), &[-2.0, -2.0]);
        // dW = Xᵀ·gy: [[1],[−1]]·[1,0,−1] = [[1,0,−1],[−1,0,1]]
        assert_eq!(&d.dw, &[1.0, 0.0, -1.0, -1.0, 0.0, 1.0]);
        assert_eq!(&d.db, &[1.0, 0.0, -1.0]);
    }

    #[test]
    fn gradients_accumulate_until_zeroed() {
        let mut d = tiny_dense();
        let x = Tensor::new(vec![1.0, 0.0], &[1, 2]);
        let gy = Tensor::new(vec![1.0, 1.0, 1.0], &[1, 3]);
        let _ = d.forward(&x, true);
        let _ = d.backward(&gy);
        let _ = d.forward(&x, true);
        let _ = d.backward(&gy);
        assert_eq!(&d.db, &[2.0, 2.0, 2.0]);
        d.zero_grads();
        assert!(d.db.iter().all(|&g| g == 0.0));
        assert!(d.dw.iter().all(|&g| g == 0.0));
    }

    #[test]
    fn batch_forward_shape() {
        let mut d = Dense::new(4, 2, Init::HeNormal, 1);
        let x = Tensor::zeros(&[5, 4]);
        let y = d.forward(&x, false);
        assert_eq!(y.shape(), &[5, 2]);
        assert_eq!(d.param_count(), 4 * 2 + 2);
    }

    #[test]
    #[should_panic(expected = "expected 2 features")]
    fn wrong_input_width_rejected() {
        let mut d = tiny_dense();
        let x = Tensor::zeros(&[1, 5]);
        let _ = d.forward(&x, false);
    }
}

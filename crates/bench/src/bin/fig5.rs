//! **Fig. 5** — total energy and total momentum evolution of the
//! traditional and DL-based PIC in the two-stream validation run
//! (`v0 = ±0.2`, `vth = 0.025`).
//!
//! Paper findings this binary checks:
//! * both methods show a total-energy variation of roughly 2% (neither is
//!   exactly energy-conserving);
//! * the traditional (momentum-conserving) PIC keeps `P ≈ 0` to rounding,
//!   while the DL-based PIC's momentum *drifts* (reaching ~−9·10⁻³ by
//!   t = 40 in the paper) because the predicted field carries a small net
//!   bias force.
//!
//! Both methods run the *same* engine scenario; only the [`Backend`]
//! value differs.
//!
//! Run: `cargo run -p dlpic-bench --release --bin fig5 [--scale ...]`

use dlpic_analytics::plot::{line_plot, PlotOptions};
use dlpic_analytics::series::write_csv;
use dlpic_bench::{get_or_train_mlp, out_dir, paper_figure_spec, Cli};
use dlpic_repro::engine::{Backend, Engine, Numerics1D};

fn main() {
    let cli = Cli::parse();
    let spec = paper_figure_spec("two_stream", cli.scale);
    let (v0, vth) = (0.2, 0.025);
    println!(
        "== Fig. 5: conservation properties, v0 = ±{v0}, vth = {vth} [{} scale] ==\n",
        cli.scale.name()
    );

    // The paper's traditional baseline is the "basic NGP scheme" (§II);
    // both methods share the NGP gather so the comparison is apples to
    // apples (the DL method "retains the interpolation step", Fig. 2).
    let mut engine = Engine::new()
        .with_model_1d(get_or_train_mlp(cli.scale, cli.retrain, true))
        .with_numerics_1d(Numerics1D::basic_ngp());
    eprintln!("running traditional PIC...");
    let trad = engine
        .run(&spec, Backend::Traditional1D)
        .expect("traditional run");
    eprintln!("running DL-based PIC...");
    let dl = engine.run(&spec, Backend::Dl1D).expect("dl run");

    let te_trad = trad.history.total_energy_series("energy-traditional");
    let te_dl = dl.history.total_energy_series("energy-dl-mlp");
    let p_trad = trad.history.momentum_series("momentum-traditional");
    let p_dl = dl.history.momentum_series("momentum-dl-mlp");

    println!(
        "{}",
        line_plot(
            &[('*', &te_trad), ('o', &te_dl)],
            &PlotOptions::titled(format!(
                "Total Energy for Different PIC Methods - v0 = {v0}, vth = {vth}"
            )),
        )
    );
    println!(
        "{}",
        line_plot(
            &[('*', &p_trad), ('o', &p_dl)],
            &PlotOptions::titled(format!(
                "Total Momentum for Different PIC Methods - v0 = {v0}, vth = {vth}"
            )),
        )
    );

    let ev_trad = trad.energy_variation();
    let ev_dl = dl.energy_variation();
    let pd_trad = trad.momentum_drift();
    let pd_dl = dl.momentum_drift();

    println!("total energy variation:");
    println!("  traditional : {:.2}%  (paper: ~2%)", ev_trad * 100.0);
    println!("  DL-based    : {:.2}%  (paper: ~2%)", ev_dl * 100.0);
    println!("total momentum drift:");
    println!("  traditional : {pd_trad:.2e}  (paper: conserved)");
    println!("  DL-based    : {pd_dl:.2e}  (paper: drifts to ~9e-3 magnitude)");

    let csv = out_dir().join(format!("fig5-{}.csv", cli.scale.name()));
    write_csv(&csv, &[&te_trad, &te_dl, &p_trad, &p_dl]).expect("write CSV");
    println!("\nwrote {}", csv.display());

    // Shape verdicts per the paper: bounded energy for both, conserved
    // momentum only for the traditional method.
    let pass = ev_trad < 0.05 && ev_dl < 0.20 && pd_trad < 1e-9 && pd_dl > pd_trad * 100.0;
    println!(
        "verdict: {}",
        if pass {
            "PASS — traditional conserves momentum, DL drifts; energy bounded for both"
        } else {
            "CHECK — see numbers above"
        }
    );
}

//! Failure-injection tests: corrupted artifacts, degenerate inputs and
//! hostile edge cases must fail *loudly and typed* — never panic deep in
//! a solver, never silently produce garbage.

use dlpic_repro::core::builder::ArchSpec;
use dlpic_repro::core::bundle::{BundleError, ModelBundle};
use dlpic_repro::core::normalize::NormStats;
use dlpic_repro::core::phase_space::{bin_phase_space, BinningShape, PhaseGridSpec};
use dlpic_repro::dataset::store;
use dlpic_repro::pic::grid::Grid1D;
use dlpic_repro::pic::particles::Particles;

// ---------------------------------------------------------------------
// Model bundles (the on-disk artifact users ship between machines).
// ---------------------------------------------------------------------

fn valid_bundle_bytes() -> Vec<u8> {
    let arch = ArchSpec::Mlp {
        input: 16,
        hidden: vec![4],
        output: 64,
    };
    let mut net = arch.build(0);
    let bundle = ModelBundle::from_network(
        &mut net,
        arch,
        PhaseGridSpec::new(4, 4, -0.8, 0.8),
        BinningShape::Ngp,
        NormStats::identity(),
    );
    bundle.encode()
}

#[test]
fn bundle_rejects_garbage() {
    let err = ModelBundle::decode(b"not a bundle at all").unwrap_err();
    assert!(matches!(err, BundleError::Malformed(_)), "{err:?}");
}

#[test]
fn bundle_rejects_empty_input() {
    assert!(ModelBundle::decode(&[]).is_err());
}

#[test]
fn bundle_rejects_every_truncation_point() {
    let bytes = valid_bundle_bytes();
    // Every strict prefix must decode to an error, not a panic and not a
    // silently short model.
    for cut in 0..bytes.len() {
        let result = ModelBundle::decode(&bytes[..cut]);
        assert!(
            result.is_err(),
            "prefix of {cut} bytes decoded successfully"
        );
    }
}

#[test]
fn bundle_rejects_bit_flips_in_header() {
    let bytes = valid_bundle_bytes();
    // Flip each of the first 16 header bytes; decode must never panic,
    // and magic/version corruption must be rejected.
    for i in 0..16.min(bytes.len()) {
        let mut corrupt = bytes.clone();
        corrupt[i] ^= 0xFF;
        let _ = ModelBundle::decode(&corrupt); // must not panic
    }
    let mut wrong_magic = bytes.clone();
    wrong_magic[0] ^= 0xFF;
    assert!(ModelBundle::decode(&wrong_magic).is_err());
}

#[test]
fn bundle_round_trips_unharmed() {
    let bytes = valid_bundle_bytes();
    let decoded = ModelBundle::decode(&bytes).expect("valid bundle decodes");
    assert_eq!(decoded.encode(), bytes, "re-encode is byte-identical");
    assert!(decoded.into_solver().is_ok());
}

// ---------------------------------------------------------------------
// Dataset store (the regenerated 5.2 GB-equivalent artifact).
// ---------------------------------------------------------------------

#[test]
fn store_rejects_truncations_and_garbage() {
    use dlpic_repro::dataset::sample::PhaseDataset;
    let mut ds = PhaseDataset::new(PhaseGridSpec::new(4, 4, -0.8, 0.8), BinningShape::Ngp, 8);
    ds.push(&[1.0; 16], &[0.5; 8]);
    ds.push(&[2.0; 16], &[0.25; 8]);
    let bytes = store::encode(&ds);

    assert!(store::decode(b"garbage").is_err());
    for cut in [0, 1, bytes.len() / 2, bytes.len() - 1] {
        assert!(store::decode(&bytes[..cut]).is_err(), "cut at {cut}");
    }
    let back = store::decode(&bytes).expect("valid store decodes");
    assert_eq!(back.len(), 2);
}

// ---------------------------------------------------------------------
// Degenerate numerical inputs.
// ---------------------------------------------------------------------

#[test]
fn constant_histogram_normalizes_to_zero_not_nan() {
    // A uniform plasma gives a constant histogram; min == max makes
    // Eq. 5 singular. The implementation must map it to zeros.
    let stats = NormStats::from_data(&[3.0, 3.0, 3.0]);
    let mut data = vec![3.0f32; 8];
    stats.apply(&mut data);
    assert!(data.iter().all(|v| v.is_finite()));
    assert!(data.iter().all(|v| *v == 0.0));
}

#[test]
fn binning_empty_particle_buffer_is_all_zero() {
    let grid = Grid1D::paper();
    let p = Particles::new(vec![], vec![], -1.0, 1.0);
    let spec = PhaseGridSpec::smoke();
    let mut hist = vec![7.0f32; spec.cells()];
    bin_phase_space(&p, &grid, &spec, BinningShape::Ngp, &mut hist);
    assert!(hist.iter().all(|v| *v == 0.0));
}

#[test]
fn binning_clamps_outliers_and_conserves_counts() {
    // Velocities way outside the window land in edge bins; the total
    // count must survive exactly (loss here would silently bias Eq. 5).
    let grid = Grid1D::paper();
    let spec = PhaseGridSpec::smoke(); // v window [-0.8, 0.8]
    let xs = vec![0.1, 0.5, 1.0, 1.5];
    let vs = vec![-100.0, 100.0, f64::MAX / 1e10, -5.0];
    let p = Particles::new(xs, vs, -1.0, 1.0);
    for shape in [BinningShape::Ngp, BinningShape::Cic] {
        let mut hist = vec![0.0f32; spec.cells()];
        bin_phase_space(&p, &grid, &spec, shape, &mut hist);
        let total: f32 = hist.iter().sum();
        assert!(
            (total - 4.0).abs() < 1e-5,
            "{shape:?}: lost particles ({total})"
        );
        assert!(hist.iter().all(|v| v.is_finite()));
    }
}

#[test]
fn solver_with_nan_weights_propagates_not_panics() {
    // A poisoned model must not crash the simulation loop — NaN shows up
    // in the diagnostics where the user can see it.
    use dlpic_repro::core::field_solver::DlFieldSolver;
    use dlpic_repro::pic::init::TwoStreamInit;
    use dlpic_repro::pic::solver::FieldSolver;

    let spec = PhaseGridSpec::smoke();
    let arch = ArchSpec::Mlp {
        input: spec.cells(),
        hidden: vec![4],
        output: 64,
    };
    let mut net = arch.build(0);
    net.visit_params(&mut |params, _grads| {
        if let Some(first) = params.first_mut() {
            *first = f32::NAN;
        }
    });
    let mut solver = DlFieldSolver::new(
        net,
        spec,
        BinningShape::Ngp,
        NormStats::identity(),
        arch.input_kind(),
        "poisoned",
    );
    let grid = Grid1D::paper();
    let p = TwoStreamInit::random(0.2, 0.0, 1_000, 0).build(&grid);
    let mut e = grid.zeros();
    FieldSolver::solve(&mut solver, &p, &grid, &mut e);
    assert!(
        e.iter().any(|v| v.is_nan()),
        "poison must be visible downstream"
    );
}

// ---------------------------------------------------------------------
// 2-D and distributed edge cases.
// ---------------------------------------------------------------------

#[test]
fn pic2d_single_particle_universe_runs() {
    use dlpic_repro::pic::shape::Shape;
    use dlpic_repro::pic2d::grid2d::Grid2D;
    use dlpic_repro::pic2d::particles2d::Particles2D;
    use dlpic_repro::pic2d::solver2d::{FieldSolver2D, TraditionalSolver2D};

    let grid = Grid2D::new(8, 8, 2.0, 2.0);
    let p = Particles2D::new(vec![1.0], vec![1.0], vec![0.0], vec![0.0], -0.1, 0.1);
    let mut solver = TraditionalSolver2D::new(
        Shape::Cic,
        dlpic_repro::pic2d::poisson2d::Poisson2DKind::Spectral,
        0.1 / 4.0,
    );
    let mut ex = grid.zeros();
    let mut ey = grid.zeros();
    solver.solve(&p, &grid, &mut ex, &mut ey);
    assert!(ex.iter().chain(ey.iter()).all(|v| v.is_finite()));
}

#[test]
fn ddecomp_rejects_indivisible_rank_counts() {
    use dlpic_repro::ddecomp::topology::Topology;
    let result = std::panic::catch_unwind(|| Topology::new(5, 64));
    assert!(result.is_err(), "5 ranks over 64 cells must be rejected");
}

// ---------------------------------------------------------------------
// Run supervision: wave-level fault containment.
//
// One sick run in a cohort-batched fleet must be quarantined — partial
// history preserved, typed fault recorded — while every healthy run
// finishes bit-identical to its solo execution (the row-stable GEMM
// invariant makes dropping a row from the shared inference batch safe).
// ---------------------------------------------------------------------

mod supervision {
    use dlpic_repro::core::Scale;
    use dlpic_repro::engine::{
        Backend, Engine, EngineError, FaultKind, FaultPlan, SessionFault, SweepSpec,
    };

    fn sweep() -> SweepSpec {
        SweepSpec::grid("two_stream", Scale::Smoke).axis("v0", [0.10, 0.14, 0.18])
    }

    fn solo_histories() -> Vec<Vec<f64>> {
        sweep()
            .specs()
            .unwrap()
            .iter()
            .map(|spec| {
                Engine::new()
                    .run(spec, Backend::Dl1D)
                    .unwrap()
                    .history
                    .kinetic
            })
            .collect()
    }

    #[test]
    fn panicking_run_is_quarantined_and_healthy_runs_bit_identical() {
        let solo = solo_histories();
        let plan = FaultPlan::new().rule("v0=0.14", FaultKind::Panic, 5);
        let mut fleet = Engine::new()
            .with_faults(plan)
            .start_sweep(&sweep(), Backend::Dl1D)
            .unwrap();
        fleet.run_to_end(1);
        assert!(fleet.is_complete(), "faulted fleet must still terminate");

        let faults = fleet.faults();
        assert_eq!(faults.len(), 1, "exactly the injected run faults");
        assert_eq!(faults[0].0, 1);
        assert!(
            matches!(faults[0].1, SessionFault::Panicked { .. }),
            "{:?}",
            faults[0].1
        );

        let summaries = fleet.finish();
        // The sick run keeps its partial history (steps before the panic).
        assert!(!summaries[1].history.is_empty());
        assert!(summaries[1].history.len() < solo[1].len());
        // The healthy neighbours are bit-identical to solo execution.
        assert_eq!(summaries[0].history.kinetic, solo[0]);
        assert_eq!(summaries[2].history.kinetic, solo[2]);
    }

    #[test]
    fn nan_divergence_is_quarantined_with_typed_error() {
        let solo = solo_histories();
        let plan = FaultPlan::new().rule("v0=0.14", FaultKind::NanField, 10);
        let mut fleet = Engine::new()
            .with_faults(plan)
            .start_sweep(&sweep(), Backend::Dl1D)
            .unwrap();
        fleet.run_to_end(1);
        assert!(fleet.is_complete());

        let faults = fleet.faults();
        assert_eq!(faults.len(), 1);
        let (idx, fault) = (faults[0].0, faults[0].1.clone());
        assert_eq!(idx, 1);
        let SessionFault::Diverged { step, diagnostic } = &fault else {
            panic!("expected divergence, got {fault}");
        };
        assert!(diagnostic.contains("field energy"), "{diagnostic}");
        // The typed engine error carries the same coordinates.
        match fault.to_error() {
            Some(EngineError::Diverged { step: s, .. }) => assert_eq!(s, *step),
            other => panic!("expected EngineError::Diverged, got {other:?}"),
        }

        let summaries = fleet.finish();
        // Quarantine freezes the run just before the first bad row: the
        // preserved partial history is shorter than solo and entirely
        // finite (so it survives a JSON round-trip).
        assert_eq!(summaries[1].history.len(), *step);
        assert!(summaries[1].history.len() < solo[1].len());
        for (i, v) in summaries[1].history.field.iter().enumerate() {
            assert!(v.is_finite(), "preserved row {i} must stay clean");
        }
        assert_eq!(summaries[0].history.kinetic, solo[0]);
        assert_eq!(summaries[2].history.kinetic, solo[2]);
    }

    #[test]
    fn fault_plan_parses_the_inject_syntax() {
        let plan = FaultPlan::parse("v0=0.12=panic@40; v0=0.16=nan@7").unwrap();
        assert!(!plan.is_empty());
        assert!(FaultPlan::parse("").unwrap().is_empty());
        assert!(FaultPlan::parse("nonsense").is_err());
        assert!(FaultPlan::parse("run=explode@3").is_err());
        assert!(FaultPlan::parse("run=panic@soon").is_err());
    }

    #[test]
    fn fault_plan_errors_name_the_offending_segment() {
        // The second of three rules is broken: the message must point at
        // segment 2 and quote it, so a typo in a long plan is findable.
        let err = FaultPlan::parse("a=panic@1;b=explode@2;c=nan@3").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("segment 2"), "{msg}");
        assert!(msg.contains("b=explode@2"), "{msg}");

        // Segment numbering counts `;`-separated positions literally, so
        // the index still lines up when empty segments are skipped.
        let err = FaultPlan::parse("a=panic@1;;c=nan@oops").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("segment 3"), "{msg}");
        assert!(msg.contains("`oops` is not a number"), "{msg}");
    }
}

#[test]
fn ddecomp_empty_rank_participates_safely() {
    // All particles crowded into one slab: seven ranks start empty yet
    // must still take part in halos, gather/scatter and migration.
    use dlpic_repro::ddecomp::sim::{DistConfig, DistSimulation};
    use dlpic_repro::ddecomp::strategy::GatherScatter;
    use dlpic_repro::pic::init::{Loading, TwoStreamInit};
    use dlpic_repro::pic::shape::Shape;

    let cfg = DistConfig {
        grid: Grid1D::paper(),
        init: TwoStreamInit {
            v0: 0.0,
            vth: 0.001,
            n_particles: 512,
            loading: Loading::Random,
            seed: 3,
        },
        dt: 0.2,
        n_steps: 10,
        gather_shape: Shape::Cic,
        n_ranks: 8,
        tracked_modes: vec![],
    };
    let mut sim = DistSimulation::new(cfg, Box::new(GatherScatter::new(Shape::Cic, 1.0)));
    sim.run();
    assert_eq!(sim.total_particles(), 512);
    assert!(sim.history().total.iter().all(|e| e.is_finite()));
}

//! Physics-informed loss — the paper's §VII improvement path.
//!
//! > "To be competitive with other PIC methods in terms of physical
//! > accuracy, a DL-based PIC should explicitly integrate the conservation
//! > laws in the scheme. … The usage of PINN would improve the
//! > conservation of total energy and momentum."
//!
//! [`PhysicsInformedMse`] augments the MSE with two soft constraints on the
//! *predicted field itself* (no extra inputs needed):
//!
//! * **zero-mean penalty** — a periodic neutral plasma has `Σ_j E_j = 0`;
//!   a biased prediction exerts a net force on the plasma and is exactly
//!   what drives the momentum drift of the paper's Fig. 5. Weight
//!   `lambda_mean`.
//! * **Gauss-law-consistency penalty** — matches the discrete derivative
//!   of the prediction to that of the target (`dE/dx = ρ`), damping
//!   high-wavenumber error. Weight `lambda_gauss`.
//!
//! The `ablation_physics_loss` experiment measures the effect on DL-PIC
//! momentum conservation.

use dlpic_nn::loss::Loss;
use dlpic_nn::tensor::Tensor;

/// MSE plus zero-mean and Gauss-law-consistency penalties.
pub struct PhysicsInformedMse {
    /// Weight of the squared-mean penalty.
    pub lambda_mean: f32,
    /// Weight of the derivative-matching penalty.
    pub lambda_gauss: f32,
}

impl PhysicsInformedMse {
    /// Creates the loss with the given penalty weights.
    pub fn new(lambda_mean: f32, lambda_gauss: f32) -> Self {
        Self {
            lambda_mean,
            lambda_gauss,
        }
    }
}

/// Periodic central difference of one row, unit spacing.
fn central_diff(row: &[f32], out: &mut [f32]) {
    let n = row.len();
    // Index form: the periodic wrap needs j−1 and j+1 of each j.
    #[allow(clippy::needless_range_loop)]
    for j in 0..n {
        let jm = if j == 0 { n - 1 } else { j - 1 };
        let jp = if j + 1 == n { 0 } else { j + 1 };
        out[j] = 0.5 * (row[jp] - row[jm]);
    }
}

impl Loss for PhysicsInformedMse {
    fn loss_and_grad(&self, pred: &Tensor, target: &Tensor, grad: &mut Tensor) -> f32 {
        assert_eq!(pred.shape(), target.shape(), "pred/target shape mismatch");
        assert_eq!(pred.shape(), grad.shape(), "grad shape mismatch");
        let batch = pred.batch();
        let n = pred.row_len();
        let total = (batch * n) as f32;

        // Base MSE.
        let mut loss = 0.0f64;
        for ((&p, &t), g) in pred.data().iter().zip(target.data()).zip(grad.data_mut()) {
            let d = p - t;
            loss += (d * d) as f64;
            *g = 2.0 * d / total;
        }
        loss /= total as f64;

        // Zero-mean penalty: λm · (1/B) Σ_b mean_b².
        if self.lambda_mean > 0.0 {
            for b in 0..batch {
                let row = pred.row(b);
                let mean = row.iter().sum::<f32>() / n as f32;
                loss += (self.lambda_mean * mean * mean) as f64 / batch as f64;
                let g_add = self.lambda_mean * 2.0 * mean / (n as f32 * batch as f32);
                for g in &mut grad.data_mut()[b * n..(b + 1) * n] {
                    *g += g_add;
                }
            }
        }

        // Gauss-law consistency: λg · (1/(B·n)) Σ_b ‖D·pred - D·target‖².
        if self.lambda_gauss > 0.0 {
            let mut dp = vec![0.0f32; n];
            let mut dt = vec![0.0f32; n];
            let mut resid = vec![0.0f32; n];
            for b in 0..batch {
                central_diff(pred.row(b), &mut dp);
                central_diff(target.row(b), &mut dt);
                for ((r, &a), &c) in resid.iter_mut().zip(&dp).zip(&dt) {
                    *r = a - c;
                    loss += (self.lambda_gauss * *r * *r) as f64 / total as f64;
                }
                // ∂‖r‖²/∂pred_k = Σ_j 2 r_j ∂(Dp)_j/∂p_k = r_{k-1} - r_{k+1}
                // (each ∂(Dp)_{k∓1}/∂p_k = ±1/2, times 2 r).
                let g_row = &mut grad.data_mut()[b * n..(b + 1) * n];
                // Index form: the periodic wrap needs k−1 and k+1 of each k.
                #[allow(clippy::needless_range_loop)]
                for k in 0..n {
                    let km = if k == 0 { n - 1 } else { k - 1 };
                    let kp = if k + 1 == n { 0 } else { k + 1 };
                    g_row[k] += self.lambda_gauss * (resid[km] - resid[kp]) / total;
                }
            }
        }
        loss as f32
    }

    fn name(&self) -> &'static str {
        "physics-informed-mse"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlpic_nn::gradcheck::check_gradients;
    use dlpic_nn::init::Init;
    use dlpic_nn::layers::Dense;
    use dlpic_nn::loss::Mse;
    use dlpic_nn::network::Sequential;

    fn pseudo(len: usize, seed: u64) -> Vec<f32> {
        (0..len)
            .map(|i| (((i as u64 + seed) * 2654435761 % 997) as f32 / 498.5) - 1.0)
            .collect()
    }

    #[test]
    fn reduces_to_mse_with_zero_lambdas() {
        let pi = PhysicsInformedMse::new(0.0, 0.0);
        let pred = Tensor::new(pseudo(2 * 8, 1), &[2, 8]);
        let target = Tensor::new(pseudo(2 * 8, 2), &[2, 8]);
        let mut g1 = Tensor::zeros(&[2, 8]);
        let mut g2 = Tensor::zeros(&[2, 8]);
        let l1 = pi.loss_and_grad(&pred, &target, &mut g1);
        let l2 = Mse.loss_and_grad(&pred, &target, &mut g2);
        assert!((l1 - l2).abs() < 1e-7);
        assert_eq!(g1.data(), g2.data());
    }

    #[test]
    fn mean_penalty_punishes_biased_predictions() {
        let pi = PhysicsInformedMse::new(10.0, 0.0);
        let target = Tensor::zeros(&[1, 8]);
        // Two predictions with identical MSE: one zero-mean, one biased.
        let balanced = Tensor::new(vec![0.1, -0.1, 0.1, -0.1, 0.1, -0.1, 0.1, -0.1], &[1, 8]);
        let biased = Tensor::new(vec![0.1; 8], &[1, 8]);
        let mut g = Tensor::zeros(&[1, 8]);
        let l_bal = pi.loss_and_grad(&balanced, &target, &mut g);
        let l_bias = pi.loss_and_grad(&biased, &target, &mut g);
        assert!(l_bias > l_bal * 2.0, "biased {l_bias} vs balanced {l_bal}");
    }

    #[test]
    fn gauss_penalty_punishes_derivative_mismatch() {
        let pi = PhysicsInformedMse::new(0.0, 10.0);
        let n = 16;
        let target = Tensor::new(
            (0..n)
                .map(|j| (2.0 * std::f32::consts::PI * j as f32 / n as f32).sin() * 0.1)
                .collect(),
            &[1, n],
        );
        // Same L2 scale of error, different roughness. The wiggle has
        // period 4 — period 2 (Nyquist) is invisible to a central
        // difference, so it would not exercise the penalty.
        let smooth = target.map(|v| v * 0.9);
        let rough = Tensor::new(
            target
                .data()
                .iter()
                .enumerate()
                .map(|(j, &v)| v + if j % 4 < 2 { 0.01 } else { -0.01 })
                .collect(),
            &[1, n],
        );
        let mut g = Tensor::zeros(&[1, n]);
        let l_smooth = pi.loss_and_grad(&smooth, &target, &mut g);
        let l_rough = pi.loss_and_grad(&rough, &target, &mut g);
        assert!(l_rough > l_smooth, "rough {l_rough} vs smooth {l_smooth}");
    }

    #[test]
    fn gradients_verify_against_finite_differences() {
        // gradcheck exercises the full Loss implementation through a net.
        let pi = PhysicsInformedMse::new(0.5, 0.8);
        let mut net = Sequential::new().push(Dense::new(6, 8, Init::GlorotUniform, 3));
        let x = Tensor::new(pseudo(3 * 6, 5), &[3, 6]);
        let y = Tensor::new(pseudo(3 * 8, 7), &[3, 8]);
        let report = check_gradients(&mut net, &pi, &x, &y, 3e-3, 1);
        assert!(
            report.max_rel_error < 5e-2,
            "max rel err {}",
            report.max_rel_error
        );
    }
}

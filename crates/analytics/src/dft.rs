//! Discrete Fourier transforms.
//!
//! Two implementations are provided:
//!
//! * [`fft_in_place`] — an iterative radix-2 Cooley–Tukey FFT for
//!   power-of-two lengths. This is what the hot paths use (the PIC grid has
//!   64 cells, the paper's phase-space grids are powers of two).
//! * [`dft_naive`] — the O(n²) textbook definition, kept as the oracle for
//!   property tests and as a fallback for non-power-of-two lengths.
//!
//! The convention is the engineering one: forward transform
//! `X_k = Σ_n x_n · exp(-2πi·kn/N)` with no normalization; the inverse
//! carries the `1/N`.
//!
//! [`mode_amplitudes`] converts a real signal into per-mode *physical*
//! amplitudes, i.e. the `a_k` in `x_n = a_0 + Σ_k a_k cos(k·… + φ_k)`; this
//! is the quantity plotted as `E1` in Fig. 4 of the paper.

use crate::complex::Complex64;

/// Returns true if `n` is a power of two (and nonzero).
#[inline]
pub fn is_power_of_two(n: usize) -> bool {
    n != 0 && (n & (n - 1)) == 0
}

/// Naive O(n²) DFT of a complex signal. Oracle for tests; correct for any
/// length.
pub fn dft_naive(input: &[Complex64]) -> Vec<Complex64> {
    let n = input.len();
    let mut out = vec![Complex64::ZERO; n];
    for (k, out_k) in out.iter_mut().enumerate() {
        let mut acc = Complex64::ZERO;
        for (j, &x) in input.iter().enumerate() {
            let angle = -2.0 * std::f64::consts::PI * (k * j) as f64 / n as f64;
            acc += x * Complex64::from_polar(1.0, angle);
        }
        *out_k = acc;
    }
    out
}

/// In-place iterative radix-2 FFT.
///
/// # Panics
/// Panics if `data.len()` is not a power of two.
pub fn fft_in_place(data: &mut [Complex64]) {
    let n = data.len();
    assert!(
        is_power_of_two(n),
        "FFT length must be a power of two, got {n}"
    );
    if n <= 1 {
        return;
    }

    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = i.reverse_bits() >> (usize::BITS - bits);
        if i < j {
            data.swap(i, j);
        }
    }

    // Butterflies.
    let mut len = 2;
    while len <= n {
        let ang = -2.0 * std::f64::consts::PI / len as f64;
        let wlen = Complex64::from_polar(1.0, ang);
        let mut i = 0;
        while i < n {
            let mut w = Complex64::ONE;
            for j in 0..len / 2 {
                let u = data[i + j];
                let v = data[i + j + len / 2] * w;
                data[i + j] = u + v;
                data[i + j + len / 2] = u - v;
                w *= wlen;
            }
            i += len;
        }
        len <<= 1;
    }
}

/// In-place inverse FFT (includes the 1/N normalization).
///
/// # Panics
/// Panics if `data.len()` is not a power of two.
pub fn ifft_in_place(data: &mut [Complex64]) {
    let n = data.len() as f64;
    for z in data.iter_mut() {
        *z = z.conj();
    }
    fft_in_place(data);
    for z in data.iter_mut() {
        *z = z.conj() / n;
    }
}

/// Forward transform of a real signal. Uses the FFT when the length is a
/// power of two, the naive DFT otherwise.
pub fn rdft(signal: &[f64]) -> Vec<Complex64> {
    let data: Vec<Complex64> = signal.iter().map(|&x| Complex64::from_real(x)).collect();
    if is_power_of_two(data.len()) {
        let mut d = data;
        fft_in_place(&mut d);
        d
    } else {
        dft_naive(&data)
    }
}

/// Physical per-mode amplitudes of a real signal.
///
/// Returns `n/2 + 1` values: index 0 is the mean `|X_0|/N`, index `k`
/// (0 < k < N/2) is `2|X_k|/N` — the amplitude of the cosine mode — and the
/// Nyquist mode (k = N/2, when N even) is `|X_{N/2}|/N`.
pub fn mode_amplitudes(signal: &[f64]) -> Vec<f64> {
    let n = signal.len();
    assert!(n > 0, "empty signal");
    let spec = rdft(signal);
    let half = n / 2;
    let mut amps = Vec::with_capacity(half + 1);
    amps.push(spec[0].abs() / n as f64);
    for (k, s) in spec.iter().enumerate().take(half + 1).skip(1) {
        let factor = if n.is_multiple_of(2) && k == half {
            1.0
        } else {
            2.0
        };
        amps.push(factor * s.abs() / n as f64);
    }
    amps
}

/// Single DFT bin `X_k = Σ_j x_j·exp(-2πi·kj/N)` of a real signal,
/// computed with the Goertzel recurrence — O(N), allocation-free. This is
/// the per-step hot path of the mode-amplitude diagnostics: a tracked
/// mode costs one pass over the signal instead of a full transform.
pub fn single_mode_dft(signal: &[f64], k: usize) -> Complex64 {
    let n = signal.len();
    assert!(n > 0, "empty signal");
    let omega = 2.0 * std::f64::consts::PI * k as f64 / n as f64;
    let (sin_w, cos_w) = omega.sin_cos();
    let coeff = 2.0 * cos_w;
    let mut s_prev = 0.0f64;
    let mut s_prev2 = 0.0f64;
    for &x in signal {
        let s = x + coeff * s_prev - s_prev2;
        s_prev2 = s_prev;
        s_prev = s;
    }
    // X_k = e^{iω}·s_{N−1} − s_{N−2} (ω·N is a full turn, so the phase
    // reference lands back on sample 0).
    Complex64::new(s_prev * cos_w - s_prev2, s_prev * sin_w)
}

/// Amplitude of a single mode `k` of a real signal (see [`mode_amplitudes`])
/// via the O(N) Goertzel projection — no transform, no allocation.
pub fn mode_amplitude(signal: &[f64], k: usize) -> f64 {
    let n = signal.len();
    assert!(k <= n / 2, "mode {k} out of range for signal of length {n}");
    let bin = single_mode_dft(signal, k);
    let factor = if k == 0 || (n.is_multiple_of(2) && k == n / 2) {
        1.0
    } else {
        2.0
    };
    factor * bin.abs() / n as f64
}

/// Total spectral power `Σ|X_k|²` — used for Parseval checks and for the
/// spectral error analysis the paper's §VII calls for.
pub fn spectral_power(signal: &[f64]) -> f64 {
    rdft(signal).iter().map(|z| z.norm_sqr()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::f64::consts::PI;

    fn assert_close(a: f64, b: f64, tol: f64, what: &str) {
        assert!((a - b).abs() < tol, "{what}: {a} vs {b}");
    }

    #[test]
    fn fft_of_impulse_is_flat() {
        let mut data = vec![Complex64::ZERO; 8];
        data[0] = Complex64::ONE;
        fft_in_place(&mut data);
        for z in &data {
            assert!((z.re - 1.0).abs() < 1e-12 && z.im.abs() < 1e-12);
        }
    }

    #[test]
    fn fft_of_constant_is_impulse() {
        let mut data = vec![Complex64::ONE; 16];
        fft_in_place(&mut data);
        assert!((data[0].re - 16.0).abs() < 1e-12);
        for z in &data[1..] {
            assert!(z.abs() < 1e-10);
        }
    }

    #[test]
    fn single_cosine_lands_on_one_mode() {
        let n = 64;
        let k = 3;
        let amp = 0.25;
        let signal: Vec<f64> = (0..n)
            .map(|j| amp * (2.0 * PI * (k * j) as f64 / n as f64).cos())
            .collect();
        let amps = mode_amplitudes(&signal);
        assert_close(amps[k], amp, 1e-12, "target mode");
        for (m, &a) in amps.iter().enumerate() {
            if m != k {
                assert!(a < 1e-10, "leakage at mode {m}: {a}");
            }
        }
    }

    #[test]
    fn mode_amplitude_with_phase_shift() {
        let n = 64;
        let k = 5;
        let signal: Vec<f64> = (0..n)
            .map(|j| 0.1 * (2.0 * PI * (k * j) as f64 / n as f64 + 1.1).sin())
            .collect();
        assert_close(mode_amplitude(&signal, k), 0.1, 1e-12, "shifted mode");
    }

    #[test]
    fn mean_mode_is_signal_mean() {
        let signal = vec![2.5; 32];
        assert_close(mode_amplitudes(&signal)[0], 2.5, 1e-12, "mean");
    }

    #[test]
    fn nyquist_mode_amplitude() {
        // x_j = (-1)^j = cos(pi j): Nyquist amplitude 1, no factor 2.
        let n = 16;
        let signal: Vec<f64> = (0..n)
            .map(|j| if j % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let amps = mode_amplitudes(&signal);
        assert_close(amps[n / 2], 1.0, 1e-12, "nyquist");
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn fft_rejects_non_power_of_two() {
        let mut data = vec![Complex64::ZERO; 12];
        fft_in_place(&mut data);
    }

    #[test]
    fn rdft_handles_non_power_of_two_via_naive_path() {
        let signal: Vec<f64> = (0..12).map(|j| (j as f64 * 0.3).sin()).collect();
        let spec = rdft(&signal);
        let oracle = dft_naive(
            &signal
                .iter()
                .map(|&x| Complex64::from_real(x))
                .collect::<Vec<_>>(),
        );
        for (a, b) in spec.iter().zip(&oracle) {
            assert!((*a - *b).abs() < 1e-9);
        }
    }

    #[test]
    fn goertzel_matches_naive_dft_bins() {
        // Awkward (non-power-of-two) length: the worst case for the old
        // path, exact single-bin agreement expected from Goertzel.
        let signal: Vec<f64> = (0..37).map(|j| (j as f64 * 0.83).sin() - 0.2).collect();
        let input: Vec<Complex64> = signal.iter().map(|&x| Complex64::from_real(x)).collect();
        let oracle = dft_naive(&input);
        for (k, want) in oracle.iter().enumerate().take(signal.len() / 2 + 1) {
            let bin = single_mode_dft(&signal, k);
            assert!((bin - *want).abs() < 1e-9, "bin {k}: {bin:?} vs {want:?}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn goertzel_amplitude_matches_full_spectrum(
            signal in proptest::collection::vec(-2.0f64..2.0, 1..96),
        ) {
            let amps = mode_amplitudes(&signal);
            for (k, &a) in amps.iter().enumerate() {
                let single = mode_amplitude(&signal, k);
                prop_assert!((single - a).abs() < 1e-9,
                    "mode {k}: {single} vs {a}");
            }
        }

        #[test]
        fn fft_matches_naive_dft(signal in proptest::collection::vec(-1.0f64..1.0, 64)) {
            let input: Vec<Complex64> = signal.iter().map(|&x| Complex64::from_real(x)).collect();
            let oracle = dft_naive(&input);
            let mut fast = input;
            fft_in_place(&mut fast);
            for (a, b) in fast.iter().zip(&oracle) {
                prop_assert!((*a - *b).abs() < 1e-8);
            }
        }

        #[test]
        fn fft_ifft_round_trip(signal in proptest::collection::vec(-10.0f64..10.0, 32)) {
            let input: Vec<Complex64> = signal.iter().map(|&x| Complex64::from_real(x)).collect();
            let mut data = input.clone();
            fft_in_place(&mut data);
            ifft_in_place(&mut data);
            for (a, b) in data.iter().zip(&input) {
                prop_assert!((*a - *b).abs() < 1e-9);
            }
        }

        #[test]
        fn parseval_identity(signal in proptest::collection::vec(-5.0f64..5.0, 128)) {
            let time_energy: f64 = signal.iter().map(|x| x * x).sum();
            let freq_energy = spectral_power(&signal) / signal.len() as f64;
            prop_assert!((time_energy - freq_energy).abs() < 1e-6 * (1.0 + time_energy));
        }

        #[test]
        fn fft_linearity(
            a in proptest::collection::vec(-1.0f64..1.0, 32),
            b in proptest::collection::vec(-1.0f64..1.0, 32),
            alpha in -3.0f64..3.0,
        ) {
            let combo: Vec<f64> = a.iter().zip(&b).map(|(x, y)| alpha * x + y).collect();
            let fa = rdft(&a);
            let fb = rdft(&b);
            let fc = rdft(&combo);
            for k in 0..32 {
                let expect = fa[k] * alpha + fb[k];
                prop_assert!((fc[k] - expect).abs() < 1e-8);
            }
        }
    }
}

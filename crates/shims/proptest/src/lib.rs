//! Offline stand-in for `proptest`.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the subset of the proptest surface its test suites use: the
//! [`proptest!`] macro with `#![proptest_config(...)]`, range strategies,
//! tuple strategies, [`collection::vec`], [`sample::select`] and the
//! `prop_assert!`/`prop_assert_eq!` assertions.
//!
//! Semantics versus upstream: cases are drawn uniformly from the strategy
//! with a deterministic per-case seed — there is **no shrinking** and no
//! persisted failure regressions. A failing case panics with the normal
//! assertion message, which for these suites always embeds the offending
//! values.

/// Per-test configuration.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Deterministic case generator.
pub mod test_runner {
    /// SplitMix64-based generator; one instance per test case.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Builds the generator for case index `case` (deterministic).
        pub fn for_case(case: u64) -> Self {
            Self {
                state: 0x853C_49E6_748F_EA9B ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            }
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform index in `[0, n)`.
        pub fn index(&mut self, n: usize) -> usize {
            assert!(n > 0, "empty choice");
            (self.next_u64() % n as u64) as usize
        }
    }
}

/// The strategy abstraction: something that can produce random values.
pub mod strategy {
    use super::test_runner::TestRng;

    /// Produces one random value per call.
    pub trait Strategy {
        /// The produced value type.
        type Value;
        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            self.start + (self.end - self.start) * rng.unit_f64()
        }
    }

    impl Strategy for std::ops::Range<f32> {
        type Value = f32;
        fn sample(&self, rng: &mut TestRng) -> f32 {
            self.start + (self.end - self.start) * rng.unit_f64() as f32
        }
    }

    macro_rules! int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.next_u64() % span) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range");
                    let span = (hi - lo) as u64;
                    lo + (rng.next_u64() % (span + 1)) as $t
                }
            }
        )*};
    }
    int_strategy!(usize, u64, u32, i64, i32);

    impl<A: Strategy, B: Strategy> Strategy for (A, B) {
        type Value = (A::Value, B::Value);
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (self.0.sample(rng), self.1.sample(rng))
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
        type Value = (A::Value, B::Value, C::Value);
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng))
        }
    }

    impl<A, B, C, D> Strategy for (A, B, C, D)
    where
        A: Strategy,
        B: Strategy,
        C: Strategy,
        D: Strategy,
    {
        type Value = (A::Value, B::Value, C::Value, D::Value);
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (
                self.0.sample(rng),
                self.1.sample(rng),
                self.2.sample(rng),
                self.3.sample(rng),
            )
        }
    }
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Length specifications [`vec()`] accepts: an exact `usize` or a
    /// `Range<usize>`.
    pub trait VecLen {
        /// Draws a length.
        fn sample_len(&self, rng: &mut TestRng) -> usize;
    }

    impl VecLen for usize {
        fn sample_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl VecLen for std::ops::Range<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty length range");
            self.start + rng.index(self.end - self.start)
        }
    }

    /// A strategy producing `Vec`s of `elem`-strategy values.
    pub struct VecStrategy<S, L> {
        elem: S,
        len: L,
    }

    impl<S: Strategy, L: VecLen> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.len.sample_len(rng);
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }

    /// Vectors whose elements come from `elem` and whose length comes from
    /// `len`.
    pub fn vec<S: Strategy, L: VecLen>(elem: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { elem, len }
    }
}

/// Value-selection strategies.
pub mod sample {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Uniform choice among fixed options.
    pub struct Select<T> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            self.options[rng.index(self.options.len())].clone()
        }
    }

    /// Chooses uniformly from `options`.
    ///
    /// # Panics
    /// Panics (at sample time) if `options` is empty.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        Select { options }
    }
}

/// Asserts a property-level condition (panics on failure, like `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts property-level equality (panics on failure, like `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Skips the current case when the assumption does not hold. Expands to a
/// `continue` of the per-case loop, so it is only valid at the top level
/// of a [`proptest!`] body (which is how every suite in this workspace
/// uses it).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
}

/// Declares property tests: each `fn` runs `config.cases` times with its
/// arguments drawn freshly from their strategies.
#[macro_export]
macro_rules! proptest {
    (@funcs $cfg:expr; ) => {};
    (@funcs $cfg:expr;
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut prop_rng = $crate::test_runner::TestRng::for_case(case as u64);
                $(
                    let $arg = $crate::strategy::Strategy::sample(&($strat), &mut prop_rng);
                )+
                $body
            }
        }
        $crate::proptest!(@funcs $cfg; $($rest)*);
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@funcs $cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@funcs $crate::ProptestConfig::default(); $($rest)*);
    };
}

/// The glob import the test modules use.
pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::Strategy;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest, ProptestConfig};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_respect_bounds(
            x in 0.25f64..0.75,
            n in 1usize..8,
            picked in prop::sample::select(vec![2usize, 4, 8]),
        ) {
            prop_assert!((0.25..0.75).contains(&x));
            prop_assert!((1..8).contains(&n));
            prop_assert!(picked == 2 || picked == 4 || picked == 8);
        }

        #[test]
        fn vec_strategy_sizes(
            fixed in crate::collection::vec(-1.0f64..1.0, 8),
            ranged in crate::collection::vec((0.0f64..1.0, 0usize..4), 2..6),
        ) {
            prop_assert_eq!(fixed.len(), 8);
            prop_assert!(fixed.iter().all(|v| (-1.0..1.0).contains(v)));
            prop_assert!((2..6).contains(&ranged.len()));
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut a = crate::test_runner::TestRng::for_case(3);
        let mut b = crate::test_runner::TestRng::for_case(3);
        assert_eq!(a.next_u64(), b.next_u64());
    }
}

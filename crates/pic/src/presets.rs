//! Ready-made configurations for the paper's experiments.

use crate::constants;
use crate::grid::Grid1D;
use crate::init::TwoStreamInit;
use crate::shape::Shape;
use crate::simulation::{PicConfig, Simulation};
use crate::solver::TraditionalSolver;

/// The paper's full-scale two-stream configuration: 64 cells, 1000
/// electrons/cell (64 000 particles), Δt = 0.2, 200 steps, CIC, random
/// loading (§III–IV).
pub fn paper_config(v0: f64, vth: f64, seed: u64) -> PicConfig {
    let grid = Grid1D::paper();
    let n_particles = constants::PAPER_NCELLS * constants::PAPER_PARTICLES_PER_CELL;
    PicConfig {
        grid,
        init: Some(TwoStreamInit::random(v0, vth, n_particles, seed)),
        dt: constants::PAPER_DT,
        n_steps: constants::PAPER_NSTEPS,
        gather_shape: Shape::Cic,
        tracked_modes: vec![1, 2, 3],
    }
}

/// A reduced configuration for tests and smoke runs: the paper's grid and
/// time step but `ppc` particles per cell and `n_steps` steps.
pub fn reduced_config(v0: f64, vth: f64, ppc: usize, n_steps: usize, seed: u64) -> PicConfig {
    let grid = Grid1D::paper();
    let n = constants::PAPER_NCELLS * ppc.max(1);
    PicConfig {
        grid,
        init: Some(TwoStreamInit::random(v0, vth, n, seed)),
        dt: constants::PAPER_DT,
        n_steps,
        gather_shape: Shape::Cic,
        tracked_modes: vec![1, 2, 3],
    }
}

/// A fully assembled traditional-PIC simulation at paper scale.
pub fn paper_simulation(v0: f64, vth: f64, seed: u64) -> Simulation {
    Simulation::new(
        paper_config(v0, vth, seed),
        Box::new(TraditionalSolver::paper_default()),
    )
}

/// The validation run of the paper's Figs. 4–5: `v0 = 0.2`, `vth = 0.025`.
pub fn validation_simulation(seed: u64) -> Simulation {
    paper_simulation(
        constants::PAPER_VALIDATION_V0,
        constants::PAPER_VALIDATION_VTH,
        seed,
    )
}

/// The cold-beam stress test of the paper's Fig. 6: `v0 = 0.4`, `vth = 0`.
pub fn cold_beam_simulation(seed: u64) -> Simulation {
    paper_simulation(constants::PAPER_COLD_BEAM_V0, 0.0, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_matches_section_iii() {
        let cfg = paper_config(0.2, 0.025, 0);
        assert_eq!(cfg.grid.ncells(), 64);
        assert_eq!(cfg.init.as_ref().unwrap().n_particles, 64_000);
        assert!((cfg.dt - 0.2).abs() < 1e-15);
        assert_eq!(cfg.n_steps, 200);
    }

    #[test]
    fn reduced_config_scales_particles() {
        let cfg = reduced_config(0.2, 0.0, 10, 20, 0);
        assert_eq!(cfg.init.as_ref().unwrap().n_particles, 640);
        assert_eq!(cfg.n_steps, 20);
    }

    #[test]
    fn presets_construct_runnable_simulations() {
        let mut sim = Simulation::new(
            reduced_config(0.2, 0.0, 4, 3, 1),
            Box::new(TraditionalSolver::paper_default()),
        );
        sim.run();
        assert_eq!(sim.history().len(), 4);
    }
}

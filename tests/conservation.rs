//! Integration test: conservation properties of the traditional method
//! (the baseline facts behind the paper's Figs. 5–6).

use dlpic_repro::analytics::stats;
use dlpic_repro::pic::presets::{paper_config, reduced_config};
use dlpic_repro::pic::shape::Shape;
use dlpic_repro::pic::simulation::Simulation;
use dlpic_repro::pic::solver::{PoissonKind, TraditionalSolver};

#[test]
fn traditional_pic_conserves_momentum_to_rounding() {
    // The explicit scheme with matching gather/deposit shapes is exactly
    // momentum-conserving — the paper's Fig. 5 bottom panel (flat line).
    for shape in [Shape::Ngp, Shape::Cic, Shape::Tsc] {
        let mut cfg = reduced_config(0.2, 0.025, 250, 100, 5);
        cfg.gather_shape = shape;
        let solver = TraditionalSolver::new(shape, PoissonKind::FiniteDifference, 1.0);
        let mut sim = Simulation::new(cfg, Box::new(solver));
        sim.run();
        let drift = stats::max_drift(&sim.history().momentum);
        assert!(drift < 1e-10, "{shape:?}: momentum drift {drift}");
    }
}

#[test]
fn mismatched_shapes_break_momentum_conservation() {
    // Negative control: gather CIC against deposit NGP exerts a net
    // self-force — momentum conservation must visibly fail. This pins the
    // mechanism (matched shapes), not just the outcome.
    let mut cfg = reduced_config(0.2, 0.025, 250, 100, 5);
    cfg.gather_shape = Shape::Cic;
    let solver = TraditionalSolver::new(Shape::Ngp, PoissonKind::FiniteDifference, 1.0);
    let mut sim = Simulation::new(cfg, Box::new(solver));
    sim.run();
    let drift = stats::max_drift(&sim.history().momentum);
    assert!(drift > 1e-8, "expected visible drift, got {drift}");
}

#[test]
fn total_energy_bounded_through_saturation() {
    // Paper: "the total energy is not conserved with maximum variation of
    // approximately 2%" — explicit PIC loses a little energy at
    // saturation but stays bounded.
    let mut sim = Simulation::new(
        paper_config(0.2, 0.025, 99),
        Box::new(TraditionalSolver::paper_default()),
    );
    sim.run();
    let variation = stats::relative_variation(&sim.history().total);
    assert!(variation < 0.04, "energy variation {variation}");
    // And energy is genuinely exchanged: field energy at saturation is a
    // macroscopic fraction of the total.
    let fe_peak = sim.history().field.iter().copied().fold(f64::MIN, f64::max);
    let te0 = sim.history().total[0];
    assert!(
        fe_peak / te0 > 0.02,
        "no field-energy growth: {fe_peak} / {te0}"
    );
}

#[test]
fn cold_beam_heating_is_ngp_specific() {
    // The Fig. 6 numerical instability: NGP heats a linearly stable cold
    // two-beam system; CIC at the same resolution does not (by t = 40).
    let trend = |shape: Shape| -> f64 {
        let mut cfg = paper_config(0.4, 0.0, 20210706);
        cfg.gather_shape = shape;
        let solver = TraditionalSolver::new(shape, PoissonKind::FiniteDifference, 1.0);
        let mut sim = Simulation::new(cfg, Box::new(solver));
        sim.run();
        let h = &sim.history().total;
        (h.last().unwrap() - h[0]) / h[0]
    };
    let ngp = trend(Shape::Ngp);
    let cic = trend(Shape::Cic);
    assert!(ngp > 0.002, "NGP cold-beam heating missing: {ngp}");
    assert!(cic < ngp, "CIC should heat less than NGP: {cic} vs {ngp}");
}

#[test]
fn quiescent_uniform_plasma_stays_quiescent() {
    // A thermal plasma with no drift: energies flat, no instability.
    let mut sim = Simulation::new(
        reduced_config(0.0, 0.05, 250, 100, 17),
        Box::new(TraditionalSolver::paper_default()),
    );
    sim.run();
    let variation = stats::relative_variation(&sim.history().total);
    assert!(
        variation < 0.05,
        "thermal plasma energy variation {variation}"
    );
    let e1 = sim.history().mode_series(1).unwrap();
    let peak = e1.values.iter().copied().fold(f64::MIN, f64::max);
    let floor = e1.values[..10].iter().copied().fold(f64::MIN, f64::max);
    assert!(peak < floor * 20.0, "spurious growth in thermal plasma");
}

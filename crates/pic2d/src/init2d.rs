//! Two-stream initialization in two dimensions: counter-streaming beams
//! along `x`, uniform in `y` — the configuration whose `(kx, 0)` modes
//! carry exactly the paper's 1-D physics, making the 1-D linear theory the
//! validation reference for the 2-D extension.

use crate::grid2d::Grid2D;
use crate::particles2d::Particles2D;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Particle loading strategy (mirrors the 1-D crate).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Loading2D {
    /// Uniform random positions in the box; Gaussian velocities.
    Random,
    /// Deterministic lattice positions per beam with an optional
    /// sinusoidal displacement along `x` seeding grid mode `mode`.
    Quiet {
        /// Seeded `x` grid mode (0 disables the perturbation).
        mode: usize,
        /// Displacement amplitude as a fraction of `lx`.
        amplitude: f64,
    },
}

/// Builder for two counter-streaming electron beams in a 2-D box.
#[derive(Debug, Clone)]
pub struct TwoStream2DInit {
    /// Beam drift speed along `x`; beams move at `+v0` and `−v0`.
    pub v0: f64,
    /// Thermal spread added to each velocity component.
    pub vth: f64,
    /// Total number of macro-electrons (split evenly between beams).
    pub n_particles: usize,
    /// Loading strategy.
    pub loading: Loading2D,
    /// RNG seed.
    pub seed: u64,
}

impl TwoStream2DInit {
    /// Random loading.
    pub fn random(v0: f64, vth: f64, n_particles: usize, seed: u64) -> Self {
        Self {
            v0,
            vth,
            n_particles,
            loading: Loading2D::Random,
            seed,
        }
    }

    /// Quiet start with a seeded mode-1 perturbation along `x`.
    pub fn quiet(v0: f64, vth: f64, n_particles: usize, amplitude: f64, seed: u64) -> Self {
        Self {
            v0,
            vth,
            n_particles,
            loading: Loading2D::Quiet { mode: 1, amplitude },
            seed,
        }
    }

    /// Builds the particle buffer on the given grid.
    ///
    /// # Panics
    /// Panics if `n_particles` is zero or odd (the beams must balance so
    /// total momentum starts at zero).
    pub fn build(&self, grid: &Grid2D) -> Particles2D {
        assert!(self.n_particles > 0, "need particles");
        assert!(
            self.n_particles.is_multiple_of(2),
            "particle count must be even to balance the two beams"
        );
        let n = self.n_particles;
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut x = Vec::with_capacity(n);
        let mut y = Vec::with_capacity(n);
        let mut vx = Vec::with_capacity(n);
        let mut vy = Vec::with_capacity(n);

        match self.loading {
            Loading2D::Random => {
                for i in 0..n {
                    x.push(rng.gen::<f64>() * grid.lx());
                    y.push(rng.gen::<f64>() * grid.ly());
                    let beam = if i % 2 == 0 { self.v0 } else { -self.v0 };
                    vx.push(beam + self.vth * gaussian(&mut rng));
                    vy.push(self.vth * gaussian(&mut rng));
                }
            }
            Loading2D::Quiet { mode, amplitude } => {
                let per_beam = n / 2;
                // Lattice as close to square as divides per_beam evenly.
                let (cols, rows) = lattice_dims(per_beam);
                let k = grid.mode_wavenumber_x(mode.max(1));
                for b in 0..2 {
                    let sign = if b == 0 { 1.0 } else { -1.0 };
                    for i in 0..per_beam {
                        let (ci, ri) = (i % cols, i / cols);
                        // Offset the second beam half a spacing in both
                        // axes to avoid perfect cancellation artifacts.
                        let x0 = (ci as f64 + 0.25 + 0.5 * b as f64) / cols as f64 * grid.lx();
                        let y0 = (ri as f64 + 0.25 + 0.5 * b as f64) / rows as f64 * grid.ly();
                        let xp = if mode > 0 && amplitude != 0.0 {
                            grid.wrap_x(x0 + amplitude * grid.lx() * (k * x0).sin())
                        } else {
                            x0
                        };
                        x.push(xp);
                        y.push(y0);
                        let (tx, ty) = if self.vth > 0.0 {
                            (self.vth * gaussian(&mut rng), self.vth * gaussian(&mut rng))
                        } else {
                            (0.0, 0.0)
                        };
                        vx.push(sign * self.v0 + tx);
                        vy.push(ty);
                    }
                }
            }
        }
        Particles2D::electrons_normalized(x, y, vx, vy, grid.area())
    }
}

/// Splits `n` into `cols × rows` as square as possible with
/// `cols·rows = n` when `n` has a divisor near √n, otherwise the best
/// divisor pair (always exact: rows = n / cols for the chosen divisor).
fn lattice_dims(n: usize) -> (usize, usize) {
    let mut cols = (n as f64).sqrt().floor() as usize;
    while cols > 1 && !n.is_multiple_of(cols) {
        cols -= 1;
    }
    let cols = cols.max(1);
    (n / cols, cols)
}

/// Standard normal via Box–Muller (same generator shape as the 1-D crate).
fn gaussian(rng: &mut StdRng) -> f64 {
    loop {
        let u1: f64 = rng.gen();
        if u1 > f64::MIN_POSITIVE {
            let u2: f64 = rng.gen();
            return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lattice_dims_are_exact_factorizations() {
        for n in [1usize, 4, 12, 100, 128, 1000, 1024] {
            let (c, r) = lattice_dims(n);
            assert_eq!(c * r, n, "n = {n}: {c}×{r}");
        }
    }

    #[test]
    fn beams_balance_momentum() {
        let grid = Grid2D::default_square();
        for loading in [
            Loading2D::Random,
            Loading2D::Quiet {
                mode: 1,
                amplitude: 1e-3,
            },
        ] {
            let init = TwoStream2DInit {
                v0: 0.2,
                vth: 0.0,
                n_particles: 4096,
                loading,
                seed: 7,
            };
            let p = init.build(&grid);
            let (px, py) = p.total_momentum();
            assert!(px.abs() < 1e-10, "{loading:?}: px = {px}");
            assert!(py.abs() < 1e-10, "{loading:?}: py = {py}");
        }
    }

    #[test]
    fn positions_live_in_box() {
        let grid = Grid2D::default_square();
        let p = TwoStream2DInit::random(0.2, 0.01, 2048, 3).build(&grid);
        assert!(p.x.iter().all(|&x| (0.0..grid.lx()).contains(&x)));
        assert!(p.y.iter().all(|&y| (0.0..grid.ly()).contains(&y)));
    }

    #[test]
    fn cold_quiet_start_has_exact_beam_speeds() {
        let grid = Grid2D::default_square();
        let p = TwoStream2DInit::quiet(0.3, 0.0, 1000, 0.0, 0).build(&grid);
        let fast = p.vx.iter().filter(|v| (**v - 0.3).abs() < 1e-14).count();
        let slow = p.vx.iter().filter(|v| (**v + 0.3).abs() < 1e-14).count();
        assert_eq!(fast, 500);
        assert_eq!(slow, 500);
        assert!(p.vy.iter().all(|v| v.abs() < 1e-14));
    }

    #[test]
    fn thermal_spread_has_roughly_right_width() {
        let grid = Grid2D::default_square();
        let vth = 0.05;
        let p = TwoStream2DInit::random(0.0, vth, 20_000, 11).build(&grid);
        let var_x: f64 = p.vx.iter().map(|v| v * v).sum::<f64>() / p.len() as f64;
        let var_y: f64 = p.vy.iter().map(|v| v * v).sum::<f64>() / p.len() as f64;
        assert!(
            (var_x.sqrt() - vth).abs() < 0.1 * vth,
            "σx = {}",
            var_x.sqrt()
        );
        assert!(
            (var_y.sqrt() - vth).abs() < 0.1 * vth,
            "σy = {}",
            var_y.sqrt()
        );
    }

    #[test]
    fn seeded_builds_are_deterministic() {
        let grid = Grid2D::default_square();
        let a = TwoStream2DInit::random(0.2, 0.01, 512, 42).build(&grid);
        let b = TwoStream2DInit::random(0.2, 0.01, 512, 42).build(&grid);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "even")]
    fn odd_counts_rejected() {
        let grid = Grid2D::default_square();
        let _ = TwoStream2DInit::random(0.2, 0.0, 1001, 0).build(&grid);
    }
}

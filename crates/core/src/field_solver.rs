//! The DL electric-field solver — the second grey box of the paper's
//! Fig. 2.
//!
//! Implements [`dlpic_pic::solver::FieldSolver`], so it drops into the same
//! [`dlpic_pic::simulation::Simulation`] as the traditional solver: the
//! interpolation step and particle mover are untouched, exactly as the
//! paper describes. Each PIC cycle it
//!
//! 1. bins the electron phase space into a 2-D histogram,
//! 2. normalizes it with the *training-set* min/max (paper Eq. 5),
//! 3. runs one network inference,
//! 4. writes the predicted electric field onto the grid nodes.

use crate::builder::InputKind;
use crate::normalize::NormStats;
use crate::phase_space::{bin_phase_space, BinningShape, PhaseGridSpec};
use dlpic_nn::frozen::FrozenModel;
use dlpic_nn::network::{PredictWorkspace, Sequential};
use dlpic_nn::tensor::Tensor;
use dlpic_pic::grid::Grid1D;
use dlpic_pic::particles::Particles;
use dlpic_pic::solver::{FieldSolver, PhasedFieldSolver};
use std::sync::Arc;

/// How a DL solver executes its network: an owned, per-solver
/// [`Sequential`] (training output, CNN fallback) or an `Arc`-shared
/// immutable [`FrozenModel`] so whole fleets read one weight allocation.
/// At f32 the two paths run the same row-stable kernels and are
/// bit-identical.
pub(crate) enum NetExec {
    /// A private network copy (mutable; the historical path).
    Owned(Sequential),
    /// A shared frozen snapshot (read-only; `Arc` clones are cheap).
    Shared(Arc<FrozenModel>),
}

impl NetExec {
    pub(crate) fn predict_batch_into<'w>(
        &mut self,
        input: &Tensor,
        workspace: &'w mut PredictWorkspace,
    ) -> &'w Tensor {
        match self {
            Self::Owned(net) => net.predict_batch_into(input, workspace),
            Self::Shared(model) => model.predict_batch_into(input, workspace),
        }
    }

    /// `(id, bytes)` of the weight allocation: shared solvers report the
    /// `Arc` pointer (equal across all sharers) and the frozen model's
    /// actual storage; owned solvers report their own address (never
    /// deduplicated) and the f32 parameter footprint.
    pub(crate) fn weight_storage(&self) -> (usize, usize) {
        match self {
            Self::Owned(net) => (self as *const Self as usize, net.param_count() * 4),
            Self::Shared(model) => (Arc::as_ptr(model) as usize, model.weight_bytes()),
        }
    }
}

/// A neural-network-backed electric-field solver.
pub struct DlFieldSolver {
    net: NetExec,
    spec: PhaseGridSpec,
    binning: BinningShape,
    norm: NormStats,
    input_kind: InputKind,
    name: &'static str,
    reference_mass: f32,
    scratch: Vec<f32>,
    out_scratch: Vec<f32>,
    input: Tensor,
    workspace: PredictWorkspace,
    /// Output width of the wrapped network, learned at the first
    /// inference (0 = not inferred yet). Every simulation performs its
    /// initial field solve during construction, so the value is known by
    /// the time an external scheduler asks.
    out_cells: usize,
}

impl DlFieldSolver {
    /// Wraps a trained network.
    ///
    /// `norm` must be the statistics of the network's *training* inputs;
    /// `input_kind` must match the architecture (flat for MLP, image for
    /// CNN).
    pub fn new(
        net: Sequential,
        spec: PhaseGridSpec,
        binning: BinningShape,
        norm: NormStats,
        input_kind: InputKind,
        name: &'static str,
    ) -> Self {
        Self::with_exec(NetExec::Owned(net), spec, binning, norm, input_kind, name)
    }

    /// Wraps an `Arc`-shared frozen model: the fleet path, where N
    /// sessions hold N of these solvers over **one** weight allocation.
    /// At [`dlpic_nn::Precision::F32`] this is bit-identical to
    /// [`Self::new`] on the network the model was frozen from.
    pub fn shared(
        model: Arc<FrozenModel>,
        spec: PhaseGridSpec,
        binning: BinningShape,
        norm: NormStats,
        input_kind: InputKind,
        name: &'static str,
    ) -> Self {
        Self::with_exec(
            NetExec::Shared(model),
            spec,
            binning,
            norm,
            input_kind,
            name,
        )
    }

    fn with_exec(
        net: NetExec,
        spec: PhaseGridSpec,
        binning: BinningShape,
        norm: NormStats,
        input_kind: InputKind,
        name: &'static str,
    ) -> Self {
        let scratch = vec![0.0f32; spec.cells()];
        Self {
            net,
            spec,
            binning,
            norm,
            input_kind,
            name,
            reference_mass: 0.0,
            scratch,
            out_scratch: Vec::new(),
            input: Tensor::zeros(&[0]),
            workspace: PredictWorkspace::new(),
            out_cells: 0,
        }
    }

    /// Sets the total histogram mass (= particle count) of the *training*
    /// histograms. When set (> 0), inference histograms are rescaled to
    /// this mass before normalization, so a model trained at one
    /// macro-particle count stays calibrated at any other — a count
    /// histogram is an extensive quantity, and Eq. 5's min–max statistics
    /// only transfer between runs of equal mass.
    pub fn with_reference_mass(mut self, mass: f32) -> Self {
        self.reference_mass = mass;
        self
    }

    /// The phase-grid geometry this solver bins into.
    pub fn spec(&self) -> &PhaseGridSpec {
        &self.spec
    }

    /// The binning order used for the phase-space histogram.
    pub fn binning(&self) -> BinningShape {
        self.binning
    }

    /// Immutable access to the wrapped network, when this solver owns a
    /// private copy (`None` on the `Arc`-shared frozen path).
    pub fn network(&self) -> Option<&Sequential> {
        match &self.net {
            NetExec::Owned(net) => Some(net),
            NetExec::Shared(_) => None,
        }
    }

    /// Mutable access to the owned network (parameter serialization and
    /// benchmark reuse); `None` on the shared frozen path, whose weights
    /// are immutable by construction.
    pub fn network_mut(&mut self) -> Option<&mut Sequential> {
        match &mut self.net {
            NetExec::Owned(net) => Some(net),
            NetExec::Shared(_) => None,
        }
    }

    /// The shared frozen model, when this solver runs on one (`None` on
    /// the owned path).
    pub fn frozen(&self) -> Option<&Arc<FrozenModel>> {
        match &self.net {
            NetExec::Owned(_) => None,
            NetExec::Shared(model) => Some(model),
        }
    }

    /// Completes a solve from a *raw* (unnormalized) histogram binned
    /// elsewhere: rescales it to the training mass, applies the
    /// training-set normalization (paper Eq. 5), runs inference and
    /// writes the field. `total_mass` is the histogram's total count.
    ///
    /// This is the distributed-memory path (crate `dlpic-ddecomp`): each
    /// rank bins its local particles, the summed global histogram arrives
    /// via an all-reduce, and every rank finishes the solve locally with
    /// its replicated network.
    ///
    /// # Panics
    /// Panics if the histogram size mismatches the phase grid or the
    /// network output width mismatches `e`.
    pub fn solve_from_raw_histogram(&mut self, histogram: &[f32], total_mass: f32, e: &mut [f64]) {
        assert_eq!(
            histogram.len(),
            self.spec.cells(),
            "histogram size mismatch"
        );
        self.scratch.clear();
        self.scratch.extend_from_slice(histogram);
        if self.reference_mass > 0.0 && (total_mass - self.reference_mass).abs() > 0.5 {
            let factor = self.reference_mass / total_mass;
            for v in self.scratch.iter_mut() {
                *v *= factor;
            }
        }
        self.norm.apply(&mut self.scratch);
        self.infer_scratch_into(e);
    }

    /// Runs one inference from an already-binned, already-normalized
    /// histogram (the inner step of [`FieldSolver::solve`], exposed for
    /// benchmarking the pure inference cost).
    pub fn predict_from_histogram(&mut self, histogram: &[f32]) -> Vec<f32> {
        assert_eq!(
            histogram.len(),
            self.spec.cells(),
            "histogram size mismatch"
        );
        self.stage_input(histogram, 1);
        self.net
            .predict_batch_into(&self.input, &mut self.workspace)
            .data()
            .to_vec()
    }

    /// Copies `rows` prepared histograms into the reusable input tensor
    /// with the architecture's batch shape.
    fn stage_input(&mut self, data: &[f32], rows: usize) {
        assert_eq!(data.len(), rows * self.spec.cells(), "batch input size");
        match self.input_kind {
            InputKind::Flat => self.input.resize_in_place(&[rows, self.spec.cells()]),
            InputKind::Image => self
                .input
                .resize_in_place(&[rows, 1, self.spec.nv, self.spec.nx]),
        }
        self.input.data_mut().copy_from_slice(data);
    }

    /// Inference + field write from the prepared `self.scratch` — phases
    /// 2–3 on the solver's own buffers (the in-process solo path of
    /// [`FieldSolver::solve`] and the distributed raw-histogram entry).
    fn infer_scratch_into(&mut self, e: &mut [f64]) {
        // `take` sidesteps the scratch-vs-self borrows without copying.
        let scratch = std::mem::take(&mut self.scratch);
        let mut out = std::mem::take(&mut self.out_scratch);
        out.resize(e.len(), 0.0);
        self.infer_batch(&scratch, 1, &mut out);
        self.apply_output(&out, e);
        self.scratch = scratch;
        self.out_scratch = out;
    }
}

impl FieldSolver for DlFieldSolver {
    fn solve(&mut self, particles: &Particles, grid: &Grid1D, e: &mut [f64]) {
        // The same three phases the ensemble scheduler drives externally:
        // prepare (bin + mass-rescale + normalize), one m = 1 inference,
        // apply. Allocation-free once the reusable buffers are warm, and
        // bit-identical to a batched solve of the same state (row-stable
        // GEMM kernels).
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.resize(self.spec.cells(), 0.0);
        self.prepare_input(particles, grid, &mut scratch);
        self.scratch = scratch;
        self.infer_scratch_into(e);
    }

    fn name(&self) -> &'static str {
        self.name
    }

    fn phased(&mut self) -> Option<&mut dyn PhasedFieldSolver> {
        Some(self)
    }

    fn weight_storage(&self) -> Option<(usize, usize)> {
        Some(self.net.weight_storage())
    }
}

impl PhasedFieldSolver for DlFieldSolver {
    fn input_len(&self) -> usize {
        self.spec.cells()
    }

    fn output_len(&self) -> usize {
        assert!(
            self.out_cells > 0,
            "output width is unknown before the first inference"
        );
        self.out_cells
    }

    fn prepare_input(&mut self, particles: &Particles, grid: &Grid1D, dst: &mut [f32]) {
        // 1-2. Bin, rescale to the training mass, and normalize (paper
        // Eq. 5) — everything `solve` does before the network.
        bin_phase_space(particles, grid, &self.spec, self.binning, dst);
        if self.reference_mass > 0.0 {
            let mass = particles.len() as f32;
            if (mass - self.reference_mass).abs() > 0.5 {
                let factor = self.reference_mass / mass;
                for v in dst.iter_mut() {
                    *v *= factor;
                }
            }
        }
        self.norm.apply(dst);
    }

    fn infer_batch(&mut self, input: &[f32], rows: usize, output: &mut [f32]) {
        // 3. One batched inference through the reusable input/activation
        // buffers (ping-pong workspace; allocation-free once warm).
        self.stage_input(input, rows);
        let pred = self
            .net
            .predict_batch_into(&self.input, &mut self.workspace);
        assert_eq!(
            pred.len(),
            output.len(),
            "network output width {} does not match the requested {} values ({rows} rows)",
            pred.len(),
            output.len(),
        );
        output.copy_from_slice(pred.data());
        self.out_cells = pred.len() / rows;
    }

    fn apply_output(&mut self, row: &[f32], e: &mut [f64]) {
        // 4. Write the predicted electric field onto the grid nodes.
        assert_eq!(
            row.len(),
            e.len(),
            "network output width {} does not match grid cells {}",
            row.len(),
            e.len()
        );
        for (dst, &src) in e.iter_mut().zip(row) {
            *dst = src as f64;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ArchSpec;
    use dlpic_pic::init::TwoStreamInit;
    use dlpic_pic::simulation::{two_stream_config, Simulation};

    fn tiny_solver() -> DlFieldSolver {
        let spec = PhaseGridSpec::smoke();
        let arch = ArchSpec::Mlp {
            input: spec.cells(),
            hidden: vec![8],
            output: 64,
        };
        DlFieldSolver::new(
            arch.build(0),
            spec,
            BinningShape::Ngp,
            NormStats::identity(),
            arch.input_kind(),
            "dl-mlp",
        )
    }

    #[test]
    fn solver_writes_finite_field_of_grid_size() {
        let grid = Grid1D::paper();
        let p = TwoStreamInit::random(0.2, 0.0, 2_000, 1).build(&grid);
        let mut solver = tiny_solver();
        let mut e = grid.zeros();
        FieldSolver::solve(&mut solver, &p, &grid, &mut e);
        assert_eq!(e.len(), 64);
        assert!(e.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn plugs_into_the_shared_simulation_loop() {
        let init = TwoStreamInit::random(0.2, 0.0, 2_000, 2);
        let cfg = two_stream_config(init, 5);
        let mut sim = Simulation::new(cfg, Box::new(tiny_solver()));
        sim.run();
        assert_eq!(sim.history().len(), 6);
        assert_eq!(sim.solver_name(), "dl-mlp");
        assert!(sim.efield().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn cnn_input_kind_reshapes_to_image() {
        let spec = PhaseGridSpec::new(16, 16, -0.8, 0.8);
        let arch = ArchSpec::Cnn {
            nv: 16,
            nx: 16,
            channels: (2, 2),
            kernel: 3,
            hidden: vec![16],
            output: 64,
        };
        let mut solver = DlFieldSolver::new(
            arch.build(1),
            spec,
            BinningShape::Cic,
            NormStats::identity(),
            arch.input_kind(),
            "dl-cnn",
        );
        let hist = vec![0.5f32; spec.cells()];
        let out = solver.predict_from_histogram(&hist);
        assert_eq!(out.len(), 64);
    }

    #[test]
    fn shared_frozen_solver_is_bit_identical_to_owned() {
        use dlpic_nn::frozen::Precision;
        let grid = Grid1D::paper();
        let p = TwoStreamInit::random(0.2, 0.01, 2_000, 9).build(&grid);
        let arch = ArchSpec::Mlp {
            input: PhaseGridSpec::smoke().cells(),
            hidden: vec![8],
            output: 64,
        };
        let model = Arc::new(arch.build(4).freeze(Precision::F32).unwrap());
        let mk_shared = |m: Arc<dlpic_nn::FrozenModel>| {
            DlFieldSolver::shared(
                m,
                PhaseGridSpec::smoke(),
                BinningShape::Cic,
                NormStats::identity(),
                arch.input_kind(),
                "dl-mlp",
            )
        };
        let mut owned = DlFieldSolver::new(
            arch.build(4),
            PhaseGridSpec::smoke(),
            BinningShape::Cic,
            NormStats::identity(),
            arch.input_kind(),
            "dl-mlp",
        );
        let mut s1 = mk_shared(Arc::clone(&model));
        let mut s2 = mk_shared(model);

        let mut e_owned = grid.zeros();
        let mut e1 = grid.zeros();
        let mut e2 = grid.zeros();
        FieldSolver::solve(&mut owned, &p, &grid, &mut e_owned);
        FieldSolver::solve(&mut s1, &p, &grid, &mut e1);
        FieldSolver::solve(&mut s2, &p, &grid, &mut e2);
        assert_eq!(e_owned, e1);
        assert_eq!(e1, e2);

        // Sharers report one weight allocation; the owned copy its own.
        let (id1, b1) = FieldSolver::weight_storage(&s1).unwrap();
        let (id2, b2) = FieldSolver::weight_storage(&s2).unwrap();
        let (id0, _) = FieldSolver::weight_storage(&owned).unwrap();
        assert_eq!(id1, id2);
        assert_eq!(b1, b2);
        assert_ne!(id0, id1);
        assert!(owned.network().is_some() && owned.frozen().is_none());
        assert!(s1.network().is_none() && s1.frozen().is_some());
    }

    #[test]
    #[should_panic(expected = "network output width")]
    fn output_width_mismatch_detected() {
        let spec = PhaseGridSpec::smoke();
        let arch = ArchSpec::Mlp {
            input: spec.cells(),
            hidden: vec![4],
            output: 32,
        };
        let mut solver = DlFieldSolver::new(
            arch.build(0),
            spec,
            BinningShape::Ngp,
            NormStats::identity(),
            arch.input_kind(),
            "dl-mlp",
        );
        let grid = Grid1D::paper(); // 64 cells ≠ 32 outputs
        let p = TwoStreamInit::random(0.2, 0.0, 100, 0).build(&grid);
        let mut e = grid.zeros();
        FieldSolver::solve(&mut solver, &p, &grid, &mut e);
    }
}

//! Ensemble throughput: session·steps/sec of a fleet of 1-D DL runs,
//! solo-loop vs batched single-thread vs batched multi-thread.
//!
//! The workload is the amortization case the paper argues for: many
//! simulations sharing one trained field solver. `solo` drives each
//! session to completion one after another (the hand-rolled loop over
//! `Engine::start` the ensemble API replaces) — every field solve is a
//! batch-1 inference. `batched_1t` drives the same fleet through
//! `Ensemble::run_to_end(1)`: per lockstep wave, all sessions' inference
//! inputs are gathered into one `[m, in]` GEMM that hits the 8-row zmm
//! micro-kernels. `batched_mt` adds `core::pool` worker threads
//! (contiguous session chunks, each batching its own cohort).
//!
//! Before timing, the binary verifies on a mini-fleet that ensemble
//! histories are bit-identical to solo runs — the numbers only count if
//! the batching is exact.
//!
//! Usage (same conventions as `step_throughput`):
//!
//! * `ensemble_throughput` — full measurement, JSON printed to stdout.
//! * `--out FILE` — write the raw measurement JSON to `FILE`.
//! * `--write-bench` — measure and write `BENCH_ensemble.json`. Unlike
//!   the step/train benches there is no separate pre-change baseline
//!   file: the solo loop *is* the baseline (it is exactly the
//!   hand-rolled `Engine::start` loop that predates the ensemble API),
//!   so one measurement carries both sides of the comparison.
//! * `--quick` — CI-sized workloads.
//! * `--check` — compare against the committed `BENCH_ensemble.json`:
//!   fails if the *live* batched-vs-solo speedup falls below
//!   `DLPIC_ENSEMBLE_MIN_SPEEDUP` (default 1.5 — the committed target is
//!   ≥ 2×; the gate is machine-relative, so no anchor is involved), or
//!   if an absolute throughput regresses more than
//!   `DLPIC_PERF_MAX_REGRESSION` (default 0.35 — wider than the
//!   step/train gates because the ratio gate is the primary contract
//!   and the anchor drifts ±15% on the dev container) after
//!   calibration-anchor rescaling (3× derate on an AVX-512 ↔ portable
//!   kernel mismatch, as in the train gate).

use dlpic_bench::gate::{calibration_gflops, json_string_after, json_value_after, median};
use dlpic_nn::linalg::simd_level;
use dlpic_repro::core::pool;
use dlpic_repro::core::Scale;
use dlpic_repro::engine::{self, Backend, EnergyHistory, Engine};
use std::time::Instant;

/// Fleet geometry: 16 concurrent runs (two full 8-row zmm tiles per
/// wave), light particle load so the DL inference dominates — the
/// regime the batching targets.
const RUNS: usize = 16;
const PPC: usize = 50;

/// The fleet's specs: a seed fan over two-stream at the *paper* DL
/// scale (4096-bin phase input, 3×1024 hidden — §IV.A): ~25 MB of MLP
/// weights per solve, the memory-bound m = 1 GEMM shape PR 3's notes
/// flagged. Solo runs re-stream the weights every step; a batched wave
/// streams them once for the whole fleet.
fn fleet_specs(steps: usize) -> Vec<engine::ScenarioSpec> {
    (0..RUNS as u64)
        .map(|seed| {
            let mut spec = engine::scenario("two_stream", Scale::Paper).expect("registry");
            spec.ppc = PPC;
            spec.n_steps = steps;
            spec.seed = 100 + seed;
            spec.name = format!("two_stream[seed={}]", spec.seed);
            spec
        })
        .collect()
}

#[derive(Clone, Copy)]
struct FleetResult {
    seconds: f64,
    steps_per_sec: f64,
}

/// Times the hand-rolled loop: one session after another, each stepped
/// to completion (construction excluded — both modes pay it equally).
fn bench_solo(specs: &[engine::ScenarioSpec], reps: usize) -> FleetResult {
    let engine = Engine::new();
    let total_steps: usize = specs.iter().map(|s| s.n_steps).sum();
    let times: Vec<f64> = (0..reps)
        .map(|_| {
            let mut sessions: Vec<_> = specs
                .iter()
                .map(|s| engine.start(s, Backend::Dl1D).expect("start"))
                .collect();
            let t0 = Instant::now();
            for session in &mut sessions {
                session.run_to_end();
            }
            let dt = t0.elapsed().as_secs_f64();
            std::hint::black_box(sessions.last().map(|s| s.steps_done()));
            dt
        })
        .collect();
    let seconds = median(times);
    FleetResult {
        seconds,
        steps_per_sec: total_steps as f64 / seconds,
    }
}

/// Times `Ensemble::run_to_end(threads)` over the same fleet.
fn bench_batched(specs: &[engine::ScenarioSpec], threads: usize, reps: usize) -> FleetResult {
    let engine = Engine::new();
    let total_steps: usize = specs.iter().map(|s| s.n_steps).sum();
    let times: Vec<f64> = (0..reps)
        .map(|_| {
            let mut ensemble = engine
                .start_ensemble(specs, Backend::Dl1D)
                .expect("start ensemble");
            let t0 = Instant::now();
            ensemble.run_to_end(threads);
            let dt = t0.elapsed().as_secs_f64();
            std::hint::black_box(ensemble.is_complete());
            dt
        })
        .collect();
    let seconds = median(times);
    FleetResult {
        seconds,
        steps_per_sec: total_steps as f64 / seconds,
    }
}

/// Asserts (on a mini-fleet) that batched histories reproduce solo runs
/// bit-for-bit before any number is reported.
fn verify_bit_identity() {
    let specs: Vec<engine::ScenarioSpec> = fleet_specs(4).into_iter().take(9).collect();
    let engine = Engine::new();
    let solo: Vec<EnergyHistory> = specs
        .iter()
        .map(|s| {
            Engine::new()
                .run(s, Backend::Dl1D)
                .expect("solo run")
                .history
        })
        .collect();
    let mut ensemble = engine.start_ensemble(&specs, Backend::Dl1D).expect("start");
    ensemble.run_to_end(1);
    for (i, (summary, want)) in ensemble.finish().iter().zip(&solo).enumerate() {
        assert!(
            summary.history == *want,
            "run {i}: batched history differs from solo — batching is not exact"
        );
    }
    eprintln!("bit-identity: batched histories == solo histories (9-run fleet)");
}

struct Measurement {
    calibration: f64,
    simd: &'static str,
    steps: usize,
    threads: usize,
    solo: FleetResult,
    batched_1t: FleetResult,
    batched_mt: FleetResult,
}

fn measure(quick: bool) -> Measurement {
    let (steps, reps) = if quick { (30, 3) } else { (60, 5) };
    let threads = pool::available_threads();
    eprintln!("measuring calibration anchor...");
    let calibration = calibration_gflops(reps);
    verify_bit_identity();
    let specs = fleet_specs(steps);
    eprintln!("measuring solo loop ({RUNS} runs x {steps} steps x {reps} reps)...");
    let solo = bench_solo(&specs, reps);
    eprintln!("measuring batched ensemble, 1 thread...");
    let batched_1t = bench_batched(&specs, 1, reps);
    let batched_mt = if threads > 1 {
        eprintln!("measuring batched ensemble, {threads} threads...");
        bench_batched(&specs, threads, reps)
    } else {
        // One exposed core: a second 1-thread run would only record
        // machine noise as "thread scaling", so reuse the 1-thread
        // numbers (speedup_threads = 1.0 by construction).
        eprintln!("1 core exposed: batched_mt = batched_1t");
        batched_1t
    };
    Measurement {
        calibration,
        simd: simd_level(),
        steps,
        threads,
        solo,
        batched_1t,
        batched_mt,
    }
}

fn measurement_json(m: &Measurement, indent: &str) -> String {
    let fleet = |f: &FleetResult| {
        format!(
            "{{\n{indent}    \"seconds\": {:.4},\n{indent}    \"session_steps_per_sec\": {:.3e}\n{indent}  }}",
            f.seconds, f.steps_per_sec
        )
    };
    format!(
        "{{\n{indent}  \"calibration_gflops\": {:.3},\n{indent}  \"simd\": \"{}\",\n{indent}  \"runs\": {RUNS},\n{indent}  \"steps\": {},\n{indent}  \"ppc\": {PPC},\n{indent}  \"threads\": {},\n{indent}  \"solo\": {},\n{indent}  \"batched_1t\": {},\n{indent}  \"batched_mt\": {},\n{indent}  \"speedup_batched\": {:.3},\n{indent}  \"speedup_threads\": {:.3}\n{indent}}}",
        m.calibration,
        m.simd,
        m.steps,
        m.threads,
        fleet(&m.solo),
        fleet(&m.batched_1t),
        fleet(&m.batched_mt),
        m.batched_1t.steps_per_sec / m.solo.steps_per_sec,
        m.batched_mt.steps_per_sec / m.batched_1t.steps_per_sec,
    )
}

fn print_human(m: &Measurement) {
    println!(
        "solo loop   : {:.0} session·steps/s ({:.3}s)",
        m.solo.steps_per_sec, m.solo.seconds
    );
    println!(
        "batched (1t): {:.0} session·steps/s ({:.3}s)  -> {:.2}x vs solo",
        m.batched_1t.steps_per_sec,
        m.batched_1t.seconds,
        m.batched_1t.steps_per_sec / m.solo.steps_per_sec
    );
    println!(
        "batched ({}t): {:.0} session·steps/s ({:.3}s)  -> {:.2}x vs 1t",
        m.threads,
        m.batched_mt.steps_per_sec,
        m.batched_mt.seconds,
        m.batched_mt.steps_per_sec / m.batched_1t.steps_per_sec
    );
}

fn check(m: &Measurement) -> i32 {
    // Gate 1 (machine-relative, always active): the batched scheduler
    // must actually amortize — live speedup over the solo loop.
    let min_speedup: f64 = std::env::var("DLPIC_ENSEMBLE_MIN_SPEEDUP")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.5);
    let speedup = m.batched_1t.steps_per_sec / m.solo.steps_per_sec;
    println!("batched/solo speedup: {speedup:.2}x (gate: >= {min_speedup:.2}x)");
    let mut failed = speedup < min_speedup;
    if failed {
        println!("FAIL: batched ensemble no longer amortizes the DL inference");
    }

    // Gate 2: absolute throughput vs the committed numbers, rescaled by
    // the calibration anchor.
    let text = match std::fs::read_to_string("BENCH_ensemble.json") {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read BENCH_ensemble.json: {e}");
            return 2;
        }
    };
    let Some(cur_at) = text.find("\"current\"") else {
        eprintln!("BENCH_ensemble.json has no \"current\" section");
        return 2;
    };
    let scale = match json_value_after(&text, cur_at, "calibration_gflops") {
        Some(cal) if cal > 0.0 => {
            let s = m.calibration / cal;
            println!(
                "calibration: committed {cal:.2} GFLOP/s, this machine {:.2} (scale {s:.2}x)",
                m.calibration
            );
            s
        }
        _ => 1.0,
    };
    // The DL-inference workload is f32-kernel-bound while the anchor is
    // f64: across an AVX-512 <-> portable dispatch mismatch the anchor
    // cannot track it, so derate 3x (same policy as the train gate).
    let derate = match json_string_after(&text, cur_at, "simd").as_deref() {
        Some(committed) if committed != m.simd => {
            println!(
                "kernel-path mismatch (committed {committed}, this machine {}): derating \
                 absolute expectations 3x",
                m.simd
            );
            3.0
        }
        _ => 1.0,
    };
    // Wider default than the step/train gates (0.35 vs 0.25): the
    // absolute check is the secondary backstop here (the primary,
    // machine-relative contract is the speedup ratio above), and the
    // f64 anchor swings ~±15% run-to-run on the dev container while the
    // fleet workload is steadier — a 25% gate would flake on anchor
    // drift alone.
    let tolerance: f64 = std::env::var("DLPIC_PERF_MAX_REGRESSION")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.35);
    let committed = |section: &str| {
        let at = text[cur_at..].find(&format!("\"{section}\""))? + cur_at;
        json_value_after(&text, at, "session_steps_per_sec")
    };
    for (name, measured) in [
        ("solo", m.solo.steps_per_sec),
        ("batched_1t", m.batched_1t.steps_per_sec),
    ] {
        let Some(base) = committed(name) else {
            eprintln!("BENCH_ensemble.json has no parsable \"{name}\" section");
            return 2;
        };
        let expected = base * scale / derate;
        let delta = measured / expected - 1.0;
        let verdict = if delta < -tolerance {
            failed = true;
            "REGRESSION"
        } else {
            "ok"
        };
        println!(
            "{name:>10}: expected {expected:.3e}, measured {measured:.3e} ({:+.1}%) {verdict}",
            delta * 100.0
        );
    }
    if failed {
        println!("FAIL: ensemble throughput gate");
        1
    } else {
        println!("PASS: ensemble throughput within tolerance");
        0
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let do_check = args.iter().any(|a| a == "--check");
    let flag_value = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };

    let m = measure(quick);
    print_human(&m);

    if let Some(path) = flag_value("--out") {
        std::fs::write(&path, measurement_json(&m, "") + "\n").expect("write --out file");
        println!("wrote {path}");
    }

    if args.iter().any(|a| a == "--write-bench") {
        let json = format!(
            "{{\n  \"bench\": \"ensemble_throughput\",\n  \"note\": \"single-machine; compare the speedup ratios, not cross-machine absolutes. solo = the hand-rolled Engine::start loop the ensemble API replaces (the pre-ensemble baseline)\",\n  \"current\": {},\n  \"speedup\": {{\n    \"batched_1t_vs_solo\": {:.3},\n    \"batched_mt_vs_1t\": {:.3}\n  }}\n}}\n",
            measurement_json(&m, "  "),
            m.batched_1t.steps_per_sec / m.solo.steps_per_sec,
            m.batched_mt.steps_per_sec / m.batched_1t.steps_per_sec,
        );
        std::fs::write("BENCH_ensemble.json", &json).expect("write BENCH_ensemble.json");
        println!("wrote BENCH_ensemble.json");
    }

    if do_check {
        std::process::exit(check(&m));
    }
}

//! **Ablation studies** of the design choices the paper leaves open or
//! proposes as future work (§VII):
//!
//! * `binning`  — NGP vs CIC phase-space binning ("higher-order
//!   interpolation functions would likely improve the performance of the
//!   DL electric field solver").
//! * `physics`  — plain MSE vs the physics-informed loss (PINN
//!   suggestion): effect on accuracy *and* on DL-PIC momentum drift.
//! * `arch`     — MLP vs CNN vs residual MLP (ResNet suggestion).
//! * `grid`     — phase-grid resolution sweep.
//! * `data`     — PIC-harvested vs Vlasov-harvested training data ("more
//!   accurate training data sets can be obtained by running Vlasov
//!   codes").
//! * `temporal` — single-step vs stacked-history inputs ("neural networks
//!   fit to encode time sequences … might be a better fit").
//!
//! Run: `cargo run -p dlpic-bench --release --bin ablations -- [--scale ...] [--only NAME]`
//!
//! Each study retrains models, so the full suite at `scaled` takes tens of
//! minutes on one core; `--only` selects a single study and the default
//! scale for this binary is `smoke` unless `--scale`/`DLPIC_SCALE` says
//! otherwise.

use dlpic_analytics::series::Table;
use dlpic_analytics::stats;
use dlpic_bench::{out_dir, prepare_data, train_arch, TrainedModel};
use dlpic_core::builder::ArchSpec;
use dlpic_core::normalize::NormStats;
use dlpic_core::phase_space::{BinningShape, PhaseGridSpec};
use dlpic_core::physics_loss::PhysicsInformedMse;
use dlpic_core::presets::Scale;
use dlpic_core::temporal::{harvest_trace, windowed_pairs, TemporalDlSolver};
use dlpic_dataset::generator::{generate, GeneratorConfig};
use dlpic_dataset::spec::SweepSpec;
use dlpic_dataset::split::{shuffle_split, SplitSizes};
use dlpic_dataset::vlasov_bridge::{generate_vlasov, VlasovDatasetConfig};
use dlpic_nn::data::Dataset;
use dlpic_nn::loss::Mse;
use dlpic_nn::optimizer::Adam;
use dlpic_nn::tensor::Tensor;
use dlpic_nn::trainer::{train, TrainConfig};
use dlpic_pic::presets::{paper_config, reduced_config};
use dlpic_pic::simulation::Simulation;

fn parse_args() -> (Scale, Option<String>) {
    let mut scale = Scale::from_env();
    let mut only = None;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                scale = Scale::parse(args.get(i).map(String::as_str).unwrap_or("")).unwrap_or_else(
                    || {
                        eprintln!("unknown scale; use smoke|scaled|paper");
                        std::process::exit(2);
                    },
                );
            }
            "--only" => {
                i += 1;
                only = args.get(i).cloned();
            }
            other => {
                eprintln!("unknown option `{other}` (use --scale, --only)");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    (scale, only)
}

fn run_dl_pic_momentum_drift(model: &TrainedModel) -> f64 {
    let solver = model
        .bundle
        .clone()
        .into_solver()
        .expect("bundle -> solver");
    let mut sim = Simulation::new(paper_config(0.2, 0.025, 99), Box::new(solver));
    sim.run();
    stats::max_drift(&sim.history().momentum)
}

fn ablation_binning(scale: Scale, out: &mut Vec<String>) {
    println!("-- ablation: phase-space binning order (NGP vs CIC) --");
    let mut table = Table::new(&["binning", "MAE set I", "MAE set II", "max err I"]);
    for binning in [BinningShape::Ngp, BinningShape::Cic] {
        let data = prepare_data(scale, binning, false);
        let m = train_arch(
            &scale.mlp_arch(),
            &data,
            &Mse,
            scale.mlp_epochs(),
            scale.learning_rate(),
            0xAB1,
            0,
        );
        table.row(&[
            format!("{binning:?}"),
            format!("{:.5}", m.mae1),
            format!("{:.5}", m.mae2),
            format!("{:.5}", m.max1),
        ]);
    }
    println!("{}", table.render());
    out.push(format!("binning:\n{}", table.to_csv()));
}

fn ablation_physics(scale: Scale, out: &mut Vec<String>) {
    println!("-- ablation: MSE vs physics-informed loss (paper §VII PINN path) --");
    let data = prepare_data(scale, BinningShape::Ngp, false);
    let mut table = Table::new(&["loss", "MAE set I", "MAE set II", "DL-PIC momentum drift"]);
    let mse_model = train_arch(
        &scale.mlp_arch(),
        &data,
        &Mse,
        scale.mlp_epochs(),
        scale.learning_rate(),
        0xAB2,
        0,
    );
    let pi = PhysicsInformedMse::new(5.0, 1.0);
    let pi_model = train_arch(
        &scale.mlp_arch(),
        &data,
        &pi,
        scale.mlp_epochs(),
        scale.learning_rate(),
        0xAB2,
        0,
    );
    for (name, m) in [("mse", &mse_model), ("physics-informed", &pi_model)] {
        table.row(&[
            name.into(),
            format!("{:.5}", m.mae1),
            format!("{:.5}", m.mae2),
            format!("{:.4e}", run_dl_pic_momentum_drift(m)),
        ]);
    }
    println!("{}", table.render());
    println!("(the paper predicts the physics-informed variant improves conservation)\n");
    out.push(format!("physics:\n{}", table.to_csv()));
}

fn ablation_arch(scale: Scale, out: &mut Vec<String>) {
    println!("-- ablation: architecture (MLP vs CNN vs residual MLP) --");
    let data = prepare_data(scale, BinningShape::Ngp, false);
    let mut table = Table::new(&["architecture", "params", "MAE set I", "MAE set II"]);
    let arches: [(&str, ArchSpec, usize); 3] = [
        ("mlp", scale.mlp_arch(), scale.mlp_epochs()),
        ("cnn", scale.cnn_arch(), scale.cnn_epochs()),
        ("resmlp", scale.resmlp_arch(), scale.mlp_epochs()),
    ];
    for (name, arch, epochs) in arches {
        let m = train_arch(&arch, &data, &Mse, epochs, scale.learning_rate(), 0xAB3, 0);
        let params = arch.build(0).param_count();
        table.row(&[
            name.into(),
            params.to_string(),
            format!("{:.5}", m.mae1),
            format!("{:.5}", m.mae2),
        ]);
    }
    println!("{}", table.render());
    out.push(format!("arch:\n{}", table.to_csv()));
}

fn ablation_grid(scale: Scale, out: &mut Vec<String>) {
    println!("-- ablation: phase-grid resolution --");
    let mut table = Table::new(&["phase grid", "MAE set I", "MAE set II"]);
    let sizes: &[usize] = match scale {
        Scale::Smoke => &[8, 16],
        _ => &[16, 32, 64],
    };
    for &n in sizes {
        let spec = PhaseGridSpec::new(n, n, -0.8, 0.8);
        let mut cfg = GeneratorConfig::new(SweepSpec::training_for(scale), spec);
        cfg.ppc = scale.dataset_ppc();
        let full = generate(&cfg);
        let sizes_split = SplitSizes::paper_proportions(full.len());
        let (train, val, test1) = shuffle_split(&full, sizes_split, 0xA11CE);
        let mut cfg2 = GeneratorConfig::new(SweepSpec::test_set_ii_for(scale), spec);
        cfg2.ppc = scale.dataset_ppc();
        let test2 = generate(&cfg2);
        let norm = train.input_norm_stats();
        let data = dlpic_bench::DataBundle {
            train,
            val,
            test1,
            test2,
            norm,
        };
        let arch = ArchSpec::Mlp {
            input: spec.cells(),
            hidden: match scale {
                Scale::Smoke => vec![32, 32],
                _ => vec![256, 256, 256],
            },
            output: 64,
        };
        let m = train_arch(
            &arch,
            &data,
            &Mse,
            scale.mlp_epochs(),
            scale.learning_rate(),
            0xAB4,
            0,
        );
        table.row(&[
            format!("{n}x{n}"),
            format!("{:.5}", m.mae1),
            format!("{:.5}", m.mae2),
        ]);
    }
    println!("{}", table.render());
    out.push(format!("grid:\n{}", table.to_csv()));
}

fn ablation_data(scale: Scale, out: &mut Vec<String>) {
    println!("-- ablation: PIC-noise vs Vlasov (noise-free) training data --");
    // Baseline: the normal PIC-harvested data at this scale.
    let pic_data = prepare_data(scale, BinningShape::Ngp, false);

    // Vlasov-sourced training set over the same sweep and geometry, but
    // evaluated on the SAME PIC test sets — inference always sees PIC
    // states, so that is the distribution that matters.
    let total_mass = (scale.dataset_ppc() * 64) as f64;
    let mut sweep = SweepSpec::training_for(scale);
    sweep.experiments_per_combo = 1; // Vlasov is deterministic
    let vcfg = VlasovDatasetConfig::new(sweep, scale.phase_spec(), total_mass);
    let vlasov_train = generate_vlasov(&vcfg);
    let norm = vlasov_train.input_norm_stats();
    let vlasov_data = dlpic_bench::DataBundle {
        train: vlasov_train,
        val: pic_data.val.clone(),
        test1: pic_data.test1.clone(),
        test2: pic_data.test2.clone(),
        norm,
    };

    let mut table = Table::new(&[
        "training data",
        "samples",
        "MAE set I",
        "MAE set II",
        "DL-PIC momentum drift",
    ]);
    for (name, data) in [
        ("pic (noisy)", &pic_data),
        ("vlasov (noise-free)", &vlasov_data),
    ] {
        let m = train_arch(
            &scale.mlp_arch(),
            data,
            &Mse,
            scale.mlp_epochs(),
            scale.learning_rate(),
            0xAB5,
            0,
        );
        table.row(&[
            name.into(),
            data.train.len().to_string(),
            format!("{:.5}", m.mae1),
            format!("{:.5}", m.mae2),
            format!("{:.4e}", run_dl_pic_momentum_drift(&m)),
        ]);
    }
    println!("{}", table.render());
    println!("(evaluation is on PIC-generated test sets in both rows — the\n inference-time distribution; paper SVII conjectures the Vlasov route)\n");
    out.push(format!("data:\n{}", table.to_csv()));
}

fn ablation_temporal(scale: Scale, out: &mut Vec<String>) {
    println!("-- ablation: time-sequence inputs (paper SVII ResNet conjecture) --");
    let spec = scale.phase_spec();
    let binning = BinningShape::Ngp;
    let ppc = scale.dataset_ppc();
    let (epochs, hidden) = match scale {
        Scale::Smoke => (20, 64),
        Scale::Scaled => (40, 256),
        Scale::Paper => (80, 1024),
    };

    // Time-ordered traces: a small sweep for training, one unseen seed
    // held out for evaluation.
    let mut train_traces = Vec::new();
    for &v0 in &[0.18, 0.2] {
        for seed in 0..2u64 {
            train_traces.push(harvest_trace(
                reduced_config(v0, 0.005, ppc, 200, seed),
                &spec,
                binning,
            ));
        }
    }
    let test_trace = harvest_trace(reduced_config(0.2, 0.005, ppc, 200, 77), &spec, binning);

    let mut table = Table::new(&[
        "window k",
        "params",
        "held-out MAE",
        "DL-PIC momentum drift",
    ]);
    for window in [1usize, 2, 3] {
        let (mut inputs, targets, n) = windowed_pairs(&train_traces, window);
        let norm = NormStats::from_data(&inputs);
        norm.apply(&mut inputs);
        let in_len = window * spec.cells();
        let ds = Dataset::new(
            Tensor::new(inputs, &[n, in_len]),
            Tensor::new(targets, &[n, 64]),
        );
        let arch = ArchSpec::Mlp {
            input: in_len,
            hidden: vec![hidden],
            output: 64,
        };
        let mut net = arch.build(0xC0FE);
        let mut opt = Adam::new(scale.learning_rate());
        let tc = TrainConfig {
            epochs,
            batch_size: 64,
            shuffle_seed: 0xC0FE,
            log_every: 0,
        };
        train(&mut net, &Mse, &mut opt, &ds, None, &tc);
        let params = net.param_count();

        // Held-out MAE on the unseen-seed trace.
        let (mut tin, ttar, tn) = windowed_pairs(std::slice::from_ref(&test_trace), window);
        norm.apply(&mut tin);
        let mut err = 0.0f64;
        for i in 0..tn {
            let x = Tensor::new(tin[i * in_len..(i + 1) * in_len].to_vec(), &[1, in_len]);
            let pred = net.predict(&x).into_data();
            for (p, t) in pred.iter().zip(&ttar[i * 64..(i + 1) * 64]) {
                err += (*p as f64 - *t as f64).abs();
            }
        }
        let mae = err / (tn * 64) as f64;

        // In-loop conservation at the validation parameters.
        let solver = TemporalDlSolver::new(net, spec, binning, norm, window);
        let mut sim = Simulation::new(paper_config(0.2, 0.025, 99), Box::new(solver));
        sim.run();
        let drift = stats::max_drift(&sim.history().momentum);

        table.row(&[
            window.to_string(),
            params.to_string(),
            format!("{mae:.5}"),
            format!("{drift:.2e}"),
        ]);
    }
    println!("{}", table.render());
    println!("(k = 1 is the paper's method; larger k feeds the network history)\n");
    out.push(format!("temporal:\n{}", table.to_csv()));
}

fn main() {
    let (scale, only) = parse_args();
    println!("== ablation studies [{} scale] ==\n", scale.name());
    let mut csv_chunks = Vec::new();
    let want = |name: &str| only.as_deref().map(|o| o == name).unwrap_or(true);
    if want("binning") {
        ablation_binning(scale, &mut csv_chunks);
    }
    if want("physics") {
        ablation_physics(scale, &mut csv_chunks);
    }
    if want("arch") {
        ablation_arch(scale, &mut csv_chunks);
    }
    if want("grid") {
        ablation_grid(scale, &mut csv_chunks);
    }
    if want("data") {
        ablation_data(scale, &mut csv_chunks);
    }
    if want("temporal") {
        ablation_temporal(scale, &mut csv_chunks);
    }
    let path = out_dir().join(format!("ablations-{}.csv", scale.name()));
    std::fs::write(&path, csv_chunks.join("\n")).expect("write CSV");
    println!("wrote {}", path.display());
}

//! Periodic Poisson solvers: `∇²Φ = −ρ/ε₀` (paper Eq. 3, ε₀ = 1).
//!
//! Two interchangeable solvers:
//!
//! * [`FdPoisson`] — the "finite difference numerical scheme that requires
//!   the solution of a linear system" of the paper's §II: second-order
//!   central differences, solved by the Thomas algorithm after gauge
//!   pinning (the periodic Laplacian is singular; we fix Φ₀ = 0, solve the
//!   remaining tridiagonal system, and re-center Φ to zero mean). The
//!   dropped equation is satisfied automatically because the mean-free
//!   right-hand side makes the system compatible.
//! * [`SpectralPoisson`] — exact inversion mode-by-mode via FFT,
//!   `Φ_k = ρ_k/k²`; used as a cross-check and as the fast path in
//!   benchmarks.
//!
//! Both produce a zero-mean potential. Charge neutrality (mean-free ρ) is
//! enforced by subtracting the mean — physically this is the neutralizing
//! ion background, numerically it is the solvability condition.

use crate::grid::Grid1D;
use dlpic_analytics::complex::Complex64;
use dlpic_analytics::dft;

/// A periodic Poisson solver: fills `phi` from `rho` with the convention
/// `∇²Φ = −ρ` and zero-mean gauge.
pub trait PoissonSolver: Send {
    /// Solves for the potential.
    ///
    /// # Panics
    /// Implementations panic if array lengths disagree with the grid.
    fn solve(&mut self, grid: &Grid1D, rho: &[f64], phi: &mut [f64]);

    /// Human-readable solver name (benchmarks, logs).
    fn name(&self) -> &'static str;
}

/// Finite-difference solver (Thomas algorithm with gauge pinning).
#[derive(Debug, Default)]
pub struct FdPoisson {
    // Scratch buffers reused across solves (hot-loop allocation avoidance).
    diag: Vec<f64>,
    rhs: Vec<f64>,
}

impl FdPoisson {
    /// Creates a solver (buffers grow on first use).
    pub fn new() -> Self {
        Self::default()
    }
}

impl PoissonSolver for FdPoisson {
    fn solve(&mut self, grid: &Grid1D, rho: &[f64], phi: &mut [f64]) {
        let n = grid.ncells();
        assert_eq!(rho.len(), n, "rho length mismatch");
        assert_eq!(phi.len(), n, "phi length mismatch");
        assert!(n >= 3, "FD Poisson needs at least 3 nodes");
        let dx2 = grid.dx() * grid.dx();

        // Compatibility: remove the mean (ion background / solvability).
        let mean = rho.iter().sum::<f64>() / n as f64;

        // Unknowns φ_1..φ_{n-1} with φ_0 pinned to 0. The system is
        //   φ_{j-1} - 2 φ_j + φ_{j+1} = -ρ_j dx², j = 1..n-1,
        // where φ_0 = φ_n = 0 enters rows 1 and n-1 as a known.
        let m = n - 1;
        self.diag.clear();
        self.diag.resize(m, -2.0);
        self.rhs.clear();
        self.rhs.extend(rho[1..].iter().map(|r| -(r - mean) * dx2));

        // Thomas forward sweep (off-diagonals are all 1).
        for i in 1..m {
            let w = 1.0 / self.diag[i - 1];
            self.diag[i] -= w;
            let prev = self.rhs[i - 1];
            self.rhs[i] -= w * prev;
        }
        // Back substitution into phi[1..].
        phi[0] = 0.0;
        phi[m] = self.rhs[m - 1] / self.diag[m - 1];
        for i in (0..m - 1).rev() {
            phi[i + 1] = (self.rhs[i] - phi[i + 2]) / self.diag[i];
        }

        // Zero-mean gauge.
        let pmean = phi.iter().sum::<f64>() / n as f64;
        for p in phi.iter_mut() {
            *p -= pmean;
        }
    }

    fn name(&self) -> &'static str {
        "fd-thomas"
    }
}

/// Spectral solver: `Φ_k = ρ_k / k²` (exact continuous inverse).
#[derive(Debug, Default)]
pub struct SpectralPoisson {
    spectrum: Vec<Complex64>,
}

impl SpectralPoisson {
    /// Creates a solver (buffers grow on first use).
    pub fn new() -> Self {
        Self::default()
    }
}

impl PoissonSolver for SpectralPoisson {
    fn solve(&mut self, grid: &Grid1D, rho: &[f64], phi: &mut [f64]) {
        let n = grid.ncells();
        assert_eq!(rho.len(), n, "rho length mismatch");
        assert_eq!(phi.len(), n, "phi length mismatch");
        assert!(
            dft::is_power_of_two(n),
            "spectral solver requires a power-of-two grid, got {n}"
        );

        self.spectrum.clear();
        self.spectrum
            .extend(rho.iter().map(|&r| Complex64::from_real(r)));
        dft::fft_in_place(&mut self.spectrum);

        // Divide by k² mode by mode; k=0 (the mean) is gauged away.
        self.spectrum[0] = Complex64::ZERO;
        let two_pi_over_l = 2.0 * std::f64::consts::PI / grid.length();
        for m in 1..n {
            // Signed mode number: m > n/2 represents negative frequencies.
            let mode = if m <= n / 2 {
                m as f64
            } else {
                m as f64 - n as f64
            };
            let k = two_pi_over_l * mode;
            self.spectrum[m] = self.spectrum[m] / (k * k);
        }

        dft::ifft_in_place(&mut self.spectrum);
        for (p, z) in phi.iter_mut().zip(&self.spectrum) {
            *p = z.re;
        }
    }

    fn name(&self) -> &'static str {
        "spectral-fft"
    }
}

/// Discrete residual of the FD Poisson equation
/// `max_j |(φ_{j-1} − 2φ_j + φ_{j+1})/dx² + (ρ_j − ρ̄)|` — a direct check
/// that a solution satisfies the linear system it came from.
pub fn fd_residual(grid: &Grid1D, rho: &[f64], phi: &[f64]) -> f64 {
    let n = grid.ncells();
    let dx2 = grid.dx() * grid.dx();
    let mean = rho.iter().sum::<f64>() / n as f64;
    let mut worst = 0.0f64;
    for j in 0..n {
        let jm = if j == 0 { n - 1 } else { j - 1 };
        let jp = if j + 1 == n { 0 } else { j + 1 };
        let lap = (phi[jm] - 2.0 * phi[j] + phi[jp]) / dx2;
        worst = worst.max((lap + (rho[j] - mean)).abs());
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// ρ(x) = A·cos(k_m x) has the analytic solution Φ = A·cos(k_m x)/k_m².
    fn cosine_rho(grid: &Grid1D, mode: usize, amp: f64) -> (Vec<f64>, Vec<f64>) {
        let k = grid.mode_wavenumber(mode);
        let n = grid.ncells();
        let rho: Vec<f64> = (0..n)
            .map(|j| amp * (k * grid.node_position(j)).cos())
            .collect();
        let phi: Vec<f64> = (0..n)
            .map(|j| amp * (k * grid.node_position(j)).cos() / (k * k))
            .collect();
        (rho, phi)
    }

    #[test]
    fn spectral_solves_single_mode_exactly() {
        let grid = Grid1D::paper();
        let (rho, expect) = cosine_rho(&grid, 3, 0.8);
        let mut phi = grid.zeros();
        SpectralPoisson::new().solve(&grid, &rho, &mut phi);
        for (a, b) in phi.iter().zip(&expect) {
            assert!((a - b).abs() < 1e-12, "{a} vs {b}");
        }
    }

    #[test]
    fn fd_matches_analytic_with_second_order_error() {
        // FD eigenvalue: (2 - 2cos(k dx))/dx² vs k²; the discrete solution
        // matches the discrete operator exactly, so check the residual and
        // the O(dx²) closeness to the analytic solution.
        let grid = Grid1D::paper();
        let (rho, expect) = cosine_rho(&grid, 1, 1.0);
        let mut phi = grid.zeros();
        FdPoisson::new().solve(&grid, &rho, &mut phi);
        assert!(fd_residual(&grid, &rho, &phi) < 1e-10, "residual");
        let k = grid.mode_wavenumber(1);
        let expected_rel_err = (k * grid.dx()).powi(2) / 12.0; // leading term
        for (a, b) in phi.iter().zip(&expect) {
            let tol = expected_rel_err * b.abs().max(0.1) * 3.0 + 1e-9;
            assert!((a - b).abs() < tol, "{a} vs {b} (tol {tol})");
        }
    }

    #[test]
    fn fd_residual_is_machine_small_for_random_rho() {
        let grid = Grid1D::new(64, 2.0532);
        let rho: Vec<f64> = (0..64)
            .map(|j| ((j * 37 % 19) as f64 - 9.0) / 10.0)
            .collect();
        let mut phi = grid.zeros();
        FdPoisson::new().solve(&grid, &rho, &mut phi);
        assert!(fd_residual(&grid, &rho, &phi) < 1e-9);
    }

    #[test]
    fn both_solvers_produce_zero_mean_phi() {
        let grid = Grid1D::paper();
        let rho: Vec<f64> = (0..64).map(|j| (j as f64 * 0.3).sin() + 0.5).collect();
        let mut fd = grid.zeros();
        let mut sp = grid.zeros();
        FdPoisson::new().solve(&grid, &rho, &mut fd);
        SpectralPoisson::new().solve(&grid, &rho, &mut sp);
        assert!(fd.iter().sum::<f64>().abs() / 64.0 < 1e-12);
        assert!(sp.iter().sum::<f64>().abs() / 64.0 < 1e-12);
    }

    #[test]
    fn uniform_rho_gives_zero_potential() {
        // A uniform charge has no self-consistent periodic field — the
        // neutralizing background exactly cancels it.
        let grid = Grid1D::paper();
        let rho = vec![0.7; 64];
        for solver in [
            &mut FdPoisson::new() as &mut dyn PoissonSolver,
            &mut SpectralPoisson::new() as &mut dyn PoissonSolver,
        ] {
            let mut phi = vec![1.0; 64];
            solver.solve(&grid, &rho, &mut phi);
            for p in &phi {
                assert!(p.abs() < 1e-12, "{}: phi = {p}", solver.name());
            }
        }
    }

    #[test]
    fn spectral_rejects_non_power_of_two() {
        let grid = Grid1D::new(12, 1.0);
        let rho = vec![0.0; 12];
        let mut phi = vec![0.0; 12];
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            SpectralPoisson::new().solve(&grid, &rho, &mut phi);
        }));
        assert!(result.is_err());
    }

    #[test]
    fn fd_works_on_any_grid_size() {
        let grid = Grid1D::new(13, 1.3);
        let (rho, _) = cosine_rho(&grid, 1, 1.0);
        let mut phi = grid.zeros();
        FdPoisson::new().solve(&grid, &rho, &mut phi);
        assert!(fd_residual(&grid, &rho, &phi) < 1e-9);
    }

    #[test]
    fn solver_buffers_are_reusable() {
        // Two consecutive solves with different data must not interfere.
        let grid = Grid1D::paper();
        let (rho1, _) = cosine_rho(&grid, 1, 1.0);
        let (rho2, expect2) = cosine_rho(&grid, 2, 0.5);
        let mut solver = SpectralPoisson::new();
        let mut phi = grid.zeros();
        solver.solve(&grid, &rho1, &mut phi);
        solver.solve(&grid, &rho2, &mut phi);
        for (a, b) in phi.iter().zip(&expect2) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// FD and spectral solvers agree up to the O(k²dx²) difference of
        /// their operators for smooth (low-mode) charge distributions.
        #[test]
        fn solvers_agree_on_smooth_densities(
            a1 in -1.0f64..1.0, a2 in -1.0f64..1.0, a3 in -1.0f64..1.0,
        ) {
            let grid = Grid1D::new(128, 2.0532);
            let n = grid.ncells();
            let rho: Vec<f64> = (0..n)
                .map(|j| {
                    let x = grid.node_position(j);
                    a1 * (grid.mode_wavenumber(1) * x).cos()
                        + a2 * (grid.mode_wavenumber(2) * x).sin()
                        + a3 * (grid.mode_wavenumber(3) * x).cos()
                })
                .collect();
            let mut fd = grid.zeros();
            let mut sp = grid.zeros();
            FdPoisson::new().solve(&grid, &rho, &mut fd);
            SpectralPoisson::new().solve(&grid, &rho, &mut sp);
            let scale = sp.iter().fold(0.0f64, |m, v| m.max(v.abs())).max(1e-9);
            // k3·dx = 3·3.06·0.016 ≈ 0.147 → relative gap ≲ 0.2%.
            for (x, y) in fd.iter().zip(&sp) {
                prop_assert!((x - y).abs() / scale < 5e-3, "{x} vs {y}");
            }
        }

        #[test]
        fn linearity_of_fd_solver(
            rho_a in proptest::collection::vec(-1.0f64..1.0, 32),
            rho_b in proptest::collection::vec(-1.0f64..1.0, 32),
            alpha in -2.0f64..2.0,
        ) {
            let grid = Grid1D::new(32, 1.0);
            let combo: Vec<f64> = rho_a.iter().zip(&rho_b).map(|(a, b)| alpha * a + b).collect();
            let mut solver = FdPoisson::new();
            let mut pa = grid.zeros();
            let mut pb = grid.zeros();
            let mut pc = grid.zeros();
            solver.solve(&grid, &rho_a, &mut pa);
            solver.solve(&grid, &rho_b, &mut pb);
            solver.solve(&grid, &combo, &mut pc);
            for j in 0..32 {
                let expect = alpha * pa[j] + pb[j];
                prop_assert!((pc[j] - expect).abs() < 1e-9);
            }
        }
    }
}

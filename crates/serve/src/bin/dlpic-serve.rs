//! The daemon binary: bind, (optionally) resume a spooled fleet, serve
//! until drained.
//!
//! ```sh
//! dlpic-serve --listen 127.0.0.1:0 --spool /var/spool/dlpic
//! dlpic-serve --resume /var/spool/dlpic          # continue after a crash
//! ```
//!
//! Prints `listening <addr>` on stdout once ready (with the real port
//! when an ephemeral one was requested) — scripts and the integration
//! tests parse that line.
//!
//! `--inject NAME=KIND@STEP[;…]` (KIND `panic` or `nan`) arms
//! deterministic fault injection on runs whose name contains NAME — the
//! containment tests stage one sick run inside a healthy fleet with it.

use dlpic_repro::engine::{Engine, FaultPlan};
use dlpic_serve::server::{ServeConfig, Server};

fn usage() -> ! {
    eprintln!(
        "usage: dlpic-serve [--listen HOST:PORT|unix:PATH] [--spool DIR] [--resume DIR]\n\
         \x20                  [--max-sessions N] [--spool-interval WAVES]\n\
         \x20                  [--memory-budget BYTES[K|M|G]] [--max-queued N]\n\
         \x20                  [--tenant-max-queued N] [--spool-retain N]\n\
         \x20                  [--breaker-threshold N] [--breaker-cooldown SECONDS]\n\
         \x20                  [--inject NAME=KIND@STEP[;...]]  (KIND: panic | nan)"
    );
    std::process::exit(2);
}

/// Parses a byte count with an optional K/M/G suffix (binary multiples).
fn parse_bytes(text: &str) -> Option<usize> {
    let (digits, factor) = match text.as_bytes().last()? {
        b'K' | b'k' => (&text[..text.len() - 1], 1usize << 10),
        b'M' | b'm' => (&text[..text.len() - 1], 1 << 20),
        b'G' | b'g' => (&text[..text.len() - 1], 1 << 30),
        _ => (text, 1),
    };
    digits.parse::<usize>().ok().map(|n| n * factor)
}

fn main() {
    let mut config = ServeConfig::default();
    let mut faults = FaultPlan::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |what: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{what} needs a value");
                usage()
            })
        };
        match arg.as_str() {
            "--listen" => config.listen = value("--listen"),
            "--spool" => config = config.spool(value("--spool")),
            "--resume" => config = config.resume(value("--resume")),
            "--max-sessions" => {
                config.max_sessions = value("--max-sessions").parse().unwrap_or_else(|_| usage())
            }
            "--spool-interval" => {
                config.spool_interval = value("--spool-interval")
                    .parse()
                    .unwrap_or_else(|_| usage())
            }
            "--memory-budget" => {
                config.memory_budget =
                    Some(parse_bytes(&value("--memory-budget")).unwrap_or_else(|| usage()))
            }
            "--max-queued" => {
                config.max_queued = value("--max-queued").parse().unwrap_or_else(|_| usage())
            }
            "--tenant-max-queued" => {
                config.tenant_max_queued = value("--tenant-max-queued")
                    .parse()
                    .unwrap_or_else(|_| usage())
            }
            "--spool-retain" => {
                config.spool_retain =
                    Some(value("--spool-retain").parse().unwrap_or_else(|_| usage()))
            }
            "--breaker-threshold" => {
                config.breaker_threshold = value("--breaker-threshold")
                    .parse()
                    .unwrap_or_else(|_| usage())
            }
            "--breaker-cooldown" => {
                let secs: f64 = value("--breaker-cooldown")
                    .parse()
                    .unwrap_or_else(|_| usage());
                config.breaker_cooldown = std::time::Duration::from_secs_f64(secs.max(0.0));
            }
            "--inject" => {
                faults = FaultPlan::parse(&value("--inject")).unwrap_or_else(|e| {
                    eprintln!("dlpic-serve: {e}");
                    usage()
                })
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument `{other}`");
                usage()
            }
        }
    }
    let server = match Server::start_with_engine(config, Engine::new().with_faults(faults)) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("dlpic-serve: {e}");
            std::process::exit(1);
        }
    };
    println!("listening {}", server.addr());
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    server.wait();
}

//! Overload governance: budgeted admission, bounded backlog with
//! structured load shedding, per-tenant quotas, poison-job circuit
//! breakers, and spool retention. The through-line: an overloaded or
//! poisoned server *degrades* — every rejection is a typed error with
//! retry advice, every accepted job still finishes bit-identical to a
//! solo `Engine::run`, and the scheduler never wedges or OOMs.
//!
//! These tests run at `Scale::Smoke` so they stay fast in debug builds;
//! the release-mode `serve_soak` bench harness drives the same machinery
//! at paper scale.

use std::time::Duration;

use dlpic_repro::core::Scale;
use dlpic_repro::engine::json::Json;
use dlpic_repro::engine::{
    estimate_session, Backend, EnergyHistory, Engine, FaultKind, FaultPlan, SweepSpec,
};
use dlpic_serve::client::{Backoff, Client};
use dlpic_serve::job::JobRequest;
use dlpic_serve::server::{ServeConfig, Server};
use dlpic_serve::ServeError;

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("dlpic-overload-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn history_of(summary: &Json) -> EnergyHistory {
    EnergyHistory::from_json_value(summary.field("history").expect("summary history"))
        .expect("history parses")
}

fn proto_code(err: &ServeError) -> String {
    match err {
        ServeError::Protocol(e) => e.code.clone(),
        other => panic!("expected a protocol rejection, got {other}"),
    }
}

/// One seed's single-run DL job at smoke scale.
fn dl_job(seed: u64, steps: usize) -> JobRequest {
    JobRequest::sweep(
        SweepSpec::grid("two_stream", Scale::Smoke).seeds([seed]),
        Backend::Dl1D,
    )
    .with_steps(steps)
}

/// The tentpole acceptance story: a memory budget sized for ~4 DL
/// sessions plus a small backlog cap, hit with a 32-job burst. Expected:
/// a bounded prefix is accepted, everything else is shed with a
/// structured `overloaded` rejection carrying `retry_after_ms`, the
/// budget occupancy never exceeds its limit at any observed instant, and
/// every accepted job finishes bit-identical to a solo engine run.
#[test]
fn burst_is_shed_structurally_and_accepted_jobs_match_solo() {
    let probe = dl_job(0, 10).expand().expect("expand")[0].clone();
    let est = estimate_session(&probe, Backend::Dl1D).total();
    let budget = est * 4;
    let server = Server::start(
        ServeConfig::default()
            .max_sessions(16)
            .memory_budget(budget)
            .max_queued(6)
            .tenant_max_queued(100),
    )
    .expect("start");
    let mut client = Client::connect(server.addr()).expect("connect");

    // Long enough that no run finishes during the submit loop — the
    // backlog genuinely fills instead of draining between submits.
    let steps = 3000;
    let mut accepted: Vec<(String, u64)> = Vec::new();
    let mut rejected = 0usize;
    for seed in 0..32u64 {
        match client.submit(&dl_job(seed, steps), "burst") {
            Ok((id, runs)) => {
                assert_eq!(runs, 1);
                accepted.push((id, seed));
            }
            Err(err) => {
                assert_eq!(proto_code(&err), "overloaded");
                assert!(
                    err.retry_after_ms().is_some(),
                    "overload rejections must advise a retry interval"
                );
                rejected += 1;
            }
        }
    }
    assert!(!accepted.is_empty(), "the server must accept what fits");
    assert!(
        rejected > 0,
        "a 32-job burst must overflow a 6-slot backlog"
    );
    assert!(
        accepted.len() <= 6 + 16,
        "acceptance is bounded by backlog + budget, got {}",
        accepted.len()
    );

    // While the fleet drains: the budget invariant holds at every
    // observed instant, and active concurrency respects the budget.
    let deadline = std::time::Instant::now() + Duration::from_secs(300);
    loop {
        assert!(std::time::Instant::now() < deadline, "fleet never drained");
        let doc = client.status(None).expect("status");
        let budget_doc = doc.field("budget").expect("budget");
        let active_bytes = budget_doc
            .field("active_bytes")
            .and_then(Json::as_usize)
            .expect("active_bytes");
        let limit = budget_doc
            .field("limit_bytes")
            .and_then(Json::as_usize)
            .expect("limit_bytes");
        assert_eq!(limit, budget);
        assert!(
            active_bytes <= limit,
            "budget overshoot: {active_bytes} > {limit}"
        );
        let active_runs = doc
            .field("active_runs")
            .and_then(Json::as_usize)
            .expect("active_runs");
        assert!(
            active_runs <= 4,
            "budget admits at most 4, saw {active_runs}"
        );
        let queued = doc
            .field("queued_runs")
            .and_then(Json::as_usize)
            .expect("queued_runs");
        assert!(queued <= 6, "backlog cap breached: {queued}");
        if active_runs == 0 && queued == 0 {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }

    // Per-tenant backlog accounting surfaced the burst tenant.
    let doc = client.status(None).expect("status");
    let backlog = doc
        .field("backlog")
        .and_then(Json::as_arr)
        .expect("backlog");
    assert!(backlog
        .iter()
        .any(|b| b.field("tenant").and_then(Json::as_str) == Ok("burst")));

    // Wave latency histogram populated; p99 is a positive upper bound.
    let latency = doc.field("wave_latency").expect("wave_latency");
    assert!(latency.field("count").and_then(Json::as_usize).unwrap() > 0);
    assert!(latency.field("p99_ms").and_then(Json::as_f64).unwrap() > 0.0);

    // Every accepted job is bit-identical to its solo run.
    for (id, seed) in &accepted {
        let results = client.wait_for(id, Duration::from_millis(2)).expect("wait");
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].state, "done", "{id}");
        let spec = dl_job(*seed, steps).expand().expect("expand")[0].clone();
        let solo = Engine::new().run(&spec, Backend::Dl1D).expect("solo");
        assert_eq!(
            history_of(&results[0].summary),
            solo.history,
            "seed {seed}: served history differs from solo"
        );
    }

    client.drain().expect("drain");
    server.wait();
}

/// A single run whose estimate exceeds the whole budget can never be
/// admitted: permanent `quota-exceeded`, no retry advice.
#[test]
fn run_larger_than_the_whole_budget_is_permanently_rejected() {
    let server = Server::start(ServeConfig::default().memory_budget(1)).expect("start");
    let mut client = Client::connect(server.addr()).expect("connect");
    let err = client
        .submit(&dl_job(1, 10), "alice")
        .expect_err("1-byte budget fits nothing");
    assert_eq!(proto_code(&err), "quota-exceeded");
    assert!(
        err.retry_after_ms().is_none(),
        "a permanent rejection must not advise retrying"
    );
    client.drain().expect("drain");
    server.wait();
}

/// Tenant quotas isolate noisy neighbours: one tenant filling its queue
/// gets `quota-exceeded` while another tenant still submits freely.
#[test]
fn tenant_quota_rejects_the_hog_but_not_the_neighbour() {
    let server = Server::start(
        ServeConfig::default()
            .max_sessions(1)
            .max_queued(100)
            .tenant_max_queued(2),
    )
    .expect("start");
    let mut client = Client::connect(server.addr()).expect("connect");

    // The blocker occupies the only session, so later submissions stay
    // queued and the quota arithmetic is deterministic.
    let blocker = JobRequest::sweep(
        SweepSpec::grid("two_stream", Scale::Smoke).seeds([99]),
        Backend::Traditional1D,
    )
    .with_steps(500_000);
    let (blocker_id, _) = client.submit(&blocker, "blocker").expect("blocker");

    let (a1, _) = client.submit(&dl_job(1, 8), "hog").expect("first fits");
    let (a2, _) = client.submit(&dl_job(2, 8), "hog").expect("second fits");
    let err = client
        .submit(&dl_job(3, 8), "hog")
        .expect_err("third breaches the tenant quota");
    assert_eq!(proto_code(&err), "quota-exceeded");
    assert!(err.retry_after_ms().is_some());

    let (b1, _) = client
        .submit(&dl_job(4, 8), "neighbour")
        .expect("the neighbour tenant is unaffected");

    for id in [&blocker_id, &a1, &a2, &b1] {
        client.cancel(id).expect("cancel");
    }
    client.drain().expect("drain");
    server.wait();
}

/// The circuit breaker quarantines a poison spec: after K consecutive
/// failures, resubmissions are rejected `circuit-open` with retry
/// advice, health reports the open circuit, and healthy specs keep
/// running to bit-identical completion throughout.
#[test]
fn breaker_quarantines_poison_spec_after_k_failures() {
    let plan = FaultPlan::new().rule("seed=13", FaultKind::Panic, 1);
    let server = Server::start_with_engine(
        ServeConfig::default().breaker(2, Duration::from_secs(600)),
        Engine::new().with_faults(plan),
    )
    .expect("start");
    let mut client = Client::connect(server.addr()).expect("connect");

    // K = 2 consecutive failures of the same spec fingerprint.
    for attempt in 0..2 {
        let (id, _) = client
            .submit(&dl_job(13, 40), "mallory")
            .unwrap_or_else(|e| panic!("attempt {attempt} should be accepted: {e}"));
        client
            .wait_for(&id, Duration::from_millis(2))
            .expect("wait");
        let doc = client.status(Some(&id)).expect("status");
        let state = doc.field("jobs").and_then(Json::as_arr).expect("jobs")[0]
            .field("runs")
            .and_then(Json::as_arr)
            .expect("runs")[0]
            .field("state")
            .and_then(Json::as_str)
            .expect("state")
            .to_string();
        assert_eq!(state, "failed", "attempt {attempt}");
    }

    // The third submit of the same spec is shed at the door.
    let err = client
        .submit(&dl_job(13, 40), "mallory")
        .expect_err("the circuit must be open");
    assert_eq!(proto_code(&err), "circuit-open");
    assert!(
        err.retry_after_ms().is_some(),
        "circuit-open carries the remaining cooldown"
    );

    // Health reports the quarantine.
    let health = client.health().expect("health");
    assert_eq!(health.field("live"), Ok(&Json::Bool(true)));
    assert_eq!(health.field("ready"), Ok(&Json::Bool(true)));
    assert_eq!(
        health.field("circuits_open").and_then(Json::as_usize),
        Ok(1)
    );
    assert!(
        health
            .field("breaker_trips")
            .and_then(Json::as_usize)
            .unwrap()
            >= 1
    );

    // A healthy spec — different fingerprint — is unaffected and exact.
    let (id, _) = client.submit(&dl_job(1, 40), "alice").expect("healthy");
    let results = client
        .wait_for(&id, Duration::from_millis(2))
        .expect("wait");
    assert_eq!(results[0].state, "done");
    let spec = dl_job(1, 40).expand().expect("expand")[0].clone();
    let solo = Engine::new().run(&spec, Backend::Dl1D).expect("solo");
    assert_eq!(history_of(&results[0].summary), solo.history);

    client.drain().expect("drain");
    server.wait();
}

/// Half-open behaviour: after the cooldown one trial run is admitted;
/// its failure re-opens the circuit immediately. Runs already queued
/// when the circuit opens are shed at the admission gate without ever
/// getting a session.
#[test]
fn breaker_half_opens_after_cooldown_and_sheds_queued_runs() {
    let plan = FaultPlan::new().rule("seed=13", FaultKind::Panic, 1);
    let server = Server::start_with_engine(
        ServeConfig::default()
            .max_sessions(1)
            .breaker(1, Duration::from_secs(2)),
        Engine::new().with_faults(plan),
    )
    .expect("start");
    let mut client = Client::connect(server.addr()).expect("connect");

    // A blocker pins the only session so both poison copies are accepted
    // while the circuit is still closed and sit queued together. Once
    // released: the first poison run fails and trips the breaker
    // (threshold 1); the second — same fingerprint, already queued — is
    // shed at the admission gate with a `circuit-open` run failure.
    let blocker = JobRequest::sweep(
        SweepSpec::grid("two_stream", Scale::Smoke).seeds([99]),
        Backend::Traditional1D,
    )
    .with_steps(500_000);
    let (blocker_id, _) = client.submit(&blocker, "blocker").expect("blocker");
    let (first, _) = client.submit(&dl_job(13, 40), "mallory").expect("first");
    let (second, _) = client.submit(&dl_job(13, 40), "mallory").expect("second");
    client.cancel(&blocker_id).expect("release the session");
    for id in [&first, &second] {
        client.wait_for(id, Duration::from_millis(2)).expect("wait");
    }
    let doc = client.status(Some(&second)).expect("status");
    let run = doc.field("jobs").and_then(Json::as_arr).expect("jobs")[0]
        .field("runs")
        .and_then(Json::as_arr)
        .expect("runs")[0]
        .clone();
    assert_eq!(run.field("state").and_then(Json::as_str), Ok("failed"));
    let error = run.field("error").and_then(Json::as_str).expect("error");
    assert!(
        error.contains("circuit-open"),
        "queued poison must be shed by the breaker, got: {error}"
    );

    // Submitting while open is rejected …
    let err = client
        .submit(&dl_job(13, 40), "mallory")
        .expect_err("open circuit");
    assert_eq!(proto_code(&err), "circuit-open");

    // … but after the cooldown one trial is admitted (half-open), and
    // its failure re-opens the circuit at once.
    std::thread::sleep(Duration::from_millis(2500));
    let (trial, _) = client
        .submit(&dl_job(13, 40), "mallory")
        .expect("half-open admits one trial");
    client
        .wait_for(&trial, Duration::from_millis(2))
        .expect("wait");
    let err = client
        .submit(&dl_job(13, 40), "mallory")
        .expect_err("re-opened after the trial failed");
    assert_eq!(proto_code(&err), "circuit-open");

    client.drain().expect("drain");
    server.wait();
}

/// `submit_keyed_retry` cooperates with shedding: it sleeps out the
/// advised interval (plus bounded jitter) and lands the job once
/// capacity frees up.
#[test]
fn cooperative_retry_lands_after_backlog_drains() {
    let server = Server::start(
        ServeConfig::default()
            .max_sessions(1)
            .max_queued(1)
            .tenant_max_queued(100),
    )
    .expect("start");
    let mut client = Client::connect(server.addr()).expect("connect");

    // Fill the slot and the 1-deep queue with short jobs, then retry a
    // third into the full backlog; it must land once the queue drains.
    let (first, _) = client
        .submit(&dl_job(1, 60), "alice")
        .expect("fills the session");
    let (second, _) = client
        .submit(&dl_job(2, 60), "alice")
        .expect("fills the queue");
    let (third, _, deduped) = client
        .submit_keyed_retry(
            &dl_job(3, 8),
            "alice",
            Some("retry-1"),
            Backoff::attempts(40),
        )
        .expect("cooperative retry must eventually land");
    assert!(!deduped);

    for id in [&first, &second, &third] {
        let results = client.wait_for(id, Duration::from_millis(2)).expect("wait");
        assert_eq!(results[0].state, "done", "{id}");
    }
    client.drain().expect("drain");
    server.wait();
}

/// Spool retention: `prune` keeps the newest N finished jobs per tenant,
/// garbage-collects the evicted spool directories, and a pruned job's
/// idempotency key is forgotten (a resubmit schedules fresh work).
#[test]
fn prune_retains_newest_finished_jobs_and_gcs_the_spool() {
    let spool = temp_dir("prune");
    let server = Server::start(ServeConfig::default().spool(&spool)).expect("start");
    let mut client = Client::connect(server.addr()).expect("connect");

    let mut ids = Vec::new();
    for seed in 0..3u64 {
        let (id, _, _) = client
            .submit_keyed(&dl_job(seed, 6), "alice", Some(&format!("k{seed}")))
            .expect("submit");
        client
            .wait_for(&id, Duration::from_millis(2))
            .expect("wait");
        ids.push(id);
    }
    let (bob_id, _) = client.submit(&dl_job(9, 6), "bob").expect("bob");
    client
        .wait_for(&bob_id, Duration::from_millis(2))
        .expect("wait");

    // Keep the newest finished job per tenant: alice sheds 2, bob keeps 1.
    let pruned = client.prune(Some(1)).expect("prune");
    assert_eq!(pruned, 2);
    let doc = client.status(None).expect("status");
    let remaining: Vec<String> = doc
        .field("jobs")
        .and_then(Json::as_arr)
        .expect("jobs")
        .iter()
        .map(|j| j.field("job").and_then(Json::as_str).unwrap().to_string())
        .collect();
    assert_eq!(remaining, vec![ids[2].clone(), bob_id.clone()]);

    // The spool garbage-collected the evicted job directories.
    for id in &ids[..2] {
        assert!(!spool.join(id).exists(), "{id} must be GC'd from the spool");
    }
    assert!(spool.join(&ids[2]).exists());
    assert!(spool.join(&bob_id).exists());

    // A pruned job's key is forgotten: the resubmit is fresh, not deduped.
    let (refreshed, _, deduped) = client
        .submit_keyed(&dl_job(0, 6), "alice", Some("k0"))
        .expect("resubmit");
    assert!(!deduped, "retention evicts idempotency keys with the job");
    assert!(!ids.contains(&refreshed));
    client
        .wait_for(&refreshed, Duration::from_millis(2))
        .expect("wait");

    client.drain().expect("drain");
    server.wait();
    let _ = std::fs::remove_dir_all(&spool);
}

/// Automatic retention via `--spool-retain`: the scheduler prunes on its
/// own as jobs finish; no operator call needed. `prune` with neither a
/// `keep` nor a configured retention is a structured error.
#[test]
fn spool_retain_auto_prunes_and_unconfigured_prune_is_rejected() {
    let spool = temp_dir("retain");
    let server =
        Server::start(ServeConfig::default().spool(&spool).spool_retain(1)).expect("start");
    let mut client = Client::connect(server.addr()).expect("connect");

    for seed in 0..3u64 {
        let (id, _) = client.submit(&dl_job(seed, 6), "alice").expect("submit");
        client
            .wait_for(&id, Duration::from_millis(2))
            .expect("wait");
    }
    // The scheduler prunes on its next pass; poll briefly.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let doc = client.status(None).expect("status");
        let n = doc
            .field("jobs")
            .and_then(Json::as_arr)
            .expect("jobs")
            .len();
        if n == 1 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "auto-retention never pruned; {n} jobs remain"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    client.drain().expect("drain");
    server.wait();
    let _ = std::fs::remove_dir_all(&spool);

    // Without --spool-retain, prune requires an explicit keep.
    let server = Server::start(ServeConfig::default()).expect("start");
    let mut client = Client::connect(server.addr()).expect("connect");
    let err = client.prune(None).expect_err("no retention configured");
    match err {
        ServeError::Protocol(e) => assert_eq!(e.code, "bad-request"),
        other => panic!("expected protocol error, got {other}"),
    }
    client.drain().expect("drain");
    server.wait();
}

/// Cohort-aware budget admission: three DL runs of the same (scenario,
/// scale) read one shared untrained weight allocation, so a budget sized
/// for **one** weight copy plus three private estimates admits all three
/// concurrently — per-copy accounting (three full estimates) would not
/// fit. The budget doc reports the sharing: one distinct model, its
/// weights charged once, and the saved bytes; occupancy never exceeds
/// the limit at any observed instant.
#[test]
fn cohort_budget_charges_shared_weights_once() {
    // The probe must carry the same step count as the submitted job —
    // the history estimate scales with steps.
    let probe = dl_job(0, 3000).expand().expect("expand")[0].clone();
    let est = estimate_session(&probe, Backend::Dl1D);
    let (total, weights) = (est.total(), est.shared_weight_bytes);
    assert!(weights > 0, "a DL session must carry weight bytes");
    let budget = 3 * (total - weights) + weights;
    assert!(
        3 * total > budget,
        "per-copy accounting must overflow this budget, or the test proves nothing"
    );
    let server = Server::start(
        ServeConfig::default()
            .max_sessions(3)
            .memory_budget(budget)
            .max_queued(100)
            .tenant_max_queued(100),
    )
    .expect("start");
    let mut client = Client::connect(server.addr()).expect("connect");
    let job = JobRequest::sweep(
        SweepSpec::grid("two_stream", Scale::Smoke).seeds([1, 2, 3]),
        Backend::Dl1D,
    )
    .with_steps(3000);
    let (id, runs) = client.submit(&job, "cohort").expect("submit");
    assert_eq!(runs, 3);

    let deadline = std::time::Instant::now() + Duration::from_secs(60);
    loop {
        assert!(
            std::time::Instant::now() < deadline,
            "three cohort members never went active together — weight \
             sharing is not being credited at admission"
        );
        let doc = client.status(None).expect("status");
        let budget_doc = doc.field("budget").expect("budget");
        let active_bytes = budget_doc
            .field("active_bytes")
            .and_then(Json::as_usize)
            .expect("active_bytes");
        assert!(
            active_bytes <= budget,
            "budget overshoot: {active_bytes} > {budget}"
        );
        let active_runs = doc
            .field("active_runs")
            .and_then(Json::as_usize)
            .expect("active_runs");
        if active_runs == 3 {
            // Occupancy is exactly three private shares plus one weight
            // copy, and the breakdown names the sharing.
            assert_eq!(active_bytes, budget);
            assert_eq!(
                budget_doc
                    .field("distinct_models")
                    .and_then(Json::as_usize)
                    .expect("distinct_models"),
                1
            );
            assert_eq!(
                budget_doc
                    .field("active_weight_bytes")
                    .and_then(Json::as_usize)
                    .expect("active_weight_bytes"),
                weights
            );
            assert_eq!(
                budget_doc
                    .field("weight_sharing_saved_bytes")
                    .and_then(Json::as_usize)
                    .expect("weight_sharing_saved_bytes"),
                2 * weights
            );
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    client.cancel(&id).expect("cancel");
    client.drain().expect("drain");
    server.wait();
}

//! Malformed-input hardening: every hostile line in the table below must
//! come back as a structured `{"ok":false,"error":{code,message}}` on the
//! same connection, after which that connection — and the server — keep
//! serving. No panics, no wedged framing, no dropped daemon.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

use dlpic_repro::core::Scale;
use dlpic_repro::engine::json::Json;
use dlpic_repro::engine::{self, Backend};
use dlpic_serve::job::JobRequest;
use dlpic_serve::protocol::MAX_LINE;
use dlpic_serve::server::{ServeConfig, Server};

fn send_raw(stream: &mut TcpStream, reader: &mut BufReader<TcpStream>, line: &[u8]) -> Json {
    stream.write_all(line).expect("write");
    stream.write_all(b"\n").expect("newline");
    stream.flush().expect("flush");
    let mut response = String::new();
    reader.read_line(&mut response).expect("read response");
    Json::parse(response.trim_end()).expect("response is JSON")
}

fn error_code(doc: &Json) -> String {
    assert!(
        matches!(doc.get("ok"), Some(Json::Bool(false))),
        "expected a rejection, got {}",
        doc.to_compact()
    );
    let error = doc.field("error").expect("error object");
    // Structured: machine-readable code plus human-readable message.
    assert!(error.field("message").and_then(Json::as_str).is_ok());
    error
        .field("code")
        .and_then(Json::as_str)
        .expect("error code")
        .to_string()
}

#[test]
fn hostile_lines_get_structured_errors_and_the_server_keeps_serving() {
    let server = Server::start(ServeConfig::default()).expect("start");
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));

    let oversized = format!(r#"{{"op":"status","job":"{}"}}"#, "x".repeat(MAX_LINE));
    let cases: &[(&str, &[u8])] = &[
        // Unparseable JSON.
        ("bad-json", b"{\"op\": \"status\","),
        ("bad-json", b"not json at all"),
        // Parseable, but not an object.
        ("bad-request", b"[1,2,3]"),
        ("bad-request", b"42"),
        // Missing / unknown op.
        ("missing-field", b"{}"),
        ("unknown-op", br#"{"op":"launch-missiles"}"#),
        // A misspelled field is an error, not a silent no-op.
        ("unknown-field", br#"{"op":"status","jbo":"job-0000"}"#),
        ("unknown-field", br#"{"op":"drain","force":true}"#),
        // Fields of the wrong shape.
        ("missing-field", br#"{"op":"watch"}"#),
        ("bad-json", br#"{"op":"cancel","job":7}"#),
        // A line past the 1 MiB cap (drained, so framing survives).
        ("oversized", oversized.as_bytes()),
        // Non-UTF-8 bytes in an otherwise framed line.
        ("bad-utf8", &[0x7b, 0xff, 0xfe, 0x7d]),
        // Job-level strictness: unknown job field, bad backend, both
        // sources, no source.
        (
            "unknown-field",
            br#"{"op":"submit","job":{"backend":"dl-1d","warp":1}}"#,
        ),
        (
            "bad-job",
            br#"{"op":"submit","job":{"backend":"quantum-9d","scenario":{}}}"#,
        ),
        ("bad-job", br#"{"op":"submit","job":{"backend":"dl-1d"}}"#),
        // Unknown job ids on the data ops.
        ("unknown-job", br#"{"op":"status","job":"job-9999"}"#),
        ("unknown-job", br#"{"op":"result","job":"job-9999"}"#),
        ("unknown-job", br#"{"op":"cancel","job":"job-9999"}"#),
        // The idempotency key is submit-only and must be non-empty.
        ("unknown-field", br#"{"op":"status","job_key":"k"}"#),
        // The governance ops are just as strict as the data ops.
        ("unknown-field", br#"{"op":"health","verbose":true}"#),
        ("bad-json", br#"{"op":"prune","keep":"all"}"#),
        ("bad-json", br#"{"op":"prune","keep":-1}"#),
        // Watch backpressure knobs are validated before the job lookup.
        (
            "bad-request",
            br#"{"op":"watch","job":"job-0000","policy":"lifo"}"#,
        ),
        (
            "bad-request",
            br#"{"op":"watch","job":"job-0000","policy":"decimate:0"}"#,
        ),
        (
            "bad-request",
            br#"{"op":"watch","job":"job-0000","queue":0}"#,
        ),
    ];

    for (want, line) in cases {
        let doc = send_raw(&mut stream, &mut reader, line);
        let got = error_code(&doc);
        assert_eq!(
            &got,
            want,
            "line {:?} -> {}",
            String::from_utf8_lossy(line),
            doc.to_compact()
        );
        // The same connection still answers a well-formed request:
        // framing survived every rejection above.
        let doc = send_raw(&mut stream, &mut reader, br#"{"op":"status"}"#);
        assert!(
            matches!(doc.get("ok"), Some(Json::Bool(true))),
            "{}",
            doc.to_compact()
        );
    }

    // An unknown-job watch answers with an error (not a hung stream).
    let doc = send_raw(&mut stream, &mut reader, br#"{"op":"watch","job":"nope"}"#);
    assert_eq!(error_code(&doc), "unknown-job");

    // Job-key and deadline strictness against an otherwise valid job
    // document: each hostile knob is the only bad thing on the line.
    let mut spec = engine::scenario("two_stream", Scale::Smoke).expect("registry");
    spec.n_steps = 4;
    let job = JobRequest::scenario(spec, Backend::Traditional1D);
    let job_json = job.to_json_value().to_compact();
    let hostile_knobs: &[(&str, String)] = &[
        (
            "bad-request",
            format!(r#"{{"op":"submit","job":{job_json},"job_key":""}}"#),
        ),
        (
            "bad-json",
            format!(r#"{{"op":"submit","job":{job_json},"job_key":7}}"#),
        ),
        (
            "bad-job",
            format!(
                r#"{{"op":"submit","job":{}}}"#,
                job.clone()
                    .with_deadline_steps(0)
                    .to_json_value()
                    .to_compact()
            ),
        ),
        (
            "bad-job",
            format!(
                r#"{{"op":"submit","job":{}}}"#,
                job.clone()
                    .with_deadline_seconds(-1.0)
                    .to_json_value()
                    .to_compact()
            ),
        ),
    ];
    for (want, line) in hostile_knobs {
        let doc = send_raw(&mut stream, &mut reader, line.as_bytes());
        assert_eq!(
            &error_code(&doc),
            want,
            "line {line} -> {}",
            doc.to_compact()
        );
    }

    // A well-formed keyed submit, replayed on the same connection: the
    // second submit is absorbed and points at the first job.
    let keyed = format!(r#"{{"op":"submit","job":{job_json},"job_key":"replay-1"}}"#);
    let first = send_raw(&mut stream, &mut reader, keyed.as_bytes());
    assert!(
        matches!(first.get("ok"), Some(Json::Bool(true))),
        "{}",
        first.to_compact()
    );
    let id = first
        .field("job")
        .and_then(Json::as_str)
        .expect("job id")
        .to_string();
    let second = send_raw(&mut stream, &mut reader, keyed.as_bytes());
    assert_eq!(second.field("job").and_then(Json::as_str), Ok(&*id));
    assert_eq!(second.field("deduped"), Ok(&Json::Bool(true)));

    // A peer that disconnects mid-line doesn't take the server down.
    {
        let mut partial = TcpStream::connect(server.addr()).expect("connect");
        partial
            .write_all(br#"{"op":"status""#)
            .expect("partial write");
        drop(partial);
    }
    std::thread::sleep(std::time::Duration::from_millis(50));
    let doc = send_raw(&mut stream, &mut reader, br#"{"op":"status"}"#);
    assert!(
        matches!(doc.get("ok"), Some(Json::Bool(true))),
        "{}",
        doc.to_compact()
    );

    // Drain still works — the daemon never wedged.
    let doc = send_raw(&mut stream, &mut reader, br#"{"op":"drain"}"#);
    assert!(
        matches!(doc.get("ok"), Some(Json::Bool(true))),
        "{}",
        doc.to_compact()
    );
    server.wait();
}

/// A response to an oversized line must arrive even though the line was
/// rejected, and the bytes after its newline must parse as the next
/// request — the reader drains, it doesn't resynchronize by luck.
#[test]
fn oversized_line_is_drained_not_desynchronized() {
    let server = Server::start(ServeConfig::default()).expect("start");
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));

    // One write containing the oversized line AND a valid follow-up.
    let mut payload = Vec::new();
    payload.extend_from_slice(b"{\"pad\":\"");
    payload.extend_from_slice(&vec![b'z'; MAX_LINE + 1024]);
    payload.extend_from_slice(b"\"}\n{\"op\":\"status\"}\n");
    stream.write_all(&payload).expect("write");
    stream.flush().expect("flush");

    let mut first = String::new();
    reader.read_line(&mut first).expect("first response");
    let first = Json::parse(first.trim_end()).expect("json");
    assert_eq!(error_code(&first), "oversized");

    let mut second = String::new();
    reader.read_line(&mut second).expect("second response");
    let second = Json::parse(second.trim_end()).expect("json");
    assert!(
        matches!(second.get("ok"), Some(Json::Bool(true))),
        "{}",
        second.to_compact()
    );

    let _ = send_raw(&mut stream, &mut reader, br#"{"op":"drain"}"#);
    server.wait();
}

/// Overload and governance rejections ride the same structured-error
/// rails as malformed input: a full backlog answers `overloaded` with
/// machine-readable retry advice inside the error object, `prune` on a
/// server with no retention policy is a `bad-request`, and the
/// connection that was refused keeps serving valid requests.
#[test]
fn overload_rejection_carries_retry_advice_and_the_connection_survives() {
    let mut config = ServeConfig::default().max_queued(1);
    config.max_sessions = 1;
    let server = Server::start(config).expect("start");
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));

    // Pin the lone session with a long run, then fill the 1-slot backlog.
    let mut blocker = engine::scenario("two_stream", Scale::Smoke).expect("registry");
    blocker.n_steps = 500_000;
    let submit_line = format!(
        r#"{{"op":"submit","job":{}}}"#,
        JobRequest::scenario(blocker, Backend::Traditional1D)
            .to_json_value()
            .to_compact()
    );
    let mut submitted = Vec::new();
    let doc = send_raw(&mut stream, &mut reader, submit_line.as_bytes());
    assert!(
        matches!(doc.get("ok"), Some(Json::Bool(true))),
        "{}",
        doc.to_compact()
    );
    submitted.push(
        doc.field("job")
            .and_then(Json::as_str)
            .expect("id")
            .to_string(),
    );
    // Wait for the scheduler to move the blocker into its session so the
    // next submit lands in the backlog, not ahead of it.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
    loop {
        let doc = send_raw(&mut stream, &mut reader, br#"{"op":"status"}"#);
        if doc.field("active_runs").and_then(Json::as_usize) == Ok(1) {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "blocker never admitted: {}",
            doc.to_compact()
        );
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    let doc = send_raw(&mut stream, &mut reader, submit_line.as_bytes());
    assert!(
        matches!(doc.get("ok"), Some(Json::Bool(true))),
        "{}",
        doc.to_compact()
    );
    submitted.push(
        doc.field("job")
            .and_then(Json::as_str)
            .expect("id")
            .to_string(),
    );

    // The backlog is full: the third submit is shed, structurally.
    let doc = send_raw(&mut stream, &mut reader, submit_line.as_bytes());
    assert_eq!(error_code(&doc), "overloaded");
    let advice = doc
        .field("error")
        .expect("error object")
        .field("retry_after_ms")
        .and_then(Json::as_usize)
        .expect("overload rejection must carry retry advice");
    assert!((100..=10_000).contains(&advice), "advice {advice}ms");

    // No retention policy configured: prune is a bad-request, with the
    // remedy spelled out in the message.
    let doc = send_raw(&mut stream, &mut reader, br#"{"op":"prune"}"#);
    assert_eq!(error_code(&doc), "bad-request");

    // The refused connection still serves valid requests.
    let doc = send_raw(&mut stream, &mut reader, br#"{"op":"status"}"#);
    assert!(
        matches!(doc.get("ok"), Some(Json::Bool(true))),
        "{}",
        doc.to_compact()
    );
    let doc = send_raw(&mut stream, &mut reader, br#"{"op":"health"}"#);
    assert!(
        matches!(doc.get("ok"), Some(Json::Bool(true))),
        "{}",
        doc.to_compact()
    );

    // Unpin the fleet so drain can finish.
    for job in &submitted {
        let line = format!(r#"{{"op":"cancel","job":"{job}"}}"#);
        let doc = send_raw(&mut stream, &mut reader, line.as_bytes());
        assert!(
            matches!(doc.get("ok"), Some(Json::Bool(true))),
            "{}",
            doc.to_compact()
        );
    }
    let _ = send_raw(&mut stream, &mut reader, br#"{"op":"drain"}"#);
    server.wait();
}

/// EOF with no trailing newline after a complete request: the request is
/// still answered if newline-terminated, and a truncated trailing
/// fragment produces a structured `truncated` error where the transport
/// allows the response out before close.
#[test]
fn truncated_final_line_yields_structured_error() {
    let server = Server::start(ServeConfig::default()).expect("start");
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));

    stream
        .write_all(b"{\"op\":\"status\"}\n{\"op\":\"stat")
        .expect("write");
    stream.flush().expect("flush");
    // Half-close our writing side so the server sees EOF mid-line but
    // can still answer.
    stream
        .shutdown(std::net::Shutdown::Write)
        .expect("shutdown write");

    let mut text = String::new();
    reader.read_to_string(&mut text).expect("responses");
    let mut lines = text.lines();
    let first = Json::parse(lines.next().expect("first line")).expect("json");
    assert!(
        matches!(first.get("ok"), Some(Json::Bool(true))),
        "{}",
        first.to_compact()
    );
    let second = Json::parse(lines.next().expect("second line")).expect("json");
    assert_eq!(error_code(&second), "truncated");

    let mut control = TcpStream::connect(server.addr()).expect("connect");
    let mut control_reader = BufReader::new(control.try_clone().expect("clone"));
    let _ = send_raw(&mut control, &mut control_reader, br#"{"op":"drain"}"#);
    server.wait();
}

//! Finite-difference gradient verification.
//!
//! The paper's substrate (TensorFlow) comes with battle-tested autodiff;
//! ours is hand-written, so every layer's backward pass is validated
//! against central finite differences. The checker perturbs a sample of
//! parameters (or all of them for small nets), recomputes the loss, and
//! compares against the analytic gradient.

use crate::loss::Loss;
use crate::network::Sequential;
use crate::tensor::Tensor;

/// Result of a gradient check.
#[derive(Debug, Clone, Copy)]
pub struct GradCheckReport {
    /// Worst relative error across checked parameters.
    pub max_rel_error: f64,
    /// Number of parameters checked.
    pub checked: usize,
}

/// Verifies backprop gradients against central finite differences.
///
/// `stride` controls sampling: every `stride`-th parameter is perturbed
/// (1 = all). Relative error uses `|analytic - numeric| / max(|analytic|,
/// |numeric|, floor)` with a small floor to avoid 0/0.
pub fn check_gradients(
    net: &mut Sequential,
    loss: &dyn Loss,
    x: &Tensor,
    y: &Tensor,
    eps: f32,
    stride: usize,
) -> GradCheckReport {
    assert!(stride >= 1, "stride must be at least 1");

    // Analytic gradients.
    net.compute_gradients(loss, x, y);
    let mut analytic: Vec<Vec<f32>> = Vec::new();
    net.visit_params(&mut |_, g| analytic.push(g.to_vec()));

    let eval = |net: &mut Sequential| -> f64 {
        let pred = net.forward(x, false);
        let mut scratch = Tensor::zeros(pred.shape());
        loss.loss_and_grad(&pred, y, &mut scratch) as f64
    };

    let mut max_rel = 0.0f64;
    let mut checked = 0usize;
    let n_tensors = analytic.len();

    #[allow(clippy::needless_range_loop)]
    for t_idx in 0..n_tensors {
        let len = analytic[t_idx].len();
        let mut e_idx = 0;
        while e_idx < len {
            // Perturb +eps.
            poke(net, t_idx, e_idx, eps);
            let plus = eval(net);
            // Perturb -eps (2·eps down from the +eps state).
            poke(net, t_idx, e_idx, -2.0 * eps);
            let minus = eval(net);
            // Restore.
            poke(net, t_idx, e_idx, eps);

            let numeric = (plus - minus) / (2.0 * eps as f64);
            let a = analytic[t_idx][e_idx] as f64;
            let denom = a.abs().max(numeric.abs()).max(1e-4);
            let rel = (a - numeric).abs() / denom;
            max_rel = max_rel.max(rel);
            checked += 1;
            e_idx += stride;
        }
    }
    GradCheckReport {
        max_rel_error: max_rel,
        checked,
    }
}

/// Adds `delta` to parameter `elem` of the `tensor_idx`-th parameter slice.
fn poke(net: &mut Sequential, tensor_idx: usize, elem: usize, delta: f32) {
    let mut i = 0;
    net.visit_params(&mut |p, _| {
        if i == tensor_idx {
            p[elem] += delta;
        }
        i += 1;
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::Init;
    use crate::layers::{Conv2d, Dense, Flatten, MaxPool2, Relu, ResidualDense};
    use crate::loss::Mse;

    /// Deterministic pseudo-random data that avoids ReLU kinks (keeps
    /// finite differences smooth) by being generic in magnitude.
    fn pseudo(len: usize, seed: u64) -> Vec<f32> {
        (0..len)
            .map(|i| (((i as u64 + seed) * 2654435761 % 997) as f32 / 498.5) - 1.0)
            .collect()
    }

    #[test]
    fn dense_network_gradients_check_out() {
        let mut net = Sequential::new()
            .push(Dense::new(6, 10, Init::HeNormal, 1))
            .push(Relu::new())
            .push(Dense::new(10, 3, Init::GlorotUniform, 2));
        let x = Tensor::new(pseudo(4 * 6, 3), &[4, 6]);
        let y = Tensor::new(pseudo(4 * 3, 5), &[4, 3]);
        // eps trades ReLU-kink crossings (too large) against f32 round-off
        // in the loss difference (too small); 3e-3 sits between. A genuine
        // backward bug shows up as O(1) relative error, far above 5%.
        let report = check_gradients(&mut net, &Mse, &x, &y, 3e-3, 1);
        assert!(
            report.max_rel_error < 5e-2,
            "max rel err {}",
            report.max_rel_error
        );
        assert_eq!(report.checked, (6 * 10 + 10) + (10 * 3 + 3));
    }

    #[test]
    fn conv_network_gradients_check_out() {
        let mut net = Sequential::new()
            .push(Conv2d::new(1, 3, 3, Init::HeNormal, 7))
            .push(Relu::new())
            .push(MaxPool2::new())
            .push(Flatten::new())
            .push(Dense::new(3 * 2 * 2, 2, Init::GlorotUniform, 8));
        let x = Tensor::new(pseudo(2 * 16, 11), &[2, 1, 4, 4]);
        let y = Tensor::new(pseudo(2 * 2, 13), &[2, 2]);
        let report = check_gradients(&mut net, &Mse, &x, &y, 1e-2, 1);
        assert!(
            report.max_rel_error < 3e-2,
            "max rel err {}",
            report.max_rel_error
        );
    }

    #[test]
    fn residual_block_gradients_check_out() {
        let mut net = Sequential::new()
            .push(Dense::new(4, 6, Init::HeNormal, 21))
            .push(Relu::new())
            .push(ResidualDense::new(6, Init::HeNormal, 22))
            .push(Dense::new(6, 2, Init::GlorotUniform, 23));
        let x = Tensor::new(pseudo(3 * 4, 31), &[3, 4]);
        let y = Tensor::new(pseudo(3 * 2, 37), &[3, 2]);
        let report = check_gradients(&mut net, &Mse, &x, &y, 1e-2, 1);
        assert!(
            report.max_rel_error < 3e-2,
            "max rel err {}",
            report.max_rel_error
        );
    }

    #[test]
    fn stride_sampling_checks_fewer_params() {
        let mut net = Sequential::new().push(Dense::new(8, 8, Init::HeNormal, 41));
        let x = Tensor::new(pseudo(2 * 8, 43), &[2, 8]);
        let y = Tensor::new(pseudo(2 * 8, 47), &[2, 8]);
        let full = check_gradients(&mut net, &Mse, &x, &y, 1e-2, 1);
        let sampled = check_gradients(&mut net, &Mse, &x, &y, 1e-2, 7);
        assert!(sampled.checked < full.checked);
        assert!(sampled.checked > 0);
    }
}

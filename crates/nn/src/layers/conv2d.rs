//! 2-D convolution (stride 1, "same" zero padding) via implicit im2col on
//! the blocked GEMM micro-kernels.
//!
//! The paper's CNN (§IV.A) stacks two blocks of
//! `[conv, conv, maxpool]` before the fully connected head. Kernel size and
//! channel counts are not stated in the paper; the `dlpic-core` builders
//! use 3×3 kernels (recorded as an inferred choice in DESIGN.md).
//!
//! Instead of packing an explicit `[C·K·K, H·W]` column matrix per sample
//! (9× the input's memory traffic for a 3×3 kernel, twice per training
//! step), each sample is copied once into a zero-padded `[C, H+2p, W+2p]`
//! scratch plane and the GEMM micro-kernels ([`crate::linalg::conv_gemm`])
//! read the patch columns directly out of it through per-row base
//! offsets — every load is contiguous and in-bounds, so there are no
//! wrap/pad branches in the hot loop. The backward pass reuses the same
//! kernels: `dX` is a same-padded convolution of `dY` with the
//! flipped-and-transposed weights (no `col2im` scatter at all), and `dW`
//! is the patch correlation [`crate::linalg::conv_dw_accum`]. A direct
//! 6-deep loop (`conv_naive`, plus its backward counterpart) remains in
//! the test module as the oracle, mirroring the fused-kernel pattern of
//! the particle pipeline.

use crate::init::Init;
use crate::layer::{cache_input, Layer};
use crate::linalg::{conv_dw_accum, conv_gemm};
use crate::tensor::Tensor;

/// A same-padded stride-1 2-D convolution on `[batch, channels, h, w]`
/// tensors. Weights are stored `[out_ch, in_ch, k, k]` row-major.
pub struct Conv2d {
    in_ch: usize,
    out_ch: usize,
    k: usize,
    w: Vec<f32>,
    b: Vec<f32>,
    dw: Vec<f32>,
    db: Vec<f32>,
    cached_input: Option<Tensor>,
    // Scratch reused across calls (warm after the first batch):
    /// zero-padded input sample `[in_ch, h+2p, w+2p]`,
    pad_in: Vec<f32>,
    /// zero-padded output-gradient sample `[out_ch, h+2p, w+2p]`,
    pad_gy: Vec<f32>,
    /// flipped-and-transposed weights `[in_ch, out_ch·k·k]` for `dX`,
    wt: Vec<f32>,
    /// patch-row base offsets into `pad_in` / `pad_gy`,
    boff_in: Vec<usize>,
    boff_gy: Vec<usize>,
    /// image size the scratch is currently built for.
    ready_hw: (usize, usize),
}

impl Conv2d {
    /// Creates a convolution with an odd kernel size (same padding needs
    /// `k/2` on each side).
    ///
    /// # Panics
    /// Panics for even or zero kernel size.
    pub fn new(in_ch: usize, out_ch: usize, k: usize, init: Init, seed: u64) -> Self {
        assert!(k % 2 == 1 && k > 0, "kernel size must be odd, got {k}");
        assert!(in_ch > 0 && out_ch > 0, "degenerate conv");
        let fan_in = in_ch * k * k;
        let fan_out = out_ch * k * k;
        let mut w = vec![0.0f32; out_ch * in_ch * k * k];
        init.fill(&mut w, fan_in, fan_out, seed);
        Self {
            in_ch,
            out_ch,
            k,
            w,
            b: vec![0.0; out_ch],
            dw: vec![0.0; out_ch * in_ch * k * k],
            db: vec![0.0; out_ch],
            cached_input: None,
            pad_in: Vec::new(),
            pad_gy: Vec::new(),
            wt: Vec::new(),
            boff_in: Vec::new(),
            boff_gy: Vec::new(),
            ready_hw: (0, 0),
        }
    }

    /// Kernel size.
    pub fn kernel(&self) -> usize {
        self.k
    }

    /// (Re)builds the padded scratch planes and offset tables for an
    /// `h × w` image. No-op while the image size is unchanged — the
    /// padded borders stay zero because only the interior is rewritten
    /// per sample.
    fn prepare(&mut self, h: usize, w: usize) {
        if self.ready_hw == (h, w) {
            return;
        }
        let p = self.k / 2;
        let (ph, pw) = (h + 2 * p, w + 2 * p);
        self.pad_in.clear();
        self.pad_in.resize(self.in_ch * ph * pw, 0.0);
        self.pad_gy.clear();
        self.pad_gy.resize(self.out_ch * ph * pw, 0.0);
        self.boff_in = patch_offsets(self.in_ch, self.k, ph, pw);
        self.boff_gy = patch_offsets(self.out_ch, self.k, ph, pw);
        self.ready_hw = (h, w);
    }

    fn dims(&self, input: &Tensor) -> (usize, usize, usize) {
        let shape = input.shape();
        assert_eq!(
            shape.len(),
            4,
            "conv2d expects [batch, ch, h, w], got {shape:?}"
        );
        assert_eq!(
            shape[1], self.in_ch,
            "conv2d expected {} channels, got {}",
            self.in_ch, shape[1]
        );
        (shape[0], shape[2], shape[3])
    }

    /// Shared forward: writes into `out` (resized in place), optionally
    /// retaining the activation cache.
    fn forward_core(&mut self, input: &Tensor, out: &mut Tensor, training: bool) {
        let (batch, h, w) = self.dims(input);
        self.prepare(h, w);
        let hw = h * w;
        let ckk = self.in_ch * self.k * self.k;
        let (p, pw) = (self.k / 2, w + 2 * (self.k / 2));
        out.resize_in_place(&[batch, self.out_ch, h, w]);
        for bi in 0..batch {
            pad_sample(&mut self.pad_in, input.row(bi), self.in_ch, h, w, p);
            let out_b = &mut out.data_mut()[bi * self.out_ch * hw..(bi + 1) * self.out_ch * hw];
            conv_gemm(
                &self.w,
                &self.pad_in,
                &self.boff_in,
                out_b,
                self.out_ch,
                ckk,
                h,
                w,
                pw,
                Some(&self.b),
            );
        }
        if training {
            cache_input(&mut self.cached_input, input);
        }
    }

    /// Shared backward: accumulates `dW`/`db`, writes the input gradient
    /// into `grad_in` (resized in place).
    fn backward_core(&mut self, grad_out: &Tensor, grad_in: &mut Tensor) {
        let input = self
            .cached_input
            .take()
            .expect("backward before forward(training)");
        let (batch, h, w) = self.dims(&input);
        let hw = h * w;
        let kk = self.k * self.k;
        let ckk = self.in_ch * kk;
        assert_eq!(
            grad_out.shape(),
            &[batch, self.out_ch, h, w],
            "grad_out shape"
        );
        self.prepare(h, w);
        let (p, pw) = (self.k / 2, w + 2 * (self.k / 2));

        // dX is a same-padded convolution of dY with the flipped and
        // channel-transposed kernel: wt[c][o·k² + ky·k + kx] =
        // w[o][c][k-1-ky][k-1-kx]. The loop below writes every element,
        // so the buffer only needs sizing, not zeroing.
        if self.wt.len() != self.in_ch * self.out_ch * kk {
            self.wt.resize(self.in_ch * self.out_ch * kk, 0.0);
        }
        for c in 0..self.in_ch {
            for o in 0..self.out_ch {
                for t in 0..kk {
                    self.wt[(c * self.out_ch + o) * kk + t] =
                        self.w[(o * self.in_ch + c) * kk + (kk - 1 - t)];
                }
            }
        }

        grad_in.resize_in_place(input.shape());
        for bi in 0..batch {
            let dy = &grad_out.data()[bi * self.out_ch * hw..(bi + 1) * self.out_ch * hw];
            // dW += dY ⋆ padded(X);  db += per-channel sums of dY.
            pad_sample(&mut self.pad_in, input.row(bi), self.in_ch, h, w, p);
            conv_dw_accum(
                dy,
                &self.pad_in,
                &self.boff_in,
                &mut self.dw,
                self.out_ch,
                ckk,
                h,
                w,
                pw,
            );
            for (o, db) in self.db.iter_mut().enumerate() {
                *db += dy[o * hw..(o + 1) * hw].iter().sum::<f32>();
            }
            // dX = conv(padded(dY), wt).
            pad_sample(&mut self.pad_gy, dy, self.out_ch, h, w, p);
            let ds = &mut grad_in.data_mut()[bi * self.in_ch * hw..(bi + 1) * self.in_ch * hw];
            conv_gemm(
                &self.wt,
                &self.pad_gy,
                &self.boff_gy,
                ds,
                self.in_ch,
                self.out_ch * kk,
                h,
                w,
                pw,
                None,
            );
        }
        self.cached_input = Some(input);
    }
}

/// Copies a `[ch, h, w]` sample into the interior of a zero-padded
/// `[ch, h+2p, w+2p]` buffer (whose borders are already zero). Rows are
/// copied in fixed 16-element chunks plus a scalar tail: the rows are
/// short (one image line), so `memcpy`'s per-call overhead would
/// dominate a `copy_from_slice` per row.
fn pad_sample(dst: &mut [f32], sample: &[f32], ch: usize, h: usize, w: usize, p: usize) {
    let (ph, pw) = (h + 2 * p, w + 2 * p);
    debug_assert_eq!(dst.len(), ch * ph * pw);
    debug_assert_eq!(sample.len(), ch * h * w);
    let main_w = w - w % 16;
    for c in 0..ch {
        for y in 0..h {
            let at = (c * ph + y + p) * pw + p;
            let src = &sample[(c * h + y) * w..(c * h + y + 1) * w];
            let mut j = 0;
            while j < main_w {
                let chunk: &[f32; 16] = src[j..j + 16].try_into().unwrap();
                dst[at + j..at + j + 16].copy_from_slice(chunk);
                j += 16;
            }
            if j < w {
                dst[at + j..at + w].copy_from_slice(&src[j..]);
            }
        }
    }
}

/// Base offsets of the virtual patch rows: entry `(c·k + ky)·k + kx`
/// points at `pad[c][ky][kx]` of a `[ch, ph, pw]` padded buffer.
fn patch_offsets(ch: usize, k: usize, ph: usize, pw: usize) -> Vec<usize> {
    let mut boff = Vec::with_capacity(ch * k * k);
    for c in 0..ch {
        for ky in 0..k {
            for kx in 0..k {
                boff.push((c * ph + ky) * pw + kx);
            }
        }
    }
    boff
}

impl Layer for Conv2d {
    fn forward(&mut self, input: &Tensor, training: bool) -> Tensor {
        let mut out = Tensor::zeros(&[0]);
        self.forward_core(input, &mut out, training);
        out
    }

    fn infer_into(&mut self, input: &Tensor, out: &mut Tensor) {
        self.forward_core(input, out, false);
    }

    fn train_forward_into(&mut self, input: &Tensor, out: &mut Tensor) {
        self.forward_core(input, out, true);
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mut grad_in = Tensor::zeros(&[0]);
        self.backward_core(grad_out, &mut grad_in);
        grad_in
    }

    fn backward_into(&mut self, grad_out: &Tensor, grad_in: &mut Tensor) {
        self.backward_core(grad_out, grad_in);
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut [f32], &mut [f32])) {
        f(&mut self.w, &mut self.dw);
        f(&mut self.b, &mut self.db);
    }

    fn zero_grads(&mut self) {
        self.dw.fill(0.0);
        self.db.fill(0.0);
    }

    fn name(&self) -> &'static str {
        "conv2d"
    }

    fn param_count(&self) -> usize {
        self.w.len() + self.b.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference direct convolution — the 6-deep-loop oracle.
    // The eight arguments are the convolution geometry; a struct would
    // only rename the same numbers in the hot loop.
    #[allow(clippy::too_many_arguments)]
    fn conv_naive(
        input: &[f32],
        w: &[f32],
        b: &[f32],
        in_ch: usize,
        out_ch: usize,
        k: usize,
        h: usize,
        wid: usize,
    ) -> Vec<f32> {
        let pad = k as isize / 2;
        let hw = h * wid;
        let mut out = vec![0.0f32; out_ch * hw];
        for o in 0..out_ch {
            for oy in 0..h {
                for ox in 0..wid {
                    let mut acc = b[o];
                    for c in 0..in_ch {
                        for ky in 0..k {
                            for kx in 0..k {
                                let iy = oy as isize + ky as isize - pad;
                                let ix = ox as isize + kx as isize - pad;
                                if iy < 0 || ix < 0 || iy >= h as isize || ix >= wid as isize {
                                    continue;
                                }
                                acc += input[c * hw + iy as usize * wid + ix as usize]
                                    * w[((o * in_ch + c) * k + ky) * k + kx];
                            }
                        }
                    }
                    out[o * hw + oy * wid + ox] = acc;
                }
            }
        }
        out
    }

    /// Reference direct backward — accumulates (dw, db, dx) with the same
    /// 6-deep loops, the backward oracle.
    #[allow(clippy::too_many_arguments)]
    fn conv_naive_backward(
        input: &[f32],
        w: &[f32],
        dy: &[f32],
        in_ch: usize,
        out_ch: usize,
        k: usize,
        h: usize,
        wid: usize,
    ) -> (Vec<f32>, Vec<f32>, Vec<f32>) {
        let pad = k as isize / 2;
        let hw = h * wid;
        let mut dw = vec![0.0f32; out_ch * in_ch * k * k];
        let mut db = vec![0.0f32; out_ch];
        let mut dx = vec![0.0f32; in_ch * hw];
        for o in 0..out_ch {
            for oy in 0..h {
                for ox in 0..wid {
                    let g = dy[o * hw + oy * wid + ox];
                    db[o] += g;
                    for c in 0..in_ch {
                        for ky in 0..k {
                            for kx in 0..k {
                                let iy = oy as isize + ky as isize - pad;
                                let ix = ox as isize + kx as isize - pad;
                                if iy < 0 || ix < 0 || iy >= h as isize || ix >= wid as isize {
                                    continue;
                                }
                                let at = c * hw + iy as usize * wid + ix as usize;
                                dw[((o * in_ch + c) * k + ky) * k + kx] += g * input[at];
                                dx[at] += g * w[((o * in_ch + c) * k + ky) * k + kx];
                            }
                        }
                    }
                }
            }
        }
        (dw, db, dx)
    }

    fn pseudo(len: usize, seed: u64) -> Vec<f32> {
        (0..len)
            .map(|i| (((i as u64 + seed) * 2654435761 % 997) as f32 / 498.5) - 1.0)
            .collect()
    }

    #[test]
    fn identity_kernel_passes_input_through() {
        let mut conv = Conv2d::new(1, 1, 3, Init::Zeros, 0);
        conv.w[4] = 1.0; // center tap
        let x = Tensor::new(pseudo(16, 3), &[1, 1, 4, 4]);
        let y = conv.forward(&x, false);
        assert_eq!(y.shape(), &[1, 1, 4, 4]);
        for (a, b) in y.data().iter().zip(x.data()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn shift_kernel_moves_image() {
        // Kernel with the tap at (ky=1, kx=0): output(y,x) = input(y, x-1).
        let mut conv = Conv2d::new(1, 1, 3, Init::Zeros, 0);
        conv.w[3] = 1.0; // row 1, col 0 → ix = ox - 1
        let x = Tensor::new((0..16).map(|i| i as f32).collect(), &[1, 1, 4, 4]);
        let y = conv.forward(&x, false);
        // Column 0 sees padding (zero); column j>0 sees input col j-1.
        for row in 0..4 {
            assert_eq!(y.data()[row * 4], 0.0);
            for col in 1..4 {
                assert_eq!(y.data()[row * 4 + col], x.data()[row * 4 + col - 1]);
            }
        }
    }

    #[test]
    fn forward_matches_naive_conv_multichannel() {
        let (in_ch, out_ch, k, h, w) = (3, 4, 3, 6, 5);
        let mut conv = Conv2d::new(in_ch, out_ch, k, Init::Zeros, 0);
        conv.w.copy_from_slice(&pseudo(out_ch * in_ch * k * k, 11));
        conv.b.copy_from_slice(&pseudo(out_ch, 13));
        let x_data = pseudo(in_ch * h * w, 17);
        let x = Tensor::new(x_data.clone(), &[1, in_ch, h, w]);
        let y = conv.forward(&x, false);
        let oracle = conv_naive(&x_data, &conv.w, &conv.b, in_ch, out_ch, k, h, w);
        for (i, (a, b)) in y.data().iter().zip(&oracle).enumerate() {
            assert!((a - b).abs() < 1e-4, "elem {i}: {a} vs {b}");
        }
    }

    #[test]
    fn forward_matches_naive_conv_on_awkward_shapes() {
        // Shapes straddling every tile boundary: widths below one tile,
        // 17/33 columns, odd heights, channel counts off the 8-row tile.
        for &(in_ch, out_ch, k, h, w) in &[
            (1usize, 8usize, 3usize, 32usize, 32usize),
            (2, 3, 3, 7, 17),
            (3, 9, 5, 5, 33),
            (4, 16, 3, 16, 16),
            (1, 2, 3, 1, 1),
            (2, 5, 5, 3, 40),
        ] {
            let mut conv = Conv2d::new(in_ch, out_ch, k, Init::Zeros, 0);
            let wlen = out_ch * in_ch * k * k;
            conv.w.copy_from_slice(&pseudo(wlen, 7 + wlen as u64));
            conv.b.copy_from_slice(&pseudo(out_ch, 31));
            let x_data = pseudo(in_ch * h * w, 43);
            let x = Tensor::new(x_data.clone(), &[1, in_ch, h, w]);
            let y = conv.forward(&x, false);
            let oracle = conv_naive(&x_data, &conv.w, &conv.b, in_ch, out_ch, k, h, w);
            for (i, (a, b)) in y.data().iter().zip(&oracle).enumerate() {
                assert!(
                    (a - b).abs() < 1e-4,
                    "{in_ch}->{out_ch} k{k} {h}x{w} elem {i}: {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn backward_matches_naive_backward_on_awkward_shapes() {
        for &(in_ch, out_ch, k, h, w) in &[
            (1usize, 8usize, 3usize, 32usize, 32usize),
            (2, 3, 3, 7, 17),
            (3, 5, 5, 5, 33),
            (4, 16, 3, 16, 16),
            (2, 2, 3, 4, 9),
        ] {
            let mut conv = Conv2d::new(in_ch, out_ch, k, Init::Zeros, 0);
            let wlen = out_ch * in_ch * k * k;
            conv.w.copy_from_slice(&pseudo(wlen, 3 + wlen as u64));
            let x_data = pseudo(in_ch * h * w, 47);
            let dy_data = pseudo(out_ch * h * w, 53);
            let x = Tensor::new(x_data.clone(), &[1, in_ch, h, w]);
            let _ = conv.forward(&x, true);
            let gx = conv.backward(&Tensor::new(dy_data.clone(), &[1, out_ch, h, w]));
            let (dw_o, db_o, dx_o) =
                conv_naive_backward(&x_data, &conv.w, &dy_data, in_ch, out_ch, k, h, w);
            let scale = |v: f32| 1.0 + v.abs();
            for (i, (a, b)) in conv.dw.iter().zip(&dw_o).enumerate() {
                assert!(
                    (a - b).abs() < 1e-3 * scale(*b),
                    "dW {in_ch}->{out_ch} k{k} {h}x{w} elem {i}: {a} vs {b}"
                );
            }
            for (i, (a, b)) in conv.db.iter().zip(&db_o).enumerate() {
                assert!((a - b).abs() < 1e-3 * scale(*b), "db elem {i}: {a} vs {b}");
            }
            for (i, (a, b)) in gx.data().iter().zip(&dx_o).enumerate() {
                assert!(
                    (a - b).abs() < 1e-3 * scale(*b),
                    "dX {in_ch}->{out_ch} k{k} {h}x{w} elem {i}: {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn batch_samples_are_independent() {
        let mut conv = Conv2d::new(1, 2, 3, Init::HeNormal, 5);
        let a = pseudo(9, 1);
        let b = pseudo(9, 2);
        let both = Tensor::new([a.clone(), b.clone()].concat(), &[2, 1, 3, 3]);
        let ya = conv.forward(&Tensor::new(a, &[1, 1, 3, 3]), false);
        let yb = conv.forward(&Tensor::new(b, &[1, 1, 3, 3]), false);
        let yab = conv.forward(&both, false);
        for (i, v) in ya.data().iter().enumerate() {
            assert!((yab.data()[i] - v).abs() < 1e-6);
        }
        for (i, v) in yb.data().iter().enumerate() {
            assert!((yab.data()[ya.len() + i] - v).abs() < 1e-6);
        }
    }

    #[test]
    fn image_size_change_between_calls_is_handled() {
        // The padded scratch must rebuild when the image size changes,
        // including a change that keeps the padded byte count equal.
        let mut conv = Conv2d::new(1, 1, 3, Init::Zeros, 0);
        conv.w[4] = 1.0; // identity kernel
        for &(h, w) in &[(4usize, 4usize), (6, 2), (2, 6), (4, 4)] {
            let x = Tensor::new(pseudo(h * w, (h * 31 + w) as u64), &[1, 1, h, w]);
            let y = conv.forward(&x, false);
            for (a, b) in y.data().iter().zip(x.data()) {
                assert!((a - b).abs() < 1e-6, "{h}x{w}");
            }
        }
    }

    #[test]
    fn backward_bias_gradient_is_output_sum() {
        let mut conv = Conv2d::new(1, 2, 3, Init::HeNormal, 7);
        let x = Tensor::new(pseudo(2 * 16, 3), &[2, 1, 4, 4]);
        let _ = conv.forward(&x, true);
        let gy = Tensor::full(&[2, 2, 4, 4], 1.0);
        let _ = conv.backward(&gy);
        // Each bias sees 2 samples × 16 pixels of unit gradient.
        assert!((conv.db[0] - 32.0).abs() < 1e-4);
        assert!((conv.db[1] - 32.0).abs() < 1e-4);
    }

    #[test]
    fn five_by_five_kernel_matches_naive_conv() {
        let (in_ch, out_ch, k, h, w) = (2, 3, 5, 8, 6);
        let mut conv = Conv2d::new(in_ch, out_ch, k, Init::Zeros, 0);
        conv.w.copy_from_slice(&pseudo(out_ch * in_ch * k * k, 23));
        conv.b.copy_from_slice(&pseudo(out_ch, 29));
        let x_data = pseudo(in_ch * h * w, 31);
        let x = Tensor::new(x_data.clone(), &[1, in_ch, h, w]);
        let y = conv.forward(&x, false);
        let oracle = conv_naive(&x_data, &conv.w, &conv.b, in_ch, out_ch, k, h, w);
        for (i, (a, b)) in y.data().iter().zip(&oracle).enumerate() {
            assert!((a - b).abs() < 1e-4, "elem {i}: {a} vs {b}");
        }
    }

    #[test]
    fn backward_weight_gradient_matches_finite_difference_probe() {
        // Poke one weight, verify dL/dw against the accumulated gradient
        // for a quadratic loss L = ½Σy².
        let mut conv = Conv2d::new(1, 1, 3, Init::HeNormal, 41);
        let x = Tensor::new(pseudo(2 * 25, 43), &[2, 1, 5, 5]);
        let y = conv.forward(&x, true);
        let gy = y.clone(); // dL/dy = y for L = ½Σy²
        let _ = conv.backward(&gy);
        let analytic = conv.dw[4];

        let loss = |c: &mut Conv2d| -> f64 {
            let out = c.forward(&x, false);
            out.data()
                .iter()
                .map(|&v| 0.5 * (v as f64) * (v as f64))
                .sum()
        };
        let eps = 1e-3;
        conv.w[4] += eps;
        let plus = loss(&mut conv);
        conv.w[4] -= 2.0 * eps;
        let minus = loss(&mut conv);
        conv.w[4] += eps;
        let numeric = ((plus - minus) / (2.0 * eps as f64)) as f32;
        assert!(
            (analytic - numeric).abs() / numeric.abs().max(1e-3) < 5e-2,
            "dW: analytic {analytic} vs numeric {numeric}"
        );
    }

    #[test]
    fn into_variants_match_allocating_calls() {
        let (in_ch, out_ch, k, h, w) = (2, 4, 3, 8, 8);
        let make = || {
            let mut c = Conv2d::new(in_ch, out_ch, k, Init::HeNormal, 9);
            c.b.copy_from_slice(&pseudo(out_ch, 61));
            c
        };
        let x = Tensor::new(pseudo(3 * in_ch * h * w, 67), &[3, in_ch, h, w]);
        let gy = Tensor::new(pseudo(3 * out_ch * h * w, 71), &[3, out_ch, h, w]);

        let mut a = make();
        let ya = a.forward(&x, true);
        let gxa = a.backward(&gy);

        let mut b = make();
        let mut yb = Tensor::zeros(&[0]);
        let mut gxb = Tensor::zeros(&[0]);
        // Run twice so the second pass reuses warm buffers (gradients
        // accumulate across the two backwards).
        for _ in 0..2 {
            b.train_forward_into(&x, &mut yb);
            b.backward_into(&gy, &mut gxb);
        }
        assert_eq!(ya.shape(), yb.shape());
        assert_eq!(ya.data(), yb.data());
        assert_eq!(gxa.shape(), gxb.shape());
        assert_eq!(gxa.data(), gxb.data());
        // One allocating backward vs two accumulating ones: dW doubles.
        let mut dwa = Vec::new();
        a.visit_params(&mut |p, g| {
            if p.len() > out_ch {
                dwa = g.to_vec();
            }
        });
        let mut dwb = Vec::new();
        b.visit_params(&mut |p, g| {
            if p.len() > out_ch {
                dwb = g.to_vec();
            }
        });
        for (x2, x1) in dwb.iter().zip(&dwa) {
            assert!((x2 - 2.0 * x1).abs() < 1e-3 * (1.0 + x1.abs()));
        }
    }

    #[test]
    #[should_panic(expected = "odd")]
    fn even_kernel_rejected() {
        let _ = Conv2d::new(1, 1, 4, Init::Zeros, 0);
    }
}

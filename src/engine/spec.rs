//! [`ScenarioSpec`]: the one declarative description of a plasma
//! experiment, independent of which solver runs it.
//!
//! A spec names the *physics* — domain geometry (dimension-tagged),
//! particle species, loading strategy, numerical parameters, tracked
//! diagnostics — and nothing about the solver. Any spec can be paired
//! with any compatible [`Backend`](super::Backend) and serialized to/from
//! JSON ([`ScenarioSpec::to_json`] / [`ScenarioSpec::from_json`]).

use super::error::EngineError;
use super::json::{obj, Json};
use crate::core::presets::Scale;
use crate::pic::init::{BeamSpec, Loading, MultiBeamInit, TwoStreamInit};
use crate::pic::Grid1D;
use crate::pic2d::init2d::Loading2D;
use crate::pic2d::{Grid2D, TwoStream2DInit};

/// Spatial dimensionality of a scenario or backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dim {
    /// One spatial dimension (1D-1V).
    OneD,
    /// Two spatial dimensions (2D-2V).
    TwoD,
}

impl std::fmt::Display for Dim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Self::OneD => "1-D",
            Self::TwoD => "2-D",
        })
    }
}

/// The periodic domain, tagged by dimension.
#[derive(Debug, Clone, PartialEq)]
pub enum DomainSpec {
    /// A 1-D periodic box.
    OneD {
        /// Field-grid cells.
        ncells: usize,
        /// Box length.
        length: f64,
    },
    /// A 2-D periodic box.
    TwoD {
        /// Cells along `x`.
        nx: usize,
        /// Cells along `y`.
        ny: usize,
        /// Box length along `x`.
        lx: f64,
        /// Box length along `y`.
        ly: f64,
    },
}

impl DomainSpec {
    /// The paper's standard 1-D box: 64 cells over `2π/3.06`.
    pub fn paper_1d() -> Self {
        Self::OneD {
            ncells: crate::pic::constants::PAPER_NCELLS,
            length: crate::pic::constants::paper_box_length(),
        }
    }

    /// The 2-D extension's default box: 32×32 cells, one fundamental
    /// wavelength per axis.
    pub fn default_2d() -> Self {
        Self::TwoD {
            nx: crate::pic2d::constants2d::DEFAULT_NX,
            ny: crate::pic2d::constants2d::DEFAULT_NY,
            lx: crate::pic2d::constants2d::box_length_x(),
            ly: crate::pic2d::constants2d::box_length_y(),
        }
    }

    /// The domain's dimensionality tag.
    pub fn dim(&self) -> Dim {
        match self {
            Self::OneD { .. } => Dim::OneD,
            Self::TwoD { .. } => Dim::TwoD,
        }
    }

    /// Total field cells (1-D: `ncells`; 2-D: `nx·ny`).
    pub fn cells(&self) -> usize {
        match self {
            Self::OneD { ncells, .. } => *ncells,
            Self::TwoD { nx, ny, .. } => nx * ny,
        }
    }
}

/// The particle population(s) of a scenario.
#[derive(Debug, Clone, PartialEq)]
pub enum SpeciesSpec {
    /// Two symmetric counter-streaming electron beams at `±v0` — the
    /// paper's configuration.
    TwoStream {
        /// Beam drift speed.
        v0: f64,
        /// Thermal spread of each beam.
        vth: f64,
    },
    /// A single Maxwellian at rest (Landau damping, thermal plasmas).
    Maxwellian {
        /// Thermal spread.
        vth: f64,
    },
    /// A bulk Maxwellian at rest plus a fast, tenuous beam — the classic
    /// bump-on-tail configuration.
    BumpOnTail {
        /// Bulk thermal spread.
        bulk_vth: f64,
        /// Beam drift speed.
        beam_v: f64,
        /// Beam thermal spread.
        beam_vth: f64,
        /// Fraction of the total density carried by the beam, in `(0, 1)`.
        beam_fraction: f64,
    },
    /// A single Maxwellian drifting as a whole — the electron response of
    /// an ion-acoustic-style current-carrying plasma. Asymmetric, so (like
    /// bump-on-tail) it loads via `MultiBeamInit` and runs on the 1-D
    /// particle backends.
    DriftingMaxwellian {
        /// Bulk drift speed.
        drift: f64,
        /// Thermal spread.
        vth: f64,
    },
}

impl SpeciesSpec {
    /// Symmetric two-stream parameters `(v0, vth)` when this species is
    /// expressible as one (which the 2-D, Vlasov and distributed backends
    /// require).
    pub fn as_two_stream(&self) -> Option<(f64, f64)> {
        match *self {
            Self::TwoStream { v0, vth } => Some((v0, vth)),
            Self::Maxwellian { vth } => Some((0.0, vth)),
            Self::BumpOnTail { .. } | Self::DriftingMaxwellian { .. } => None,
        }
    }
}

/// How the macro-particles are loaded.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LoadingSpec {
    /// Positions uniform at random; instability seeded by shot noise (the
    /// paper's loading).
    Random,
    /// Deterministic equispaced positions with a sinusoidal displacement
    /// seeding one grid mode.
    Quiet {
        /// Seeded grid mode (0 disables the perturbation).
        mode: usize,
        /// Displacement amplitude as a fraction of the box length.
        amplitude: f64,
    },
}

/// The complete, solver-independent description of one experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Scenario name (registry key; free-form for ad-hoc specs).
    pub name: String,
    /// Periodic domain, dimension-tagged.
    pub domain: DomainSpec,
    /// Particle population(s).
    pub species: SpeciesSpec,
    /// Loading strategy.
    pub loading: LoadingSpec,
    /// Experiment scale (sizes DL architectures and phase grids).
    pub scale: Scale,
    /// Macro-particles per field cell.
    pub ppc: usize,
    /// Time step.
    pub dt: f64,
    /// Steps per run (`n + 1` diagnostic samples are recorded).
    pub n_steps: usize,
    /// RNG seed for the loading.
    pub seed: u64,
    /// Field modes whose amplitudes are recorded each step. In 2-D, mode
    /// `m` means the `(m, 0)` mode of `Ex` — the mode family that carries
    /// the 1-D physics.
    pub tracked_modes: Vec<usize>,
}

impl ScenarioSpec {
    /// Total macro-particle count (`ppc ×` field cells).
    pub fn n_particles(&self) -> usize {
        self.ppc * self.domain.cells()
    }

    /// The scenario's dimensionality.
    pub fn dim(&self) -> Dim {
        self.domain.dim()
    }

    /// Checks internal consistency; every [`Engine`](super::Engine) run
    /// validates before building anything.
    // NaN-rejecting comparisons throughout: `!(x > 0.0)` also rejects NaN
    // where `x <= 0.0` would accept it (same convention as the solver
    // crates).
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    pub fn validate(&self) -> Result<(), EngineError> {
        let fail = |what: &str| {
            Err(EngineError::InvalidSpec {
                scenario: self.name.clone(),
                what: what.into(),
            })
        };
        if self.name.is_empty() {
            return fail("name must not be empty");
        }
        match self.domain {
            DomainSpec::OneD { ncells, length } => {
                if ncells < 2 || !(length > 0.0) {
                    return fail("1-D domain needs ncells >= 2 and length > 0");
                }
            }
            DomainSpec::TwoD { nx, ny, lx, ly } => {
                if nx < 2 || ny < 2 || !(lx > 0.0) || !(ly > 0.0) {
                    return fail("2-D domain needs nx, ny >= 2 and lx, ly > 0");
                }
            }
        }
        match self.species {
            SpeciesSpec::TwoStream { v0, vth } => {
                if !v0.is_finite() || !vth.is_finite() || vth < 0.0 {
                    return fail("two-stream needs finite v0 and vth >= 0");
                }
            }
            SpeciesSpec::Maxwellian { vth } => {
                if !(vth > 0.0) {
                    return fail("maxwellian needs vth > 0");
                }
            }
            SpeciesSpec::BumpOnTail {
                bulk_vth,
                beam_v,
                beam_vth,
                beam_fraction,
            } => {
                if !(bulk_vth > 0.0) || !beam_v.is_finite() || beam_vth < 0.0 {
                    return fail("bump-on-tail needs bulk_vth > 0 and finite beam");
                }
                if !(beam_fraction > 0.0 && beam_fraction < 1.0) {
                    return fail("beam_fraction must lie in (0, 1)");
                }
            }
            SpeciesSpec::DriftingMaxwellian { drift, vth } => {
                if !drift.is_finite() || !(vth > 0.0) {
                    return fail("drifting maxwellian needs finite drift and vth > 0");
                }
            }
        }
        if let LoadingSpec::Quiet { amplitude, .. } = self.loading {
            if !amplitude.is_finite() || amplitude.abs() > 0.5 {
                return fail("quiet-loading amplitude must be finite and |a| <= 0.5");
            }
        }
        if self.ppc == 0 {
            return fail("ppc must be positive");
        }
        if matches!(
            self.species,
            SpeciesSpec::TwoStream { .. } | SpeciesSpec::Maxwellian { .. }
        ) && !self.n_particles().is_multiple_of(2)
        {
            return fail("two-beam loadings need an even total particle count");
        }
        if !(self.dt > 0.0) || !self.dt.is_finite() {
            return fail("dt must be positive and finite");
        }
        if self.n_steps == 0 {
            return fail("n_steps must be positive");
        }
        if self.tracked_modes.contains(&0) {
            return fail("tracked modes are 1-based (mode 0 is the DC offset)");
        }
        // Seeds ride through JSON as numbers; bounding them at 2^53 keeps
        // the round-trip exact (f64 represents every integer below that).
        if self.seed >= (1u64 << 53) {
            return fail("seed must be below 2^53 so the JSON round-trip is exact");
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Builders bridging to the per-crate initial conditions. These are the
    // only places the engine touches the crates' init types.
    // ------------------------------------------------------------------

    /// The 1-D grid of this spec.
    ///
    /// # Panics
    /// Panics on a 2-D domain; callers go through [`Self::validate`] and
    /// backend-compatibility checks first.
    pub(crate) fn grid_1d(&self) -> Grid1D {
        match self.domain {
            DomainSpec::OneD { ncells, length } => Grid1D::new(ncells, length),
            DomainSpec::TwoD { .. } => unreachable!("1-D grid from 2-D spec"),
        }
    }

    /// The 2-D grid of this spec.
    pub(crate) fn grid_2d(&self) -> Grid2D {
        match self.domain {
            DomainSpec::TwoD { nx, ny, lx, ly } => Grid2D::new(nx, ny, lx, ly),
            DomainSpec::OneD { .. } => unreachable!("2-D grid from 1-D spec"),
        }
    }

    fn loading_1d(&self) -> Loading {
        match self.loading {
            LoadingSpec::Random => Loading::Random,
            LoadingSpec::Quiet { mode, amplitude } => Loading::Quiet { mode, amplitude },
        }
    }

    /// Two-stream init when the species is symmetric (`None` for
    /// bump-on-tail, which loads via [`MultiBeamInit`]).
    pub(crate) fn two_stream_init(&self) -> Option<TwoStreamInit> {
        let (v0, vth) = self.species.as_two_stream()?;
        Some(TwoStreamInit {
            v0,
            vth,
            n_particles: self.n_particles(),
            loading: self.loading_1d(),
            seed: self.seed,
        })
    }

    /// The general multi-beam init covering every 1-D species.
    pub(crate) fn multi_beam_init(&self) -> MultiBeamInit {
        let beams = match self.species {
            SpeciesSpec::TwoStream { v0, vth } => vec![
                BeamSpec {
                    drift: v0,
                    vth,
                    weight: 0.5,
                },
                BeamSpec {
                    drift: -v0,
                    vth,
                    weight: 0.5,
                },
            ],
            SpeciesSpec::Maxwellian { vth } => {
                vec![BeamSpec {
                    drift: 0.0,
                    vth,
                    weight: 1.0,
                }]
            }
            SpeciesSpec::BumpOnTail {
                bulk_vth,
                beam_v,
                beam_vth,
                beam_fraction,
            } => vec![
                BeamSpec {
                    drift: 0.0,
                    vth: bulk_vth,
                    weight: 1.0 - beam_fraction,
                },
                BeamSpec {
                    drift: beam_v,
                    vth: beam_vth,
                    weight: beam_fraction,
                },
            ],
            SpeciesSpec::DriftingMaxwellian { drift, vth } => vec![BeamSpec {
                drift,
                vth,
                weight: 1.0,
            }],
        };
        MultiBeamInit {
            beams,
            n_particles: self.n_particles(),
            loading: self.loading_1d(),
            seed: self.seed,
        }
    }

    /// The 2-D init (symmetric species only).
    pub(crate) fn init_2d(&self) -> Option<TwoStream2DInit> {
        let (v0, vth) = self.species.as_two_stream()?;
        let loading = match self.loading {
            LoadingSpec::Random => Loading2D::Random,
            LoadingSpec::Quiet { mode, amplitude } => Loading2D::Quiet { mode, amplitude },
        };
        Some(TwoStream2DInit {
            v0,
            vth,
            n_particles: self.n_particles(),
            loading,
            seed: self.seed,
        })
    }

    // ------------------------------------------------------------------
    // JSON round-trip.
    // ------------------------------------------------------------------

    /// Serializes to a JSON document (serde-compatible shape; see
    /// [`super::json`] for why serde itself is not used).
    pub fn to_json(&self) -> String {
        self.to_json_value().to_pretty()
    }

    /// The spec as a [`Json`] value — the embeddable form used by session
    /// checkpoints, which carry the spec alongside the mutable state.
    pub fn to_json_value(&self) -> Json {
        let domain = match self.domain {
            DomainSpec::OneD { ncells, length } => obj(vec![
                ("dim", Json::Str("1d".into())),
                ("ncells", Json::Num(ncells as f64)),
                ("length", Json::Num(length)),
            ]),
            DomainSpec::TwoD { nx, ny, lx, ly } => obj(vec![
                ("dim", Json::Str("2d".into())),
                ("nx", Json::Num(nx as f64)),
                ("ny", Json::Num(ny as f64)),
                ("lx", Json::Num(lx)),
                ("ly", Json::Num(ly)),
            ]),
        };
        let species = match self.species {
            SpeciesSpec::TwoStream { v0, vth } => obj(vec![
                ("kind", Json::Str("two_stream".into())),
                ("v0", Json::Num(v0)),
                ("vth", Json::Num(vth)),
            ]),
            SpeciesSpec::Maxwellian { vth } => obj(vec![
                ("kind", Json::Str("maxwellian".into())),
                ("vth", Json::Num(vth)),
            ]),
            SpeciesSpec::BumpOnTail {
                bulk_vth,
                beam_v,
                beam_vth,
                beam_fraction,
            } => obj(vec![
                ("kind", Json::Str("bump_on_tail".into())),
                ("bulk_vth", Json::Num(bulk_vth)),
                ("beam_v", Json::Num(beam_v)),
                ("beam_vth", Json::Num(beam_vth)),
                ("beam_fraction", Json::Num(beam_fraction)),
            ]),
            SpeciesSpec::DriftingMaxwellian { drift, vth } => obj(vec![
                ("kind", Json::Str("drifting_maxwellian".into())),
                ("drift", Json::Num(drift)),
                ("vth", Json::Num(vth)),
            ]),
        };
        let loading = match self.loading {
            LoadingSpec::Random => obj(vec![("kind", Json::Str("random".into()))]),
            LoadingSpec::Quiet { mode, amplitude } => obj(vec![
                ("kind", Json::Str("quiet".into())),
                ("mode", Json::Num(mode as f64)),
                ("amplitude", Json::Num(amplitude)),
            ]),
        };
        obj(vec![
            ("name", Json::Str(self.name.clone())),
            ("domain", domain),
            ("species", species),
            ("loading", loading),
            ("scale", Json::Str(self.scale.name().into())),
            ("ppc", Json::Num(self.ppc as f64)),
            ("dt", Json::Num(self.dt)),
            ("n_steps", Json::Num(self.n_steps as f64)),
            ("seed", Json::Num(self.seed as f64)),
            (
                "tracked_modes",
                Json::Arr(
                    self.tracked_modes
                        .iter()
                        .map(|&m| Json::Num(m as f64))
                        .collect(),
                ),
            ),
        ])
    }

    /// Deserializes a document produced by [`Self::to_json`] (or written by
    /// hand / any serde emitter with the same shape), then validates it.
    pub fn from_json(text: &str) -> Result<Self, EngineError> {
        let doc = Json::parse(text)?;
        Self::from_json_value(&doc)
    }

    /// Deserializes from a [`Json`] value (inverse of
    /// [`Self::to_json_value`]), then validates.
    pub fn from_json_value(doc: &Json) -> Result<Self, EngineError> {
        let domain_doc = doc.field("domain")?;
        let domain = match domain_doc.field("dim")?.as_str()? {
            "1d" => DomainSpec::OneD {
                ncells: domain_doc.field("ncells")?.as_usize()?,
                length: domain_doc.field("length")?.as_f64()?,
            },
            "2d" => DomainSpec::TwoD {
                nx: domain_doc.field("nx")?.as_usize()?,
                ny: domain_doc.field("ny")?.as_usize()?,
                lx: domain_doc.field("lx")?.as_f64()?,
                ly: domain_doc.field("ly")?.as_f64()?,
            },
            other => {
                return Err(EngineError::InvalidSpec {
                    scenario: String::new(),
                    what: format!("unknown domain dim `{other}`"),
                })
            }
        };
        let species_doc = doc.field("species")?;
        let species = match species_doc.field("kind")?.as_str()? {
            "two_stream" => SpeciesSpec::TwoStream {
                v0: species_doc.field("v0")?.as_f64()?,
                vth: species_doc.field("vth")?.as_f64()?,
            },
            "maxwellian" => SpeciesSpec::Maxwellian {
                vth: species_doc.field("vth")?.as_f64()?,
            },
            "bump_on_tail" => SpeciesSpec::BumpOnTail {
                bulk_vth: species_doc.field("bulk_vth")?.as_f64()?,
                beam_v: species_doc.field("beam_v")?.as_f64()?,
                beam_vth: species_doc.field("beam_vth")?.as_f64()?,
                beam_fraction: species_doc.field("beam_fraction")?.as_f64()?,
            },
            "drifting_maxwellian" => SpeciesSpec::DriftingMaxwellian {
                drift: species_doc.field("drift")?.as_f64()?,
                vth: species_doc.field("vth")?.as_f64()?,
            },
            other => {
                return Err(EngineError::InvalidSpec {
                    scenario: String::new(),
                    what: format!("unknown species kind `{other}`"),
                })
            }
        };
        let loading_doc = doc.field("loading")?;
        let loading = match loading_doc.field("kind")?.as_str()? {
            "random" => LoadingSpec::Random,
            "quiet" => LoadingSpec::Quiet {
                mode: loading_doc.field("mode")?.as_usize()?,
                amplitude: loading_doc.field("amplitude")?.as_f64()?,
            },
            other => {
                return Err(EngineError::InvalidSpec {
                    scenario: String::new(),
                    what: format!("unknown loading kind `{other}`"),
                })
            }
        };
        let scale_name = doc.field("scale")?.as_str()?;
        let scale = Scale::parse(scale_name).ok_or_else(|| EngineError::InvalidSpec {
            scenario: String::new(),
            what: format!("unknown scale `{scale_name}`"),
        })?;
        let spec = Self {
            name: doc.field("name")?.as_str()?.to_string(),
            domain,
            species,
            loading,
            scale,
            ppc: doc.field("ppc")?.as_usize()?,
            dt: doc.field("dt")?.as_f64()?,
            n_steps: doc.field("n_steps")?.as_usize()?,
            seed: doc.field("seed")?.as_u64()?,
            tracked_modes: doc
                .field("tracked_modes")?
                .as_arr()?
                .iter()
                .map(|m| m.as_usize())
                .collect::<Result<Vec<_>, _>>()?,
        };
        spec.validate()?;
        Ok(spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_spec() -> ScenarioSpec {
        ScenarioSpec {
            name: "test".into(),
            domain: DomainSpec::paper_1d(),
            species: SpeciesSpec::TwoStream {
                v0: 0.2,
                vth: 0.025,
            },
            loading: LoadingSpec::Random,
            scale: Scale::Smoke,
            ppc: 10,
            dt: 0.2,
            n_steps: 5,
            seed: 1,
            tracked_modes: vec![1, 2],
        }
    }

    #[test]
    fn valid_spec_passes() {
        base_spec().validate().unwrap();
    }

    type SpecMutation = (&'static str, Box<dyn Fn(&mut ScenarioSpec)>);

    #[test]
    fn validation_catches_bad_fields() {
        let cases: Vec<SpecMutation> = vec![
            ("empty name", Box::new(|s| s.name.clear())),
            ("zero ppc", Box::new(|s| s.ppc = 0)),
            ("zero steps", Box::new(|s| s.n_steps = 0)),
            ("bad dt", Box::new(|s| s.dt = 0.0)),
            ("nan dt", Box::new(|s| s.dt = f64::NAN)),
            ("mode zero", Box::new(|s| s.tracked_modes = vec![0])),
            (
                "negative vth",
                Box::new(|s| s.species = SpeciesSpec::TwoStream { v0: 0.2, vth: -1.0 }),
            ),
            (
                "bad beam fraction",
                Box::new(|s| {
                    s.species = SpeciesSpec::BumpOnTail {
                        bulk_vth: 0.05,
                        beam_v: 0.3,
                        beam_vth: 0.01,
                        beam_fraction: 1.5,
                    }
                }),
            ),
            (
                "bad domain",
                Box::new(|s| {
                    s.domain = DomainSpec::OneD {
                        ncells: 1,
                        length: 2.0,
                    }
                }),
            ),
        ];
        for (what, mutate) in cases {
            let mut spec = base_spec();
            mutate(&mut spec);
            assert!(spec.validate().is_err(), "accepted: {what}");
        }
    }

    #[test]
    fn odd_totals_rejected_for_beam_pairs() {
        let mut spec = base_spec();
        spec.domain = DomainSpec::OneD {
            ncells: 3,
            length: 2.0,
        };
        spec.ppc = 3; // 9 particles, odd
        assert!(spec.validate().is_err());
        // Bump-on-tail has no ± balancing requirement.
        spec.species = SpeciesSpec::BumpOnTail {
            bulk_vth: 0.05,
            beam_v: 0.3,
            beam_vth: 0.01,
            beam_fraction: 0.2,
        };
        spec.validate().unwrap();
    }

    #[test]
    fn oversized_seeds_rejected_to_keep_json_exact() {
        let mut spec = base_spec();
        spec.seed = (1u64 << 53) - 1;
        spec.validate().unwrap();
        let round = ScenarioSpec::from_json(&spec.to_json()).unwrap();
        assert_eq!(round.seed, spec.seed);
        spec.seed = 1u64 << 53;
        assert!(spec.validate().is_err());
    }

    #[test]
    fn json_round_trip_1d() {
        let spec = base_spec();
        let round = ScenarioSpec::from_json(&spec.to_json()).unwrap();
        assert_eq!(round, spec);
    }

    #[test]
    fn json_round_trip_2d_and_quiet() {
        let mut spec = base_spec();
        spec.domain = DomainSpec::default_2d();
        spec.loading = LoadingSpec::Quiet {
            mode: 1,
            amplitude: 1e-3,
        };
        spec.ppc = 4;
        let round = ScenarioSpec::from_json(&spec.to_json()).unwrap();
        assert_eq!(round, spec);
    }

    #[test]
    fn from_json_rejects_garbage() {
        assert!(ScenarioSpec::from_json("not json").is_err());
        assert!(ScenarioSpec::from_json("{}").is_err());
        let mut spec = base_spec();
        spec.ppc = 0;
        // Serializes fine, fails validation on the way back in.
        assert!(ScenarioSpec::from_json(&spec.to_json()).is_err());
    }
}

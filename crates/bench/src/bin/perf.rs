//! **§VII performance discussion** — wall-clock comparison of the
//! field-solve stage.
//!
//! The paper argues (without measuring) that "the DL electric field solver
//! is a simple prediction/inference step involving a series of
//! matrix-vector multiplications … traditional PIC methods require a
//! linear system that involves more operations than the
//! prediction/inference step". This binary measures both stages — plus the
//! stages they share — so the claim can be evaluated quantitatively on
//! this hardware. Criterion microbenches of the same kernels live in
//! `benches/`.
//!
//! Run: `cargo run -p dlpic-bench --release --bin perf [--scale ...]`

use dlpic_analytics::series::Table;
use dlpic_bench::{get_or_train_mlp, out_dir, Cli};
use dlpic_core::phase_space::{bin_phase_space, BinningShape};
use dlpic_pic::deposit::{add_uniform_background, deposit_charge};
use dlpic_pic::efield::efield_from_phi;
use dlpic_pic::gather::gather_field;
use dlpic_pic::grid::Grid1D;
use dlpic_pic::init::TwoStreamInit;
use dlpic_pic::poisson::{FdPoisson, PoissonSolver, SpectralPoisson};
use dlpic_pic::shape::Shape;
use dlpic_pic::solver::FieldSolver as _;
use std::time::Instant;

/// Times `f` over enough repetitions for a stable estimate; returns
/// microseconds per call.
fn time_us(mut f: impl FnMut(), reps: usize) -> f64 {
    // Warm-up.
    for _ in 0..reps.div_ceil(10).max(1) {
        f();
    }
    let t0 = Instant::now();
    for _ in 0..reps {
        f();
    }
    t0.elapsed().as_secs_f64() * 1e6 / reps as f64
}

fn main() {
    let cli = Cli::parse();
    println!(
        "== §VII: field-solver stage timing [{} scale] ==\n",
        cli.scale.name()
    );

    let grid = Grid1D::paper();
    let particles = TwoStreamInit::random(0.2, 0.025, 64_000, 7).build(&grid);
    let mut rho = grid.zeros();
    let mut phi = grid.zeros();
    let mut e = grid.zeros();
    let mut e_part = vec![0.0; particles.len()];

    // Traditional pipeline, stage by stage.
    let t_deposit = time_us(
        || {
            rho.iter_mut().for_each(|r| *r = 0.0);
            deposit_charge(&particles, &grid, Shape::Cic, &mut rho);
            add_uniform_background(&mut rho, 1.0);
        },
        50,
    );
    let mut fd = FdPoisson::new();
    let t_poisson_fd = time_us(|| fd.solve(&grid, &rho, &mut phi), 2_000);
    let mut sp = SpectralPoisson::new();
    let t_poisson_sp = time_us(|| sp.solve(&grid, &rho, &mut phi), 2_000);
    let t_gradient = time_us(|| efield_from_phi(&grid, &phi, &mut e), 10_000);

    // Shared stages.
    let t_gather = time_us(
        || gather_field(&particles, &grid, Shape::Cic, &e, &mut e_part),
        50,
    );

    // DL pipeline: binning + normalization + inference.
    let bundle = get_or_train_mlp(cli.scale, cli.retrain, true);
    let spec = bundle.spec;
    let norm = bundle.norm;
    let mut solver = bundle.into_solver().expect("bundle -> solver");
    let mut hist = vec![0.0f32; spec.cells()];
    let t_binning = time_us(
        || bin_phase_space(&particles, &grid, &spec, BinningShape::Ngp, &mut hist),
        50,
    );
    let t_normalize = time_us(|| norm.apply(&mut hist), 10_000);
    let t_inference = time_us(
        || {
            let _ = solver.predict_from_histogram(&hist);
        },
        200,
    );
    let t_dl_total = time_us(|| solver.solve(&particles, &grid, &mut e), 50);

    let trad_solve = t_deposit + t_poisson_fd + t_gradient;
    let mut table = Table::new(&["Stage", "Method", "µs/call"]);
    let f = |v: f64| format!("{v:.1}");
    table.row(&[
        "charge deposit (64k, CIC)".into(),
        "traditional".into(),
        f(t_deposit),
    ]);
    table.row(&[
        "Poisson solve (FD/Thomas)".into(),
        "traditional".into(),
        f(t_poisson_fd),
    ]);
    table.row(&[
        "Poisson solve (spectral)".into(),
        "traditional".into(),
        f(t_poisson_sp),
    ]);
    table.row(&["E = -grad(phi)".into(), "traditional".into(), f(t_gradient)]);
    table.row(&[
        "TOTAL field solve".into(),
        "traditional".into(),
        f(trad_solve),
    ]);
    table.row(&[
        "phase-space binning (64k)".into(),
        "dl-based".into(),
        f(t_binning),
    ]);
    table.row(&["normalization".into(), "dl-based".into(), f(t_normalize)]);
    table.row(&[
        "network inference (MLP)".into(),
        "dl-based".into(),
        f(t_inference),
    ]);
    table.row(&["TOTAL field solve".into(), "dl-based".into(), f(t_dl_total)]);
    table.row(&["field gather (shared)".into(), "both".into(), f(t_gather)]);
    println!("{}", table.render());

    println!(
        "ratio DL/traditional field solve: {:.2}x",
        t_dl_total / trad_solve
    );
    println!();
    println!("notes: the paper's argument concerns the *linear solve* vs *inference*");
    println!("       comparison: FD Poisson {t_poisson_fd:.1} µs vs MLP inference {t_inference:.1} µs here;");
    println!("       at 64 cells the 1-D linear system is tiny, so on this problem the");
    println!("       deposit/binning over 64k particles dominates either pipeline —");
    println!("       measured numbers quantify what §VII left qualitative.");

    let csv = out_dir().join(format!("perf-{}.csv", cli.scale.name()));
    std::fs::write(&csv, table.to_csv()).expect("write CSV");
    println!("\nwrote {}", csv.display());
}

//! # dlpic-core
//!
//! The paper's contribution: the **DL-based Particle-in-Cell method** of
//! Aguilar & Markidis (CLUSTER 2021).
//!
//! The DL-based PIC keeps the traditional gather + leap-frog mover and
//! replaces the deposition + Poisson field solve (the grey boxes of the
//! paper's Fig. 2) with:
//!
//! 1. [`phase_space`] — binning of the electron `(x, v)` phase space into
//!    a 2-D histogram;
//! 2. [`normalize`] — the dataset min–max transform of paper Eq. 5;
//! 3. [`field_solver::DlFieldSolver`] — a neural-network inference that
//!    maps the histogram to the 64-cell electric field. It implements
//!    `dlpic_pic::solver::FieldSolver`, so the *same* simulation loop runs
//!    both methods.
//!
//! [`builder`] constructs the paper's §IV.A architectures (MLP: 3×1024
//! ReLU hidden + 64 linear out; CNN: two blocks of conv→conv→pool + 3 FC), plus the
//! residual MLP suggested in §VII. [`physics_loss`] implements the
//! PINN-flavoured loss §VII proposes. [`bundle`] persists trained solvers;
//! [`presets`] defines the smoke/scaled/paper experiment scales.

#![warn(missing_docs)]

pub mod builder;
pub mod bundle;
pub mod field_solver;
pub mod normalize;
pub mod phase_space;
pub mod physics_loss;
pub mod pool;
pub mod presets;
pub mod temporal;
pub mod twod;

pub use builder::{ArchSpec, InputKind};
pub use bundle::{BundleError, FrozenBundle, ModelBundle};
pub use field_solver::DlFieldSolver;
pub use normalize::NormStats;
pub use phase_space::{bin_phase_space, phase_space_histogram, BinningShape, PhaseGridSpec};
pub use physics_loss::PhysicsInformedMse;
pub use presets::Scale;
pub use temporal::TemporalDlSolver;
pub use twod::{DensityBinning, Dl2DFieldSolver, Frozen2DModel};

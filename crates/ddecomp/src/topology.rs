//! Rank topology: the partition of the periodic 1-D grid into contiguous
//! cell slabs.

use dlpic_pic::grid::Grid1D;

/// A 1-D slab decomposition of `ncells` grid cells over `n_ranks` ranks.
///
/// Rank `r` owns nodes `[r·c, (r+1)·c)` with `c = ncells / n_ranks`, and
/// the particles whose positions fall in the matching interval of the box.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Topology {
    n_ranks: usize,
    ncells: usize,
}

impl Topology {
    /// Creates a slab decomposition.
    ///
    /// # Panics
    /// Panics when `n_ranks` is zero or does not divide `ncells`.
    pub fn new(n_ranks: usize, ncells: usize) -> Self {
        assert!(n_ranks > 0, "need at least one rank");
        assert!(
            ncells.is_multiple_of(n_ranks),
            "ranks ({n_ranks}) must divide the cell count ({ncells})"
        );
        Self { n_ranks, ncells }
    }

    /// Number of ranks.
    #[inline]
    pub fn n_ranks(&self) -> usize {
        self.n_ranks
    }

    /// Global cell count.
    #[inline]
    pub fn ncells(&self) -> usize {
        self.ncells
    }

    /// Cells (== owned nodes) per rank.
    #[inline]
    pub fn cells_per_rank(&self) -> usize {
        self.ncells / self.n_ranks
    }

    /// First owned node of `rank`.
    #[inline]
    pub fn slab_start(&self, rank: usize) -> usize {
        debug_assert!(rank < self.n_ranks);
        rank * self.cells_per_rank()
    }

    /// One-past-the-last owned node of `rank`.
    #[inline]
    pub fn slab_end(&self, rank: usize) -> usize {
        self.slab_start(rank) + self.cells_per_rank()
    }

    /// The rank owning global node `cell`.
    #[inline]
    pub fn rank_of_cell(&self, cell: usize) -> usize {
        debug_assert!(cell < self.ncells);
        cell / self.cells_per_rank()
    }

    /// The rank owning a particle at position `x` on `grid`.
    ///
    /// Ownership is by *cell* (`floor(x/dx)`), so positions exactly on a
    /// slab boundary belong to the right slab, and `x` just below `L`
    /// belongs to the last rank.
    #[inline]
    pub fn rank_of_position(&self, x: f64, grid: &Grid1D) -> usize {
        let cell = ((x / grid.dx()) as usize).min(self.ncells - 1);
        self.rank_of_cell(cell)
    }

    /// Left (periodic) neighbour of `rank`.
    #[inline]
    pub fn left(&self, rank: usize) -> usize {
        (rank + self.n_ranks - 1) % self.n_ranks
    }

    /// Right (periodic) neighbour of `rank`.
    #[inline]
    pub fn right(&self, rank: usize) -> usize {
        (rank + 1) % self.n_ranks
    }

    /// Iterator over all rank ids.
    pub fn ranks(&self) -> std::ops::Range<usize> {
        0..self.n_ranks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slabs_tile_the_grid() {
        let topo = Topology::new(4, 64);
        assert_eq!(topo.cells_per_rank(), 16);
        let mut covered = [false; 64];
        for r in topo.ranks() {
            #[allow(clippy::needless_range_loop)]
            for c in topo.slab_start(r)..topo.slab_end(r) {
                assert!(!covered[c], "cell {c} covered twice");
                covered[c] = true;
                assert_eq!(topo.rank_of_cell(c), r);
            }
        }
        assert!(covered.iter().all(|&c| c));
    }

    #[test]
    fn neighbours_wrap_periodically() {
        let topo = Topology::new(4, 64);
        assert_eq!(topo.left(0), 3);
        assert_eq!(topo.right(3), 0);
        assert_eq!(topo.left(2), 1);
        assert_eq!(topo.right(1), 2);
    }

    #[test]
    fn single_rank_owns_everything() {
        let topo = Topology::new(1, 64);
        assert_eq!(topo.cells_per_rank(), 64);
        assert_eq!(topo.left(0), 0);
        assert_eq!(topo.right(0), 0);
        for c in 0..64 {
            assert_eq!(topo.rank_of_cell(c), 0);
        }
    }

    #[test]
    fn position_ownership_follows_cells() {
        let grid = Grid1D::new(64, 2.0532);
        let topo = Topology::new(4, 64);
        assert_eq!(topo.rank_of_position(0.0, &grid), 0);
        // Just below the box end: last rank.
        assert_eq!(topo.rank_of_position(grid.length() - 1e-12, &grid), 3);
        // A slab boundary belongs to the right slab.
        let boundary = grid.dx() * 16.0;
        assert_eq!(topo.rank_of_position(boundary, &grid), 1);
        assert_eq!(topo.rank_of_position(boundary - 1e-12, &grid), 0);
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn indivisible_rank_count_rejected() {
        let _ = Topology::new(3, 64);
    }
}

//! Charge deposition (particles → grid), paper Fig. 1 third phase.
//!
//! The scatter is parallelized with the fold/reduce idiom: each rayon
//! worker accumulates into a private grid which are then summed, keeping
//! the hot loop free of atomics. On a single-core machine rayon degrades to
//! the sequential path with no contention overhead.

use crate::grid::Grid1D;
use crate::particles::Particles;
use crate::shape::Shape;
use rayon::prelude::*;

/// Minimum particle count before the parallel path is worth spawning.
const PAR_THRESHOLD: usize = 1 << 15;

/// Deposits particle charge density onto grid nodes: `ρ_j += Σ_p q·W/dx`.
///
/// `rho` is *accumulated into* (callers zero it or pre-fill with the ion
/// background).
///
/// # Panics
/// Panics if `rho` length differs from the grid node count.
pub fn deposit_charge(particles: &Particles, grid: &Grid1D, shape: Shape, rho: &mut [f64]) {
    assert_eq!(rho.len(), grid.ncells(), "rho length mismatch");
    let scale = particles.charge() / grid.dx();
    if particles.len() >= PAR_THRESHOLD && rayon::current_num_threads() > 1 {
        let partial = particles
            .x
            .par_chunks(PAR_THRESHOLD / 2)
            .fold(
                || vec![0.0f64; grid.ncells()],
                |mut acc, chunk| {
                    scatter_chunk(chunk, grid, shape, scale, &mut acc);
                    acc
                },
            )
            .reduce(
                || vec![0.0f64; grid.ncells()],
                |mut a, b| {
                    for (x, y) in a.iter_mut().zip(&b) {
                        *x += y;
                    }
                    a
                },
            );
        for (r, p) in rho.iter_mut().zip(&partial) {
            *r += p;
        }
    } else {
        scatter_chunk(&particles.x, grid, shape, scale, rho);
    }
}

/// Sequential scatter of one chunk of positions.
fn scatter_chunk(xs: &[f64], grid: &Grid1D, shape: Shape, scale: f64, rho: &mut [f64]) {
    let inv_dx = 1.0 / grid.dx();
    let n = grid.ncells();
    match shape {
        Shape::Ngp => {
            for &x in xs {
                let a = shape.assign(x * inv_dx);
                rho[grid.wrap_index(a.leftmost)] += scale;
            }
        }
        Shape::Cic => {
            for &x in xs {
                let a = shape.assign(x * inv_dx);
                let j = grid.wrap_index(a.leftmost);
                let j1 = if j + 1 == n { 0 } else { j + 1 };
                rho[j] += scale * a.w[0];
                rho[j1] += scale * a.w[1];
            }
        }
        Shape::Tsc => {
            for &x in xs {
                let a = shape.assign(x * inv_dx);
                for (o, w) in a.w.iter().enumerate() {
                    rho[grid.wrap_index(a.leftmost + o as i64)] += scale * w;
                }
            }
        }
    }
}

/// Adds the uniform neutralizing ion background (+1 in normalized units for
/// the paper's setup) to a charge-density array.
pub fn add_uniform_background(rho: &mut [f64], density: f64) {
    for r in rho.iter_mut() {
        *r += density;
    }
}

/// Net charge ∫ρ dx of a density array — zero for a neutralized plasma.
pub fn net_charge(rho: &[f64], grid: &Grid1D) -> f64 {
    rho.iter().sum::<f64>() * grid.dx()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn electrons_at(xs: Vec<f64>, grid: &Grid1D) -> Particles {
        let n = xs.len();
        Particles::electrons_normalized(xs, vec![0.0; n], grid.length())
    }

    #[test]
    fn particle_on_node_deposits_fully_there() {
        let grid = Grid1D::new(8, 8.0); // dx = 1
        for shape in [Shape::Ngp, Shape::Cic] {
            let p = electrons_at(vec![3.0], &grid);
            let mut rho = grid.zeros();
            deposit_charge(&p, &grid, shape, &mut rho);
            assert!((rho[3] - p.charge() / grid.dx()).abs() < 1e-15, "{shape:?}");
            let off: f64 = rho
                .iter()
                .enumerate()
                .filter(|(j, _)| *j != 3)
                .map(|(_, r)| r.abs())
                .sum();
            assert!(off < 1e-15, "{shape:?} leaked charge {off}");
        }
    }

    #[test]
    fn cic_splits_between_adjacent_nodes() {
        let grid = Grid1D::new(8, 8.0);
        let p = electrons_at(vec![3.25], &grid);
        let mut rho = grid.zeros();
        deposit_charge(&p, &grid, Shape::Cic, &mut rho);
        let q_dx = p.charge() / grid.dx();
        assert!((rho[3] - 0.75 * q_dx).abs() < 1e-15);
        assert!((rho[4] - 0.25 * q_dx).abs() < 1e-15);
    }

    #[test]
    fn periodic_wrap_at_right_edge() {
        let grid = Grid1D::new(8, 8.0);
        // Particle between the last node and the (periodic) first node.
        let p = electrons_at(vec![7.5], &grid);
        let mut rho = grid.zeros();
        deposit_charge(&p, &grid, Shape::Cic, &mut rho);
        let q_dx = p.charge() / grid.dx();
        assert!((rho[7] - 0.5 * q_dx).abs() < 1e-15);
        assert!((rho[0] - 0.5 * q_dx).abs() < 1e-15);
    }

    #[test]
    fn uniform_background_neutralizes_uniform_plasma() {
        let grid = Grid1D::paper();
        let n = 64_000;
        // Exactly uniform particle positions.
        let xs: Vec<f64> = (0..n)
            .map(|i| (i as f64 + 0.5) / n as f64 * grid.length())
            .collect();
        let p = electrons_at(xs, &grid);
        let mut rho = grid.zeros();
        deposit_charge(&p, &grid, Shape::Cic, &mut rho);
        add_uniform_background(&mut rho, 1.0);
        for (j, r) in rho.iter().enumerate() {
            assert!(r.abs() < 1e-9, "node {j}: residual {r}");
        }
    }

    #[test]
    fn net_charge_of_neutralized_system_is_zero() {
        let grid = Grid1D::paper();
        let p = TwoStreamInitHelper::build(4_000, &grid);
        let mut rho = grid.zeros();
        deposit_charge(&p, &grid, Shape::Tsc, &mut rho);
        add_uniform_background(&mut rho, 1.0);
        assert!(net_charge(&rho, &grid).abs() < 1e-10);
    }

    /// Local helper: random-ish particle placement without pulling init.rs
    /// into these unit tests.
    struct TwoStreamInitHelper;
    impl TwoStreamInitHelper {
        fn build(n: usize, grid: &Grid1D) -> Particles {
            let xs: Vec<f64> = (0..n)
                .map(|i| {
                    let golden = 0.618_033_988_749_894_9_f64;
                    (i as f64 * golden).fract() * grid.length()
                })
                .collect();
            electrons_at(xs, grid)
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn total_charge_conserved_for_all_shapes(
            xs in proptest::collection::vec(0.0f64..2.05, 1..200),
        ) {
            let grid = Grid1D::new(16, 2.0532);
            let xs: Vec<f64> = xs.into_iter().map(|x| grid.wrap_position(x)).collect();
            let p = electrons_at(xs, &grid);
            for shape in [Shape::Ngp, Shape::Cic, Shape::Tsc] {
                let mut rho = grid.zeros();
                deposit_charge(&p, &grid, shape, &mut rho);
                let total = net_charge(&rho, &grid);
                prop_assert!((total - p.total_charge()).abs() < 1e-9 * p.len() as f64,
                    "{shape:?}: {total} vs {}", p.total_charge());
            }
        }

        #[test]
        fn deposition_is_permutation_invariant(
            xs in proptest::collection::vec(0.0f64..2.0, 2..64),
        ) {
            let grid = Grid1D::new(8, 2.0);
            let p1 = electrons_at(xs.clone(), &grid);
            let mut reversed = xs;
            reversed.reverse();
            let p2 = electrons_at(reversed, &grid);
            let mut r1 = grid.zeros();
            let mut r2 = grid.zeros();
            deposit_charge(&p1, &grid, Shape::Cic, &mut r1);
            deposit_charge(&p2, &grid, Shape::Cic, &mut r2);
            for (a, b) in r1.iter().zip(&r2) {
                prop_assert!((a - b).abs() < 1e-12);
            }
        }
    }
}

//! Serving-tier throughput: session·steps/sec of the paper-scale 16-run
//! DL fleet driven through a live `dlpic-serve` daemon, against the same
//! fleet driven directly through `Ensemble::run_to_end(1)`.
//!
//! The serving tier re-batches co-resident DL sessions into the same
//! lockstep waves as the ensemble layer, so its wave loop should be the
//! ensemble's wave loop plus control-plane overhead (one mutex hop per
//! wave, progress accounting, subscriber fan-out with no subscribers).
//! The contract: **served ≥ 0.9× direct** — multiplexing through the
//! daemon costs at most 10% of fleet throughput.
//!
//! The served number uses the daemon's own `stepping_seconds` meter:
//! cumulative wall time of the scheduler's wave + publish work,
//! excluding session construction (both sides exclude it) and idle
//! waits. That makes the comparison windows equivalent: total fleet
//! session·steps over seconds spent actually advancing the fleet.
//!
//! Before timing, the binary verifies on a mini-fleet that histories
//! served through the daemon are bit-identical to solo runs.
//!
//! Usage (same conventions as `ensemble_throughput`):
//!
//! * `serve_throughput` — full measurement, JSON printed to stdout.
//! * `--out FILE` — write the raw measurement JSON to `FILE`.
//! * `--write-bench` — measure and write `BENCH_serve.json`.
//! * `--quick` — CI-sized workloads.
//! * `--check` — fail if the live served/direct ratio falls below
//!   `DLPIC_SERVE_MIN_RATIO` (default 0.9), or if an absolute
//!   throughput regresses more than `DLPIC_PERF_MAX_REGRESSION`
//!   (default 0.35) against the committed `BENCH_serve.json` after
//!   calibration-anchor rescaling (3× derate on a kernel-path
//!   mismatch, as in the ensemble gate), or if the daemon's per-wave
//!   latency p99 exceeds the committed `served_wave_p99_ms` by more
//!   than `DLPIC_SERVE_MAX_P99_FACTOR` (default 3) after the same
//!   rescaling.

use std::time::{Duration, Instant};

use dlpic_bench::gate::{calibration_gflops, json_string_after, json_value_after, median};
use dlpic_nn::linalg::simd_level;
use dlpic_repro::core::Scale;
use dlpic_repro::engine::json::Json;
use dlpic_repro::engine::{self, Backend, EnergyHistory, Engine, SweepSpec};
use dlpic_serve::client::Client;
use dlpic_serve::job::JobRequest;
use dlpic_serve::server::{ServeConfig, Server};

/// Same fleet geometry as `ensemble_throughput`: 16 paper-scale DL runs
/// (two full 8-row zmm tiles per batched wave), light particle load.
const RUNS: usize = 16;
const PPC: usize = 50;

fn fleet_sweep() -> SweepSpec {
    SweepSpec::grid("two_stream", Scale::Paper)
        .axis("ppc", [PPC as f64])
        .seeds(100..100 + RUNS as u64)
}

fn fleet_specs(steps: usize) -> Vec<engine::ScenarioSpec> {
    let mut specs = fleet_sweep().specs().expect("fleet expands");
    for spec in &mut specs {
        spec.n_steps = steps;
    }
    specs
}

#[derive(Clone, Copy)]
struct FleetResult {
    seconds: f64,
    steps_per_sec: f64,
}

/// Times `Ensemble::run_to_end(1)` over the fleet (construction
/// excluded — the daemon's meter excludes it too).
fn bench_direct(specs: &[engine::ScenarioSpec], reps: usize) -> FleetResult {
    let engine = Engine::new();
    let total_steps: usize = specs.iter().map(|s| s.n_steps).sum();
    let times: Vec<f64> = (0..reps)
        .map(|_| {
            let mut ensemble = engine
                .start_ensemble(specs, Backend::Dl1D)
                .expect("start ensemble");
            let t0 = Instant::now();
            ensemble.run_to_end(1);
            let dt = t0.elapsed().as_secs_f64();
            std::hint::black_box(ensemble.is_complete());
            dt
        })
        .collect();
    let seconds = median(times);
    FleetResult {
        seconds,
        steps_per_sec: total_steps as f64 / seconds,
    }
}

/// Submits the fleet as one sweep job to a fresh in-process daemon and
/// reads its `stepping_seconds` meter (and the wave-latency histogram's
/// p99) once every run is done.
fn bench_served(steps: usize, reps: usize) -> (FleetResult, f64) {
    let total_steps = RUNS * steps;
    let samples: Vec<(f64, f64)> = (0..reps)
        .map(|_| {
            let server =
                Server::start(ServeConfig::default().max_sessions(RUNS)).expect("start server");
            let mut client = Client::connect(server.addr()).expect("connect");
            let job = JobRequest::sweep(fleet_sweep(), Backend::Dl1D).with_steps(steps);
            let (id, runs) = client.submit(&job, "bench").expect("submit");
            assert_eq!(runs, RUNS);
            // Poll status (not results: no need to ship histories) until
            // every run is final, then read the meter. Poll gently: on a
            // single-core box an eager poller preempts the scheduler
            // mid-wave and its runtime would be billed to the meter.
            let sample = loop {
                let doc = client.status(Some(&id)).expect("status");
                let runs = doc.field("jobs").and_then(Json::as_arr).expect("jobs")[0]
                    .field("runs")
                    .and_then(Json::as_arr)
                    .expect("runs")
                    .to_vec();
                let all_done = runs
                    .iter()
                    .all(|r| r.field("state").and_then(Json::as_str).expect("state") == "done");
                if all_done {
                    let stepping = doc
                        .field("stepping_seconds")
                        .and_then(Json::as_f64)
                        .expect("stepping_seconds");
                    let p99 = doc
                        .field("wave_latency")
                        .and_then(|w| w.field("p99_ms"))
                        .and_then(Json::as_f64)
                        .expect("wave_latency p99");
                    break (stepping, p99);
                }
                std::thread::sleep(Duration::from_millis(100));
            };
            client.drain().expect("drain");
            server.wait();
            sample
        })
        .collect();
    let seconds = median(samples.iter().map(|s| s.0).collect());
    let p99 = median(samples.iter().map(|s| s.1).collect());
    (
        FleetResult {
            seconds,
            steps_per_sec: total_steps as f64 / seconds,
        },
        p99,
    )
}

/// Asserts (on a mini-fleet) that histories served through the daemon
/// reproduce solo runs bit-for-bit before any number is reported.
fn verify_bit_identity() {
    let steps = 4;
    let specs: Vec<engine::ScenarioSpec> = fleet_specs(steps).into_iter().take(4).collect();
    let server = Server::start(ServeConfig::default()).expect("start server");
    let mut client = Client::connect(server.addr()).expect("connect");
    let sweep = SweepSpec::grid("two_stream", Scale::Paper)
        .axis("ppc", [PPC as f64])
        .seeds(100..104);
    let job = JobRequest::sweep(sweep, Backend::Dl1D).with_steps(steps);
    let (id, _) = client.submit(&job, "verify").expect("submit");
    let results = client
        .wait_for(&id, Duration::from_millis(10))
        .expect("wait");
    for (i, (result, spec)) in results.iter().zip(&specs).enumerate() {
        let served =
            EnergyHistory::from_json_value(result.summary.field("history").expect("history"))
                .expect("history parses");
        let solo = Engine::new().run(spec, Backend::Dl1D).expect("solo run");
        assert!(
            served == solo.history,
            "run {i}: served history differs from solo — the daemon is not exact"
        );
    }
    client.drain().expect("drain");
    server.wait();
    eprintln!("bit-identity: served histories == solo histories (4-run fleet)");
}

struct Measurement {
    calibration: f64,
    simd: &'static str,
    steps: usize,
    direct: FleetResult,
    served: FleetResult,
    /// p99 of the daemon's per-wave latency histogram (median over reps).
    wave_p99_ms: f64,
}

fn measure(quick: bool) -> Measurement {
    let (steps, reps) = if quick { (30, 3) } else { (60, 5) };
    eprintln!("measuring calibration anchor...");
    let calibration = calibration_gflops(reps);
    verify_bit_identity();
    let specs = fleet_specs(steps);
    eprintln!("measuring direct ensemble ({RUNS} runs x {steps} steps x {reps} reps)...");
    let direct = bench_direct(&specs, reps);
    eprintln!("measuring served fleet through the daemon...");
    let (served, wave_p99_ms) = bench_served(steps, reps);
    Measurement {
        calibration,
        simd: simd_level(),
        steps,
        direct,
        served,
        wave_p99_ms,
    }
}

fn measurement_json(m: &Measurement, indent: &str) -> String {
    let fleet = |f: &FleetResult| {
        format!(
            "{{\n{indent}    \"seconds\": {:.4},\n{indent}    \"session_steps_per_sec\": {:.3e}\n{indent}  }}",
            f.seconds, f.steps_per_sec
        )
    };
    format!(
        "{{\n{indent}  \"calibration_gflops\": {:.3},\n{indent}  \"simd\": \"{}\",\n{indent}  \"runs\": {RUNS},\n{indent}  \"steps\": {},\n{indent}  \"ppc\": {PPC},\n{indent}  \"direct\": {},\n{indent}  \"served\": {},\n{indent}  \"served_vs_direct\": {:.3},\n{indent}  \"served_wave_p99_ms\": {:.3}\n{indent}}}",
        m.calibration,
        m.simd,
        m.steps,
        fleet(&m.direct),
        fleet(&m.served),
        m.served.steps_per_sec / m.direct.steps_per_sec,
        m.wave_p99_ms,
    )
}

fn print_human(m: &Measurement) {
    println!(
        "direct ensemble: {:.0} session·steps/s ({:.3}s)",
        m.direct.steps_per_sec, m.direct.seconds
    );
    println!(
        "served daemon  : {:.0} session·steps/s ({:.3}s)  -> {:.3}x vs direct",
        m.served.steps_per_sec,
        m.served.seconds,
        m.served.steps_per_sec / m.direct.steps_per_sec
    );
    println!(
        "wave latency   : p99 {:.3}ms (daemon histogram)",
        m.wave_p99_ms
    );
}

fn check(m: &Measurement) -> i32 {
    // Gate 1 (machine-relative, always active): serving must not tax the
    // fleet more than 10%.
    let min_ratio: f64 = std::env::var("DLPIC_SERVE_MIN_RATIO")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.9);
    let ratio = m.served.steps_per_sec / m.direct.steps_per_sec;
    println!("served/direct ratio: {ratio:.3}x (gate: >= {min_ratio:.2}x)");
    let mut failed = ratio < min_ratio;
    if failed {
        println!("FAIL: the serving tier costs more than the allowed multiplexing overhead");
    }

    // Gate 2: absolute throughput vs the committed numbers, rescaled by
    // the calibration anchor (same policy and tolerance rationale as the
    // ensemble gate: the ratio above is the primary contract).
    let text = match std::fs::read_to_string("BENCH_serve.json") {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read BENCH_serve.json: {e}");
            return 2;
        }
    };
    let Some(cur_at) = text.find("\"current\"") else {
        eprintln!("BENCH_serve.json has no \"current\" section");
        return 2;
    };
    let scale = match json_value_after(&text, cur_at, "calibration_gflops") {
        Some(cal) if cal > 0.0 => {
            let s = m.calibration / cal;
            println!(
                "calibration: committed {cal:.2} GFLOP/s, this machine {:.2} (scale {s:.2}x)",
                m.calibration
            );
            s
        }
        _ => 1.0,
    };
    let derate = match json_string_after(&text, cur_at, "simd").as_deref() {
        Some(committed) if committed != m.simd => {
            println!(
                "kernel-path mismatch (committed {committed}, this machine {}): derating \
                 absolute expectations 3x",
                m.simd
            );
            3.0
        }
        _ => 1.0,
    };
    let tolerance: f64 = std::env::var("DLPIC_PERF_MAX_REGRESSION")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.35);
    let committed = |section: &str| {
        let at = text[cur_at..].find(&format!("\"{section}\""))? + cur_at;
        json_value_after(&text, at, "session_steps_per_sec")
    };
    for (name, measured) in [
        ("direct", m.direct.steps_per_sec),
        ("served", m.served.steps_per_sec),
    ] {
        let Some(base) = committed(name) else {
            eprintln!("BENCH_serve.json has no parsable \"{name}\" section");
            return 2;
        };
        let expected = base * scale / derate;
        let delta = measured / expected - 1.0;
        let verdict = if delta < -tolerance {
            failed = true;
            "REGRESSION"
        } else {
            "ok"
        };
        println!(
            "{name:>10}: expected {expected:.3e}, measured {measured:.3e} ({:+.1}%) {verdict}",
            delta * 100.0
        );
    }
    // Gate 3: tail latency. The wave-latency histogram's p99 must stay
    // within a factor of the committed number after the same
    // calibration/derate rescaling (latency scales inversely with
    // machine speed). p99 is read from a log-bucketed histogram and
    // quick mode sees few waves, so the factor is generous — it catches
    // an O(n) scan smuggled into the wave loop, not jitter.
    let max_factor: f64 = std::env::var("DLPIC_SERVE_MAX_P99_FACTOR")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(3.0);
    match json_value_after(&text, cur_at, "served_wave_p99_ms") {
        Some(base) if base > 0.0 => {
            let bound = base / scale * derate * max_factor;
            let verdict = if m.wave_p99_ms > bound {
                failed = true;
                "REGRESSION"
            } else {
                "ok"
            };
            println!(
                "  wave p99: committed {base:.3}ms, bound {bound:.3}ms, measured {:.3}ms {verdict}",
                m.wave_p99_ms
            );
        }
        _ => {
            eprintln!("BENCH_serve.json has no parsable \"served_wave_p99_ms\"");
            return 2;
        }
    }

    if failed {
        println!("FAIL: serve throughput gate");
        1
    } else {
        println!("PASS: serve throughput within tolerance");
        0
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let do_check = args.iter().any(|a| a == "--check");
    let flag_value = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };

    let m = measure(quick);
    print_human(&m);

    if let Some(path) = flag_value("--out") {
        std::fs::write(&path, measurement_json(&m, "") + "\n").expect("write --out file");
        println!("wrote {path}");
    }

    if args.iter().any(|a| a == "--write-bench") {
        let json = format!(
            "{{\n  \"bench\": \"serve_throughput\",\n  \"note\": \"single-machine; compare served_vs_direct, not cross-machine absolutes. direct = Ensemble::run_to_end(1) over the same 16-run paper-scale DL fleet; served = the daemon's stepping_seconds meter over one submitted sweep job\",\n  \"current\": {}\n}}\n",
            measurement_json(&m, "  "),
        );
        std::fs::write("BENCH_serve.json", &json).expect("write BENCH_serve.json");
        println!("wrote BENCH_serve.json");
    }

    if do_check {
        std::process::exit(check(&m));
    }
}

//! Integration test: the complete DL-PIC loop — generate data, train a
//! small MLP, bundle it, and run the DL-based simulation (the paper's
//! Fig. 2 cycle) — verifying stability and qualitative agreement with the
//! traditional method.

use dlpic_repro::core::phase_space::BinningShape;
use dlpic_repro::core::{ModelBundle, Scale};
use dlpic_repro::dataset::generator::{generate, GeneratorConfig};
use dlpic_repro::dataset::spec::SweepSpec;
use dlpic_repro::nn::trainer::{train, TrainConfig};
use dlpic_repro::nn::{Adam, Mse};
use dlpic_repro::pic::presets::reduced_config;
use dlpic_repro::pic::simulation::Simulation;
use dlpic_repro::pic::solver::TraditionalSolver;

/// Trains a quick smoke-scale MLP and returns its bundle.
fn train_smoke_bundle() -> ModelBundle {
    let scale = Scale::Smoke;
    let mut cfg = GeneratorConfig::new(SweepSpec::training_for(scale), scale.phase_spec());
    cfg.ppc = scale.dataset_ppc();
    let data = generate(&cfg);
    let norm = data.input_norm_stats();
    let arch = scale.mlp_arch();
    let mut net = arch.build(11);
    let mut opt = Adam::new(scale.learning_rate());
    let tc = TrainConfig {
        epochs: 25,
        batch_size: 64,
        shuffle_seed: 2,
        log_every: 0,
    };
    let kind = arch.input_kind();
    train(
        &mut net,
        &Mse,
        &mut opt,
        &data.to_nn_dataset(&norm, kind),
        None,
        &tc,
    );
    let reference_mass: f32 = data.input_row(0).iter().sum();
    ModelBundle::from_network(&mut net, arch, scale.phase_spec(), BinningShape::Ngp, norm)
        .with_reference_mass(reference_mass)
}

#[test]
fn dl_pic_runs_stably_and_tracks_the_instability() {
    let bundle = train_smoke_bundle();

    // Serialize → deserialize → solver: the full deployment path.
    let decoded = ModelBundle::decode(&bundle.encode()).expect("bundle round trip");
    let dl_solver = decoded.into_solver().expect("bundle -> solver");

    let seed = 77;
    let (ppc, steps) = (200, 150);
    let mut dl = Simulation::new(
        reduced_config(0.2, 0.01, ppc, steps, seed),
        Box::new(dl_solver),
    );
    let mut trad = Simulation::new(
        reduced_config(0.2, 0.01, ppc, steps, seed),
        Box::new(TraditionalSolver::paper_default()),
    );
    dl.run();
    trad.run();

    // 1. Stability: everything finite, particles in the box, velocities
    //    physically bounded (a broken solver slingshots particles).
    assert!(
        dl.efield().iter().all(|v| v.is_finite()),
        "non-finite field"
    );
    let (x, v) = dl.phase_space();
    let l = dl.grid().length();
    assert!(
        x.iter().all(|&xi| (0.0..l).contains(&xi)),
        "particle escaped"
    );
    let vmax = v.iter().fold(0.0f64, |m, v| m.max(v.abs()));
    assert!(vmax < 2.0, "runaway velocities: {vmax}");

    // 2. Energy stays of the right magnitude. The smoke-quality model's
    //    field noise heats the plasma measurably, so the band is loose —
    //    this check is about catching divergence (orders of magnitude),
    //    which a broken solver produces within a handful of steps.
    let te = &dl.history().total;
    let band = (te[0] * 0.3, te[0] * 4.0);
    assert!(
        te.iter().all(|&e| e > band.0 && e < band.1),
        "energy left [{:.4}, {:.4}]",
        band.0,
        band.1
    );

    // 3. The DL run develops the same instability as the traditional run:
    //    E1 grows well above its floor in both.
    for (name, sim) in [("traditional", &trad), ("dl", &dl)] {
        let e1 = sim.history().mode_series(1).unwrap();
        let floor = e1.values[..5]
            .iter()
            .copied()
            .fold(f64::MIN, f64::max)
            .max(1e-9);
        let peak = e1.values.iter().copied().fold(f64::MIN, f64::max);
        assert!(
            peak > 3.0 * floor,
            "{name}: no growth (floor {floor}, peak {peak})"
        );
    }
}

#[test]
fn dl_solver_predictions_are_deterministic() {
    let bundle = train_smoke_bundle();
    let mut s1 = bundle.clone().into_solver().unwrap();
    let mut s2 = bundle.into_solver().unwrap();
    use dlpic_repro::pic::solver::FieldSolver as _;
    let grid = dlpic_repro::pic::Grid1D::paper();
    let p = dlpic_repro::pic::TwoStreamInit::random(0.2, 0.0, 2_000, 3).build(&grid);
    let mut e1 = grid.zeros();
    let mut e2 = grid.zeros();
    s1.solve(&p, &grid, &mut e1);
    s2.solve(&p, &grid, &mut e2);
    assert_eq!(e1, e2);
}

#[test]
fn dl_and_traditional_share_the_simulation_harness() {
    // The same PicConfig must drive both solvers (the paper's Fig. 2:
    // only the field solver changes). Histories must be structurally
    // identical.
    let bundle = train_smoke_bundle();
    let cfg = reduced_config(0.15, 0.005, 100, 20, 5);
    let mut dl = Simulation::new(cfg.clone(), Box::new(bundle.into_solver().unwrap()));
    let mut trad = Simulation::new(cfg, Box::new(TraditionalSolver::paper_default()));
    dl.run();
    trad.run();
    assert_eq!(dl.history().len(), trad.history().len());
    assert_eq!(dl.history().times, trad.history().times);
    assert_eq!(dl.solver_name(), "dl-mlp");
    assert_eq!(trad.solver_name(), "traditional");
}

//! Evaluation metrics — the two numbers of the paper's Table I.

use crate::data::Dataset;
use crate::network::Sequential;
use crate::tensor::Tensor;

/// Mean Absolute Error over all elements (paper Eq. 6).
///
/// # Panics
/// Panics on shape mismatch or empty tensors.
pub fn mae(pred: &Tensor, target: &Tensor) -> f32 {
    assert_eq!(pred.shape(), target.shape(), "shape mismatch");
    assert!(!pred.is_empty(), "empty tensors");
    let sum: f64 = pred
        .data()
        .iter()
        .zip(target.data())
        .map(|(&p, &t)| (p - t).abs() as f64)
        .sum();
    (sum / pred.len() as f64) as f32
}

/// Maximum absolute error over all elements ("Max Error" of Table I).
///
/// # Panics
/// Panics on shape mismatch.
pub fn max_abs_error(pred: &Tensor, target: &Tensor) -> f32 {
    assert_eq!(pred.shape(), target.shape(), "shape mismatch");
    pred.data()
        .iter()
        .zip(target.data())
        .map(|(&p, &t)| (p - t).abs())
        .fold(0.0, f32::max)
}

/// MAE and max error of a network over a dataset, evaluated in batches.
pub fn evaluate(net: &mut Sequential, data: &Dataset, batch_size: usize) -> (f32, f32) {
    assert!(!data.is_empty(), "empty dataset");
    let mut abs_sum = 0.0f64;
    let mut worst = 0.0f32;
    let mut count = 0usize;
    for (start, size) in data.batch_ranges(batch_size) {
        let (bx, by) = data.batch(start, size);
        let pred = net.predict(&bx);
        for (&p, &t) in pred.data().iter().zip(by.data()) {
            abs_sum += (p - t).abs() as f64;
            worst = worst.max((p - t).abs());
        }
        count += pred.len();
    }
    ((abs_sum / count as f64) as f32, worst)
}

/// Per-output-element mean absolute error (length = output width). Feeding
/// the result to an FFT gives the paper-§VII "spectral analysis of errors".
pub fn per_output_mae(net: &mut Sequential, data: &Dataset, batch_size: usize) -> Vec<f64> {
    let out_w = data.y.row_len();
    let mut acc = vec![0.0f64; out_w];
    let mut count = 0usize;
    for (start, size) in data.batch_ranges(batch_size) {
        let (bx, by) = data.batch(start, size);
        let pred = net.predict(&bx);
        for r in 0..pred.batch() {
            for (a, (&p, &t)) in acc.iter_mut().zip(pred.row(r).iter().zip(by.row(r))) {
                *a += (p - t).abs() as f64;
            }
        }
        count += size;
    }
    for a in &mut acc {
        *a /= count as f64;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::Init;
    use crate::layers::Dense;

    #[test]
    fn mae_and_max_of_known_errors() {
        let p = Tensor::new(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let t = Tensor::new(vec![1.5, 2.0, 3.0, 2.0], &[2, 2]);
        assert!((mae(&p, &t) - (0.5 + 2.0) / 4.0).abs() < 1e-6);
        assert!((max_abs_error(&p, &t) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn evaluate_identity_network() {
        // Dense initialized as the identity: predictions equal inputs.
        let mut d = Dense::new(2, 2, Init::Zeros, 0);
        let mut net = Sequential::new();
        {
            use crate::layer::Layer as _;
            d.visit_params(&mut |p, _| {
                if p.len() == 4 {
                    p.copy_from_slice(&[1.0, 0.0, 0.0, 1.0]);
                }
            });
        }
        net.push_boxed(Box::new(d));
        let x = Tensor::new(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[3, 2]);
        let data = Dataset::new(x.clone(), x);
        let (m, w) = evaluate(&mut net, &data, 2);
        assert!(m < 1e-6 && w < 1e-6);
    }

    #[test]
    fn per_output_mae_localizes_bad_output() {
        // Identity on element 0, constant 0 on element 1.
        let mut d = Dense::new(2, 2, Init::Zeros, 0);
        {
            use crate::layer::Layer as _;
            d.visit_params(&mut |p, _| {
                if p.len() == 4 {
                    p.copy_from_slice(&[1.0, 0.0, 0.0, 0.0]);
                }
            });
        }
        let mut net = Sequential::new();
        net.push_boxed(Box::new(d));
        let x = Tensor::new(vec![1.0, 1.0, 2.0, 2.0], &[2, 2]);
        let data = Dataset::new(x.clone(), x);
        let per = per_output_mae(&mut net, &data, 8);
        assert!(per[0] < 1e-9);
        assert!((per[1] - 1.5).abs() < 1e-6);
    }
}

//! Electric field from the potential: `E = −∇Φ` (paper Eq. 4), discretized
//! with periodic second-order central differences.

use crate::grid::Grid1D;

/// Computes `E_j = −(Φ_{j+1} − Φ_{j-1}) / (2·dx)` with periodic wrap.
///
/// # Panics
/// Panics if array lengths disagree with the grid.
pub fn efield_from_phi(grid: &Grid1D, phi: &[f64], e: &mut [f64]) {
    let n = grid.ncells();
    assert_eq!(phi.len(), n, "phi length mismatch");
    assert_eq!(e.len(), n, "e length mismatch");
    assert!(n >= 2, "need at least two nodes");
    let inv_2dx = 1.0 / (2.0 * grid.dx());
    // Bulk (no wrap): vectorizable window loop.
    for j in 1..n - 1 {
        e[j] = -(phi[j + 1] - phi[j - 1]) * inv_2dx;
    }
    e[0] = -(phi[1] - phi[n - 1]) * inv_2dx;
    e[n - 1] = -(phi[0] - phi[n - 2]) * inv_2dx;
}

/// Field energy `½·ε₀·Σ E_j²·dx` (ε₀ = 1) — the electrostatic half of the
/// paper's "Total Energy" plots (Figs. 5–6).
pub fn field_energy(grid: &Grid1D, e: &[f64]) -> f64 {
    assert_eq!(e.len(), grid.ncells(), "e length mismatch");
    0.5 * grid.dx() * e.iter().map(|v| v * v).sum::<f64>()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn gradient_of_cosine_potential() {
        let grid = Grid1D::paper();
        let k = grid.mode_wavenumber(1);
        let n = grid.ncells();
        let phi: Vec<f64> = (0..n).map(|j| (k * grid.node_position(j)).cos()).collect();
        let mut e = grid.zeros();
        efield_from_phi(&grid, &phi, &mut e);
        // E = -dΦ/dx = k sin(kx); central difference has sin(k dx)/(k dx)
        // attenuation.
        let attenuation = (k * grid.dx()).sin() / (k * grid.dx());
        #[allow(clippy::needless_range_loop)]
        for j in 0..n {
            let expect = k * (k * grid.node_position(j)).sin() * attenuation;
            assert!(
                (e[j] - expect).abs() < 1e-10,
                "node {j}: {} vs {expect}",
                e[j]
            );
        }
    }

    #[test]
    fn constant_potential_gives_zero_field() {
        let grid = Grid1D::new(16, 2.0);
        let phi = vec![3.3; 16];
        let mut e = vec![1.0; 16];
        efield_from_phi(&grid, &phi, &mut e);
        assert!(e.iter().all(|v| v.abs() < 1e-14));
    }

    #[test]
    fn field_energy_of_unit_field() {
        let grid = Grid1D::new(10, 5.0); // dx = 0.5
        let e = vec![1.0; 10];
        assert!((field_energy(&grid, &e) - 0.5 * 5.0).abs() < 1e-12);
    }

    #[test]
    fn wrap_rows_match_interior_for_periodic_signal() {
        let grid = Grid1D::new(64, 2.0532);
        let k = grid.mode_wavenumber(2);
        let phi: Vec<f64> = (0..64).map(|j| (k * grid.node_position(j)).sin()).collect();
        let mut e = grid.zeros();
        efield_from_phi(&grid, &phi, &mut e);
        // The analytic gradient is periodic: check edge nodes against the
        // same formula as interior nodes.
        let attenuation = (k * grid.dx()).sin() / (k * grid.dx());
        for j in [0usize, 63] {
            let expect = -k * (k * grid.node_position(j)).cos() * attenuation;
            assert!((e[j] - expect).abs() < 1e-10);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Central differences of any periodic signal sum to zero — the
        /// discrete statement that a periodic E from a potential carries no
        /// net force (momentum conservation of the field solve).
        #[test]
        fn gradient_sums_to_zero(phi in proptest::collection::vec(-10.0f64..10.0, 32)) {
            let grid = Grid1D::new(32, 2.0);
            let mut e = grid.zeros();
            efield_from_phi(&grid, &phi, &mut e);
            let total: f64 = e.iter().sum();
            prop_assert!(total.abs() < 1e-9, "ΣE = {total}");
        }

        #[test]
        fn field_energy_nonnegative_and_scales_quadratically(
            e in proptest::collection::vec(-5.0f64..5.0, 16),
            s in 0.1f64..3.0,
        ) {
            let grid = Grid1D::new(16, 1.6);
            let fe = field_energy(&grid, &e);
            prop_assert!(fe >= 0.0);
            let scaled: Vec<f64> = e.iter().map(|v| v * s).collect();
            prop_assert!((field_energy(&grid, &scaled) - s * s * fe).abs() < 1e-9 * (1.0 + fe));
        }
    }
}

//! The two distributed field-solve strategies whose communication the
//! paper's §VII compares qualitatively:
//!
//! * [`GatherScatter`] — the traditional route: deposit locally, reduce
//!   halos, gather the global charge density onto rank 0, solve the
//!   Poisson linear system there, scatter each rank its field slab (plus
//!   gather ghosts). Traffic grows with the grid size and rank count.
//! * [`ReplicatedDl`] — the DL route: bin the local phase space, all-reduce
//!   the fixed-size histogram (reduce-to-root + broadcast here), then every
//!   rank runs its replicated network and slices out its slab locally —
//!   *no field communication at all*. Traffic is a constant two histograms
//!   per non-root rank, independent of the particle count.
//!
//! Histogram payloads travel as `f64` words like everything else on the
//! fabric (8 bytes/word), although a production code would ship them as
//! `f32` — the accounting is conservative *against* the DL method, which
//! still wins by orders of magnitude.

use crate::comm::Fabric;
use crate::halo::{self, HALO};
use crate::sim::RankState;
use crate::topology::Topology;
use dlpic_core::field_solver::DlFieldSolver;
use dlpic_core::phase_space::bin_phase_space;
use dlpic_pic::deposit::add_uniform_background;
use dlpic_pic::efield::efield_from_phi;
use dlpic_pic::grid::Grid1D;
use dlpic_pic::poisson::{FdPoisson, PoissonSolver};
use dlpic_pic::shape::Shape;

/// A distributed field solve: fills every rank's extended field buffer
/// (`e_ext`: owned nodes plus [`HALO`] ghosts each side) from the current
/// particle state.
pub trait DistFieldStrategy: Send {
    /// Performs the solve across all ranks via the fabric.
    fn solve(
        &mut self,
        states: &mut [RankState],
        grid: &Grid1D,
        topo: &Topology,
        fabric: &mut Fabric,
    );

    /// Strategy name for logs and tables.
    fn name(&self) -> &'static str;
}

/// Traditional distributed solve: gather ρ to rank 0, solve, scatter E.
pub struct GatherScatter {
    shape: Shape,
    background: f64,
    poisson: FdPoisson,
    rho_global: Vec<f64>,
    phi: Vec<f64>,
    e_global: Vec<f64>,
}

impl GatherScatter {
    /// Creates the strategy with the given deposition shape and uniform
    /// ion background (+1 in the paper's units).
    pub fn new(shape: Shape, background: f64) -> Self {
        Self {
            shape,
            background,
            poisson: FdPoisson::new(),
            rho_global: Vec::new(),
            phi: Vec::new(),
            e_global: Vec::new(),
        }
    }

    /// The deposition shape.
    pub fn shape(&self) -> Shape {
        self.shape
    }

    /// The most recent globally assembled E field (valid on "rank 0"
    /// after a solve; diagnostics only).
    pub fn e_global(&self) -> &[f64] {
        &self.e_global
    }
}

impl DistFieldStrategy for GatherScatter {
    fn solve(
        &mut self,
        states: &mut [RankState],
        grid: &Grid1D,
        topo: &Topology,
        fabric: &mut Fabric,
    ) {
        let cpr = topo.cells_per_rank();
        let n = grid.ncells();

        // 1. Local deposition + halo reduction.
        for state in states.iter_mut() {
            halo::deposit_local(
                &state.particles,
                grid,
                topo,
                state.rank,
                self.shape,
                &mut state.rho_ext,
            );
        }
        for state in states.iter() {
            halo::send_halo_right(state.rank, topo, fabric, &state.rho_ext);
        }
        for state in states.iter_mut() {
            halo::recv_halo_from_left(state.rank, topo, fabric, &mut state.rho_ext);
        }
        for state in states.iter() {
            halo::send_halo_left(state.rank, topo, fabric, &state.rho_ext);
        }
        for state in states.iter_mut() {
            halo::recv_halo_from_right(state.rank, topo, fabric, &mut state.rho_ext);
        }

        // 2. Gather the owned slabs onto rank 0.
        for state in states.iter() {
            fabric.send(
                state.rank,
                0,
                crate::comm::PHASE_RHO_GATHER,
                state.rho_ext[HALO..HALO + cpr].to_vec(),
            );
        }
        self.rho_global.clear();
        self.rho_global.resize(n, 0.0);
        for rank in topo.ranks() {
            let slab = fabric.recv(0, rank).expect("missing rho slab");
            let start = topo.slab_start(rank);
            self.rho_global[start..start + cpr].copy_from_slice(&slab);
        }
        add_uniform_background(&mut self.rho_global, self.background);

        // 3. Rank 0 solves the global linear system and takes E = −∇Φ.
        self.phi.clear();
        self.phi.resize(n, 0.0);
        self.e_global.clear();
        self.e_global.resize(n, 0.0);
        self.poisson.solve(grid, &self.rho_global, &mut self.phi);
        efield_from_phi(grid, &self.phi, &mut self.e_global);

        // 4. Scatter each rank its slab plus gather ghosts.
        for rank in topo.ranks() {
            let start = topo.slab_start(rank) as i64;
            let payload: Vec<f64> = (0..cpr + 2 * HALO)
                .map(|i| {
                    let j = grid.wrap_index(start - HALO as i64 + i as i64);
                    self.e_global[j]
                })
                .collect();
            fabric.send(0, rank, crate::comm::PHASE_E_SCATTER, payload);
        }
        for state in states.iter_mut() {
            let slab = fabric.recv(state.rank, 0).expect("missing E slab");
            state.e_ext.copy_from_slice(&slab);
        }
    }

    fn name(&self) -> &'static str {
        "gather-scatter"
    }
}

/// DL distributed solve: all-reduce the phase-space histogram, infer
/// everywhere, no field exchange.
pub struct ReplicatedDl {
    solver: DlFieldSolver,
    hist_global: Vec<f32>,
    e_global: Vec<f64>,
}

impl ReplicatedDl {
    /// Wraps a trained DL field solver; conceptually every rank holds a
    /// replica of its network (the in-process emulation evaluates the one
    /// copy once per rank).
    pub fn new(solver: DlFieldSolver) -> Self {
        Self {
            solver,
            hist_global: Vec::new(),
            e_global: Vec::new(),
        }
    }

    /// The wrapped DL solver.
    pub fn solver(&self) -> &DlFieldSolver {
        &self.solver
    }

    /// The most recent global E prediction (diagnostics only).
    pub fn e_global(&self) -> &[f64] {
        &self.e_global
    }
}

impl DistFieldStrategy for ReplicatedDl {
    fn solve(
        &mut self,
        states: &mut [RankState],
        grid: &Grid1D,
        topo: &Topology,
        fabric: &mut Fabric,
    ) {
        let spec = *self.solver.spec();
        let binning = self.solver.binning();
        let cells = spec.cells();
        let cpr = topo.cells_per_rank();
        let n = grid.ncells();

        // 1. Local phase-space binning (particles only — no deposition).
        let total_mass: f64 = states.iter().map(|s| s.particles.len() as f64).sum();
        for state in states.iter_mut() {
            state.hist.resize(cells, 0.0);
            bin_phase_space(&state.particles, grid, &spec, binning, &mut state.hist);
        }

        // 2. Reduce-to-root: non-root ranks ship their histograms.
        for state in states.iter() {
            fabric.send(
                state.rank,
                0,
                crate::comm::PHASE_HIST_REDUCE,
                state.hist.iter().map(|&v| v as f64).collect(),
            );
        }
        self.hist_global.clear();
        self.hist_global.resize(cells, 0.0);
        for rank in topo.ranks() {
            let part = fabric.recv(0, rank).expect("missing histogram");
            for (acc, v) in self.hist_global.iter_mut().zip(&part) {
                *acc += *v as f32;
            }
        }

        // 3. Broadcast the summed histogram back.
        let summed: Vec<f64> = self.hist_global.iter().map(|&v| v as f64).collect();
        for rank in topo.ranks() {
            fabric.send(0, rank, crate::comm::PHASE_HIST_BCAST, summed.clone());
        }

        // 4. Every rank finishes locally: replicated inference, slice out
        //    the owned slab + ghosts. Zero field communication.
        self.e_global.clear();
        self.e_global.resize(n, 0.0);
        for state in states.iter_mut() {
            let global = fabric.recv(state.rank, 0).expect("missing broadcast");
            let hist: Vec<f32> = global.iter().map(|&v| v as f32).collect();
            self.solver
                .solve_from_raw_histogram(&hist, total_mass as f32, &mut self.e_global);
            let start = topo.slab_start(state.rank) as i64;
            for i in 0..cpr + 2 * HALO {
                let j = grid.wrap_index(start - HALO as i64 + i as i64);
                state.e_ext[i] = self.e_global[j];
            }
        }
    }

    fn name(&self) -> &'static str {
        "replicated-dl"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::RankState;
    use dlpic_core::builder::ArchSpec;
    use dlpic_core::normalize::NormStats;
    use dlpic_core::phase_space::{BinningShape, PhaseGridSpec};

    fn tiny_dl_solver() -> DlFieldSolver {
        let spec = PhaseGridSpec::smoke();
        let arch = ArchSpec::Mlp {
            input: spec.cells(),
            hidden: vec![8],
            output: 64,
        };
        DlFieldSolver::new(
            arch.build(0),
            spec,
            BinningShape::Ngp,
            NormStats::identity(),
            arch.input_kind(),
            "dl-mlp",
        )
    }

    fn make_states(grid: &Grid1D, topo: &Topology, per_rank: usize) -> Vec<RankState> {
        let w = grid.length() / (per_rank * topo.n_ranks()) as f64;
        topo.ranks()
            .map(|rank| {
                let start = topo.slab_start(rank) as f64 * grid.dx();
                let width = topo.cells_per_rank() as f64 * grid.dx();
                let xs: Vec<f64> = (0..per_rank)
                    .map(|i| start + (i as f64 + 0.5) / per_rank as f64 * width)
                    .collect();
                let p = dlpic_pic::particles::Particles::new(xs, vec![0.0; per_rank], -w, w);
                RankState::new(rank, p, topo)
            })
            .collect()
    }

    #[test]
    fn gather_scatter_matches_single_rank_field() {
        let grid = Grid1D::new(64, 2.0532);
        let mut reference_e = grid.zeros();
        {
            // Single-rank reference through the same strategy.
            let topo1 = Topology::new(1, 64);
            let mut fabric = Fabric::new(1);
            let mut states = make_states(&grid, &topo1, 1024);
            let mut strat = GatherScatter::new(Shape::Cic, 1.0);
            strat.solve(&mut states, &grid, &topo1, &mut fabric);
            reference_e.copy_from_slice(strat.e_global());
        }
        for n_ranks in [2, 4, 8] {
            let topo = Topology::new(n_ranks, 64);
            let mut fabric = Fabric::new(n_ranks);
            let mut states = make_states(&grid, &topo, 1024 / n_ranks);
            let mut strat = GatherScatter::new(Shape::Cic, 1.0);
            strat.solve(&mut states, &grid, &topo, &mut fabric);
            for (j, (a, b)) in strat.e_global().iter().zip(&reference_e).enumerate() {
                assert!((a - b).abs() < 1e-12, "R={n_ranks} node {j}: {a} vs {b}");
            }
            // Each rank's e_ext center matches its slab of the global E.
            for state in &states {
                let start = topo.slab_start(state.rank);
                for k in 0..topo.cells_per_rank() {
                    assert!((state.e_ext[HALO + k] - reference_e[start + k]).abs() < 1e-12);
                }
            }
        }
    }

    #[test]
    fn replicated_dl_needs_no_field_traffic() {
        let grid = Grid1D::new(64, 2.0532);
        let topo = Topology::new(4, 64);
        let mut fabric = Fabric::new(4);
        let mut states = make_states(&grid, &topo, 256);
        let mut strat = ReplicatedDl::new(tiny_dl_solver());
        strat.solve(&mut states, &grid, &topo, &mut fabric);

        let cells = PhaseGridSpec::smoke().cells() as u64;
        let reduce = fabric.phase_stats("hist-reduce");
        let bcast = fabric.phase_stats("hist-bcast");
        // 3 non-root ranks each way, one histogram per message.
        assert_eq!(reduce.messages, 3);
        assert_eq!(bcast.messages, 3);
        assert_eq!(reduce.bytes, 3 * 8 * cells);
        assert_eq!(bcast.bytes, 3 * 8 * cells);
        // No deposition halos, no rho gather, no E scatter.
        assert_eq!(fabric.phase_stats("deposit-halo").messages, 0);
        assert_eq!(fabric.phase_stats("rho-gather").messages, 0);
        assert_eq!(fabric.phase_stats("e-scatter").messages, 0);
    }

    #[test]
    fn replicated_dl_is_rank_count_invariant() {
        // The summed histogram — and therefore the prediction — must not
        // depend on how particles are split across ranks.
        let grid = Grid1D::new(64, 2.0532);
        let mut reference: Option<Vec<f64>> = None;
        for n_ranks in [1, 2, 4] {
            let topo = Topology::new(n_ranks, 64);
            let mut fabric = Fabric::new(n_ranks);
            let mut states = make_states(&grid, &topo, 512 / n_ranks);
            let mut strat = ReplicatedDl::new(tiny_dl_solver());
            strat.solve(&mut states, &grid, &topo, &mut fabric);
            match &reference {
                None => reference = Some(strat.e_global().to_vec()),
                Some(r) => {
                    for (j, (a, b)) in strat.e_global().iter().zip(r).enumerate() {
                        assert!((a - b).abs() < 1e-6, "R={n_ranks} node {j}: {a} vs {b}");
                    }
                }
            }
        }
    }

    #[test]
    fn traffic_scaling_favours_dl_at_scale() {
        // The §VII comparison in numbers: per-step field-solve traffic.
        let grid = Grid1D::new(64, 2.0532);
        for n_ranks in [2, 4, 8] {
            let topo = Topology::new(n_ranks, 64);

            let mut fabric_gs = Fabric::new(n_ranks);
            let mut states = make_states(&grid, &topo, 512 / n_ranks);
            GatherScatter::new(Shape::Cic, 1.0).solve(&mut states, &grid, &topo, &mut fabric_gs);
            let gs_bytes = fabric_gs.stats().bytes;

            let mut fabric_dl = Fabric::new(n_ranks);
            let mut states = make_states(&grid, &topo, 512 / n_ranks);
            ReplicatedDl::new(tiny_dl_solver()).solve(&mut states, &grid, &topo, &mut fabric_dl);
            let dl_bytes = fabric_dl.stats().bytes;

            // With the smoke 16×16 histogram the DL all-reduce is bigger
            // in absolute bytes than a 64-cell grid exchange — the point
            // is the *scaling*: GS grows with grid size, DL stays fixed.
            // Verified quantitatively in the sim-level tests; here, both
            // must at least be nonzero and GS must include halo traffic.
            assert!(gs_bytes > 0 && dl_bytes > 0, "R={n_ranks}");
            assert!(fabric_gs.phase_stats("deposit-halo").bytes > 0);
            assert_eq!(fabric_dl.phase_stats("deposit-halo").bytes, 0);
        }
    }
}

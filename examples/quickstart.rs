//! Quickstart: any registry scenario, any backend, one API.
//!
//! Runs a named scenario from the engine registry on a traditional solver
//! and on the DL solver — the *only* difference between the two runs is
//! the [`Backend`] value, exactly the drop-in-replacement design of the
//! paper's Fig. 2 — then compares growth rate and conservation from the
//! unified [`RunSummary`].
//!
//! ```sh
//! cargo run --release --example quickstart                    # two_stream, smoke
//! cargo run --release --example quickstart -- landau_damping  # any registry name
//! DLPIC_SCALE=scaled cargo run --release --example quickstart # bigger physics
//! ```

use dlpic_repro::analytics::dispersion::TwoStreamDispersion;
use dlpic_repro::analytics::plot::{line_plot, PlotOptions};
use dlpic_repro::core::Scale;
use dlpic_repro::engine::{self, Backend, Engine, EngineError, RunSummary, SpeciesSpec};

fn report(summary: &RunSummary, theory: Option<f64>) {
    println!("--- {} on {} ---", summary.scenario, summary.backend);
    println!(
        "  {} steps to t = {:.1} in {:.2}s",
        summary.steps, summary.t_end, summary.wall_seconds
    );
    println!(
        "  energy variation : {:.2}%",
        summary.energy_variation() * 100.0
    );
    println!("  momentum drift   : {:.2e}", summary.momentum_drift());
    match summary.growth_rate(1) {
        Ok(fit) => {
            print!(
                "  E1 growth rate   : γ = {:.4} (r² = {:.3})",
                fit.gamma, fit.r2
            );
            if let Some(th) = theory {
                print!("  [theory {th:.4}, {:+.1}%]", (fit.gamma - th) / th * 100.0);
            }
            println!();
        }
        // A stable scenario (cold_beam, thermal_noise) has no growth
        // phase; the typed error says so instead of panicking.
        Err(EngineError::Fit(reason)) => println!("  E1 growth rate   : none ({reason})"),
        Err(other) => println!("  E1 growth rate   : error: {other}"),
    }
    println!();
}

fn main() -> Result<(), EngineError> {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "two_stream".into());
    let scale = Scale::from_env_or(Scale::Smoke);
    println!(
        "== dlpic quickstart: `{name}` at {} scale ==\n",
        scale.name()
    );

    let mut spec = engine::scenario(&name, scale)?;
    // Specs are plain data: extend the smoke-sized run so the instability
    // has time to develop its exponential phase.
    spec.n_steps = spec.n_steps.max(150);
    println!("scenario spec (JSON, reusable with ScenarioSpec::from_json):");
    println!("{}\n", spec.to_json());

    // Linear theory reference for the two-stream family, on the spec's own
    // box length.
    let length = match spec.domain {
        dlpic_repro::engine::DomainSpec::OneD { length, .. } => length,
        dlpic_repro::engine::DomainSpec::TwoD { lx, .. } => lx,
    };
    let theory = match spec.species {
        SpeciesSpec::TwoStream { v0, vth: _ } if v0 > 0.0 => {
            Some(TwoStreamDispersion::new(v0).mode_growth_rate(1, length))
        }
        _ => None,
    };

    // 1. The traditional backend.
    let trad = engine::run(&spec, Backend::Traditional1D)?;
    report(&trad, theory);

    // 2. The DL backend: same spec, one enum value changed. A quick
    //    smoke-scale model is trained on the spot (seconds); bring a
    //    bundle from `train_field_solver` for the full-fidelity version.
    println!(
        "training a quick DL field solver at {} scale...",
        scale.name()
    );
    let bundle = engine::dl::quick_train_1d(scale, 0xD1);
    let mut eng = Engine::new().with_model_1d(bundle);
    let dl = eng.run(&spec, Backend::Dl1D)?;
    report(&dl, theory);

    // Side-by-side E1 histories.
    if let (Some(mut a), Some(mut b)) = (trad.history.mode_series(1), dl.history.mode_series(1)) {
        a.name = format!("E1 {}", trad.backend);
        b.name = format!("E1 {}", dl.backend);
        println!(
            "{}",
            line_plot(
                &[('*', &a), ('o', &b)],
                &PlotOptions::titled("E1 amplitude, traditional vs DL (log)").log_y(true),
            )
        );
    }

    let ok = trad.all_finite() && dl.all_finite();
    println!(
        "verdict: {}",
        if ok {
            "PASS — both backends ran the scenario"
        } else {
            "CHECK"
        }
    );
    Ok(())
}

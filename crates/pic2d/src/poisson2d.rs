//! Periodic 2-D Poisson solvers: `∇²Φ = −ρ/ε₀` with `ε₀ = 1`.
//!
//! Two backends, mirroring the 1-D crate's FD/spectral pair:
//!
//! * [`SpectralPoisson2D`] — exact modal inversion
//!   `Φ̂(k) = ρ̂(k)/|k|²` via the separable 2-D FFT. Requires power-of-two
//!   grid dimensions.
//! * [`SorPoisson2D`] — red–black successive over-relaxation on the
//!   5-point Laplacian; works for any grid size and is the "linear system"
//!   route the paper's §II describes, generalized to 2-D.
//!
//! Both gauge Φ to zero mean and require a compatible (zero-mean) charge
//! density, which the neutralizing ion background guarantees.

use crate::grid2d::Grid2D;
use dlpic_analytics::complex::Complex64;
use dlpic_analytics::dft::is_power_of_two;
use dlpic_analytics::dft2::{fft2_in_place_scratch, ifft2_in_place_scratch};

/// Common interface of the 2-D Poisson backends.
pub trait Poisson2DSolver: Send {
    /// Solves `∇²Φ = −ρ` on the grid, writing the zero-mean potential into
    /// `phi`.
    fn solve(&mut self, grid: &Grid2D, rho: &[f64], phi: &mut [f64]);

    /// Backend name for logs and benches.
    fn name(&self) -> &'static str;
}

/// Which 2-D Poisson backend a solver should use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Poisson2DKind {
    /// FFT-based exact modal inversion.
    #[default]
    Spectral,
    /// Red–black SOR iteration on the 5-point stencil.
    Sor,
}

/// FFT-based periodic Poisson solver.
#[derive(Debug, Default)]
pub struct SpectralPoisson2D {
    scratch: Vec<Complex64>,
    col: Vec<Complex64>,
}

impl SpectralPoisson2D {
    /// Creates a solver (scratch buffers grow on first use).
    pub fn new() -> Self {
        Self::default()
    }
}

impl Poisson2DSolver for SpectralPoisson2D {
    fn solve(&mut self, grid: &Grid2D, rho: &[f64], phi: &mut [f64]) {
        let (nx, ny) = (grid.nx(), grid.ny());
        assert_eq!(rho.len(), grid.nodes(), "rho length mismatch");
        assert_eq!(phi.len(), grid.nodes(), "phi length mismatch");
        assert!(
            is_power_of_two(nx) && is_power_of_two(ny),
            "spectral solver needs power-of-two dimensions, got {nx}×{ny}"
        );

        self.scratch.clear();
        self.scratch
            .extend(rho.iter().map(|&r| Complex64::new(r, 0.0)));
        fft2_in_place_scratch(&mut self.scratch, nx, ny, &mut self.col);

        // ∇²Φ = −ρ ⇒ Φ̂ = ρ̂ / |k|²; the mean (k = 0) mode is gauged away.
        for my in 0..ny {
            let ky = signed_wavenumber(my, ny, grid.ly());
            for mx in 0..nx {
                let idx = my * nx + mx;
                if mx == 0 && my == 0 {
                    self.scratch[idx] = Complex64::ZERO;
                    continue;
                }
                let kx = signed_wavenumber(mx, nx, grid.lx());
                let k2 = kx * kx + ky * ky;
                self.scratch[idx] = self.scratch[idx].scale(1.0 / k2);
            }
        }

        ifft2_in_place_scratch(&mut self.scratch, nx, ny, &mut self.col);
        for (out, c) in phi.iter_mut().zip(&self.scratch) {
            *out = c.re;
        }
    }

    fn name(&self) -> &'static str {
        "spectral-2d"
    }
}

/// Signed physical wavenumber of FFT bin `m` (bins above `n/2` are
/// negative frequencies).
fn signed_wavenumber(m: usize, n: usize, length: f64) -> f64 {
    let m_signed = if m <= n / 2 {
        m as f64
    } else {
        m as f64 - n as f64
    };
    2.0 * std::f64::consts::PI * m_signed / length
}

/// Red–black SOR solver for the 5-point periodic Laplacian.
#[derive(Debug, Clone)]
pub struct SorPoisson2D {
    /// Convergence threshold on the max-norm residual of `∇²Φ + ρ`
    /// relative to the max-norm of `ρ`.
    pub tolerance: f64,
    /// Hard iteration cap.
    pub max_iters: usize,
    /// Over-relaxation factor; `None` picks the optimal value for the
    /// grid (`2/(1 + sin(π·h))` with `h = min(dx, dy)/max(lx, ly)`-style
    /// estimate from the smallest resolved mode).
    pub omega: Option<f64>,
}

impl Default for SorPoisson2D {
    fn default() -> Self {
        Self {
            tolerance: 1e-10,
            max_iters: 20_000,
            omega: None,
        }
    }
}

impl SorPoisson2D {
    /// Creates a solver with default tolerance (1e-10) and iteration cap.
    pub fn new() -> Self {
        Self::default()
    }

    fn effective_omega(&self, grid: &Grid2D) -> f64 {
        self.omega.unwrap_or_else(|| {
            // Classic optimal SOR estimate from the Jacobi spectral
            // radius of the periodic 5-point stencil: the slowest mode is
            // the fundamental, ρ_J ≈ (cos(2π/nx) + cos(2π/ny))/2 for a
            // square-cell grid; use the general weighted form.
            let (dx2, dy2) = (grid.dx() * grid.dx(), grid.dy() * grid.dy());
            let denom = 2.0 * (1.0 / dx2 + 1.0 / dy2);
            let cx = (2.0 * std::f64::consts::PI / grid.nx() as f64).cos();
            let cy = (2.0 * std::f64::consts::PI / grid.ny() as f64).cos();
            let rho_j = (2.0 / dx2 * cx + 2.0 / dy2 * cy) / denom;
            2.0 / (1.0 + (1.0 - rho_j * rho_j).max(0.0).sqrt())
        })
    }
}

impl Poisson2DSolver for SorPoisson2D {
    fn solve(&mut self, grid: &Grid2D, rho: &[f64], phi: &mut [f64]) {
        let (nx, ny) = (grid.nx(), grid.ny());
        assert_eq!(rho.len(), grid.nodes(), "rho length mismatch");
        assert_eq!(phi.len(), grid.nodes(), "phi length mismatch");

        // Enforce compatibility: subtract the mean charge (the physical
        // setup is neutral; any residual mean is deposition round-off).
        let mean_rho = rho.iter().sum::<f64>() / rho.len() as f64;
        let rho_scale = rho
            .iter()
            .map(|r| (r - mean_rho).abs())
            .fold(0.0f64, f64::max)
            .max(1e-300);

        phi.fill(0.0);
        let (dx2, dy2) = (grid.dx() * grid.dx(), grid.dy() * grid.dy());
        let diag = 2.0 * (1.0 / dx2 + 1.0 / dy2);
        let omega = self.effective_omega(grid);

        for _iter in 0..self.max_iters {
            // Red–black ordering keeps the sweep a proper SOR iteration
            // under periodic wrap.
            for color in 0..2 {
                for iy in 0..ny {
                    let up = grid.wrap_iy(iy as i64 + 1) * nx;
                    let down = grid.wrap_iy(iy as i64 - 1) * nx;
                    let row = iy * nx;
                    for ix in ((iy + color) % 2..nx).step_by(2) {
                        let left = grid.wrap_ix(ix as i64 - 1);
                        let right = grid.wrap_ix(ix as i64 + 1);
                        let nb = (phi[row + left] + phi[row + right]) / dx2
                            + (phi[down + ix] + phi[up + ix]) / dy2;
                        // ∇²Φ = −ρ ⇒ diag·Φ = nb + ρ (ρ already has the
                        // sign convention folded in).
                        let gs = (nb + (rho[row + ix] - mean_rho)) / diag;
                        let idx = row + ix;
                        phi[idx] += omega * (gs - phi[idx]);
                    }
                }
            }

            // Convergence check on the residual (cheap relative to the
            // sweeps at these grid sizes; checked every iteration to keep
            // the solve deterministic in accuracy, not iteration count).
            let mut max_res = 0.0f64;
            for iy in 0..ny {
                let up = grid.wrap_iy(iy as i64 + 1) * nx;
                let down = grid.wrap_iy(iy as i64 - 1) * nx;
                let row = iy * nx;
                for ix in 0..nx {
                    let left = grid.wrap_ix(ix as i64 - 1);
                    let right = grid.wrap_ix(ix as i64 + 1);
                    let lap = (phi[row + left] - 2.0 * phi[row + ix] + phi[row + right]) / dx2
                        + (phi[down + ix] - 2.0 * phi[row + ix] + phi[up + ix]) / dy2;
                    let res = lap + (rho[row + ix] - mean_rho);
                    max_res = max_res.max(res.abs());
                }
            }
            if max_res <= self.tolerance * rho_scale {
                break;
            }
        }

        // Zero-mean gauge, matching the spectral backend.
        let mean_phi = phi.iter().sum::<f64>() / phi.len() as f64;
        for p in phi.iter_mut() {
            *p -= mean_phi;
        }
    }

    fn name(&self) -> &'static str {
        "sor-2d"
    }
}

/// Constructs the requested backend.
pub fn make_solver(kind: Poisson2DKind) -> Box<dyn Poisson2DSolver> {
    match kind {
        Poisson2DKind::Spectral => Box::new(SpectralPoisson2D::new()),
        Poisson2DKind::Sor => Box::new(SorPoisson2D::new()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    /// Builds ρ = (kx² + ky²)·cos(kx·x)·cos(ky·y), whose exact solution is
    /// Φ = cos(kx·x)·cos(ky·y).
    fn manufactured(grid: &Grid2D, mx: usize, my: usize) -> (Vec<f64>, Vec<f64>) {
        let kx = grid.mode_wavenumber_x(mx);
        let ky = grid.mode_wavenumber_y(my);
        let k2 = kx * kx + ky * ky;
        let mut rho = grid.zeros();
        let mut exact = grid.zeros();
        for iy in 0..grid.ny() {
            let y = iy as f64 * grid.dy();
            for ix in 0..grid.nx() {
                let x = ix as f64 * grid.dx();
                let phi = (kx * x).cos() * (ky * y).cos();
                exact[grid.index(ix, iy)] = phi;
                rho[grid.index(ix, iy)] = k2 * phi;
            }
        }
        (rho, exact)
    }

    #[test]
    fn spectral_reproduces_manufactured_solution() {
        let grid = Grid2D::new(32, 32, 2.0, 3.0);
        let (rho, exact) = manufactured(&grid, 2, 1);
        let mut phi = grid.zeros();
        SpectralPoisson2D::new().solve(&grid, &rho, &mut phi);
        for (p, e) in phi.iter().zip(&exact) {
            assert!((p - e).abs() < 1e-10, "{p} vs {e}");
        }
    }

    #[test]
    fn sor_converges_to_discrete_solution() {
        let grid = Grid2D::new(16, 16, 2.0, 2.0);
        let (rho, _) = manufactured(&grid, 1, 1);
        let mut phi = grid.zeros();
        SorPoisson2D::new().solve(&grid, &rho, &mut phi);
        // Verify against the *discrete* operator: the 5-point Laplacian of
        // the answer must equal −ρ to the solver tolerance.
        let (dx2, dy2) = (grid.dx() * grid.dx(), grid.dy() * grid.dy());
        for iy in 0..grid.ny() {
            for ix in 0..grid.nx() {
                let l = grid.index(grid.wrap_ix(ix as i64 - 1), iy);
                let r = grid.index(grid.wrap_ix(ix as i64 + 1), iy);
                let d = grid.index(ix, grid.wrap_iy(iy as i64 - 1));
                let u = grid.index(ix, grid.wrap_iy(iy as i64 + 1));
                let c = grid.index(ix, iy);
                let lap =
                    (phi[l] - 2.0 * phi[c] + phi[r]) / dx2 + (phi[d] - 2.0 * phi[c] + phi[u]) / dy2;
                assert!(
                    (lap + rho[c]).abs() < 1e-7,
                    "node ({ix},{iy}): residual {}",
                    lap + rho[c]
                );
            }
        }
    }

    #[test]
    fn backends_agree_on_smooth_input() {
        // On a smooth low-mode field the FD discretization error is small,
        // so both backends should produce close potentials.
        let grid = Grid2D::new(64, 64, 2.0, 2.0);
        let (rho, _) = manufactured(&grid, 1, 1);
        let mut phi_s = grid.zeros();
        let mut phi_f = grid.zeros();
        SpectralPoisson2D::new().solve(&grid, &rho, &mut phi_s);
        SorPoisson2D::new().solve(&grid, &rho, &mut phi_f);
        let scale = phi_s.iter().fold(0.0f64, |m, v| m.max(v.abs()));
        for (a, b) in phi_s.iter().zip(&phi_f) {
            assert!((a - b).abs() < 0.01 * scale, "{a} vs {b}");
        }
    }

    #[test]
    fn zero_charge_gives_zero_potential() {
        let grid = Grid2D::new(16, 8, 1.0, 1.0);
        let rho = grid.zeros();
        for kind in [Poisson2DKind::Spectral, Poisson2DKind::Sor] {
            let mut phi = vec![1.0; grid.nodes()];
            make_solver(kind).solve(&grid, &rho, &mut phi);
            assert!(phi.iter().all(|p| p.abs() < 1e-12), "{kind:?}");
        }
    }

    #[test]
    fn solutions_are_zero_mean() {
        let grid = Grid2D::new(16, 16, 2.0, 2.0);
        let mut rho = grid.zeros();
        // A dipole-ish compatible charge.
        for iy in 0..16 {
            for ix in 0..16 {
                rho[grid.index(ix, iy)] =
                    (2.0 * PI * ix as f64 / 16.0).sin() + (2.0 * PI * iy as f64 / 16.0).cos();
            }
        }
        for kind in [Poisson2DKind::Spectral, Poisson2DKind::Sor] {
            let mut phi = grid.zeros();
            make_solver(kind).solve(&grid, &rho, &mut phi);
            let mean = phi.iter().sum::<f64>() / phi.len() as f64;
            assert!(mean.abs() < 1e-10, "{kind:?}: mean {mean}");
        }
    }

    #[test]
    fn sor_handles_incompatible_mean_gracefully() {
        // A net-charge input (mean ≠ 0) has no periodic solution; the
        // solver subtracts the mean and solves the compatible part.
        let grid = Grid2D::new(8, 8, 1.0, 1.0);
        let (mut rho, _) = manufactured(&grid, 1, 0);
        for r in rho.iter_mut() {
            *r += 5.0;
        }
        let mut phi = grid.zeros();
        SorPoisson2D::new().solve(&grid, &rho, &mut phi);
        assert!(phi.iter().all(|p| p.is_finite()));
        let peak = phi.iter().fold(0.0f64, |m, v| m.max(v.abs()));
        assert!(peak > 1e-6, "compatible part was solved, peak {peak}");
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn spectral_rejects_odd_grids() {
        let grid = Grid2D::new(12, 8, 1.0, 1.0);
        let rho = grid.zeros();
        let mut phi = grid.zeros();
        SpectralPoisson2D::new().solve(&grid, &rho, &mut phi);
    }
}

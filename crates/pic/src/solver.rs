//! The field-solver abstraction — the seam where the DL method plugs in.
//!
//! The paper's Fig. 2 keeps the interpolation and particle mover of the
//! traditional method and swaps the deposition + Poisson stages (grey
//! boxes) for phase-space binning + neural network inference. We model that
//! seam as the [`FieldSolver`] trait: given the particles and the grid,
//! produce the electric field on the nodes. [`TraditionalSolver`] is the
//! deposit→Poisson→gradient pipeline; the DL solver lives in `dlpic-core`
//! and implements the same trait.

use crate::deposit::{add_uniform_background, deposit_charge_with_scratch, DepositScratch};
use crate::efield::efield_from_phi;
use crate::grid::Grid1D;
use crate::particles::Particles;
use crate::poisson::{FdPoisson, PoissonSolver, SpectralPoisson};
use crate::shape::Shape;

/// Computes the node electric field from the particle state.
pub trait FieldSolver: Send {
    /// Fills `e` (length = grid nodes) from the current particle state.
    fn solve(&mut self, particles: &Particles, grid: &Grid1D, e: &mut [f64]);

    /// Human-readable name for logs/benchmarks.
    fn name(&self) -> &'static str;

    /// The phase-split view of this solver, when its `solve` decomposes
    /// into prepare-input / infer / apply-output stages an external
    /// driver can batch across many simulations (the DL solvers).
    /// `None` (the default) for monolithic solvers like the traditional
    /// deposit→Poisson pipeline.
    fn phased(&mut self) -> Option<&mut dyn PhasedFieldSolver> {
        None
    }

    /// Identity and size of this solver's model-weight allocation, when
    /// it has one: `(id, bytes)`. Two live solvers report the same `id`
    /// iff they read the same underlying weight storage (an `Arc`-shared
    /// frozen model), so fleet memory accounting can charge each distinct
    /// allocation once. The `id` is only meaningful while the solver is
    /// alive and unmoved (boxed solvers qualify). `None` (the default)
    /// for solvers without model weights.
    fn weight_storage(&self) -> Option<(usize, usize)> {
        None
    }
}

/// A field solver whose solve splits into three phases so that an
/// external scheduler can gather the inference inputs of many concurrent
/// simulations, run them as **one batched inference**, and scatter the
/// results back — the ensemble execution path.
///
/// The contract mirrors [`FieldSolver::solve`] exactly: for any particle
/// state,
///
/// ```text
/// prepare_input(p, grid, &mut row);
/// infer_batch(&row, 1, &mut out);
/// apply_output(&out, e);
/// ```
///
/// must be *bit-identical* to `solve(p, grid, e)` (the DL solvers route
/// their own `solve` through these phases), and row `i` of an `m`-row
/// `infer_batch` must be bit-identical to a 1-row `infer_batch` of that
/// row (guaranteed by the row-stable GEMM kernels underneath).
///
/// Batching across solver instances is only meaningful when the
/// instances hold identical network parameters; the engine's ensemble
/// guarantees that by construction (one engine configures at most one
/// model per dimension) and runs the whole batch through one instance.
pub trait PhasedFieldSolver {
    /// Width of one inference input row.
    fn input_len(&self) -> usize;

    /// Width of one inference output row.
    fn output_len(&self) -> usize;

    /// Phase 1: bins/normalizes the particle state into `dst`
    /// (`input_len` values) — everything `solve` does before the network.
    ///
    /// # Panics
    /// Panics if `dst.len() != self.input_len()`.
    fn prepare_input(&mut self, particles: &Particles, grid: &Grid1D, dst: &mut [f32]);

    /// Phase 2: one inference over `rows` stacked input rows
    /// (`rows × input_len` values) into `rows × output_len` outputs.
    ///
    /// # Panics
    /// Panics if the slice lengths disagree with `rows` and the widths.
    fn infer_batch(&mut self, input: &[f32], rows: usize, output: &mut [f32]);

    /// Phase 3: writes one output row onto the grid field — everything
    /// `solve` does after the network.
    ///
    /// # Panics
    /// Panics if `row.len() != self.output_len()` or the field width
    /// disagrees with the solver's output.
    fn apply_output(&mut self, row: &[f32], e: &mut [f64]);
}

/// Which Poisson backend a [`TraditionalSolver`] uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PoissonKind {
    /// Finite-difference + Thomas (the paper's "linear system" route).
    #[default]
    FiniteDifference,
    /// FFT-based exact modal inversion.
    Spectral,
}

/// The traditional field solver: deposit ρ, add the neutralizing ion
/// background, solve Poisson for Φ, take E = −∇Φ.
pub struct TraditionalSolver {
    shape: Shape,
    poisson: Box<dyn PoissonSolver>,
    background: f64,
    rho: Vec<f64>,
    phi: Vec<f64>,
    deposit_scratch: DepositScratch,
}

impl TraditionalSolver {
    /// Creates a solver with the given deposition shape and Poisson backend.
    /// `background` is the uniform ion charge density (+1 in the paper's
    /// normalized setup).
    pub fn new(shape: Shape, kind: PoissonKind, background: f64) -> Self {
        let poisson: Box<dyn PoissonSolver> = match kind {
            PoissonKind::FiniteDifference => Box::new(FdPoisson::new()),
            PoissonKind::Spectral => Box::new(SpectralPoisson::new()),
        };
        Self {
            shape,
            poisson,
            background,
            rho: Vec::new(),
            phi: Vec::new(),
            deposit_scratch: DepositScratch::new(),
        }
    }

    /// The paper's defaults: CIC deposition, FD Poisson, unit ion
    /// background.
    pub fn paper_default() -> Self {
        Self::new(Shape::Cic, PoissonKind::FiniteDifference, 1.0)
    }

    /// The "basic NGP scheme" of the paper's §II. This is the variant that
    /// exhibits the cold-beam numerical instability of Fig. 6 most
    /// clearly (NGP has the strongest aliasing/grid-heating of the shape
    /// hierarchy); the figure binaries use it as the traditional baseline.
    pub fn basic_ngp() -> Self {
        Self::new(Shape::Ngp, PoissonKind::FiniteDifference, 1.0)
    }

    /// Most recent charge density (diagnostics; valid after a `solve`).
    pub fn rho(&self) -> &[f64] {
        &self.rho
    }

    /// Most recent potential (diagnostics; valid after a `solve`).
    pub fn phi(&self) -> &[f64] {
        &self.phi
    }

    /// The deposition/gather shape this solver uses.
    pub fn shape(&self) -> Shape {
        self.shape
    }
}

impl FieldSolver for TraditionalSolver {
    fn solve(&mut self, particles: &Particles, grid: &Grid1D, e: &mut [f64]) {
        let n = grid.ncells();
        assert_eq!(e.len(), n, "e length mismatch");
        self.rho.clear();
        self.rho.resize(n, 0.0);
        self.phi.clear();
        self.phi.resize(n, 0.0);
        deposit_charge_with_scratch(
            particles,
            grid,
            self.shape,
            &mut self.rho,
            &mut self.deposit_scratch,
        );
        add_uniform_background(&mut self.rho, self.background);
        self.poisson.solve(grid, &self.rho, &mut self.phi);
        efield_from_phi(grid, &self.phi, e);
    }

    fn name(&self) -> &'static str {
        "traditional"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A sinusoidally displaced (quiet) electron population produces a
    /// first-harmonic E field with the amplitude linear theory predicts:
    /// for displacement ξ = A sin(kx), δρ = -ρ₀·dξ/dx and E = ρ... with
    /// ρ₀ = -1 (electrons): E(x) = -A·sin(k x)·(ρ₀/1)·... Full derivation:
    /// Gauss: dE/dx = ρ_total = -ρ₀·A·k·cos(kx) → E = -ρ₀·A·sin(kx)
    ///       = A·sin(kx) for ρ₀ = -1.
    #[test]
    fn displaced_beam_field_matches_gauss_law() {
        let grid = Grid1D::paper();
        let n_p = 256_000;
        let amp = 1e-3; // displacement amplitude in box units
        let l = grid.length();
        let k = grid.mode_wavenumber(1);
        let xs: Vec<f64> = (0..n_p)
            .map(|i| {
                let x0 = (i as f64 + 0.5) / n_p as f64 * l;
                grid.wrap_position(x0 + amp * l * (k * x0).sin())
            })
            .collect();
        let p = Particles::electrons_normalized(xs, vec![0.0; n_p], l);
        let mut solver = TraditionalSolver::paper_default();
        let mut e = grid.zeros();
        solver.solve(&p, &grid, &mut e);

        let expect_amp = amp * l; // ρ₀ = -1 electrons, ε₀ = 1
        let measured = dlpic_analytics::dft::mode_amplitude(&e, 1);
        assert!(
            (measured - expect_amp).abs() / expect_amp < 0.02,
            "E1 = {measured}, expected ≈ {expect_amp}"
        );
    }

    #[test]
    fn uniform_plasma_has_no_field() {
        let grid = Grid1D::paper();
        let n_p = 64_000;
        let xs: Vec<f64> = (0..n_p)
            .map(|i| (i as f64 + 0.5) / n_p as f64 * grid.length())
            .collect();
        let p = Particles::electrons_normalized(xs, vec![0.0; n_p], grid.length());
        for kind in [PoissonKind::FiniteDifference, PoissonKind::Spectral] {
            let mut solver = TraditionalSolver::new(Shape::Cic, kind, 1.0);
            let mut e = grid.zeros();
            solver.solve(&p, &grid, &mut e);
            let peak = e.iter().fold(0.0f64, |m, v| m.max(v.abs()));
            assert!(peak < 1e-9, "{kind:?}: residual field {peak}");
        }
    }

    #[test]
    fn solver_exposes_rho_and_phi() {
        let grid = Grid1D::paper();
        // 100 particles/cell: a whole multiple of the cell count, so the
        // equispaced load cancels the background exactly under CIC.
        let n = 6_400;
        let p = Particles::electrons_normalized(
            (0..n)
                .map(|i| (i as f64 + 0.5) / n as f64 * grid.length())
                .collect(),
            vec![0.0; n],
            grid.length(),
        );
        let mut solver = TraditionalSolver::paper_default();
        let mut e = grid.zeros();
        solver.solve(&p, &grid, &mut e);
        assert_eq!(solver.rho().len(), 64);
        assert_eq!(solver.phi().len(), 64);
        // Neutralized: rho ≈ 0 everywhere for the uniform load.
        assert!(solver.rho().iter().all(|r| r.abs() < 1e-6));
    }

    #[test]
    fn spectral_and_fd_solvers_give_close_fields() {
        let grid = Grid1D::paper();
        // Mildly non-uniform plasma.
        let n_p = 64_000;
        let l = grid.length();
        let k = grid.mode_wavenumber(1);
        let xs: Vec<f64> = (0..n_p)
            .map(|i| {
                let x0 = (i as f64 + 0.5) / n_p as f64 * l;
                grid.wrap_position(x0 + 2e-3 * l * (k * x0).sin())
            })
            .collect();
        let p = Particles::electrons_normalized(xs, vec![0.0; n_p], l);
        let mut e_fd = grid.zeros();
        let mut e_sp = grid.zeros();
        TraditionalSolver::new(Shape::Cic, PoissonKind::FiniteDifference, 1.0)
            .solve(&p, &grid, &mut e_fd);
        TraditionalSolver::new(Shape::Cic, PoissonKind::Spectral, 1.0).solve(&p, &grid, &mut e_sp);
        let scale = e_sp.iter().fold(0.0f64, |m, v| m.max(v.abs()));
        for (a, b) in e_fd.iter().zip(&e_sp) {
            assert!((a - b).abs() < 0.01 * scale + 1e-12);
        }
    }
}

//! A small scoped thread pool for fleet workloads.
//!
//! The workspace's `rayon` is an offline sequential shim (the build
//! environment has no crates.io access), so multi-core execution goes
//! through this module instead: plain `std::thread::scope` workers over
//! **contiguous chunks** of a work list. The partition is deterministic —
//! item `i` always lands in chunk `i / ceil(len / threads)` — which is
//! what gives the engine's ensemble scheduler per-session determinism:
//! a session is driven by exactly one worker, and regrouping sessions
//! into different thread counts never changes any session's own
//! arithmetic (see `engine::ensemble`).
//!
//! Threads are spawned per [`for_each_chunk`] call and joined before it
//! returns. Callers amortize the spawn cost by handing the pool
//! *long-running* chunk tasks (e.g. "drive these sessions to
//! completion"), not per-step closures.

/// Number of worker threads the machine can usefully run —
/// `std::thread::available_parallelism`, with a serial fallback when the
/// runtime cannot tell.
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// The contiguous chunk length that splits `len` items over `threads`
/// workers (ceiling division; the last chunk may be shorter).
pub fn chunk_len(len: usize, threads: usize) -> usize {
    let threads = threads.max(1);
    len.div_ceil(threads.min(len.max(1)))
}

/// Runs `work` over contiguous chunks of `items`, one worker thread per
/// chunk, and joins them all before returning. `work` receives the chunk
/// index and the chunk's mutable slice; with `threads <= 1` (or a single
/// chunk) everything runs inline on the caller's thread — same partition,
/// no spawn.
///
/// The chunk partition is [`chunk_len`]-sized and deterministic, so for
/// any `threads` the items of chunk `c` are
/// `items[c * chunk_len .. (c + 1) * chunk_len]`.
pub fn for_each_chunk<T, F>(threads: usize, items: &mut [T], work: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    if items.is_empty() {
        return;
    }
    let size = chunk_len(items.len(), threads);
    if threads <= 1 || size >= items.len() {
        work(0, items);
        return;
    }
    std::thread::scope(|scope| {
        for (c, chunk) in items.chunks_mut(size).enumerate() {
            let work = &work;
            scope.spawn(move || work(c, chunk));
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_len_covers_all_items() {
        assert_eq!(chunk_len(10, 1), 10);
        assert_eq!(chunk_len(10, 3), 4); // 4 + 4 + 2
        assert_eq!(chunk_len(10, 4), 3); // 3 + 3 + 3 + 1
        assert_eq!(chunk_len(3, 8), 1);
        assert_eq!(chunk_len(0, 4), 0);
    }

    #[test]
    fn every_item_visited_exactly_once_at_any_thread_count() {
        for threads in [1usize, 2, 3, 7, 16] {
            let mut items = vec![0u32; 23];
            for_each_chunk(threads, &mut items, |_, chunk| {
                for v in chunk {
                    *v += 1;
                }
            });
            assert!(items.iter().all(|&v| v == 1), "threads = {threads}");
        }
    }

    #[test]
    fn chunk_indices_match_the_documented_partition() {
        let mut items: Vec<(usize, usize)> = (0..10).map(|i| (i, usize::MAX)).collect();
        for_each_chunk(3, &mut items, |c, chunk| {
            for item in chunk {
                item.1 = c;
            }
        });
        let size = chunk_len(10, 3);
        for (i, &(_, c)) in items.iter().enumerate() {
            assert_eq!(c, i / size, "item {i}");
        }
    }

    #[test]
    fn available_threads_is_positive() {
        assert!(available_threads() >= 1);
    }
}

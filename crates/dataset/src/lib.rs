//! # dlpic-dataset
//!
//! The training-data pipeline of the reproduction (paper §IV.A.1):
//!
//! * [`spec`] — the parameter sweeps: the paper's 20 (v0, vth) training
//!   combinations × 10 seeded "augmentation" experiments × 200 steps
//!   (40,000 samples), and the unseen-parameter sweep behind Test Set II.
//! * [`generator`] — runs traditional PIC simulations and harvests
//!   (phase-space histogram, electric field) pairs each step.
//! * [`sample`] — the in-memory dataset, convertible into trainable
//!   `dlpic-nn` tensors for either MLP (flat) or CNN (image) inputs.
//! * [`split`] — the paper's shuffle + 38k/1k/1k-proportion split.
//! * [`store`] — packed binary persistence.
//! * [`stats`] — dataset inspection ("no numerical instability or
//!   artifacts").
//! * [`vlasov_bridge`] — noise-free training data from the continuum
//!   Vlasov solver (paper §VII future-work path).

#![warn(missing_docs)]

pub mod generator;
pub mod sample;
pub mod spec;
pub mod split;
pub mod stats;
pub mod store;
pub mod vlasov_bridge;

pub use generator::{generate, GeneratorConfig};
pub use sample::PhaseDataset;
pub use spec::{SweepCombo, SweepSpec};
pub use split::{shuffle_split, SplitSizes};

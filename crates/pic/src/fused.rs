//! The fused gather→accelerate→move kernel: one pass over the particles
//! per step.
//!
//! [`fused_gather_push_move`] interpolates `Eⁿ` at each particle, pushes
//! the velocity and pushes the position entirely in registers, so a step
//! touches `x` and `v` exactly once each and needs no per-particle field
//! buffer (`e_part`) at all. It is arithmetically identical to the
//! three-pass pipeline
//! [`gather_field`](crate::gather::gather_field) →
//! [`push_velocities`](crate::mover::push_velocities) →
//! [`push_positions`](crate::mover::push_positions):
//! the same per-particle expressions in the same order, with the grid
//! wraps computed by compare-and-fold instead of `rem_euclid` (equal
//! values, no integer division). The unfused functions remain the test
//! oracles — see `tests/fused_equivalence.rs` at the workspace root.
//!
//! The kernel also accumulates the step's diagnostics moments (the
//! time-centred kinetic energy and the post-push momentum) in the same
//! pass, in the same per-particle summation order as the unfused code.

// analyze:hot — the fused per-particle loop is the 1-D stepping hot path;
// loop bodies here must stay allocation-free (PR 2's single-pass win).

use crate::grid::Grid1D;
use crate::particles::Particles;
use crate::shape::Shape;

/// Diagnostics moments accumulated by the fused pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepMoments {
    /// Time-centred kinetic energy `½·m·Σ v⁻·v⁺` at the starting time
    /// level (the same estimate [`crate::mover::push_velocities`] returns).
    pub centred_kinetic: f64,
    /// Total momentum `m·Σ v⁺` right after the velocity push.
    pub momentum: f64,
}

/// Folds an unwrapped support index into `[0, n)`.
///
/// Positions in `[0, L)` put the index within one period of the grid, so
/// a single compare-and-fold suffices; anything further out (possible
/// only when the caller violates the position invariant) falls back to
/// the full Euclidean wrap.
#[inline(always)]
pub fn wrap_cell(j: i64, n: i64) -> usize {
    let folded = if j >= n {
        j - n
    } else if j < 0 {
        j + n
    } else {
        j
    };
    if (0..n).contains(&folded) {
        folded as usize
    } else {
        folded.rem_euclid(n) as usize
    }
}

/// Advances one particle position by `v·dt` with periodic wrap, matching
/// [`crate::mover::push_positions`] bit for bit: a single fold over the
/// box edge is exact (Sterbenz) and equals what `rem_euclid` computes for
/// positions within one period; multi-period overshoots take the full
/// `rem_euclid` path.
#[inline(always)]
pub fn advance_position(x: f64, v: f64, dt: f64, length: f64) -> f64 {
    let mut nx = x + v * dt;
    if nx < 0.0 || nx >= length {
        if nx >= length && nx - length < length {
            nx -= length;
        } else if nx < 0.0 && nx + length >= 0.0 {
            nx += length;
        } else {
            nx = nx.rem_euclid(length);
        }
        if nx >= length {
            nx = 0.0;
        }
    }
    nx
}

/// One fused step of the particle pipeline: gather `e` at every particle,
/// push velocities by `(q/m)·E·Δt`, push positions by `v·Δt` with
/// periodic wrap — a single pass, no intermediate buffer.
///
/// Returns the time-centred kinetic energy and the post-push momentum
/// (the two diagnostics the unfused pipeline extracts between its
/// passes).
///
/// # Panics
/// Panics if `e` length differs from the grid node count.
pub fn fused_gather_push_move(
    particles: &mut Particles,
    grid: &Grid1D,
    shape: Shape,
    e: &[f64],
    dt: f64,
) -> StepMoments {
    assert_eq!(e.len(), grid.ncells(), "field length mismatch");
    let inv_dx = 1.0 / grid.dx();
    let n = grid.ncells();
    let ni = n as i64;
    let length = grid.length();
    let qm_dt = particles.charge_over_mass() * dt;
    let half_m = 0.5 * particles.mass();
    let mass = particles.mass();

    let mut ke = 0.0f64;
    let mut mom = 0.0f64;
    for (x, v) in particles.x.iter_mut().zip(particles.v.iter_mut()) {
        // Gather (same expressions as `gather_field`).
        let a = shape.assign(*x * inv_dx);
        let ep = match shape {
            Shape::Ngp => e[wrap_cell(a.leftmost, ni)],
            Shape::Cic => {
                let j = wrap_cell(a.leftmost, ni);
                let j1 = if j + 1 == n { 0 } else { j + 1 };
                a.w[0] * e[j] + a.w[1] * e[j1]
            }
            Shape::Tsc => {
                let mut acc = 0.0;
                for (o, w) in a.w.iter().enumerate() {
                    acc += w * e[wrap_cell(a.leftmost + o as i64, ni)];
                }
                acc
            }
        };
        // Accelerate (same expressions as `push_velocities`).
        let v_old = *v;
        let v_new = v_old + qm_dt * ep;
        *v = v_new;
        ke += v_old * v_new;
        mom += v_new;
        // Move (same expressions as `push_positions`).
        *x = advance_position(*x, v_new, dt, length);
    }
    StepMoments {
        centred_kinetic: half_m * ke,
        momentum: mass * mom,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gather::gather_field;
    use crate::mover::{push_positions, push_velocities};

    fn particles(seed: u64, n: usize, l: f64) -> Particles {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let xs: Vec<f64> = (0..n).map(|_| next() * l).collect();
        let vs: Vec<f64> = (0..n).map(|_| next() * 0.8 - 0.4).collect();
        Particles::electrons_normalized(xs, vs, l)
    }

    #[test]
    fn wrap_cell_matches_rem_euclid_everywhere() {
        for n in [1i64, 2, 7, 64] {
            for j in -3 * n..3 * n {
                assert_eq!(wrap_cell(j, n), j.rem_euclid(n) as usize, "j={j}, n={n}");
            }
        }
    }

    #[test]
    fn fused_step_is_bitwise_equal_to_three_passes() {
        let grid = Grid1D::paper();
        let e: Vec<f64> = (0..grid.ncells())
            .map(|j| 0.1 * (j as f64 * 0.37).sin())
            .collect();
        let dt = 0.2;
        for shape in [Shape::Ngp, Shape::Cic, Shape::Tsc] {
            let mut pf = particles(3, 4_000, grid.length());
            let mut pu = pf.clone();
            let moments = fused_gather_push_move(&mut pf, &grid, shape, &e, dt);

            let mut ep = vec![0.0; pu.len()];
            gather_field(&pu, &grid, shape, &e, &mut ep);
            let ke = push_velocities(&mut pu, &ep, dt);
            let momentum = pu.total_momentum();
            push_positions(&mut pu, &grid, dt);

            assert_eq!(pf.x, pu.x, "{shape:?} positions");
            assert_eq!(pf.v, pu.v, "{shape:?} velocities");
            assert_eq!(moments.centred_kinetic, ke, "{shape:?} kinetic");
            assert_eq!(moments.momentum, momentum, "{shape:?} momentum");
        }
    }

    #[test]
    fn moments_match_over_many_steps() {
        // Drive both pipelines through repeated steps with a frozen field
        // (the field solve is outside the kernel under test).
        let grid = Grid1D::new(16, 2.0532);
        let e: Vec<f64> = (0..16).map(|j| 0.05 * (j as f64 * 0.9).cos()).collect();
        let mut pf = particles(17, 512, grid.length());
        let mut pu = pf.clone();
        let mut ep = vec![0.0; pu.len()];
        for _ in 0..25 {
            let m = fused_gather_push_move(&mut pf, &grid, Shape::Cic, &e, 0.2);
            gather_field(&pu, &grid, Shape::Cic, &e, &mut ep);
            let ke = push_velocities(&mut pu, &ep, 0.2);
            assert_eq!(m.centred_kinetic, ke);
            push_positions(&mut pu, &grid, 0.2);
        }
        assert_eq!(pf.x, pu.x);
        assert_eq!(pf.v, pu.v);
    }
}

//! # dlpic-repro
//!
//! Umbrella crate for the reproduction of Aguilar & Markidis, *"A Deep
//! Learning-Based Particle-in-Cell Method for Plasma Simulations"*
//! (IEEE CLUSTER 2021).
//!
//! This crate re-exports the workspace members under one roof so examples
//! and downstream users can depend on a single crate:
//!
//! * [`pic`] — the traditional explicit electrostatic 1-D PIC method.
//! * [`pic2d`] — the 2-D electrostatic PIC (paper §VII's
//!   "two-dimensional systems" extension).
//! * [`nn`] — the from-scratch neural-network library (MLP/CNN + Adam).
//! * [`core`] — the DL-based PIC method (phase-space binning + DL field
//!   solver), the paper's contribution; includes the 2-D DL solver
//!   (`core::twod`).
//! * [`dataset`] — the training-data pipeline.
//! * [`analytics`] — FFT, dispersion relation, growth-rate fits, plots.
//! * [`vlasov`] — a continuum Vlasov–Poisson solver (the paper's §VII
//!   noise-free-training-data path).
//! * [`ddecomp`] — domain-decomposed PIC with exact communication
//!   accounting (paper §VII's distributed-memory discussion, made
//!   measurable).
//!
//! See `examples/quickstart.rs` for a five-minute tour and `DESIGN.md` for
//! the full system inventory.

#![warn(missing_docs)]

pub use dlpic_analytics as analytics;
pub use dlpic_core as core;
pub use dlpic_dataset as dataset;
pub use dlpic_ddecomp as ddecomp;
pub use dlpic_nn as nn;
pub use dlpic_pic as pic;
pub use dlpic_pic2d as pic2d;
pub use dlpic_vlasov as vlasov;

//! Fault containment: one sick run must never poison the fleet. A
//! panicking solver, a diverging (NaN) DL run, a blown deadline, a
//! stalled watcher, a corrupt spool file — each is contained to the run
//! (or subscriber) that owns it, reported as structured state, and every
//! healthy neighbour finishes bit-identical to a solo `Engine::run`.

use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

use dlpic_repro::core::Scale;
use dlpic_repro::engine::json::Json;
use dlpic_repro::engine::{Backend, EnergyHistory, Engine, FaultKind, FaultPlan, SweepSpec};
use dlpic_serve::client::{Backoff, Client};
use dlpic_serve::job::JobRequest;
use dlpic_serve::protocol::WatchPolicy;
use dlpic_serve::server::{ServeConfig, Server};
use dlpic_serve::ServeError;

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("dlpic-fault-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn history_of(summary: &Json) -> EnergyHistory {
    EnergyHistory::from_json_value(summary.field("history").expect("summary history"))
        .expect("history parses")
}

fn run_states(client: &mut Client, job: &str) -> Vec<(String, usize, Option<String>)> {
    let doc = client.status(Some(job)).expect("status");
    doc.field("jobs").and_then(Json::as_arr).expect("jobs")[0]
        .field("runs")
        .and_then(Json::as_arr)
        .expect("runs")
        .iter()
        .map(|r| {
            (
                r.field("state").and_then(Json::as_str).unwrap().to_string(),
                r.field("steps_done").and_then(Json::as_usize).unwrap(),
                r.field("error")
                    .ok()
                    .and_then(|e| e.as_str().ok())
                    .map(str::to_string),
            )
        })
        .collect()
}

/// The tentpole contract, in-process: a fleet with one panicking run and
/// one diverging run finishes; both sick runs report structured failures
/// with partial results; both healthy runs are bit-identical to solo.
#[test]
fn sick_fleet_is_contained_and_healthy_runs_match_solo() {
    let plan = FaultPlan::new().rule("v0=0.12", FaultKind::Panic, 5).rule(
        "v0=0.16",
        FaultKind::NanField,
        10,
    );
    let server = Server::start_with_engine(ServeConfig::default(), Engine::new().with_faults(plan))
        .expect("start");
    let mut client = Client::connect(server.addr()).expect("connect");

    let sweep = SweepSpec::grid("two_stream", Scale::Smoke).axis("v0", [0.1, 0.12, 0.14, 0.16]);
    let job = JobRequest::sweep(sweep, Backend::Dl1D).with_steps(40);
    let (id, runs) = client.submit(&job, "alice").expect("submit");
    assert_eq!(runs, 4);
    let results = client
        .wait_for(&id, Duration::from_millis(5))
        .expect("wait");
    assert_eq!(results.len(), 4, "failed runs still surface results");

    let solo_specs = job.expand().expect("expand");
    for (k, result) in results.iter().enumerate() {
        assert_eq!(result.run, k);
        assert_eq!(result.name, solo_specs[k].name);
    }

    // The two sick runs are failed with a typed story and partial data.
    assert_eq!(results[1].state, "failed");
    let error = results[1].summary.field("error").unwrap().as_str().unwrap();
    assert!(error.contains("solver panicked"), "{error}");
    assert!(error.contains("injected fault"), "{error}");
    assert_eq!(
        results[1].summary.field("partial").ok(),
        Some(&Json::Bool(true))
    );
    assert_eq!(results[3].state, "failed");
    let error = results[3].summary.field("error").unwrap().as_str().unwrap();
    assert!(error.contains("diverged at step"), "{error}");
    assert!(error.contains("field energy"), "{error}");
    // Partial: the NaN landed at step 10, well short of the 40 budget.
    assert!(history_of(&results[3].summary).len() < 40);

    // Status mirrors the error so pollers see it without fetching results.
    let states = run_states(&mut client, &id);
    assert_eq!(states[1].0, "failed");
    assert!(states[1].2.as_deref().unwrap().contains("panicked"));
    assert_eq!(states[3].0, "failed");
    assert!(states[3].2.as_deref().unwrap().contains("diverged"));

    // The healthy neighbours are bit-identical to solo engine runs even
    // though they shared inference batches with the sick ones.
    for k in [0usize, 2] {
        assert_eq!(results[k].state, "done", "run {k}");
        let solo = Engine::new()
            .run(&solo_specs[k], Backend::Dl1D)
            .expect("solo");
        assert_eq!(history_of(&results[k].summary), solo.history, "run {k}");
    }

    client.drain().expect("drain");
    server.wait();
}

#[test]
fn deadline_steps_fails_the_run_with_partial_result() {
    let server = Server::start(ServeConfig::default()).expect("start");
    let mut client = Client::connect(server.addr()).expect("connect");

    let sweep = SweepSpec::grid("two_stream", Scale::Smoke).seeds([1]);
    let job = JobRequest::sweep(sweep, Backend::Traditional1D)
        .with_steps(200_000)
        .with_deadline_steps(6);
    let (id, _) = client.submit(&job, "alice").expect("submit");
    let results = client
        .wait_for(&id, Duration::from_millis(5))
        .expect("wait");
    assert_eq!(results.len(), 1);
    assert_eq!(results[0].state, "failed");
    let error = results[0].summary.field("error").unwrap().as_str().unwrap();
    assert!(error.contains("deadline exceeded"), "{error}");
    assert_eq!(
        results[0].summary.field("partial").ok(),
        Some(&Json::Bool(true))
    );
    let steps = results[0]
        .summary
        .field("steps")
        .and_then(Json::as_usize)
        .expect("steps");
    assert!((6..200_000).contains(&steps), "stopped at the deadline");

    client.drain().expect("drain");
    server.wait();
}

/// Decimation is deterministic: a subscriber registered before the first
/// step sees exactly every Nth row, in order, and the terminal control
/// events always land.
#[test]
fn decimate_policy_streams_every_nth_row_and_controls_always_land() {
    let server = Server::start(ServeConfig::default().max_sessions(1)).expect("start");
    let mut client = Client::connect(server.addr()).expect("connect");

    // The blocker holds the only slot until the subscription is live.
    let blocker = JobRequest::sweep(
        SweepSpec::grid("two_stream", Scale::Smoke).seeds([9]),
        Backend::Traditional1D,
    )
    .with_steps(200_000);
    let (blocker_id, _) = client.submit(&blocker, "blocker").expect("submit blocker");
    let watched = JobRequest::sweep(
        SweepSpec::grid("two_stream", Scale::Smoke).seeds([3]),
        Backend::Traditional1D,
    )
    .with_steps(400);
    let (job, _) = client.submit(&watched, "alice").expect("submit");

    let (watch_addr, watch_job) = (server.addr().to_string(), job.clone());
    let watcher = std::thread::spawn(move || {
        let mut samples = Vec::new();
        let (mut run_done, mut job_done) = (0usize, 0usize);
        let mut client = Client::connect(&watch_addr).expect("watch connect");
        client
            .watch_with(
                &watch_job,
                WatchPolicy::Decimate(5),
                64,
                |event| match event.field("event").and_then(Json::as_str).unwrap() {
                    "sample" => {
                        samples.push(event.field("step").and_then(Json::as_usize).expect("step"))
                    }
                    "run_done" => run_done += 1,
                    "job_done" => job_done += 1,
                    other => panic!("unexpected event kind {other}"),
                },
            )
            .expect("watch");
        (samples, run_done, job_done)
    });

    // Release the slot only once the subscription (with its policy) shows
    // up in status.
    loop {
        let doc = client.status(Some(&job)).expect("status");
        let stats = doc.field("jobs").and_then(Json::as_arr).expect("jobs")[0]
            .field("watch_stats")
            .and_then(Json::as_arr)
            .expect("watch_stats")
            .to_vec();
        if !stats.is_empty() {
            assert_eq!(
                stats[0].field("policy").and_then(Json::as_str),
                Ok("decimate:5")
            );
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    client.cancel(&blocker_id).expect("cancel blocker");

    let (samples, run_done, job_done) = watcher.join().expect("watcher thread");
    assert_eq!(run_done, 1, "run_done is control traffic, never shed");
    assert_eq!(job_done, 1, "job_done is control traffic, never shed");
    let expected: Vec<usize> = (0..400).step_by(5).collect();
    assert_eq!(samples, expected, "exactly every 5th row, in order");

    client.drain().expect("drain");
    server.wait();
}

/// A watcher that stops reading loses samples — observably, via
/// `watch_stats.dropped` — but never wedges the scheduler, and still
/// receives the terminal control events once it resumes.
#[test]
fn drop_oldest_sheds_samples_observably_and_never_blocks_the_run() {
    let server = Server::start(ServeConfig::default()).expect("start");
    let mut client = Client::connect(server.addr()).expect("connect");

    let job = JobRequest::sweep(
        SweepSpec::grid("two_stream", Scale::Smoke).seeds([4]),
        Backend::Traditional1D,
    )
    .with_steps(500_000);
    let (id, _) = client.submit(&job, "alice").expect("submit");

    // The watcher parks on the first sample until released, so its
    // capacity-1 queue must shed while it sleeps.
    let (release_tx, release_rx) = std::sync::mpsc::channel::<()>();
    let (watch_addr, watch_job) = (server.addr().to_string(), id.clone());
    let watcher = std::thread::spawn(move || {
        let mut samples = Vec::new();
        let mut job_done = 0usize;
        let mut parked = false;
        let mut client = Client::connect(&watch_addr).expect("watch connect");
        client
            .watch_with(&watch_job, WatchPolicy::DropOldest, 1, |event| match event
                .field("event")
                .and_then(Json::as_str)
                .unwrap()
            {
                "sample" => {
                    if !parked {
                        parked = true;
                        release_rx.recv().expect("release");
                    }
                    samples.push(event.field("step").and_then(Json::as_usize).expect("step"));
                }
                "job_done" => job_done += 1,
                _ => {}
            })
            .expect("watch");
        (samples, job_done)
    });

    // Shed samples become visible accounting, not silence.
    let deadline = std::time::Instant::now() + Duration::from_secs(120);
    loop {
        assert!(
            std::time::Instant::now() < deadline,
            "no drops recorded; backpressure never engaged"
        );
        let doc = client.status(Some(&id)).expect("status");
        let job_doc = &doc.field("jobs").and_then(Json::as_arr).expect("jobs")[0];
        let runs = job_doc.field("runs").and_then(Json::as_arr).expect("runs");
        assert_ne!(
            runs[0].field("state").and_then(Json::as_str).unwrap(),
            "done",
            "budget too small: the run outpaced the backpressure window"
        );
        let stats = job_doc
            .field("watch_stats")
            .and_then(Json::as_arr)
            .expect("watch_stats")
            .to_vec();
        if !stats.is_empty() {
            let dropped = stats[0].field("dropped").and_then(Json::as_usize).unwrap();
            let queued = stats[0]
                .field("queued_total")
                .and_then(Json::as_usize)
                .unwrap();
            if dropped >= 1 {
                assert!(queued >= 1);
                break;
            }
        }
        std::thread::sleep(Duration::from_millis(5));
    }

    client.cancel(&id).expect("cancel");
    release_tx.send(()).expect("release watcher");
    let (samples, job_done) = watcher.join().expect("watcher thread");
    assert_eq!(job_done, 1, "control events survive a full queue");
    for pair in samples.windows(2) {
        assert!(pair[0] < pair[1], "drop_oldest must preserve order");
    }

    client.drain().expect("drain");
    server.wait();
}

/// A corrupt checkpoint quarantines nothing when the manifest still has
/// the spec: that run restarts from step 0 (with a warning) and the rest
/// of the fleet resumes from its checkpoints — all bit-identical.
#[test]
fn corrupt_checkpoint_restarts_that_run_and_spares_the_rest() {
    let spool = temp_dir("ckpt");
    let server = Server::start(
        ServeConfig::default()
            .spool(&spool)
            .spool_interval(1)
            .max_sessions(2),
    )
    .expect("start");
    let mut client = Client::connect(server.addr()).expect("connect");

    let sweep = SweepSpec::grid("two_stream", Scale::Smoke).seeds([1, 2]);
    let job = JobRequest::sweep(sweep.clone(), Backend::Traditional1D).with_steps(20_000);
    let (id, _) = client.submit(&job, "alice").expect("submit");
    loop {
        let states = run_states(&mut client, &id);
        assert!(
            states.iter().all(|(s, _, _)| s != "done"),
            "a run finished before the drain; raise the budget"
        );
        if states.iter().all(|(_, steps, _)| *steps >= 1) {
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    client.drain().expect("drain");
    server.wait();

    // Garbage where run 0's checkpoint should be.
    let ckpt = spool.join(&id).join("run-0.ckpt.json");
    assert!(ckpt.exists(), "spool_interval=1 must have checkpointed");
    std::fs::write(&ckpt, b"{ this is not a checkpoint").expect("corrupt");

    let server = Server::start(ServeConfig::default().resume(&spool)).expect("resume");
    let mut client = Client::connect(server.addr()).expect("connect");
    let results = client
        .wait_for(&id, Duration::from_millis(5))
        .expect("wait after resume");
    assert_eq!(results.len(), 2);
    let mut solo_specs = job.expand().expect("expand");
    for (result, spec) in results.iter().zip(&mut solo_specs) {
        assert_eq!(result.state, "done", "{}", spec.name);
        let solo = Engine::new()
            .run(spec, Backend::Traditional1D)
            .expect("solo");
        assert_eq!(
            history_of(&result.summary),
            solo.history,
            "{}: restarted/resumed history differs from the uninterrupted run",
            spec.name
        );
    }

    client.drain().expect("drain");
    server.wait();
    let _ = std::fs::remove_dir_all(&spool);
}

/// A corrupt result file for a finished run cannot be re-derived: that
/// run is quarantined as `failed` with an error naming the problem,
/// while its sibling's result stays readable and the server serves on.
#[test]
fn corrupt_result_quarantines_the_run_and_spares_its_sibling() {
    let spool = temp_dir("result");
    let server =
        Server::start(ServeConfig::default().spool(&spool).max_sessions(2)).expect("start");
    let mut client = Client::connect(server.addr()).expect("connect");

    let sweep = SweepSpec::grid("two_stream", Scale::Smoke).seeds([1, 2]);
    let job = JobRequest::sweep(sweep, Backend::Traditional1D).with_steps(8);
    let (id, _) = client.submit(&job, "alice").expect("submit");
    client
        .wait_for(&id, Duration::from_millis(5))
        .expect("wait");
    client.drain().expect("drain");
    server.wait();

    std::fs::write(spool.join(&id).join("run-0.done.json"), b"][").expect("corrupt");

    let server = Server::start(ServeConfig::default().resume(&spool)).expect("resume");
    let mut client = Client::connect(server.addr()).expect("connect");
    let states = run_states(&mut client, &id);
    assert_eq!(states[0].0, "failed");
    assert!(
        states[0].2.as_deref().unwrap().contains("unrecoverable"),
        "{:?}",
        states[0].2
    );
    assert_eq!(states[1].0, "done");
    let sibling = client.results(&id, Some(1)).expect("sibling result");
    assert_eq!(sibling.len(), 1);
    let err = client
        .results(&id, Some(0))
        .expect_err("quarantined run has no result");
    let ServeError::Protocol(proto) = err else {
        panic!("expected protocol error, got {err}");
    };
    assert_eq!(proto.code, "not-finished");

    // The quarantine is contained: new work still runs.
    let follow_up = JobRequest::sweep(
        SweepSpec::grid("two_stream", Scale::Smoke).seeds([7]),
        Backend::Traditional1D,
    )
    .with_steps(4);
    let (id2, _) = client.submit(&follow_up, "alice").expect("submit");
    let results = client
        .wait_for(&id2, Duration::from_millis(5))
        .expect("wait");
    assert_eq!(results[0].state, "done");

    client.drain().expect("drain");
    server.wait();
    let _ = std::fs::remove_dir_all(&spool);
}

#[test]
fn job_key_makes_submit_idempotent_per_tenant() {
    let server = Server::start(ServeConfig::default()).expect("start");
    let mut client = Client::connect(server.addr()).expect("connect");

    let job = JobRequest::sweep(
        SweepSpec::grid("two_stream", Scale::Smoke).seeds([1, 2]),
        Backend::Traditional1D,
    )
    .with_steps(6);
    let (id_a, runs_a, deduped) = client
        .submit_keyed(&job, "alice", Some("nightly"))
        .expect("submit");
    assert!(!deduped);
    assert_eq!(runs_a, 2);

    // Same tenant + key: the retry is absorbed, pointing at the original.
    let (id_replay, runs_replay, deduped) = client
        .submit_keyed(&job, "alice", Some("nightly"))
        .expect("replay");
    assert!(deduped, "second submit with the same key must dedupe");
    assert_eq!(id_replay, id_a);
    assert_eq!(runs_replay, 2);

    // The key is scoped to the tenant; another key is another job.
    let (id_bob, _, deduped) = client
        .submit_keyed(&job, "bob", Some("nightly"))
        .expect("other tenant");
    assert!(!deduped);
    assert_ne!(id_bob, id_a);
    let (id_other, _, deduped) = client
        .submit_keyed(&job, "alice", Some("weekly"))
        .expect("other key");
    assert!(!deduped);
    assert_ne!(id_other, id_a);

    for id in [&id_a, &id_bob, &id_other] {
        client.wait_for(id, Duration::from_millis(5)).expect("wait");
    }
    client.drain().expect("drain");
    server.wait();
}

/// A server that accepts but never answers must cost a bounded wait, not
/// a hang: the configured read deadline surfaces as the typed `Timeout`.
#[test]
fn read_timeout_surfaces_as_typed_timeout() {
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr").to_string();
    let mut client =
        Client::connect_with(&addr, Some(Duration::from_millis(200))).expect("connect");
    let started = std::time::Instant::now();
    let err = client.status(None).expect_err("no reply must time out");
    assert!(matches!(err, ServeError::Timeout), "got {err}");
    assert!(
        started.elapsed() < Duration::from_secs(10),
        "timeout must be bounded"
    );
    drop(listener);
}

/// `wait_for_retry` rides out a full server restart: the poll fails while
/// the server is down, reconnects with backoff against the same address,
/// and returns results from the resumed fleet.
#[test]
fn wait_for_retry_survives_a_server_restart() {
    let spool = temp_dir("retry");
    let socket = std::env::temp_dir().join(format!("dlpic-retry-{}.sock", std::process::id()));
    let _ = std::fs::remove_file(&socket);
    let listen = format!("unix:{}", socket.display());

    let server = Server::start(
        ServeConfig::default()
            .listen(listen.as_str())
            .spool(&spool)
            .spool_interval(1),
    )
    .expect("start");
    let mut client = Client::connect(server.addr()).expect("connect");
    let job = JobRequest::sweep(
        SweepSpec::grid("two_stream", Scale::Smoke).seeds([5]),
        Backend::Traditional1D,
    )
    .with_steps(20_000);
    let (id, _) = client.submit(&job, "alice").expect("submit");
    loop {
        let states = run_states(&mut client, &id);
        assert!(states.iter().all(|(s, _, _)| s != "done"), "budget");
        if states.iter().all(|(_, steps, _)| *steps >= 1) {
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }

    let (waiter_listen, waiter_id) = (listen.clone(), id.clone());
    let waiter = std::thread::spawn(move || {
        let mut client = Client::connect(&waiter_listen).expect("waiter connect");
        client.wait_for_retry(&waiter_id, Duration::from_millis(10), Backoff::attempts(30))
    });

    // Take the server down mid-poll, then bring it back on the same
    // address from the spool.
    client.drain().expect("drain");
    server.wait();
    std::thread::sleep(Duration::from_millis(300));
    let server = Server::start(
        ServeConfig::default()
            .listen(listen.as_str())
            .resume(&spool),
    )
    .expect("resume");

    let results = waiter
        .join()
        .expect("waiter thread")
        .expect("wait_for_retry");
    assert_eq!(results.len(), 1);
    assert_eq!(results[0].state, "done");
    let solo = Engine::new()
        .run(&job.expand().expect("expand")[0], Backend::Traditional1D)
        .expect("solo");
    assert_eq!(history_of(&results[0].summary), solo.history);

    let mut client = Client::connect(server.addr()).expect("connect");
    client.drain().expect("drain");
    server.wait();
    let _ = std::fs::remove_dir_all(&spool);
    let _ = std::fs::remove_file(&socket);
}

// ---------------------------------------------------------------------
// Process-level acceptance: the shipped binaries, a sick fleet, SIGKILL,
// a corrupted checkpoint, and a `--resume` that puts it all back.
// ---------------------------------------------------------------------

/// Kills the daemon on drop so a failing assert can't leak a process.
struct Daemon {
    child: Child,
    addr: String,
}

impl Daemon {
    fn spawn(extra: &[&str]) -> Self {
        let mut child = Command::new(env!("CARGO_BIN_EXE_dlpic-serve"))
            .args(["--listen", "127.0.0.1:0", "--spool-interval", "1"])
            .args(extra)
            .stdout(Stdio::piped())
            .spawn()
            .expect("spawn dlpic-serve");
        let stdout = child.stdout.take().expect("stdout");
        let mut line = String::new();
        BufReader::new(stdout)
            .read_line(&mut line)
            .expect("read ready line");
        let addr = line
            .strip_prefix("listening ")
            .unwrap_or_else(|| panic!("unexpected ready line {line:?}"))
            .trim()
            .to_string();
        Self { child, addr }
    }

    fn kill(mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
        std::mem::forget(self);
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn cli(args: &[&str]) -> String {
    let out = Command::new(env!("CARGO_BIN_EXE_dlpic-cli"))
        .args(args)
        .output()
        .expect("run dlpic-cli");
    assert!(
        out.status.success(),
        "dlpic-cli {args:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("cli output is UTF-8")
}

#[test]
fn sick_fleet_survives_sigkill_and_corrupt_checkpoint_end_to_end() {
    let spool = temp_dir("e2e");
    let spool_arg = spool.display().to_string();
    let inject = "v0=0.12=panic@5;v0=0.16=nan@10";

    let daemon = Daemon::spawn(&["--spool", &spool_arg, "--inject", inject]);

    let sweep = SweepSpec::grid("two_stream", Scale::Smoke).axis("v0", [0.1, 0.12, 0.14, 0.16]);
    let job_req = JobRequest::sweep(sweep, Backend::Dl1D).with_steps(300);
    let job_json = job_req.to_json_value().to_compact();
    let submitted = cli(&[
        "submit",
        "--addr",
        &daemon.addr,
        "--tenant",
        "e2e",
        "--job-key",
        "accept-1",
        "--job",
        &job_json,
    ]);
    let submitted = Json::parse(submitted.trim()).expect("submit output is JSON");
    let job = submitted
        .field("job")
        .and_then(Json::as_str)
        .expect("job id")
        .to_string();

    // A replayed submit (same tenant + key) is absorbed, not duplicated.
    let replay = cli(&[
        "submit",
        "--addr",
        &daemon.addr,
        "--tenant",
        "e2e",
        "--job-key",
        "accept-1",
        "--job",
        &job_json,
    ]);
    let replay = Json::parse(replay.trim()).expect("replay output is JSON");
    assert_eq!(replay.field("job").and_then(Json::as_str), Ok(&*job));
    assert_eq!(replay.field("deduped"), Ok(&Json::Bool(true)));

    // Wait until both sick runs have failed and both healthy runs have
    // real progress — then pull the plug with no goodbye.
    let mut client = Client::connect(&daemon.addr).expect("connect");
    loop {
        let states = run_states(&mut client, &job);
        assert!(
            states.iter().all(|(s, _, _)| s != "done"),
            "a healthy run finished before the kill; raise the budget"
        );
        let sick_failed = states[1].0 == "failed" && states[3].0 == "failed";
        let healthy_moving = states[0].1 >= 3 && states[2].1 >= 3;
        if sick_failed && healthy_moving {
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    daemon.kill();

    // Vandalize one healthy run's checkpoint before the restart.
    let ckpt = spool.join(&job).join("run-2.ckpt.json");
    assert!(ckpt.exists(), "healthy run 2 must have checkpointed");
    std::fs::write(&ckpt, b"\x00\xff garbage").expect("corrupt");

    let daemon = Daemon::spawn(&["--resume", &spool_arg, "--inject", inject]);
    let mut client = Client::connect(&daemon.addr).expect("reconnect");
    let results = client
        .wait_for(&job, Duration::from_millis(10))
        .expect("wait after resume");
    assert_eq!(results.len(), 4);

    // Sick runs: still failed, with their structured stories intact
    // across the crash (loaded back from the spool, not recomputed).
    assert_eq!(results[1].state, "failed");
    let error = results[1].summary.field("error").unwrap().as_str().unwrap();
    assert!(error.contains("solver panicked"), "{error}");
    assert_eq!(results[3].state, "failed");
    let error = results[3].summary.field("error").unwrap().as_str().unwrap();
    assert!(error.contains("diverged at step"), "{error}");

    // Healthy runs: done and bit-identical to solo — run 0 resumed from
    // its checkpoint, run 2 restarted from step 0 after the corruption.
    let solo_specs = job_req.expand().expect("expand");
    for k in [0usize, 2] {
        assert_eq!(results[k].state, "done", "run {k}");
        let solo = Engine::new()
            .run(&solo_specs[k], Backend::Dl1D)
            .expect("solo");
        assert_eq!(
            history_of(&results[k].summary),
            solo.history,
            "run {k}: history differs from the uninterrupted run"
        );
    }

    cli(&["drain", "--addr", &daemon.addr]);
    daemon.kill();
    let _ = std::fs::remove_dir_all(&spool);
}

/// Spool-GC invariants that must hold at every rest point: the directory
/// holds exactly the manifest plus one directory per manifest job (no
/// orphans from pruned/cancelled work) and no leaked `.tmp` files from
/// interrupted atomic writes.
fn assert_spool_invariants(spool: &std::path::Path) {
    let manifest = std::fs::read_to_string(spool.join("meta.json")).expect("manifest readable");
    let doc = Json::parse(&manifest).expect("manifest is JSON");
    let known: Vec<String> = doc
        .field("jobs")
        .and_then(Json::as_arr)
        .expect("manifest jobs")
        .iter()
        .map(|j| {
            j.field("id")
                .and_then(Json::as_str)
                .expect("job id")
                .to_string()
        })
        .collect();
    for entry in std::fs::read_dir(spool).expect("read spool") {
        let entry = entry.expect("entry");
        let name = entry.file_name().into_string().expect("utf-8 name");
        assert!(!name.ends_with(".tmp"), "leaked atomic-write temp {name}");
        if entry.file_type().expect("file type").is_dir() {
            assert!(known.contains(&name), "orphan job dir {name} survived gc");
            for file in std::fs::read_dir(entry.path()).expect("job dir") {
                let file = file
                    .expect("entry")
                    .file_name()
                    .into_string()
                    .expect("utf-8");
                assert!(
                    !file.ends_with(".tmp"),
                    "leaked atomic-write temp {name}/{file}"
                );
            }
        } else {
            assert_eq!(name, "meta.json", "unexpected stray file {name}");
        }
    }
}

/// The restart story under sustained abuse: a mixed healthy/sick fleet
/// is SIGKILLed mid-flight and `--resume`d five times in a row. After
/// every cycle the spool obeys its GC invariants and the sick run's
/// quarantine survives verbatim; after the last cycle the healthy runs
/// finish bit-identical to uninterrupted solo runs — five partial
/// replays composed exactly, losing and corrupting nothing.
#[test]
fn five_sigkill_resume_cycles_compose_bit_identically() {
    let spool = temp_dir("soak");
    let spool_arg = spool.display().to_string();
    let inject = "v0=0.12=panic@5";
    let sweep = SweepSpec::grid("two_stream", Scale::Smoke).axis("v0", [0.1, 0.12, 0.14, 0.16]);
    // Long enough that no healthy run can finish inside five short
    // observe-then-kill windows (smoke DL runs step fast even in debug).
    let job_req = JobRequest::sweep(sweep, Backend::Dl1D).with_steps(4000);

    // `--spool-interval 4` (last flag wins) keeps checkpoint I/O from
    // dominating a 4000-step fleet while still bounding replay per kill.
    let daemon = Daemon::spawn(&[
        "--spool",
        &spool_arg,
        "--inject",
        inject,
        "--spool-interval",
        "4",
    ]);
    let (job, runs) = Client::connect(&daemon.addr)
        .expect("connect")
        .submit(&job_req, "soak")
        .expect("submit");
    assert_eq!(runs, 4);

    let mut watermark = [0usize; 4];
    let mut daemon = daemon;
    for cycle in 0..5 {
        // Let every healthy run advance past its last observed progress
        // (and the sick run reach quarantine) before pulling the plug.
        let deadline = std::time::Instant::now() + Duration::from_secs(120);
        let mut client = Client::connect(&daemon.addr).expect("reconnect");
        loop {
            assert!(
                std::time::Instant::now() < deadline,
                "cycle {cycle}: fleet made no progress"
            );
            let states = run_states(&mut client, &job);
            assert!(
                states.iter().all(|(s, _, _)| s != "done"),
                "cycle {cycle}: a healthy run finished early; raise the step budget"
            );
            let healthy_moved = [0usize, 2, 3]
                .iter()
                .all(|&k| states[k].1 > watermark[k] + 1);
            if healthy_moved && states[1].0 == "failed" {
                for (k, (_, steps, _)) in states.iter().enumerate() {
                    watermark[k] = *steps;
                }
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        daemon.kill();

        // At rest: the spool is consistent after an uncoordinated kill.
        assert_spool_invariants(&spool);

        daemon = Daemon::spawn(&[
            "--resume",
            &spool_arg,
            "--inject",
            inject,
            "--spool-interval",
            "4",
        ]);
        let mut client = Client::connect(&daemon.addr).expect("reconnect");
        let states = run_states(&mut client, &job);
        assert_eq!(
            states[1].0, "failed",
            "cycle {cycle}: quarantine must survive the restart"
        );
        assert!(
            states[1].2.as_deref().unwrap().contains("solver panicked"),
            "cycle {cycle}: structured error lost: {:?}",
            states[1].2
        );
    }

    // Let the final incarnation run the fleet to completion.
    let mut client = Client::connect(&daemon.addr).expect("connect");
    let results = client
        .wait_for(&job, Duration::from_millis(10))
        .expect("wait after final resume");
    assert_eq!(results.len(), 4);
    let solo_specs = job_req.expand().expect("expand");
    for k in [0usize, 2, 3] {
        assert_eq!(results[k].state, "done", "run {k}");
        let solo = Engine::new()
            .run(&solo_specs[k], Backend::Dl1D)
            .expect("solo");
        assert_eq!(
            history_of(&results[k].summary),
            solo.history,
            "run {k}: five kill/resume cycles diverged from the uninterrupted run"
        );
    }
    assert_eq!(results[1].state, "failed");

    cli(&["drain", "--addr", &daemon.addr]);
    daemon.kill();
    assert_spool_invariants(&spool);
    let _ = std::fs::remove_dir_all(&spool);
}

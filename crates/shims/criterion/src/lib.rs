//! Offline stand-in for `criterion`: the same macro/builder surface, a
//! simple median-of-samples wall-clock harness underneath.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the subset its benches call: `criterion_group!`/`criterion_main!`,
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`] with
//! `sample_size`/`measurement_time`/`warm_up_time`, and
//! [`Bencher::iter`]/[`Bencher::iter_batched`]. Results print as
//! `name ... median ± spread` per benchmark. No statistics beyond the
//! median and min/max spread are computed.

use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a value or the computation behind
/// it.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortizes setup (accepted, not acted on: the shim
/// always re-runs setup per measurement batch).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration state.
    SmallInput,
    /// Large per-iteration state.
    LargeInput,
    /// Setup re-done for every single call.
    PerIteration,
}

/// Measurement marker types.
pub mod measurement {
    /// Wall-clock time (the only measurement the shim supports).
    #[derive(Debug, Clone, Copy, Default)]
    pub struct WallTime;
}

/// Per-benchmark timing driver handed to the closure.
pub struct Bencher {
    samples: usize,
    measurement: Duration,
    warm_up: Duration,
    /// Collected per-sample mean ns/iter.
    results: Vec<f64>,
}

impl Bencher {
    /// Times `routine` repeatedly; records ns per call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up, and calibrate iterations per sample.
        let warm_start = Instant::now();
        let mut calls = 0u64;
        while warm_start.elapsed() < self.warm_up || calls == 0 {
            black_box(routine());
            calls += 1;
        }
        let per_call = warm_start.elapsed().as_secs_f64() / calls as f64;
        let budget = self.measurement.as_secs_f64() / self.samples as f64;
        let iters = ((budget / per_call.max(1e-9)) as u64).clamp(1, 1_000_000);

        self.results.clear();
        for _ in 0..self.samples {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.results
                .push(t0.elapsed().as_secs_f64() * 1e9 / iters as f64);
        }
    }

    /// Times `routine` on fresh state from `setup`, excluding setup time.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        // Warm-up: one call.
        black_box(routine(setup()));
        let samples = self.samples.min(16);
        self.results.clear();
        for _ in 0..samples {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.results.push(t0.elapsed().as_secs_f64() * 1e9);
        }
    }

    fn report(&mut self, name: &str) {
        if self.results.is_empty() {
            println!("{name:<50} (no samples)");
            return;
        }
        self.results.sort_by(|a, b| a.total_cmp(b));
        let median = self.results[self.results.len() / 2];
        let lo = self.results.first().copied().unwrap_or(median);
        let hi = self.results.last().copied().unwrap_or(median);
        println!(
            "{name:<50} {:>12} [{} .. {}]",
            fmt_ns(median),
            fmt_ns(lo),
            fmt_ns(hi)
        );
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Group of related benchmarks sharing tuning parameters.
pub struct BenchmarkGroup<'a, M = measurement::WallTime> {
    parent: &'a Criterion,
    name: String,
    samples: usize,
    measurement: Duration,
    warm_up: Duration,
    _marker: std::marker::PhantomData<M>,
}

impl<M> BenchmarkGroup<'_, M> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(2);
        self
    }

    /// Total measurement budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Warm-up budget per benchmark.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        if !self.parent.matches(&full) {
            return self;
        }
        let mut b = Bencher {
            samples: self.samples,
            measurement: self.measurement,
            warm_up: self.warm_up,
            results: Vec::new(),
        };
        f(&mut b);
        b.report(&full);
        self
    }

    /// Ends the group (printing is immediate; nothing deferred).
    pub fn finish(&mut self) {}
}

/// The harness entry point (mirrors `criterion::Criterion`).
pub struct Criterion {
    filter: Option<String>,
    samples: usize,
    measurement: Duration,
    warm_up: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        // Honour the substring filter `cargo bench -- <filter>` passes.
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-') && !a.is_empty());
        Self {
            filter,
            samples: 10,
            measurement: Duration::from_secs(2),
            warm_up: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    fn matches(&self, name: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| name.contains(f))
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = id.into();
        if !self.matches(&name) {
            return self;
        }
        let mut b = Bencher {
            samples: self.samples,
            measurement: self.measurement,
            warm_up: self.warm_up,
            results: Vec::new(),
        };
        f(&mut b);
        b.report(&name);
        self
    }

    /// Opens a named group with its own tuning.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.into(),
            samples: self.samples,
            measurement: self.measurement,
            warm_up: self.warm_up,
            _marker: std::marker::PhantomData,
        }
    }
}

/// Declares a bench group function, mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main`, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

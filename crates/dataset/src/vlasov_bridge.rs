//! Vlasov-generated training data — the paper's §VII path:
//!
//! > "more accurate training data sets can be obtained by running Vlasov
//! > codes that are not affected by the PIC numerical noise"
//!
//! This module runs `dlpic-vlasov` harvests over a sweep and packs the
//! (noise-free) histograms into a [`PhaseDataset`] of exactly the same
//! shape as a PIC harvest, so training and the DL-PIC loop are agnostic to
//! the data source. The `ablation_data` study in `dlpic-bench` compares
//! the two.

use crate::sample::PhaseDataset;
use crate::spec::SweepSpec;
use dlpic_core::phase_space::{BinningShape, PhaseGridSpec};
use dlpic_vlasov::generator::VlasovHarvest;
use dlpic_vlasov::solver::VlasovConfig;
use rayon::prelude::*;

/// Configuration for a Vlasov-sourced dataset.
#[derive(Debug, Clone)]
pub struct VlasovDatasetConfig {
    /// The (v0, vth) sweep; `experiments_per_combo` is ignored (Vlasov is
    /// deterministic — there is nothing to augment over).
    pub sweep: SweepSpec,
    /// Output histogram geometry; the Vlasov run uses a finer grid and is
    /// block-summed down to this.
    pub phase_spec: PhaseGridSpec,
    /// Total histogram mass (the PIC particle count the DL solver sees at
    /// inference, e.g. 64 000).
    pub total_mass: f64,
    /// Internal Vlasov resolution multipliers relative to `phase_spec`
    /// (x, v). The defaults (2, 8) give a 64×256 run for a 32×32 output.
    pub refine: (usize, usize),
    /// Vlasov time step; samples land on the PIC cadence `Δt = 0.2` by
    /// sub-stepping.
    pub dt: f64,
}

impl VlasovDatasetConfig {
    /// Defaults matched to the PIC harvest conventions.
    pub fn new(sweep: SweepSpec, phase_spec: PhaseGridSpec, total_mass: f64) -> Self {
        Self {
            sweep,
            phase_spec,
            total_mass,
            refine: (2, 8),
            dt: 0.05,
        }
    }
}

/// Runs the sweep and produces the dataset. Combos run in parallel.
///
/// # Panics
/// Panics if the PIC sample cadence (0.2) is not a multiple of `dt`, or
/// if the phase-spec's velocity window is not symmetric (the Vlasov solver
/// assumes `[-vmax, vmax]`).
pub fn generate_vlasov(cfg: &VlasovDatasetConfig) -> PhaseDataset {
    let spec = cfg.phase_spec;
    assert!(
        (spec.vmin + spec.vmax).abs() < 1e-12,
        "Vlasov bridge needs a symmetric velocity window, got [{}, {}]",
        spec.vmin,
        spec.vmax
    );
    let stride_f = 0.2 / cfg.dt;
    let stride = stride_f.round() as usize;
    assert!(
        (stride_f - stride as f64).abs() < 1e-9 && stride >= 1,
        "PIC cadence 0.2 must be a multiple of dt, got dt = {}",
        cfg.dt
    );

    // The Vlasov x-grid must refine BOTH the phase-grid columns (so the
    // histogram block-sums cleanly) and the PIC field grid (so the field
    // restricts by striding): use the least common multiple, scaled by
    // the refinement factor.
    let e_cells = dlpic_pic::constants::PAPER_NCELLS;
    let fine_nx = lcm(spec.nx, e_cells) * cfg.refine.0.max(1);
    let fine_nv = spec.nv * cfg.refine.1.max(1);
    let fx = fine_nx / spec.nx;
    let e_stride = fine_nx / e_cells;

    let parts: Vec<PhaseDataset> = cfg
        .sweep
        .combos
        .par_iter()
        .map(|combo| {
            // Vlasov needs a smooth f: floor the thermal spread at one
            // fine-grid velocity cell.
            let dv_fine = (spec.vmax - spec.vmin) / fine_nv as f64;
            let vth = combo.vth.max(1.5 * dv_fine);
            let vcfg = VlasovConfig {
                grid: dlpic_pic::grid::Grid1D::new(
                    fine_nx,
                    dlpic_pic::constants::paper_box_length(),
                ),
                nv: fine_nv,
                vmax: spec.vmax,
                dt: cfg.dt,
                v0: combo.v0,
                vth,
                perturbation: 1e-3,
            };
            let mut harvest = VlasovHarvest::new(vcfg, cfg.sweep.steps, cfg.total_mass);
            harvest.stride = stride;

            // Histograms block-sum (mass-preserving); the smooth field
            // restricts by striding. `run_with` lends reused snapshot
            // buffers, and the block-sum/stride scratch below is reused
            // across samples too — the per-sample loop allocates nothing.
            let mut part = PhaseDataset::new(spec, BinningShape::Ngp, e_cells);
            part.reserve(cfg.sweep.steps);
            let mut hist = vec![0.0f32; spec.cells()];
            let mut field = vec![0.0f64; e_cells];
            harvest.run_with(|histogram, efield| {
                hist.fill(0.0);
                for iv_f in 0..fine_nv {
                    let iv = iv_f / cfg.refine.1.max(1);
                    let src = &histogram[iv_f * fine_nx..(iv_f + 1) * fine_nx];
                    let dst = &mut hist[iv * spec.nx..(iv + 1) * spec.nx];
                    for (ix_f, &hv) in src.iter().enumerate() {
                        dst[ix_f / fx] += hv;
                    }
                }
                for (j, f) in field.iter_mut().enumerate() {
                    *f = efield[j * e_stride];
                }
                part.push(&hist, &field);
            });
            part
        })
        .collect();

    let mut merged = PhaseDataset::new(spec, BinningShape::Ngp, dlpic_pic::constants::PAPER_NCELLS);
    for p in &parts {
        merged.extend(p);
    }
    merged
}

/// Greatest common divisor (Euclid).
fn gcd(a: usize, b: usize) -> usize {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

/// Least common multiple.
fn lcm(a: usize, b: usize) -> usize {
    a / gcd(a, b) * b
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::SweepCombo;

    fn tiny_cfg() -> VlasovDatasetConfig {
        let sweep = SweepSpec {
            combos: vec![SweepCombo { v0: 0.2, vth: 0.01 }],
            experiments_per_combo: 1,
            steps: 6,
            base_seed: 0,
        };
        VlasovDatasetConfig::new(sweep, PhaseGridSpec::new(32, 32, -0.8, 0.8), 64_000.0)
    }

    #[test]
    fn produces_pic_shaped_samples() {
        let ds = generate_vlasov(&tiny_cfg());
        assert_eq!(ds.len(), 6);
        assert_eq!(ds.spec.cells(), 32 * 32);
        assert_eq!(ds.e_cells, 64);
        for i in 0..ds.len() {
            let mass: f64 = ds.input_row(i).iter().map(|&h| h as f64).sum();
            assert!(
                (mass - 64_000.0).abs() / 64_000.0 < 1e-3,
                "sample {i} mass {mass}"
            );
        }
    }

    #[test]
    fn fields_are_smooth_and_small_before_growth() {
        let ds = generate_vlasov(&tiny_cfg());
        // Early in the run the field is the seeded perturbation (~1e-3·L
        // scale), far below the saturated ~0.1.
        let e0 = ds.target_row(0);
        let peak = e0.iter().fold(0.0f32, |m, v| m.max(v.abs()));
        assert!(peak > 1e-5 && peak < 5e-2, "initial field peak {peak}");
    }

    #[test]
    #[should_panic(expected = "symmetric velocity window")]
    fn asymmetric_window_rejected() {
        let mut cfg = tiny_cfg();
        cfg.phase_spec = PhaseGridSpec::new(32, 32, -0.5, 0.8);
        let _ = generate_vlasov(&cfg);
    }

    #[test]
    #[should_panic(expected = "multiple of dt")]
    fn incompatible_dt_rejected() {
        let mut cfg = tiny_cfg();
        cfg.dt = 0.07;
        let _ = generate_vlasov(&cfg);
    }
}

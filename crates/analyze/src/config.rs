//! Rule configuration: per-rule severity levels and path scopes, the
//! repo's committed defaults, and a small line-based config-file format
//! for overriding them (`--config`).
//!
//! Everything iterates in `BTreeMap` order — the analyzer holds itself to
//! the same determinism contract it enforces.

use std::collections::BTreeMap;
use std::fmt;

/// How a rule's findings are treated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Level {
    /// Rule is off for its scope.
    Allow,
    /// Findings are reported but never fail the run.
    Warn,
    /// Findings fail a `--deny` run unless suppressed or baselined.
    Deny,
}

impl Level {
    /// Parses `allow`/`warn`/`deny`.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "allow" => Ok(Self::Allow),
            "warn" => Ok(Self::Warn),
            "deny" => Ok(Self::Deny),
            other => Err(format!("unknown level `{other}` (allow|warn|deny)")),
        }
    }
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Self::Allow => "allow",
            Self::Warn => "warn",
            Self::Deny => "deny",
        })
    }
}

/// One rule's configuration.
#[derive(Debug, Clone)]
pub struct RuleConfig {
    pub level: Level,
    /// Glob patterns (workspace-relative, `/`-separated) selecting the
    /// files the rule applies to. `**` spans path segments, `*` and `?`
    /// stay within one segment.
    pub paths: Vec<String>,
}

/// The full analyzer configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Rule name → configuration, in deterministic order.
    pub rules: BTreeMap<String, RuleConfig>,
    /// Glob patterns excluded from scanning entirely.
    pub exclude: Vec<String>,
}

/// The shipped rule names, in reporting order.
pub const RULE_NAMES: [&str; 7] = [
    "no-hashmap-iter-in-state",
    "no-wallclock-in-engine",
    "no-panic-in-request-path",
    "safety-comment-required",
    "no-alloc-in-hot-loop",
    "phase-constants-only",
    "no-weight-clone",
];

/// One-line description per rule (for `--list-rules` and SARIF output).
pub fn rule_description(rule: &str) -> &'static str {
    match rule {
        "no-hashmap-iter-in-state" => {
            "state-serialization paths must not use HashMap/HashSet: their \
             iteration order is nondeterministic, which breaks byte-identical \
             checkpoint/spool/status output — use BTreeMap/BTreeSet or sort keys"
        }
        "no-wallclock-in-engine" => {
            "engine and solver code must not read the wall clock \
             (Instant::now/SystemTime::now): time-dependent state breaks \
             checkpoint/resume bit-identity — thread timing in from the caller"
        }
        "no-panic-in-request-path" => {
            "serve request-path modules must not unwrap/expect/panic: a \
             hostile or malformed request must become a structured error, \
             never a daemon crash (Mutex/Condvar poisoning propagation is exempt)"
        }
        "safety-comment-required" => {
            "every `unsafe` must be justified by a `// SAFETY:` comment or a \
             `# Safety` doc section directly above it"
        }
        "no-alloc-in-hot-loop" => {
            "files opting in with `// analyze:hot` must not allocate inside \
             loop bodies (Vec::new/vec!/to_vec/clone/format!/collect/…) — \
             the PR 2/3 allocation-free-stepping wins depend on it"
        }
        "phase-constants-only" => {
            "every `fabric.send(..)` emission must tag its phase with a \
             `comm::PHASE_*` constant, so KNOWN_PHASES can never drift from \
             the emitters"
        }
        "no-weight-clone" => {
            "engine and serve code must not `.clone()` bundles/models/\
             networks: one cloned weight set per session erases the \
             shared-fleet memory budget — share an `Arc<FrozenModel>` and \
             take handles with `Arc::clone`"
        }
        _ => "unknown rule",
    }
}

impl Config {
    /// The repo's committed contract: every rule at `deny`, scoped to the
    /// modules whose invariants it protects.
    pub fn repo_default() -> Self {
        let mut rules = BTreeMap::new();
        let rule = |level, paths: &[&str]| RuleConfig {
            level,
            paths: paths.iter().map(|s| s.to_string()).collect(),
        };
        // Determinism: serialization paths that feed checkpoint files,
        // the spool, or wire-visible status documents.
        rules.insert(
            "no-hashmap-iter-in-state".to_string(),
            rule(
                Level::Deny,
                &[
                    "crates/serve/src/spool.rs",
                    "crates/serve/src/server.rs",
                    "crates/serve/src/stats.rs",
                    "crates/serve/src/protocol.rs",
                    "src/engine/session.rs",
                    "src/engine/json.rs",
                    "src/engine/ensemble.rs",
                ],
            ),
        );
        // Determinism: engine + solver crates (their integration tests
        // under crates/*/tests may time things freely).
        rules.insert(
            "no-wallclock-in-engine".to_string(),
            rule(
                Level::Deny,
                &[
                    "src/engine/**",
                    "crates/analytics/src/**",
                    "crates/core/src/**",
                    "crates/dataset/src/**",
                    "crates/ddecomp/src/**",
                    "crates/nn/src/**",
                    "crates/pic/src/**",
                    "crates/pic2d/src/**",
                    "crates/vlasov/src/**",
                ],
            ),
        );
        // Panic safety: the serve library modules handle hostile input;
        // the bins (CLI arg parsing) legitimately exit loudly.
        rules.insert(
            "no-panic-in-request-path".to_string(),
            rule(Level::Deny, &["crates/serve/src/*.rs"]),
        );
        // Unsafe hygiene: everywhere.
        rules.insert(
            "safety-comment-required".to_string(),
            rule(Level::Deny, &["**"]),
        );
        // Hot-path allocation: everywhere a file opts in.
        rules.insert(
            "no-alloc-in-hot-loop".to_string(),
            rule(Level::Deny, &["**"]),
        );
        // Constant drift: the rank fabric's emission sites.
        rules.insert(
            "phase-constants-only".to_string(),
            rule(Level::Deny, &["crates/ddecomp/src/**"]),
        );
        // Weight sharing: the fleet-facing layers, where one stray clone
        // multiplies resident weight bytes by the session count.
        rules.insert(
            "no-weight-clone".to_string(),
            rule(Level::Deny, &["src/engine/**", "crates/serve/src/**"]),
        );
        Self {
            rules,
            exclude: vec![
                "target/**".to_string(),
                ".git/**".to_string(),
                // The fixture corpus violates the rules on purpose.
                "crates/analyze/tests/fixtures/**".to_string(),
                // Offline stand-ins for external crates.io packages: not
                // this repo's code, not held to this repo's contracts.
                "crates/shims/**".to_string(),
            ],
        }
    }

    /// A config with every shipped rule applying to every path at `deny`
    /// — what the fixture tests use.
    pub fn all_paths() -> Self {
        let mut cfg = Self::repo_default();
        for rc in cfg.rules.values_mut() {
            rc.paths = vec!["**".to_string()];
        }
        cfg.exclude.clear();
        cfg
    }

    /// Applies one `key = value` override. Keys: `exclude` (comma list,
    /// replaces the default), `<rule>.level`, `<rule>.paths` (comma list).
    pub fn set(&mut self, key: &str, value: &str) -> Result<(), String> {
        if key == "exclude" {
            self.exclude = split_list(value);
            return Ok(());
        }
        let (rule, attr) = key
            .rsplit_once('.')
            .ok_or_else(|| format!("bad key `{key}` (want exclude, <rule>.level, <rule>.paths)"))?;
        let rc = self
            .rules
            .get_mut(rule)
            .ok_or_else(|| format!("unknown rule `{rule}` (see --list-rules)"))?;
        match attr {
            "level" => rc.level = Level::parse(value)?,
            "paths" => rc.paths = split_list(value),
            other => return Err(format!("unknown attribute `{other}` (level|paths)")),
        }
        Ok(())
    }

    /// Parses a config file: `#` comments, blank lines, `key = value`
    /// lines applied via [`Self::set`] on top of the defaults.
    pub fn apply_file(&mut self, text: &str) -> Result<(), String> {
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| format!("line {}: not `key = value`: {line}", idx + 1))?;
            self.set(key.trim(), value.trim())
                .map_err(|e| format!("line {}: {e}", idx + 1))?;
        }
        Ok(())
    }

    /// True when `path` (workspace-relative, `/`-separated) is excluded
    /// from scanning.
    pub fn is_excluded(&self, path: &str) -> bool {
        self.exclude.iter().any(|g| glob_match(g, path))
    }

    /// The rules that apply to `path`, with their levels, skipping
    /// `allow`.
    pub fn rules_for<'a>(&'a self, path: &str) -> Vec<(&'a str, Level)> {
        self.rules
            .iter()
            .filter(|(_, rc)| rc.level != Level::Allow)
            .filter(|(_, rc)| rc.paths.iter().any(|g| glob_match(g, path)))
            .map(|(name, rc)| (name.as_str(), rc.level))
            .collect()
    }
}

fn split_list(value: &str) -> Vec<String> {
    value
        .split(',')
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .collect()
}

/// Matches `path` against `pattern`. Both are `/`-separated. `**` spans
/// any number of segments (including zero), `*` matches any run of
/// characters within one segment, `?` one character.
pub fn glob_match(pattern: &str, path: &str) -> bool {
    let pat: Vec<&str> = pattern.split('/').collect();
    let segs: Vec<&str> = path.split('/').collect();
    match_segments(&pat, &segs)
}

fn match_segments(pat: &[&str], segs: &[&str]) -> bool {
    match pat.first() {
        None => segs.is_empty(),
        Some(&"**") => {
            // `**` eats zero or more leading segments.
            (0..=segs.len()).any(|k| match_segments(&pat[1..], &segs[k..]))
        }
        Some(p) => match segs.first() {
            None => false,
            Some(s) => match_one(p, s) && match_segments(&pat[1..], &segs[1..]),
        },
    }
}

fn match_one(pat: &str, seg: &str) -> bool {
    let p: Vec<char> = pat.chars().collect();
    let s: Vec<char> = seg.chars().collect();
    match_chars(&p, &s)
}

fn match_chars(p: &[char], s: &[char]) -> bool {
    match p.first() {
        None => s.is_empty(),
        Some('*') => (0..=s.len()).any(|k| match_chars(&p[1..], &s[k..])),
        Some('?') => !s.is_empty() && match_chars(&p[1..], &s[1..]),
        Some(c) => s.first() == Some(c) && match_chars(&p[1..], &s[1..]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn glob_semantics() {
        assert!(glob_match("**", "any/depth/file.rs"));
        assert!(glob_match(
            "crates/serve/src/*.rs",
            "crates/serve/src/server.rs"
        ));
        assert!(!glob_match(
            "crates/serve/src/*.rs",
            "crates/serve/src/bin/cli.rs"
        ));
        assert!(glob_match("src/engine/**", "src/engine/session.rs"));
        assert!(glob_match(
            "crates/nn/src/**",
            "crates/nn/src/layers/conv.rs"
        ));
        assert!(!glob_match("crates/nn/src/**", "crates/nn/tests/api.rs"));
        assert!(glob_match("target/**", "target/release/deps/x.rs"));
        assert!(glob_match("a/?.rs", "a/b.rs"));
        assert!(!glob_match("a/?.rs", "a/bc.rs"));
    }

    #[test]
    fn repo_default_scopes_rules() {
        let cfg = Config::repo_default();
        let serve = cfg.rules_for("crates/serve/src/server.rs");
        assert!(serve.iter().any(|(r, _)| *r == "no-panic-in-request-path"));
        assert!(serve.iter().any(|(r, _)| *r == "no-hashmap-iter-in-state"));
        let bin = cfg.rules_for("crates/serve/src/bin/dlpic-cli.rs");
        assert!(!bin.iter().any(|(r, _)| *r == "no-panic-in-request-path"));
        assert!(cfg.is_excluded("target/debug/build/x.rs"));
        assert!(cfg.is_excluded("crates/analyze/tests/fixtures/bad.rs"));
        assert!(!cfg.is_excluded("crates/analyze/src/lib.rs"));
    }

    #[test]
    fn config_file_overrides() {
        let mut cfg = Config::repo_default();
        cfg.apply_file(
            "# comment\n\
             no-wallclock-in-engine.level = warn\n\
             no-panic-in-request-path.paths = crates/serve/src/*.rs, crates/serve/src/bin/*.rs\n",
        )
        .unwrap();
        assert_eq!(cfg.rules["no-wallclock-in-engine"].level, Level::Warn);
        assert!(cfg
            .rules_for("crates/serve/src/bin/dlpic-cli.rs")
            .iter()
            .any(|(r, _)| *r == "no-panic-in-request-path"));
        assert!(cfg.apply_file("nonsense\n").is_err());
        assert!(cfg.apply_file("made-up-rule.level = deny\n").is_err());
        assert!(cfg
            .apply_file("no-alloc-in-hot-loop.level = sometimes\n")
            .is_err());
    }
}

//! A blocking client for the serve protocol: connect, send one request
//! line, read one response line — plus the streaming `watch` loop. The
//! `dlpic-cli` binary is a thin argument parser over this module, and
//! the integration tests drive servers through it in-process.
//!
//! Robustness: [`Client::connect_with`] applies connect/read/write
//! deadlines so a dead server surfaces as [`ServeError::Timeout`] instead
//! of hanging forever; [`Client::submit_keyed`] makes submits idempotent
//! under retry; and [`Client::watch_retry`] / [`Client::wait_for_retry`]
//! reconnect through transient failures with a bounded exponential
//! [`Backoff`].

use std::io::{BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::os::unix::net::UnixStream;
use std::time::Duration;

use dlpic_repro::engine::json::{obj, Json};

use crate::error::ServeError;
use crate::job::JobRequest;
use crate::protocol::{self, ProtoError, WatchPolicy, DEFAULT_WATCH_QUEUE};

/// A bounded exponential-backoff schedule for reconnects: sleeps
/// `initial`, doubling per attempt up to `max`, for at most `attempts`
/// reconnect attempts. Only transient failures (I/O, timeout, server
/// disconnect) are retried — protocol rejections fail immediately.
#[derive(Debug, Clone, Copy)]
pub struct Backoff {
    /// Reconnect attempts before giving up.
    pub attempts: usize,
    /// First sleep.
    pub initial: Duration,
    /// Sleep ceiling.
    pub max: Duration,
}

impl Default for Backoff {
    fn default() -> Self {
        Self {
            attempts: 5,
            initial: Duration::from_millis(200),
            max: Duration::from_secs(5),
        }
    }
}

impl Backoff {
    /// A schedule with this many attempts and the default sleeps.
    pub fn attempts(n: usize) -> Self {
        Self {
            attempts: n,
            ..Self::default()
        }
    }

    /// The sleep before reconnect attempt `attempt` (0-based).
    pub fn delay(&self, attempt: usize) -> Duration {
        let factor = 1u32 << attempt.min(16) as u32;
        self.initial.saturating_mul(factor).min(self.max)
    }

    /// True for failures worth a reconnect: the connection died or timed
    /// out. A protocol rejection would fail identically on retry.
    pub fn retryable(e: &ServeError) -> bool {
        matches!(
            e,
            ServeError::Io(_) | ServeError::Disconnected | ServeError::Timeout
        )
    }
}

/// Deterministic bounded jitter for overload retries: a hash of
/// `(key, attempt)` scaled to at most 25% of the advised wait. No RNG
/// and no clock, so retry schedules are reproducible in tests while
/// distinct keys still decorrelate.
fn retry_jitter(key: &str, attempt: usize, advised_ms: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in key.bytes().chain(attempt.to_le_bytes()) {
        h ^= u64::from(byte);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    let cap = (advised_ms / 4).max(1);
    h % cap
}

enum Stream {
    Tcp(TcpStream),
    Unix(UnixStream),
}

impl Stream {
    fn try_clone(&self) -> std::io::Result<Stream> {
        Ok(match self {
            Self::Tcp(s) => Self::Tcp(s.try_clone()?),
            Self::Unix(s) => Self::Unix(s.try_clone()?),
        })
    }
}

impl std::io::Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Self::Tcp(s) => s.read(buf),
            Self::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Self::Tcp(s) => s.write(buf),
            Self::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Self::Tcp(s) => s.flush(),
            Self::Unix(s) => s.flush(),
        }
    }
}

/// A connection to a `dlpic-serve` daemon. One request at a time; the
/// connection is reusable across requests (including after a completed
/// `watch`).
pub struct Client {
    addr: String,
    timeout: Option<Duration>,
    writer: Stream,
    reader: BufReader<Stream>,
}

/// Reads one `\n`-terminated line without the server's [`MAX_LINE`]
/// inbound cap: the cap shields the daemon from hostile peers, but the
/// client trusts its server, and a `result` response legitimately embeds
/// a full run history (which can run to megabytes). `None` at EOF.
///
/// [`MAX_LINE`]: crate::protocol::MAX_LINE
fn read_raw_line(reader: &mut impl std::io::BufRead) -> std::io::Result<Option<String>> {
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Ok(None);
    }
    while line.ends_with('\n') || line.ends_with('\r') {
        line.pop();
    }
    Ok(Some(line))
}

/// One finished run as returned by [`Client::results`].
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Run index within the job.
    pub run: usize,
    /// The expanded spec's name.
    pub name: String,
    /// `done` or `stopped`.
    pub state: String,
    /// The stored summary document (scenario, backend, steps, history…).
    pub summary: Json,
}

impl Client {
    /// Connects to `host:port` (TCP) or `unix:<path>` (Unix socket) with
    /// no deadlines — reads block until the server answers. Prefer
    /// [`Self::connect_with`] for anything unattended.
    pub fn connect(addr: &str) -> Result<Self, ServeError> {
        Self::connect_with(addr, None)
    }

    /// [`Self::connect`] with `timeout` applied to connect, read and
    /// write: a dead or wedged server surfaces as [`ServeError::Timeout`]
    /// instead of hanging the caller forever.
    pub fn connect_with(addr: &str, timeout: Option<Duration>) -> Result<Self, ServeError> {
        let stream = match addr.strip_prefix("unix:") {
            Some(path) => {
                let s = UnixStream::connect(path)?;
                s.set_read_timeout(timeout)?;
                s.set_write_timeout(timeout)?;
                Stream::Unix(s)
            }
            None => {
                let s = match timeout {
                    None => TcpStream::connect(addr)?,
                    Some(t) => {
                        let mut last: Option<std::io::Error> = None;
                        let mut connected = None;
                        for sa in addr.to_socket_addrs()? {
                            match TcpStream::connect_timeout(&sa, t) {
                                Ok(s) => {
                                    connected = Some(s);
                                    break;
                                }
                                Err(e) => last = Some(e),
                            }
                        }
                        match connected {
                            Some(s) => s,
                            None => {
                                return Err(last
                                    .map(ServeError::from)
                                    .unwrap_or(ServeError::Disconnected))
                            }
                        }
                    }
                };
                s.set_read_timeout(timeout)?;
                s.set_write_timeout(timeout)?;
                Stream::Tcp(s)
            }
        };
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Self {
            addr: addr.to_string(),
            timeout,
            writer: stream,
            reader,
        })
    }

    /// Replaces the underlying connection with a fresh one to the same
    /// address and deadlines (any half-read stream state is discarded).
    pub fn reconnect(&mut self) -> Result<(), ServeError> {
        *self = Self::connect_with(&self.addr, self.timeout)?;
        Ok(())
    }

    /// Sends one raw request line and returns the parsed `ok` response
    /// document (protocol errors become [`ServeError::Protocol`]).
    pub fn request(&mut self, line: &str) -> Result<Json, ServeError> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        self.read_response()
    }

    fn read_response(&mut self) -> Result<Json, ServeError> {
        match read_raw_line(&mut self.reader)? {
            None => Err(ServeError::Disconnected),
            Some(line) => Ok(protocol::parse_response(&line)?),
        }
    }

    /// Submits a job under `tenant`; returns `(job id, run count)`.
    pub fn submit(
        &mut self,
        job: &JobRequest,
        tenant: &str,
    ) -> Result<(String, usize), ServeError> {
        let (id, runs, _) = self.submit_keyed(job, tenant, None)?;
        Ok((id, runs))
    }

    /// [`Self::submit`] with an idempotency key: resubmitting the same
    /// `(tenant, job_key)` — say, after a timed-out submit whose response
    /// was lost — returns the already-accepted job instead of scheduling
    /// a duplicate. Returns `(job id, run count, deduped)`.
    pub fn submit_keyed(
        &mut self,
        job: &JobRequest,
        tenant: &str,
        job_key: Option<&str>,
    ) -> Result<(String, usize, bool), ServeError> {
        let mut fields = vec![
            ("op", Json::Str("submit".into())),
            ("tenant", Json::Str(tenant.into())),
            ("job", job.to_json_value()),
        ];
        if let Some(key) = job_key {
            fields.push(("job_key", Json::Str(key.into())));
        }
        let doc = self.request(&obj(fields).to_compact())?;
        Ok((
            doc.field("job")
                .map_err(ProtoError::from)?
                .as_str()
                .map_err(ProtoError::from)?
                .to_string(),
            doc.field("runs")
                .and_then(Json::as_usize)
                .map_err(ProtoError::from)?,
            matches!(doc.get("deduped"), Some(Json::Bool(true))),
        ))
    }

    /// [`Self::submit_keyed`] that cooperates with the server's overload
    /// governance: a rejection carrying `retry_after_ms` (`overloaded`,
    /// `quota-exceeded`, `circuit-open`) sleeps for the advised interval
    /// — plus deterministic bounded jitter so a burst of shed clients
    /// does not re-stampede in lockstep — and resubmits, up to
    /// `backoff.attempts` times. Transport failures reconnect on the
    /// `backoff` schedule as usual; rejections without retry advice fail
    /// immediately (they would fail identically on retry).
    ///
    /// The jitter is derived from the attempt number and the job key (no
    /// clock, no RNG): attempt `n` adds `hash(job_key, n) % 25%` of the
    /// advised wait.
    pub fn submit_keyed_retry(
        &mut self,
        job: &JobRequest,
        tenant: &str,
        job_key: Option<&str>,
        backoff: Backoff,
    ) -> Result<(String, usize, bool), ServeError> {
        let mut attempt = 0usize;
        loop {
            match self.submit_keyed(job, tenant, job_key) {
                Ok(accepted) => return Ok(accepted),
                Err(e) if attempt < backoff.attempts => {
                    if let Some(advised) = e.retry_after_ms() {
                        let jitter = retry_jitter(job_key.unwrap_or(tenant), attempt, advised);
                        std::thread::sleep(Duration::from_millis(advised + jitter));
                    } else if Backoff::retryable(&e) {
                        std::thread::sleep(backoff.delay(attempt));
                        let _ = self.reconnect();
                    } else {
                        return Err(e);
                    }
                    attempt += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// The server's `health` document: liveness/readiness, session and
    /// backlog load, budget occupancy, breaker state, wave latency.
    pub fn health(&mut self) -> Result<Json, ServeError> {
        self.request(&obj(vec![("op", Json::Str("health".into()))]).to_compact())
    }

    /// Asks the server to prune finished jobs down to the newest `keep`
    /// per tenant (`None` uses the server's `--spool-retain`). Returns
    /// how many jobs were pruned.
    pub fn prune(&mut self, keep: Option<usize>) -> Result<usize, ServeError> {
        let mut fields = vec![("op", Json::Str("prune".into()))];
        if let Some(n) = keep {
            fields.push(("keep", Json::Num(n as f64)));
        }
        let doc = self.request(&obj(fields).to_compact())?;
        Ok(doc
            .field("pruned")
            .and_then(Json::as_usize)
            .map_err(ProtoError::from)?)
    }

    /// The full status document — every job, or one by id.
    pub fn status(&mut self, job: Option<&str>) -> Result<Json, ServeError> {
        let mut fields = vec![("op", Json::Str("status".into()))];
        if let Some(id) = job {
            fields.push(("job", Json::Str(id.into())));
        }
        self.request(&obj(fields).to_compact())
    }

    /// Subscribes to a job and invokes `on_event` for every event line
    /// until the job finishes (or the server drains). Returns the number
    /// of events seen.
    pub fn watch(&mut self, job: &str, on_event: impl FnMut(&Json)) -> Result<usize, ServeError> {
        self.watch_with(job, WatchPolicy::default(), DEFAULT_WATCH_QUEUE, on_event)
    }

    /// [`Self::watch`] with an explicit backpressure policy and queue
    /// capacity for this subscription.
    pub fn watch_with(
        &mut self,
        job: &str,
        policy: WatchPolicy,
        queue: usize,
        mut on_event: impl FnMut(&Json),
    ) -> Result<usize, ServeError> {
        let line = obj(vec![
            ("op", Json::Str("watch".into())),
            ("job", Json::Str(job.into())),
            ("policy", Json::Str(policy.wire())),
            ("queue", Json::Num(queue as f64)),
        ])
        .to_compact();
        self.request(&line)?;
        let mut seen = 0usize;
        loop {
            let event = match read_raw_line(&mut self.reader)? {
                None => return Err(ServeError::Disconnected),
                Some(text) => Json::parse(&text).map_err(ProtoError::from)?,
            };
            seen += 1;
            let kind = event
                .field("event")
                .and_then(Json::as_str)
                .map_err(ProtoError::from)?
                .to_string();
            on_event(&event);
            if kind == "job_done" {
                return Ok(seen);
            }
        }
    }

    /// Cancels a job's unfinished runs; returns how many were cancelled.
    pub fn cancel(&mut self, job: &str) -> Result<usize, ServeError> {
        let line = obj(vec![
            ("op", Json::Str("cancel".into())),
            ("job", Json::Str(job.into())),
        ])
        .to_compact();
        let doc = self.request(&line)?;
        Ok(doc
            .field("cancelled")
            .and_then(Json::as_usize)
            .map_err(ProtoError::from)?)
    }

    /// Asks the server to spool everything and shut down gracefully.
    pub fn drain(&mut self) -> Result<(), ServeError> {
        self.request(&obj(vec![("op", Json::Str("drain".into()))]).to_compact())?;
        Ok(())
    }

    /// Fetches finished-run summaries — every finished run, or one
    /// specific run index (which errors until that run finishes).
    pub fn results(&mut self, job: &str, run: Option<usize>) -> Result<Vec<RunResult>, ServeError> {
        let mut fields = vec![
            ("op", Json::Str("result".into())),
            ("job", Json::Str(job.into())),
        ];
        if let Some(k) = run {
            fields.push(("run", Json::Num(k as f64)));
        }
        let doc = self.request(&obj(fields).to_compact())?;
        let rows = doc
            .field("results")
            .and_then(Json::as_arr)
            .map_err(ProtoError::from)?;
        rows.iter()
            .map(|row| {
                Ok(RunResult {
                    run: row
                        .field("run")
                        .and_then(Json::as_usize)
                        .map_err(ProtoError::from)?,
                    name: row
                        .field("name")
                        .and_then(Json::as_str)
                        .map_err(ProtoError::from)?
                        .to_string(),
                    state: row
                        .field("state")
                        .and_then(Json::as_str)
                        .map_err(ProtoError::from)?
                        .to_string(),
                    summary: row.field("summary").map_err(ProtoError::from)?.clone(),
                })
            })
            .collect()
    }

    /// Polls `status` until the job's runs are all final, then returns
    /// its results. `interval` is the poll period.
    pub fn wait_for(
        &mut self,
        job: &str,
        interval: std::time::Duration,
    ) -> Result<Vec<RunResult>, ServeError> {
        loop {
            let doc = self.status(Some(job))?;
            let jobs = doc
                .field("jobs")
                .and_then(Json::as_arr)
                .map_err(ProtoError::from)?;
            let all_final = jobs.iter().all(|j| {
                j.field("runs")
                    .ok()
                    .and_then(|runs| runs.as_arr().ok().map(<[Json]>::to_vec))
                    .is_some_and(|runs| {
                        runs.iter().all(|r| {
                            matches!(
                                r.field("state").and_then(Json::as_str),
                                Ok("done" | "stopped" | "cancelled" | "failed")
                            )
                        })
                    })
            });
            if all_final {
                return self.results(job, None);
            }
            std::thread::sleep(interval);
        }
    }

    /// [`Self::watch`] that survives transient connection loss:
    /// retryable failures reconnect with bounded exponential `backoff`
    /// and re-subscribe. The stream restarts on re-subscribe, so
    /// `on_event` may see earlier rows again — watchers are consumers of
    /// at-least-once sample delivery, and a job that finished during the
    /// outage yields an immediate `job_done`. Returns the events seen by
    /// the final (successful) subscription.
    pub fn watch_retry(
        &mut self,
        job: &str,
        policy: WatchPolicy,
        queue: usize,
        backoff: Backoff,
        mut on_event: impl FnMut(&Json),
    ) -> Result<usize, ServeError> {
        let mut attempt = 0usize;
        loop {
            match self.watch_with(job, policy, queue, &mut on_event) {
                Ok(seen) => return Ok(seen),
                Err(e) if Backoff::retryable(&e) && attempt < backoff.attempts => {
                    std::thread::sleep(backoff.delay(attempt));
                    attempt += 1;
                    // A failed reconnect burns an attempt too; the next
                    // loop iteration fails fast at `watch_with` if the
                    // server is still gone.
                    let _ = self.reconnect();
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// [`Self::wait_for`] that survives transient connection loss:
    /// retryable failures reconnect with bounded exponential `backoff`
    /// and resume polling (polling is idempotent, so nothing is lost or
    /// duplicated across the reconnect).
    pub fn wait_for_retry(
        &mut self,
        job: &str,
        interval: Duration,
        backoff: Backoff,
    ) -> Result<Vec<RunResult>, ServeError> {
        let mut attempt = 0usize;
        loop {
            match self.wait_for(job, interval) {
                Ok(results) => return Ok(results),
                Err(e) if Backoff::retryable(&e) && attempt < backoff.attempts => {
                    std::thread::sleep(backoff.delay(attempt));
                    attempt += 1;
                    let _ = self.reconnect();
                }
                Err(e) => return Err(e),
            }
        }
    }
}

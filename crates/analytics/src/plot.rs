//! ASCII rendering of the paper's figures.
//!
//! The experiment binaries render terminal equivalents of the paper's
//! MATLAB plots: multi-series line plots (Figs. 4–6 bottom panels), phase-
//! space scatter densities (Figs. 4/6 top panels) and heatmaps (the Fig. 3
//! phase-space histograms).

use crate::series::TimeSeries;
use std::fmt::Write as _;

/// Density ramp from sparse to dense.
const DENSITY_RAMP: &[char] = &[' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'];

/// Configuration for [`line_plot`].
#[derive(Debug, Clone)]
pub struct PlotOptions {
    /// Plot title printed above the canvas.
    pub title: String,
    /// Canvas width in characters (excluding axis labels).
    pub width: usize,
    /// Canvas height in characters.
    pub height: usize,
    /// Use a log10 y-axis (amplitude plots, like Fig. 4 bottom).
    pub log_y: bool,
    /// Optional fixed y-limits; autoscaled when `None`.
    pub y_limits: Option<(f64, f64)>,
}

impl Default for PlotOptions {
    fn default() -> Self {
        Self {
            title: String::new(),
            width: 72,
            height: 20,
            log_y: false,
            y_limits: None,
        }
    }
}

impl PlotOptions {
    /// Convenience constructor with a title.
    pub fn titled(title: impl Into<String>) -> Self {
        Self {
            title: title.into(),
            ..Self::default()
        }
    }

    /// Builder-style log-y toggle.
    pub fn log_y(mut self, on: bool) -> Self {
        self.log_y = on;
        self
    }

    /// Builder-style fixed y-limits.
    pub fn with_y_limits(mut self, lo: f64, hi: f64) -> Self {
        self.y_limits = Some((lo, hi));
        self
    }
}

/// Renders several time series on one canvas; each series gets the marker
/// character paired with it. Later series overwrite earlier ones on
/// collisions.
pub fn line_plot(series: &[(char, &TimeSeries)], opts: &PlotOptions) -> String {
    assert!(!series.is_empty(), "no series to plot");
    let (w, h) = (opts.width.max(8), opts.height.max(4));

    // Transform for the y-axis.
    let ty = |v: f64| -> Option<f64> {
        if opts.log_y {
            if v > 0.0 {
                Some(v.log10())
            } else {
                None
            }
        } else {
            Some(v)
        }
    };

    // Data ranges.
    let mut tmin = f64::INFINITY;
    let mut tmax = f64::NEG_INFINITY;
    let mut ymin = f64::INFINITY;
    let mut ymax = f64::NEG_INFINITY;
    for (_, s) in series {
        for (&t, &v) in s.times.iter().zip(&s.values) {
            tmin = tmin.min(t);
            tmax = tmax.max(t);
            if let Some(y) = ty(v) {
                ymin = ymin.min(y);
                ymax = ymax.max(y);
            }
        }
    }
    if let Some((lo, hi)) = opts.y_limits {
        if let (Some(lo), Some(hi)) = (ty(lo), ty(hi)) {
            ymin = lo;
            ymax = hi;
        }
    }
    if !tmin.is_finite() || !ymin.is_finite() || tmax <= tmin {
        return format!("{} [no plottable data]\n", opts.title);
    }
    if ymax <= ymin {
        ymax = ymin + 1.0;
    }

    let mut canvas = vec![vec![' '; w]; h];
    for (marker, s) in series {
        for (&t, &v) in s.times.iter().zip(&s.values) {
            let Some(y) = ty(v) else { continue };
            let col = (((t - tmin) / (tmax - tmin)) * (w - 1) as f64).round() as usize;
            let frac = (y - ymin) / (ymax - ymin);
            if !(0.0..=1.0).contains(&frac) {
                continue;
            }
            let row = h - 1 - (frac * (h - 1) as f64).round() as usize;
            canvas[row][col.min(w - 1)] = *marker;
        }
    }

    let fmt_y = |y: f64| -> String {
        if opts.log_y {
            format!("1e{y:+.1}")
        } else {
            format!("{y:.4}")
        }
    };

    let mut out = String::new();
    if !opts.title.is_empty() {
        let _ = writeln!(out, "{}", opts.title);
    }
    for (i, row) in canvas.iter().enumerate() {
        let label = if i == 0 {
            fmt_y(ymax)
        } else if i == h - 1 {
            fmt_y(ymin)
        } else {
            String::new()
        };
        let _ = writeln!(out, "{label:>9} |{}", row.iter().collect::<String>());
    }
    let _ = writeln!(out, "{:>9} +{}", "", "-".repeat(w));
    let _ = writeln!(
        out,
        "{:>9}  t={tmin:<10.3} {:>width$}",
        "",
        format!("t={tmax:.3}"),
        width = w.saturating_sub(13)
    );
    let legend: Vec<String> = series
        .iter()
        .map(|(m, s)| format!("{m} {}", s.name))
        .collect();
    let _ = writeln!(out, "{:>10} {}", "", legend.join("    "));
    out
}

/// Renders an `(x, v)` scatter as a density plot — the phase-space panels of
/// Figs. 4 and 6.
pub fn scatter_density(
    xs: &[f64],
    ys: &[f64],
    x_range: (f64, f64),
    y_range: (f64, f64),
    width: usize,
    height: usize,
    title: &str,
) -> String {
    assert_eq!(xs.len(), ys.len(), "x/y length mismatch");
    let (w, h) = (width.max(8), height.max(4));
    let mut counts = vec![0usize; w * h];
    let (x0, x1) = x_range;
    let (y0, y1) = y_range;
    assert!(x1 > x0 && y1 > y0, "degenerate plot ranges");
    for (&x, &y) in xs.iter().zip(ys) {
        let fx = (x - x0) / (x1 - x0);
        let fy = (y - y0) / (y1 - y0);
        if !(0.0..1.0).contains(&fx) || !(0.0..1.0).contains(&fy) {
            continue;
        }
        let col = (fx * w as f64) as usize;
        let row = h - 1 - (fy * h as f64) as usize;
        counts[row * w + col] += 1;
    }
    let peak = counts.iter().copied().max().unwrap_or(0).max(1);
    let mut out = String::new();
    if !title.is_empty() {
        let _ = writeln!(out, "{title}");
    }
    for row in 0..h {
        let label = if row == 0 {
            format!("{y1:+.2}")
        } else if row == h - 1 {
            format!("{y0:+.2}")
        } else {
            String::new()
        };
        let mut line = String::with_capacity(w);
        for col in 0..w {
            let c = counts[row * w + col];
            let idx = if c == 0 {
                0
            } else {
                // Log-compress so both the beams and the vortex wings show.
                let f = (c as f64).ln() / (peak as f64).ln().max(1.0);
                1 + ((DENSITY_RAMP.len() - 2) as f64 * f).round() as usize
            };
            line.push(DENSITY_RAMP[idx.min(DENSITY_RAMP.len() - 1)]);
        }
        let _ = writeln!(out, "{label:>7} |{line}");
    }
    let _ = writeln!(out, "{:>7} +{}", "", "-".repeat(w));
    let _ = writeln!(
        out,
        "{:>7}  x={x0:<8.3}{:>width$}",
        "",
        format!("x={x1:.3}"),
        width = w.saturating_sub(10)
    );
    out
}

/// Renders a row-major `ny × nx` grid as an ASCII heatmap (Fig. 3-style
/// phase-space histograms).
pub fn heatmap(data: &[f32], nx: usize, ny: usize, title: &str) -> String {
    assert_eq!(data.len(), nx * ny, "grid size mismatch");
    let peak = data.iter().copied().fold(0.0f32, f32::max).max(1e-12);
    let mut out = String::new();
    if !title.is_empty() {
        let _ = writeln!(out, "{title}");
    }
    for row in 0..ny {
        let mut line = String::with_capacity(nx);
        for col in 0..nx {
            let v = data[row * nx + col];
            let idx = if v <= 0.0 {
                0
            } else {
                1 + (((DENSITY_RAMP.len() - 2) as f32) * (v / peak)).round() as usize
            };
            line.push(DENSITY_RAMP[idx.min(DENSITY_RAMP.len() - 1)]);
        }
        let _ = writeln!(out, "|{line}|");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp_series(name: &str) -> TimeSeries {
        TimeSeries::from_data(
            name,
            (0..50).map(|i| i as f64 * 0.2).collect(),
            (0..50)
                .map(|i| (0.35 * i as f64 * 0.2).exp() * 1e-4)
                .collect(),
        )
    }

    #[test]
    fn line_plot_contains_markers_and_legend() {
        let s1 = ramp_series("traditional");
        let s2 = ramp_series("dl-based");
        let text = line_plot(
            &[('*', &s1), ('o', &s2)],
            &PlotOptions::titled("E1 Amplitude").log_y(true),
        );
        assert!(text.contains("E1 Amplitude"));
        assert!(text.contains('*') || text.contains('o'));
        assert!(text.contains("traditional"));
        assert!(text.contains("dl-based"));
    }

    #[test]
    fn line_plot_linear_scale_has_numeric_labels() {
        let s = TimeSeries::from_data("e", vec![0.0, 1.0, 2.0], vec![0.041, 0.042, 0.0415]);
        let text = line_plot(&[('x', &s)], &PlotOptions::default());
        assert!(text.contains("0.042"), "{text}");
    }

    #[test]
    fn log_plot_skips_nonpositive_values_without_panicking() {
        let s = TimeSeries::from_data("e", vec![0.0, 1.0, 2.0], vec![0.0, -1.0, 1e-3]);
        let text = line_plot(&[('x', &s)], &PlotOptions::default().log_y(true));
        assert!(text.contains('x'));
    }

    #[test]
    fn fixed_y_limits_clip_out_of_range_points() {
        let s = TimeSeries::from_data(
            "e",
            vec![0.0, 1.0, 2.0, 3.0],
            vec![0.5, 5.0, 0.6, -3.0], // 5.0 and -3.0 outside [0, 1]
        );
        let text = line_plot(
            &[('#', &s)],
            &PlotOptions::default().with_y_limits(0.0, 1.0),
        );
        // Only the two in-range points are drawn on the canvas (the legend
        // line repeats the marker once).
        let canvas_marks = text
            .lines()
            .filter(|l| l.contains('|'))
            .flat_map(|l| l.chars())
            .filter(|c| *c == '#')
            .count();
        assert_eq!(canvas_marks, 2, "{text}");
    }

    #[test]
    fn empty_data_yields_placeholder() {
        let s = TimeSeries::new("empty");
        let text = line_plot(&[('x', &s)], &PlotOptions::titled("nothing"));
        assert!(text.contains("no plottable data"));
    }

    #[test]
    fn scatter_density_shows_two_beams() {
        // Two horizontal bands at v = ±0.2.
        let n = 2000;
        let xs: Vec<f64> = (0..n).map(|i| i as f64 / n as f64 * 2.05).collect();
        let ys: Vec<f64> = (0..n)
            .map(|i| if i % 2 == 0 { 0.2 } else { -0.2 })
            .collect();
        let text = scatter_density(&xs, &ys, (0.0, 2.05), (-0.4, 0.4), 60, 16, "phase space");
        // The band rows should be dense, the middle empty.
        let lines: Vec<&str> = text.lines().filter(|l| l.contains('|')).collect();
        let mid = &lines[lines.len() / 2];
        assert!(mid.chars().filter(|c| *c == '@' || *c == '%').count() == 0);
        assert!(text.contains('@') || text.contains('%') || text.contains('#'));
    }

    #[test]
    fn heatmap_renders_all_rows() {
        let data = vec![0.5f32; 8 * 4];
        let text = heatmap(&data, 8, 4, "histogram");
        assert_eq!(text.lines().count(), 5); // title + 4 rows
    }

    #[test]
    #[should_panic(expected = "grid size mismatch")]
    fn heatmap_rejects_bad_dims() {
        let _ = heatmap(&[0.0; 7], 4, 2, "bad");
    }
}

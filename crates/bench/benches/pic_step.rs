//! Criterion benches of the PIC cycle stages at the paper's particle count
//! (64 cells × 1000 electrons/cell).

use criterion::{criterion_group, criterion_main, Criterion};
use dlpic_pic::deposit::deposit_charge;
use dlpic_pic::gather::gather_field;
use dlpic_pic::grid::Grid1D;
use dlpic_pic::init::TwoStreamInit;
use dlpic_pic::mover::{push_positions, push_velocities};
use dlpic_pic::presets::paper_config;
use dlpic_pic::shape::Shape;
use dlpic_pic::simulation::Simulation;
use dlpic_pic::solver::TraditionalSolver;
use std::time::Duration;

fn bench_deposit(c: &mut Criterion) {
    let grid = Grid1D::paper();
    let particles = TwoStreamInit::random(0.2, 0.025, 64_000, 3).build(&grid);
    let mut group = c.benchmark_group("deposit_64k");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    for shape in [Shape::Ngp, Shape::Cic, Shape::Tsc] {
        group.bench_function(format!("{shape:?}"), |b| {
            let mut rho = grid.zeros();
            b.iter(|| {
                rho.iter_mut().for_each(|r| *r = 0.0);
                deposit_charge(&particles, &grid, shape, &mut rho);
            });
        });
    }
    group.finish();
}

fn bench_gather_and_mover(c: &mut Criterion) {
    let grid = Grid1D::paper();
    let mut particles = TwoStreamInit::random(0.2, 0.025, 64_000, 4).build(&grid);
    let e: Vec<f64> = (0..64).map(|j| 0.01 * (j as f64 * 0.3).sin()).collect();
    let mut e_part = vec![0.0; particles.len()];
    let mut group = c.benchmark_group("cycle_64k");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    group.bench_function("gather_cic", |b| {
        b.iter(|| gather_field(&particles, &grid, Shape::Cic, &e, &mut e_part));
    });
    group.bench_function("push_velocities", |b| {
        b.iter(|| push_velocities(&mut particles, &e_part, 0.2));
    });
    group.bench_function("push_positions", |b| {
        b.iter(|| push_positions(&mut particles, &grid, 0.2));
    });
    group.finish();
}

fn bench_full_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("full_step");
    group
        .sample_size(15)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3));
    group.bench_function("traditional_step_64k", |b| {
        let mut sim = Simulation::new(
            paper_config(0.2, 0.025, 11),
            Box::new(TraditionalSolver::paper_default()),
        );
        b.iter(|| sim.step());
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_deposit,
    bench_gather_and_mover,
    bench_full_step
);
criterion_main!(benches);

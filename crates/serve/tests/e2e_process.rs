//! Process-level end-to-end: a real `dlpic-serve` daemon on loopback, a
//! sweep submitted through the real `dlpic-cli` binary, live sample
//! streaming, then `SIGKILL` mid-run — no drain, no goodbye — and a
//! `--resume` restart whose final histories are bit-identical to
//! uninterrupted solo runs. This is the crash-consistency story the spool
//! exists for, exercised through the shipped binaries.

use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

use dlpic_repro::core::Scale;
use dlpic_repro::engine::json::Json;
use dlpic_repro::engine::{Backend, EnergyHistory, Engine, SweepSpec};
use dlpic_serve::client::Client;
use dlpic_serve::job::JobRequest;

const STEPS: usize = 300;

/// Kills the daemon on drop so a failing assert can't leak a process.
struct Daemon {
    child: Child,
    addr: String,
}

impl Daemon {
    fn spawn(extra: &[&str]) -> Self {
        let mut child = Command::new(env!("CARGO_BIN_EXE_dlpic-serve"))
            .args(["--listen", "127.0.0.1:0", "--spool-interval", "1"])
            .args(extra)
            .stdout(Stdio::piped())
            .spawn()
            .expect("spawn dlpic-serve");
        let stdout = child.stdout.take().expect("stdout");
        let mut line = String::new();
        BufReader::new(stdout)
            .read_line(&mut line)
            .expect("read ready line");
        let addr = line
            .strip_prefix("listening ")
            .unwrap_or_else(|| panic!("unexpected ready line {line:?}"))
            .trim()
            .to_string();
        Self { child, addr }
    }

    fn kill(mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
        std::mem::forget(self);
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn cli(args: &[&str]) -> String {
    let out = Command::new(env!("CARGO_BIN_EXE_dlpic-cli"))
        .args(args)
        .output()
        .expect("run dlpic-cli");
    assert!(
        out.status.success(),
        "dlpic-cli {args:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("cli output is UTF-8")
}

fn sweep_job() -> JobRequest {
    let sweep = SweepSpec::grid("two_stream", Scale::Smoke).axis("v0", [0.12, 0.16]);
    JobRequest::sweep(sweep, Backend::Dl1D).with_steps(STEPS)
}

#[test]
fn killed_daemon_resumes_from_spool_bit_identically() {
    let spool = std::env::temp_dir().join(format!("dlpic-e2e-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&spool);
    let spool_arg = spool.display().to_string();

    let daemon = Daemon::spawn(&["--spool", &spool_arg]);

    // Submit the sweep through the real CLI.
    let submitted = cli(&[
        "submit",
        "--addr",
        &daemon.addr,
        "--tenant",
        "e2e",
        "--job",
        &sweep_job().to_json_value().to_compact(),
    ]);
    let submitted = Json::parse(submitted.trim()).expect("submit output is JSON");
    let job = submitted
        .field("job")
        .and_then(Json::as_str)
        .expect("job id")
        .to_string();
    assert_eq!(submitted.field("runs").and_then(Json::as_usize), Ok(2));

    // A live watcher sees samples streaming while the run is in flight.
    // The count is shared so the kill below can wait until at least one
    // sample actually arrived — on a loaded box the watcher thread may
    // register its subscription well after the runs start stepping.
    let streamed = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0));
    let (watch_addr, watch_job) = (daemon.addr.clone(), job.clone());
    let watcher = {
        let streamed = std::sync::Arc::clone(&streamed);
        std::thread::spawn(move || {
            let mut client = Client::connect(&watch_addr).expect("watch connect");
            // The kill severs the stream mid-watch; count what arrived.
            let _ = client.watch(&watch_job, |event| {
                if event.field("event").and_then(Json::as_str) == Ok("sample") {
                    streamed.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                }
            });
        })
    };

    // Let both runs make real progress and the watcher see it stream,
    // then pull the plug.
    let mut client = Client::connect(&daemon.addr).expect("connect");
    loop {
        let doc = client.status(Some(&job)).expect("status");
        let runs = doc.field("jobs").and_then(Json::as_arr).expect("jobs")[0]
            .field("runs")
            .and_then(Json::as_arr)
            .expect("runs")
            .to_vec();
        let progressed = runs
            .iter()
            .all(|r| r.field("steps_done").and_then(Json::as_usize).unwrap() >= 3);
        let done = runs
            .iter()
            .any(|r| r.field("state").and_then(Json::as_str).unwrap() == "done");
        assert!(!done, "a run finished before the kill; raise STEPS");
        if progressed && streamed.load(std::sync::atomic::Ordering::Relaxed) >= 1 {
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    daemon.kill();
    watcher.join().expect("watcher thread");
    let streamed = streamed.load(std::sync::atomic::Ordering::Relaxed);
    assert!(streamed >= 1, "watch saw no samples before the kill");

    // The spool shows in-flight work, not a clean shutdown.
    let manifest = std::fs::read_to_string(spool.join("meta.json")).expect("manifest");
    assert!(
        manifest.contains("\"active\"") || manifest.contains("\"queued\""),
        "manifest should record interrupted runs: {manifest}"
    );

    // Restart from the spool and let the sweep finish.
    let daemon = Daemon::spawn(&["--resume", &spool_arg]);
    let mut client = Client::connect(&daemon.addr).expect("reconnect");
    let results = client
        .wait_for(&job, Duration::from_millis(10))
        .expect("wait after resume");
    assert_eq!(results.len(), 2);

    // Bit-identical to solo runs of the same expanded specs.
    let mut solo_specs = sweep_job().expand().expect("expand");
    solo_specs.sort_by(|a, b| a.name.cmp(&b.name));
    let mut got: Vec<_> = results
        .iter()
        .map(|r| {
            (
                r.name.clone(),
                EnergyHistory::from_json_value(r.summary.field("history").unwrap())
                    .expect("history parses"),
            )
        })
        .collect();
    got.sort_by(|a, b| a.0.cmp(&b.0));
    for ((name, served), spec) in got.iter().zip(&solo_specs) {
        assert_eq!(name, &spec.name);
        let solo = Engine::new().run(spec, Backend::Dl1D).expect("solo");
        assert_eq!(
            served, &solo.history,
            "{name}: resumed history differs from the uninterrupted run"
        );
    }

    // The CLI's status/result views work against the resumed daemon.
    let status = cli(&["status", "--addr", &daemon.addr, &job]);
    assert!(status.contains("\"done\""), "{status}");
    let printed = cli(&["result", "--addr", &daemon.addr, &job, "0"]);
    let printed = Json::parse(printed.trim()).expect("result output is JSON");
    assert_eq!(printed.field("state").and_then(Json::as_str), Ok("done"));

    cli(&["drain", "--addr", &daemon.addr]);
    let _ = daemon.wait_timeout_drop();
    let _ = std::fs::remove_dir_all(&spool);
}

trait WaitTimeout {
    fn wait_timeout_drop(self) -> std::io::Result<()>;
}

impl WaitTimeout for Daemon {
    /// Waits for a drained daemon to exit on its own, with a kill-backed
    /// deadline so the test cannot hang.
    fn wait_timeout_drop(mut self) -> std::io::Result<()> {
        for _ in 0..200 {
            if self.child.try_wait()?.is_some() {
                std::mem::forget(self);
                return Ok(());
            }
            std::thread::sleep(Duration::from_millis(25));
        }
        Ok(()) // Drop kills it.
    }
}

//! Dataset summaries — the sanity checks the paper describes as
//! "We inspected all the data sets to ensure that no numerical instability
//! or artifacts were present".

use crate::sample::PhaseDataset;
use std::fmt::Write as _;

/// Aggregate statistics of a dataset.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DatasetStats {
    /// Number of samples.
    pub n: usize,
    /// Minimum histogram count.
    pub input_min: f32,
    /// Maximum histogram count.
    pub input_max: f32,
    /// Largest |E| in the targets (paper reference: ≈ 0.1).
    pub max_abs_field: f32,
    /// Mean of |E| over all targets.
    pub mean_abs_field: f64,
    /// True when every value in the dataset is finite.
    pub all_finite: bool,
}

/// Computes aggregate statistics.
pub fn compute(ds: &PhaseDataset) -> DatasetStats {
    let mut input_min = f32::INFINITY;
    let mut input_max = f32::NEG_INFINITY;
    let mut all_finite = true;
    for &v in ds.inputs() {
        all_finite &= v.is_finite();
        input_min = input_min.min(v);
        input_max = input_max.max(v);
    }
    let mut abs_sum = 0.0f64;
    let mut max_abs = 0.0f32;
    for &v in ds.targets() {
        all_finite &= v.is_finite();
        abs_sum += v.abs() as f64;
        max_abs = max_abs.max(v.abs());
    }
    DatasetStats {
        n: ds.len(),
        input_min,
        input_max,
        max_abs_field: max_abs,
        mean_abs_field: abs_sum / ds.targets().len().max(1) as f64,
        all_finite,
    }
}

/// Renders a human-readable summary block.
pub fn summary(ds: &PhaseDataset) -> String {
    let s = compute(ds);
    let mut out = String::new();
    let _ = writeln!(out, "samples        : {}", s.n);
    let _ = writeln!(
        out,
        "phase grid     : {}x{} over v in [{}, {}]",
        ds.spec.nx, ds.spec.nv, ds.spec.vmin, ds.spec.vmax
    );
    let _ = writeln!(out, "binning        : {:?}", ds.binning);
    let _ = writeln!(out, "input range    : [{}, {}]", s.input_min, s.input_max);
    let _ = writeln!(
        out,
        "max |E|        : {:.4} (paper reference ~0.1)",
        s.max_abs_field
    );
    let _ = writeln!(out, "mean |E|       : {:.6}", s.mean_abs_field);
    let _ = writeln!(out, "all finite     : {}", s.all_finite);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlpic_core::phase_space::{BinningShape, PhaseGridSpec};

    fn tiny() -> PhaseDataset {
        let spec = PhaseGridSpec::new(2, 2, -1.0, 1.0);
        let mut ds = PhaseDataset::new(spec, BinningShape::Ngp, 2);
        ds.push(&[0.0, 1.0, 2.0, 3.0], &[0.05, -0.1]);
        ds.push(&[4.0, 5.0, 6.0, 7.0], &[0.02, 0.01]);
        ds
    }

    #[test]
    fn stats_values() {
        let s = compute(&tiny());
        assert_eq!(s.n, 2);
        assert_eq!(s.input_min, 0.0);
        assert_eq!(s.input_max, 7.0);
        assert!((s.max_abs_field - 0.1).abs() < 1e-7);
        assert!((s.mean_abs_field - (0.05 + 0.1 + 0.02 + 0.01) / 4.0).abs() < 1e-7);
        assert!(s.all_finite);
    }

    #[test]
    fn non_finite_values_flagged() {
        let spec = PhaseGridSpec::new(2, 2, -1.0, 1.0);
        let mut ds = PhaseDataset::new(spec, BinningShape::Ngp, 1);
        ds.push(&[0.0, 0.0, 0.0, 0.0], &[f64::NAN]);
        assert!(!compute(&ds).all_finite);
    }

    #[test]
    fn summary_mentions_key_fields() {
        let text = summary(&tiny());
        assert!(text.contains("samples        : 2"));
        assert!(text.contains("phase grid"));
        assert!(text.contains("max |E|"));
    }
}

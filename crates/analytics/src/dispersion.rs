//! Linear theory of the two-stream instability.
//!
//! The paper validates the DL-based PIC against "the growth rate of the most
//! unstable mode in the two-stream instability in the cold-beam `v0 >> vth`
//! approximation" (Fig. 4, solid line). This module computes that growth
//! rate from the kinetic dispersion relation.
//!
//! For two symmetric counter-streaming cold electron beams, each carrying
//! half the density (so each has beam plasma frequency `ω_b² = ω_p²/2`), the
//! electrostatic dispersion relation is
//!
//! ```text
//! 1 = (ω_p²/2) / (ω - k·v0)²  +  (ω_p²/2) / (ω + k·v0)²
//! ```
//!
//! In the normalized units of the reproduction (`ω_p = 1`), substituting
//! `u = ω²`, `s = (k·v0)²` reduces it to a quadratic in `u`:
//!
//! ```text
//! u² - (2s + 1)·u + (s² - s) = 0
//! u± = [(2s + 1) ± sqrt(8s + 1)] / 2
//! ```
//!
//! The minus branch goes negative — i.e. `ω` becomes purely imaginary and
//! the mode grows — exactly when `0 < s < 1`, so the instability condition
//! is `k·v0 < ω_p`. The growth rate is `γ = sqrt(-u₋)`, maximized at
//! `s = 3/8` where `γ_max = ω_p / (2√2) ≈ 0.35355`.
//!
//! The paper's box `L = 2π/3.06` with `v0 = 0.2` puts mode 1 at
//! `k·v0 = 0.612 ≈ sqrt(3/8)` — the fastest-growing wavenumber — and the
//! cold-beam run `v0 = 0.4` at `k·v0 = 1.224 > 1`, which is linearly
//! *stable* (anything growing there is a numerical artifact; paper Fig. 6).
//!
//! A general N-beam solver based on polynomial root finding
//! (Durand–Kerner) is also provided and cross-checked against the closed
//! form by property tests.

use crate::complex::Complex64;

/// Dispersion relation for two symmetric counter-streaming cold beams with
/// total plasma frequency `ω_p = 1`.
#[derive(Debug, Clone, Copy)]
pub struct TwoStreamDispersion {
    /// Beam drift speed (each beam at ±v0).
    pub v0: f64,
}

/// Result of evaluating the two branches `u± = ω²` of the reduced
/// dispersion relation at one wavenumber.
#[derive(Debug, Clone, Copy)]
pub struct Branches {
    /// The `+` branch of `ω²` (always real and positive: stable
    /// plasma-oscillation branch).
    pub u_plus: f64,
    /// The `-` branch of `ω²`; negative values mean instability with
    /// `γ = sqrt(-u_minus)`.
    pub u_minus: f64,
}

impl TwoStreamDispersion {
    /// Creates the dispersion relation for beams at ±`v0`.
    ///
    /// # Panics
    /// Panics if `v0` is not finite and strictly positive.
    pub fn new(v0: f64) -> Self {
        assert!(v0.is_finite() && v0 > 0.0, "v0 must be positive, got {v0}");
        Self { v0 }
    }

    /// Evaluates both `ω²` branches at wavenumber `k`.
    pub fn branches(&self, k: f64) -> Branches {
        let s = (k * self.v0).powi(2);
        let disc = (8.0 * s + 1.0).sqrt();
        Branches {
            u_plus: (2.0 * s + 1.0 + disc) / 2.0,
            u_minus: (2.0 * s + 1.0 - disc) / 2.0,
        }
    }

    /// Linear growth rate `γ(k)`; zero for stable wavenumbers.
    pub fn growth_rate(&self, k: f64) -> f64 {
        let u = self.branches(k).u_minus;
        if u < 0.0 {
            (-u).sqrt()
        } else {
            0.0
        }
    }

    /// Real oscillation frequency of the stable branch at `k`.
    pub fn stable_frequency(&self, k: f64) -> f64 {
        self.branches(k).u_plus.sqrt()
    }

    /// True if wavenumber `k` is linearly unstable (`k·v0 < ω_p`).
    pub fn is_unstable(&self, k: f64) -> bool {
        let kv = (k * self.v0).abs();
        kv > 0.0 && kv < 1.0
    }

    /// The instability band `(0, k_cutoff)`: modes with `k < 1/v0` grow.
    pub fn unstable_band(&self) -> (f64, f64) {
        (0.0, 1.0 / self.v0)
    }

    /// The fastest-growing wavenumber and its growth rate:
    /// `k_max = sqrt(3/8)/v0`, `γ_max = 1/(2√2)`.
    pub fn most_unstable(&self) -> (f64, f64) {
        ((3.0f64 / 8.0).sqrt() / self.v0, 0.125f64.sqrt())
    }

    /// Growth rate of grid mode `m` in a periodic box of length `box_len`
    /// (`k_m = 2π·m/L`). Mode 1 with the paper's box is the headline number.
    pub fn mode_growth_rate(&self, mode: usize, box_len: f64) -> f64 {
        let k = 2.0 * std::f64::consts::PI * mode as f64 / box_len;
        self.growth_rate(k)
    }
}

// ---------------------------------------------------------------------------
// General multi-beam dispersion via polynomial root finding.
// ---------------------------------------------------------------------------

/// A cold beam population: fractional density weight (so that weights sum to
/// 1 for total `ω_p = 1`) and drift velocity.
#[derive(Debug, Clone, Copy)]
pub struct Beam {
    /// Density fraction (`ω_b² = weight · ω_p²`).
    pub weight: f64,
    /// Drift velocity.
    pub velocity: f64,
}

/// Real-coefficient polynomial, ascending order (`coeffs[i]·x^i`).
#[derive(Debug, Clone, PartialEq)]
pub struct Poly(pub Vec<f64>);

impl Poly {
    /// The constant polynomial `c`.
    pub fn constant(c: f64) -> Self {
        Poly(vec![c])
    }

    /// The monic linear factor `x - r`.
    pub fn linear(r: f64) -> Self {
        Poly(vec![-r, 1.0])
    }

    /// Degree (0 for constants; trailing zeros are not trimmed).
    pub fn degree(&self) -> usize {
        self.0.len().saturating_sub(1)
    }

    /// Polynomial product.
    pub fn mul(&self, other: &Poly) -> Poly {
        let mut out = vec![0.0; self.0.len() + other.0.len() - 1];
        for (i, &a) in self.0.iter().enumerate() {
            for (j, &b) in other.0.iter().enumerate() {
                out[i + j] += a * b;
            }
        }
        Poly(out)
    }

    /// Polynomial difference `self - other`.
    pub fn sub(&self, other: &Poly) -> Poly {
        let n = self.0.len().max(other.0.len());
        let mut out = vec![0.0; n];
        for (i, o) in out.iter_mut().enumerate() {
            let a = self.0.get(i).copied().unwrap_or(0.0);
            let b = other.0.get(i).copied().unwrap_or(0.0);
            *o = a - b;
        }
        Poly(out)
    }

    /// Scales all coefficients.
    pub fn scale(&self, s: f64) -> Poly {
        Poly(self.0.iter().map(|c| c * s).collect())
    }

    /// Evaluates at a complex point (Horner).
    pub fn eval(&self, z: Complex64) -> Complex64 {
        let mut acc = Complex64::ZERO;
        for &c in self.0.iter().rev() {
            acc = acc * z + Complex64::from_real(c);
        }
        acc
    }

    /// All complex roots by the Durand–Kerner (Weierstrass) iteration.
    ///
    /// Robust enough for the low-degree, well-scaled polynomials produced by
    /// dispersion relations. Returns `degree` roots.
    ///
    /// # Panics
    /// Panics if the leading coefficient is (numerically) zero.
    pub fn roots(&self) -> Vec<Complex64> {
        let mut coeffs = self.0.clone();
        while coeffs.len() > 1 && coeffs.last().copied().unwrap_or(0.0).abs() < 1e-300 {
            coeffs.pop();
        }
        let n = coeffs.len() - 1;
        if n == 0 {
            return Vec::new();
        }
        let lead = *coeffs.last().expect("nonempty");
        assert!(lead.abs() > 0.0, "zero polynomial has no roots");
        let monic: Vec<f64> = coeffs.iter().map(|c| c / lead).collect();
        let poly = Poly(monic.clone());

        // Radius bound: 1 + max |a_i| (Cauchy bound for monic polynomials).
        let radius = 1.0 + monic[..n].iter().fold(0.0f64, |acc, c| acc.max(c.abs()));

        // Start from non-real, non-symmetric seeds inside the root bound.
        let seed = Complex64::new(0.4, 0.9);
        let mut roots: Vec<Complex64> = (0..n)
            .map(|i| seed.powi(i as i32 + 1) * radius * 0.5)
            .collect();

        for _ in 0..400 {
            let mut max_step = 0.0f64;
            for i in 0..n {
                let mut denom = Complex64::ONE;
                for j in 0..n {
                    if i != j {
                        denom *= roots[i] - roots[j];
                    }
                }
                let step = poly.eval(roots[i]) / denom;
                roots[i] -= step;
                max_step = max_step.max(step.abs());
            }
            if max_step < 1e-13 {
                break;
            }
        }
        roots
    }
}

/// Builds the dispersion polynomial `Π_b (ω - k·v_b)² - Σ_b w_b·Π_{c≠b}(ω - k·v_c)²`
/// whose roots are the mode frequencies of an arbitrary set of cold beams.
pub fn dispersion_polynomial(beams: &[Beam], k: f64) -> Poly {
    assert!(!beams.is_empty(), "need at least one beam");
    // Π over all beams of (ω - k v_b)².
    let mut full = Poly::constant(1.0);
    for b in beams {
        let lin = Poly::linear(k * b.velocity);
        full = full.mul(&lin).mul(&lin);
    }
    // Σ_b w_b Π_{c≠b} (ω - k v_c)².
    let mut rhs = Poly::constant(0.0);
    for (i, b) in beams.iter().enumerate() {
        let mut partial = Poly::constant(b.weight);
        for (j, c) in beams.iter().enumerate() {
            if i != j {
                let lin = Poly::linear(k * c.velocity);
                partial = partial.mul(&lin).mul(&lin);
            }
        }
        rhs = rhs.sub(&partial.scale(-1.0)); // rhs += partial
    }
    full.sub(&rhs)
}

/// Growth rate of an arbitrary cold multi-beam system at wavenumber `k`:
/// the largest imaginary part over all roots of the dispersion polynomial.
pub fn multi_beam_growth_rate(beams: &[Beam], k: f64) -> f64 {
    let poly = dispersion_polynomial(beams, k);
    poly.roots()
        .iter()
        .map(|r| r.im)
        .fold(0.0f64, f64::max)
        .max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    const GAMMA_MAX: f64 = 0.353_553_390_593_273_8; // 1/(2*sqrt(2))

    #[test]
    fn max_growth_is_gamma_max() {
        let d = TwoStreamDispersion::new(0.2);
        let (k_max, g_max) = d.most_unstable();
        assert!((g_max - GAMMA_MAX).abs() < 1e-12);
        assert!((d.growth_rate(k_max) - GAMMA_MAX).abs() < 1e-12);
        // Nearby wavenumbers grow strictly slower.
        assert!(d.growth_rate(k_max * 1.05) < g_max);
        assert!(d.growth_rate(k_max * 0.95) < g_max);
    }

    #[test]
    fn paper_box_mode_one_is_nearly_fastest_growing() {
        // L = 2π/3.06 so mode 1 has k = 3.06; with v0 = 0.2, k·v0 = 0.612.
        let d = TwoStreamDispersion::new(0.2);
        let box_len = 2.0 * std::f64::consts::PI / 3.06;
        let gamma = d.mode_growth_rate(1, box_len);
        assert!(
            (gamma - GAMMA_MAX).abs() < 1e-4,
            "paper box should sit at the optimum: γ = {gamma}"
        );
    }

    #[test]
    fn cold_beam_configuration_is_linearly_stable() {
        // Fig. 6 premise: v0 = 0.4 puts every grid mode at k·v0 ≥ 1.224 > 1.
        let d = TwoStreamDispersion::new(0.4);
        let box_len = 2.0 * std::f64::consts::PI / 3.06;
        for mode in 1..=32 {
            assert_eq!(d.mode_growth_rate(mode, box_len), 0.0, "mode {mode}");
        }
    }

    #[test]
    fn instability_band_boundary() {
        let d = TwoStreamDispersion::new(0.5);
        let (lo, hi) = d.unstable_band();
        assert_eq!(lo, 0.0);
        assert!((hi - 2.0).abs() < 1e-12);
        assert!(d.is_unstable(1.9));
        assert!(!d.is_unstable(2.0));
        assert!(!d.is_unstable(2.1));
    }

    #[test]
    fn stable_branch_reduces_to_langmuir_at_k_zero() {
        let d = TwoStreamDispersion::new(0.2);
        // k → 0: both beams look like a single plasma: ω = ω_p = 1.
        assert!((d.stable_frequency(1e-9) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn durand_kerner_finds_known_roots() {
        // (x-1)(x+2)(x² + 4) = 0 → roots 1, -2, ±2i.
        let p = Poly::linear(1.0)
            .mul(&Poly::linear(-2.0))
            .mul(&Poly(vec![4.0, 0.0, 1.0]));
        let roots = p.roots();
        assert_eq!(roots.len(), 4);
        let expect = [
            Complex64::new(-2.0, 0.0),
            Complex64::new(0.0, -2.0),
            Complex64::new(0.0, 2.0),
            Complex64::new(1.0, 0.0),
        ];
        // Match as sets: every expected root has exactly one close match.
        for e in &expect {
            let hits = roots.iter().filter(|r| (**r - *e).abs() < 1e-8).count();
            assert_eq!(hits, 1, "expected root {e:?} not found once in {roots:?}");
        }
    }

    #[test]
    fn multi_beam_matches_closed_form_at_paper_point() {
        let beams = [
            Beam {
                weight: 0.5,
                velocity: 0.2,
            },
            Beam {
                weight: 0.5,
                velocity: -0.2,
            },
        ];
        let k = 3.06;
        let general = multi_beam_growth_rate(&beams, k);
        let closed = TwoStreamDispersion::new(0.2).growth_rate(k);
        assert!((general - closed).abs() < 1e-8, "{general} vs {closed}");
    }

    #[test]
    fn single_beam_is_stable_doppler_shifted_langmuir() {
        let beams = [Beam {
            weight: 1.0,
            velocity: 0.3,
        }];
        assert_eq!(multi_beam_growth_rate(&beams, 2.0), 0.0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]

        #[test]
        fn general_solver_matches_closed_form(v0 in 0.05f64..0.5, k in 0.2f64..8.0) {
            let beams = [
                Beam { weight: 0.5, velocity: v0 },
                Beam { weight: 0.5, velocity: -v0 },
            ];
            let general = multi_beam_growth_rate(&beams, k);
            let closed = TwoStreamDispersion::new(v0).growth_rate(k);
            prop_assert!((general - closed).abs() < 1e-6,
                "v0={v0} k={k}: general={general} closed={closed}");
        }

        #[test]
        fn growth_rate_bounded_by_gamma_max(v0 in 0.05f64..0.5, k in 0.0f64..20.0) {
            let g = TwoStreamDispersion::new(v0).growth_rate(k);
            prop_assert!(g <= GAMMA_MAX + 1e-12);
            prop_assert!(g >= 0.0);
        }

        #[test]
        fn roots_satisfy_polynomial(r1 in -3.0f64..3.0, r2 in -3.0f64..3.0, r3 in -3.0f64..3.0) {
            let p = Poly::linear(r1).mul(&Poly::linear(r2)).mul(&Poly::linear(r3));
            for root in p.roots() {
                prop_assert!(p.eval(root).abs() < 1e-6);
            }
        }
    }
}

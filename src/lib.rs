//! # dlpic-repro
//!
//! Reproduction of Aguilar & Markidis, *"A Deep Learning-Based
//! Particle-in-Cell Method for Plasma Simulations"* (IEEE CLUSTER 2021),
//! behind one unified API.
//!
//! ## Start here: the [`engine`]
//!
//! The [`engine`] module is the front door. It expresses the paper's
//! drop-in-replacement design as an API: a declarative, serializable
//! [`engine::ScenarioSpec`] describes the *physics*, an
//! [`engine::Backend`] picks the *solver* (traditional or DL, 1-D or 2-D,
//! continuum Vlasov, or distributed), and every pairing reports through
//! the same [`engine::RunSummary`]/[`engine::EnergyHistory`] diagnostics:
//!
//! ```no_run
//! use dlpic_repro::engine::{self, Backend};
//! use dlpic_repro::core::Scale;
//!
//! let summary = engine::run_scenario("two_stream", Scale::Smoke,
//!                                    Backend::Traditional1D)?;
//! let gamma = summary.growth_rate(1)?.gamma;   // fitted E1 growth rate
//! # Ok::<(), dlpic_repro::engine::EngineError>(())
//! ```
//!
//! Swap `Backend::Traditional1D` for `Backend::Dl1D` and nothing else
//! changes — exactly the grey-box swap of the paper's Fig. 2. The named
//! scenario registry ships `two_stream`, `two_stream_2d`,
//! `landau_damping`, `cold_beam`, `bump_on_tail` and `thermal_noise`; see
//! `examples/quickstart.rs` for the five-minute tour.
//!
//! Underneath `run` sits the incremental [`engine::Session`] primitive
//! ([`engine::Engine::start`]): step-at-a-time advancement, early
//! stopping ([`engine::Session::run_until`]), JSON checkpoint/resume
//! ([`engine::Session::checkpoint`] / [`engine::Engine::resume`]) and
//! lockstep multi-backend comparison ([`engine::compare::lockstep`] —
//! the paper's figure methodology as an API). See
//! `examples/saturation.rs` and `examples/lockstep_compare.rs`.
//!
//! ## The solver crates underneath
//!
//! The engine drives the workspace members, re-exported here for direct
//! (lower-level) use:
//!
//! * [`pic`] — the traditional explicit electrostatic 1-D PIC method.
//! * [`pic2d`] — the 2-D electrostatic PIC (paper §VII's
//!   "two-dimensional systems" extension).
//! * [`nn`] — the from-scratch neural-network library (MLP/CNN + Adam).
//! * [`core`] — the DL-based PIC method (phase-space binning + DL field
//!   solver), the paper's contribution; includes the 2-D DL solver
//!   (`core::twod`).
//! * [`dataset`] — the training-data pipeline.
//! * [`analytics`] — FFT, dispersion relation, growth-rate fits, plots.
//! * [`vlasov`] — a continuum Vlasov–Poisson solver (the paper's §VII
//!   noise-free-training-data path).
//! * [`ddecomp`] — domain-decomposed PIC with exact communication
//!   accounting (paper §VII's distributed-memory discussion, made
//!   measurable).
//!
//! Their per-crate config structs (`pic::PicConfig`, `pic2d::Pic2DConfig`,
//! `vlasov::VlasovConfig`, `ddecomp::sim::DistConfig`) are implementation
//! detail behind [`engine::ScenarioSpec`]; the README carries the
//! migration table.

#![warn(missing_docs)]

pub mod engine;

pub use dlpic_analytics as analytics;
pub use dlpic_core as core;
pub use dlpic_dataset as dataset;
pub use dlpic_ddecomp as ddecomp;
pub use dlpic_nn as nn;
pub use dlpic_pic as pic;
pub use dlpic_pic2d as pic2d;
pub use dlpic_vlasov as vlasov;

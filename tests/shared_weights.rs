//! Shared-weight fleet contracts (the Arc-frozen-model perf story):
//!
//! * every DL session in a fleet reports the **same** weight-storage id —
//!   one allocation serves N sessions, and `Ensemble::weight_footprint`
//!   charges it once;
//! * a fleet running a quick-trained bundle is bit-identical to solo runs
//!   at 1 and 3 worker threads, and survives checkpoint/resume;
//! * checkpoints serialize solver *state*, never weights — resuming a
//!   16-run fleet must not inflate into 16 private weight copies on disk;
//! * the model registry trains once per (scenario, scale, seed), shares
//!   one `Arc` across engines, rejects arch-mismatched hits with a
//!   structured error naming both shapes, LRU-evicts by bytes and
//!   releases everything on `prune`;
//! * bf16 weight storage is an accuracy contract, not a bit-identity one:
//!   the two-stream growth rate stays within tolerance of f32 and the
//!   bf16 run itself is bit-exactly deterministic across repeats.

use std::sync::{Arc, OnceLock};

use dlpic_repro::analytics::fit::{fit_growth_rate, GrowthFitOptions};
use dlpic_repro::core::{ModelBundle, Scale};
use dlpic_repro::engine::{
    self, dl, Backend, DomainSpec, EnergyHistory, Engine, EngineError, ModelRegistry,
};
use dlpic_repro::nn::Precision;

/// One quick-trained smoke bundle shared by every test in this file:
/// training dominates debug-mode runtime, so pay for it once.
fn trained_smoke_bundle() -> &'static ModelBundle {
    static BUNDLE: OnceLock<ModelBundle> = OnceLock::new();
    // Seed 42 matches the ensemble bench's bf16 physics check — a smoke
    // model known to resolve the two-stream growth phase.
    BUNDLE.get_or_init(|| dl::quick_train_1d(Scale::Smoke, 42))
}

/// A smoke two-stream fan with per-run seeds and a short step budget.
fn fan(scenario: &str, n_steps: usize, seeds: &[u64]) -> Vec<engine::ScenarioSpec> {
    seeds
        .iter()
        .map(|&seed| {
            let mut spec = engine::scenario(scenario, Scale::Smoke).expect("registry");
            spec.n_steps = n_steps;
            spec.seed = seed;
            spec.name = format!("{scenario}[seed={seed}]");
            spec
        })
        .collect()
}

/// Mode-1 growth rate of a smoke two-stream run under `bundle`. The
/// smoke model's field-noise floor keeps the amplitude within one
/// decade, so fit the full rise up to the peak instead of the default
/// 2%..50% window (identically for both precisions).
fn two_stream_growth(bundle: ModelBundle) -> f64 {
    let mut spec = engine::scenario("two_stream", Scale::Smoke).expect("registry");
    spec.ppc = 200;
    spec.n_steps = 150;
    let summary = Engine::new()
        .with_model_1d(bundle)
        .run(&spec, Backend::Dl1D)
        .expect("two-stream smoke run");
    let s = summary.history.mode_series(1).expect("mode 1 tracked");
    let opts = GrowthFitOptions {
        lo_frac: 0.0,
        hi_frac: 1.0,
        min_points: 5,
    };
    fit_growth_rate(&s.times, &s.values, opts)
        .expect("mode-1 growth fit")
        .gamma
}

#[test]
fn fleet_sessions_share_one_weight_allocation() {
    // Untrained shared path, both DL dimensions: every session in the
    // fleet must point at the same frozen allocation (equal storage ids),
    // and the ensemble's deduped footprint must equal one copy.
    for (scenario, backend) in [
        ("two_stream", Backend::Dl1D),
        ("two_stream_2d", Backend::Dl2D),
    ] {
        let specs = fan(scenario, 4, &[1, 2, 3, 4]);
        let engine = Engine::new();
        let ensemble = engine
            .start_ensemble(&specs, backend)
            .expect("start ensemble");

        let storages: Vec<(usize, usize)> = ensemble
            .sessions()
            .iter()
            .map(|s| s.weight_storage().expect("DL session reports weights"))
            .collect();
        let (id0, bytes0) = storages[0];
        assert!(bytes0 > 0, "{scenario}: weight bytes");
        for (i, &(id, bytes)) in storages.iter().enumerate() {
            assert_eq!(
                id, id0,
                "{scenario}: session {i} owns a private weight copy"
            );
            assert_eq!(bytes, bytes0, "{scenario}: session {i} weight bytes differ");
        }

        let (distinct, deduped) = ensemble.weight_footprint();
        assert_eq!(distinct, 1, "{scenario}: fleet should hold one model");
        assert_eq!(
            deduped, bytes0,
            "{scenario}: deduped footprint must be exactly one copy"
        );
    }
}

#[test]
fn trained_fleet_is_bit_identical_to_solo_and_shares_weights() {
    let bundle = trained_smoke_bundle();
    let specs = fan("two_stream", 12, &[11, 12, 13]);

    let solo: Vec<EnergyHistory> = specs
        .iter()
        .map(|spec| {
            Engine::new()
                .with_model_1d(bundle.clone())
                .run(spec, Backend::Dl1D)
                .expect("solo run")
                .history
        })
        .collect();

    for threads in [1usize, 3] {
        let engine = Engine::new().with_model_1d(bundle.clone());
        let mut ensemble = engine
            .start_ensemble(&specs, Backend::Dl1D)
            .expect("start ensemble");

        // Sharing first: one allocation across the trained fleet too.
        let (distinct, deduped) = ensemble.weight_footprint();
        assert_eq!(distinct, 1, "trained fleet should hold one model");
        let frozen = bundle.freeze().expect("freeze");
        assert_eq!(deduped, frozen.weight_bytes());

        ensemble.run_to_end(threads);
        assert!(ensemble.is_complete());
        let histories: Vec<EnergyHistory> =
            ensemble.finish().into_iter().map(|s| s.history).collect();
        assert_eq!(histories.len(), solo.len());
        for (i, (got, want)) in histories.iter().zip(&solo).enumerate() {
            // EnergyHistory PartialEq compares every f64 series exactly.
            assert_eq!(got, want, "threads={threads}: run {i} differs from solo");
        }
    }
}

#[test]
fn checkpoints_carry_no_weights_and_resume_bit_identical() {
    let bundle = trained_smoke_bundle();
    let mut spec = engine::scenario("two_stream", Scale::Smoke).expect("registry");
    spec.ppc = 8; // small particle state so JSON size reflects state, not weights
    spec.n_steps = 10;

    let engine = Engine::new().with_model_1d(bundle.clone());
    let mut full = engine.start(&spec, Backend::Dl1D).expect("start");
    full.run_to_end();
    let want = full.history().clone();

    let mut half = engine.start(&spec, Backend::Dl1D).expect("start");
    for _ in 0..5 {
        half.step();
    }
    let ckpt = half.checkpoint();
    let json = ckpt.to_json();

    // The weight contract: a checkpoint rebuilds the solver stack from
    // (spec, backend) and restores mutable state — the network itself is
    // never serialized. N fleet checkpoints must not become N weight
    // copies on disk.
    assert!(!json.contains("\"params\""), "checkpoint serializes params");
    assert!(
        !json.contains("\"weights\""),
        "checkpoint serializes weights"
    );
    let frozen = bundle.freeze().expect("freeze");
    assert!(
        json.len() < frozen.weight_bytes(),
        "checkpoint JSON ({} bytes) is as large as the weights ({} bytes)",
        json.len(),
        frozen.weight_bytes()
    );

    let restored = engine::Checkpoint::from_json(&json).expect("parse checkpoint");
    let mut resumed = engine.resume(&restored).expect("resume");
    resumed.run_to_end();
    assert_eq!(
        resumed.history(),
        &want,
        "resumed run differs from uninterrupted run"
    );
}

#[test]
fn registry_trains_once_and_shares_one_arc_across_engines() {
    let reg = engine::shared_registry(1 << 30);
    let spec = engine::scenario("two_stream", Scale::Smoke).expect("registry");

    let e1 = Engine::new().with_registry(Arc::clone(&reg));
    let s1 = e1.start(&spec, Backend::Dl1D).expect("first session");
    let s2 = e1.start(&spec, Backend::Dl1D).expect("second session");
    let e2 = Engine::new().with_registry(Arc::clone(&reg));
    let s3 = e2
        .start(&spec, Backend::Dl1D)
        .expect("session on second engine");

    let stats = reg.lock().unwrap().stats();
    assert_eq!(stats.misses, 1, "same key must train exactly once");
    assert_eq!(stats.hits, 2, "later sessions must be cache hits");
    assert_eq!(stats.entries, 1);
    assert!(stats.bytes > 0);

    let (id1, bytes1) = s1.weight_storage().expect("weights");
    for (name, s) in [("same-engine", &s2), ("cross-engine", &s3)] {
        let (id, bytes) = s.weight_storage().expect("weights");
        assert_eq!(id, id1, "{name} session owns a private weight copy");
        assert_eq!(bytes, bytes1);
    }

    // Arch-mismatch rejection through the engine path: same registry key,
    // resized domain. The cached model serves 64 field cells; asking for
    // 32 must fail with a structured error naming both shapes.
    let mut resized = spec.clone();
    let DomainSpec::OneD { ncells, length } = resized.domain else {
        panic!("two_stream is 1-D");
    };
    resized.domain = DomainSpec::OneD {
        ncells: ncells / 2,
        length,
    };
    let err = match e1.start(&resized, Backend::Dl1D) {
        Ok(_) => panic!("mismatched domain must be rejected"),
        Err(e) => e,
    };
    let EngineError::Incompatible { why, .. } = &err else {
        panic!("expected Incompatible, got: {err}");
    };
    assert!(
        why.contains(&ncells.to_string()) && why.contains(&(ncells / 2).to_string()),
        "error must name both shapes: {why}"
    );
}

#[test]
fn registry_lru_evicts_by_bytes_and_prune_releases_everything() {
    // Capacity of one byte: any entry is over budget, but the freshest is
    // never evicted — inserting a second key must drop the first.
    let mut reg = ModelRegistry::new(1);
    let mut spec_a = engine::scenario("two_stream", Scale::Smoke).expect("registry");
    spec_a.seed = 1;
    let mut spec_b = spec_a.clone();
    spec_b.seed = 2;

    let (bundle_a, frozen_a) = reg.model_1d(&spec_a).expect("train a");
    assert!(frozen_a.is_some(), "MLP must have a frozen form");
    let stats = reg.stats();
    assert_eq!((stats.misses, stats.entries, stats.evictions), (1, 1, 0));
    assert!(
        stats.bytes > stats.capacity_bytes,
        "a lone over-budget entry stays resident rather than thrashing"
    );

    // Same key again: a hit, same Arc, no retraining.
    let (bundle_a2, _) = reg.model_1d(&spec_a).expect("hit a");
    assert!(Arc::ptr_eq(&bundle_a, &bundle_a2));
    assert_eq!(reg.stats().hits, 1);

    // New key: trains, then LRU pressure evicts the older entry.
    let (bundle_b, _) = reg.model_1d(&spec_b).expect("train b");
    assert!(!Arc::ptr_eq(&bundle_a, &bundle_b));
    let stats = reg.stats();
    assert_eq!((stats.misses, stats.entries, stats.evictions), (2, 1, 1));

    // Eviction released the registry's pin, not the caller's handle.
    assert!(Arc::strong_count(&bundle_a) >= 1);

    let released = reg.prune();
    assert_eq!(released, 1);
    let stats = reg.stats();
    assert_eq!((stats.entries, stats.bytes), (0, 0));
    assert_eq!(stats.evictions, 2);
}

#[test]
fn bf16_growth_rate_within_tolerance_and_deterministic() {
    let bundle = trained_smoke_bundle();

    // Physics tolerance: bf16 weight storage may perturb bits, not the
    // instability. Same contract (and tolerance) as the bench gate.
    let g_f32 = two_stream_growth(bundle.clone());
    let g_bf16 = two_stream_growth(bundle.clone().with_precision(Precision::Bf16));
    assert!(g_f32 > 0.0, "f32 run must show growth (gamma = {g_f32})");
    let rel = ((g_bf16 - g_f32) / g_f32).abs();
    assert!(
        rel < 0.05,
        "bf16 growth rate deviates {:.2}% from f32 ({g_bf16} vs {g_f32})",
        rel * 100.0
    );

    // Reduced precision is still deterministic: repeat runs bit-identical.
    let mut spec = engine::scenario("two_stream", Scale::Smoke).expect("registry");
    spec.n_steps = 40;
    let run = || {
        Engine::new()
            .with_model_1d(bundle.clone().with_precision(Precision::Bf16))
            .run(&spec, Backend::Dl1D)
            .expect("bf16 run")
            .history
    };
    assert_eq!(run(), run(), "bf16 inference must be run-to-run bit-exact");
}

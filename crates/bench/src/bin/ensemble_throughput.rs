//! Ensemble throughput: session·steps/sec of a fleet of 1-D DL runs,
//! solo-loop vs batched single-thread vs batched multi-thread.
//!
//! The workload is the amortization case the paper argues for: many
//! simulations sharing one trained field solver. `solo` drives each
//! session to completion one after another (the hand-rolled loop over
//! `Engine::start` the ensemble API replaces) — every field solve is a
//! batch-1 inference. `batched_1t` drives the same fleet through
//! `Ensemble::run_to_end(1)`: per lockstep wave, all sessions' inference
//! inputs are gathered into one `[m, in]` GEMM that hits the 8-row zmm
//! micro-kernels. `batched_mt` adds `core::pool` worker threads
//! (contiguous session chunks, each batching its own cohort).
//!
//! Before timing, the binary verifies on a mini-fleet that ensemble
//! histories are bit-identical to solo runs — the numbers only count if
//! the batching is exact. Since every fleet member reads the same
//! `Arc<FrozenModel>`, that check also pins the shared-weight inference
//! path to the owned-network semantics.
//!
//! Beyond throughput, the bench accounts the fleet's *weight memory*
//! (one shared allocation vs 16 private copies — the `weights` section
//! and the ≤ 1.1× single-copy gate) and measures the bf16 storage path:
//! solo-shape inference GFLOP/s-equivalent vs f32 (the memory-bound
//! m = 1 GEMV where halved weight traffic pays) and the two-stream
//! growth rate of a bf16 fleet against its f32 twin (the physics
//! tolerance that gates bf16 adoption — see the README's precision
//! contract).
//!
//! Usage (same conventions as `step_throughput`):
//!
//! * `ensemble_throughput` — full measurement, JSON printed to stdout.
//! * `--out FILE` — write the raw measurement JSON to `FILE`.
//! * `--write-bench` — measure and write `BENCH_ensemble.json`. Unlike
//!   the step/train benches there is no separate pre-change baseline
//!   file: the solo loop *is* the baseline (it is exactly the
//!   hand-rolled `Engine::start` loop that predates the ensemble API),
//!   so one measurement carries both sides of the comparison.
//! * `--quick` — CI-sized workloads.
//! * `--check` — compare against the committed `BENCH_ensemble.json`:
//!   fails if the *live* batched-vs-solo speedup falls below
//!   `DLPIC_ENSEMBLE_MIN_SPEEDUP` (default 1.5 — the committed target is
//!   ≥ 2×; the gate is machine-relative, so no anchor is involved), or
//!   if an absolute throughput regresses more than
//!   `DLPIC_PERF_MAX_REGRESSION` (default 0.35 — wider than the
//!   step/train gates because the ratio gate is the primary contract
//!   and the anchor drifts ±15% on the dev container) after
//!   calibration-anchor rescaling (3× derate on an AVX-512 ↔ portable
//!   kernel mismatch, as in the train gate).

use dlpic_bench::gate::{calibration_gflops, json_string_after, json_value_after, median};
use dlpic_nn::linalg::simd_level;
use dlpic_nn::{FrozenModel, Precision, PredictWorkspace, Tensor};
use dlpic_repro::core::pool;
use dlpic_repro::core::Scale;
use dlpic_repro::engine::{self, dl, Backend, EnergyHistory, Engine};
use std::time::Instant;

/// Fleet geometry: 16 concurrent runs (two full 8-row zmm tiles per
/// wave), light particle load so the DL inference dominates — the
/// regime the batching targets.
const RUNS: usize = 16;
const PPC: usize = 50;

/// The fleet's specs: a seed fan over two-stream at the *paper* DL
/// scale (4096-bin phase input, 3×1024 hidden — §IV.A): ~25 MB of MLP
/// weights per solve, the memory-bound m = 1 GEMM shape PR 3's notes
/// flagged. Solo runs re-stream the weights every step; a batched wave
/// streams them once for the whole fleet.
fn fleet_specs(steps: usize) -> Vec<engine::ScenarioSpec> {
    (0..RUNS as u64)
        .map(|seed| {
            let mut spec = engine::scenario("two_stream", Scale::Paper).expect("registry");
            spec.ppc = PPC;
            spec.n_steps = steps;
            spec.seed = 100 + seed;
            spec.name = format!("two_stream[seed={}]", spec.seed);
            spec
        })
        .collect()
}

#[derive(Clone, Copy)]
struct FleetResult {
    seconds: f64,
    steps_per_sec: f64,
}

/// Times the hand-rolled loop: one session after another, each stepped
/// to completion (construction excluded — both modes pay it equally).
fn bench_solo(specs: &[engine::ScenarioSpec], reps: usize) -> FleetResult {
    let engine = Engine::new();
    let total_steps: usize = specs.iter().map(|s| s.n_steps).sum();
    let times: Vec<f64> = (0..reps)
        .map(|_| {
            let mut sessions: Vec<_> = specs
                .iter()
                .map(|s| engine.start(s, Backend::Dl1D).expect("start"))
                .collect();
            let t0 = Instant::now();
            for session in &mut sessions {
                session.run_to_end();
            }
            let dt = t0.elapsed().as_secs_f64();
            std::hint::black_box(sessions.last().map(|s| s.steps_done()));
            dt
        })
        .collect();
    let seconds = median(times);
    FleetResult {
        seconds,
        steps_per_sec: total_steps as f64 / seconds,
    }
}

/// Times `Ensemble::run_to_end(threads)` over the same fleet.
fn bench_batched(specs: &[engine::ScenarioSpec], threads: usize, reps: usize) -> FleetResult {
    let engine = Engine::new();
    let total_steps: usize = specs.iter().map(|s| s.n_steps).sum();
    let times: Vec<f64> = (0..reps)
        .map(|_| {
            let mut ensemble = engine
                .start_ensemble(specs, Backend::Dl1D)
                .expect("start ensemble");
            let t0 = Instant::now();
            ensemble.run_to_end(threads);
            let dt = t0.elapsed().as_secs_f64();
            std::hint::black_box(ensemble.is_complete());
            dt
        })
        .collect();
    let seconds = median(times);
    FleetResult {
        seconds,
        steps_per_sec: total_steps as f64 / seconds,
    }
}

/// Asserts (on a mini-fleet) that batched histories reproduce solo runs
/// bit-for-bit before any number is reported.
fn verify_bit_identity() {
    let specs: Vec<engine::ScenarioSpec> = fleet_specs(4).into_iter().take(9).collect();
    let engine = Engine::new();
    let solo: Vec<EnergyHistory> = specs
        .iter()
        .map(|s| {
            Engine::new()
                .run(s, Backend::Dl1D)
                .expect("solo run")
                .history
        })
        .collect();
    let mut ensemble = engine.start_ensemble(&specs, Backend::Dl1D).expect("start");
    ensemble.run_to_end(1);
    for (i, (summary, want)) in ensemble.finish().iter().zip(&solo).enumerate() {
        assert!(
            summary.history == *want,
            "run {i}: batched history differs from solo — batching is not exact"
        );
    }
    eprintln!("bit-identity: batched histories == solo histories (9-run fleet)");
}

/// Resident weight bytes of the fleet: the sharing headline.
struct WeightFootprint {
    /// One frozen f32 copy of the Paper-scale MLP.
    single_copy_bytes: usize,
    /// What 16 private copies would pin (the pre-sharing world).
    fleet_per_copy_bytes: usize,
    /// What the live 16-run ensemble actually pins, deduplicated by
    /// `Session::weight_storage` allocation identity.
    fleet_shared_bytes: usize,
    /// Distinct weight allocations across the fleet (1 when sharing works).
    distinct_models: usize,
    /// One frozen bf16 copy of the same network (~half the f32 bytes).
    bf16_single_copy_bytes: usize,
}

/// Builds the real 16-run fleet and reads its deduplicated weight bytes.
fn measure_weights() -> WeightFootprint {
    let specs = fleet_specs(1);
    let engine = Engine::new();
    let ensemble = engine
        .start_ensemble(&specs, Backend::Dl1D)
        .expect("start ensemble");
    let (distinct_models, fleet_shared_bytes) = ensemble.weight_footprint();
    let net = Scale::Paper.mlp_arch().build(0xD15E);
    let single = net
        .freeze(Precision::F32)
        .expect("the paper MLP has a frozen form")
        .weight_bytes();
    let bf16 = net
        .freeze(Precision::Bf16)
        .expect("the paper MLP has a frozen form")
        .weight_bytes();
    WeightFootprint {
        single_copy_bytes: single,
        fleet_per_copy_bytes: RUNS * single,
        fleet_shared_bytes,
        distinct_models,
        bf16_single_copy_bytes: bf16,
    }
}

/// bf16 vs f32 inference on the solo shape (m = 1): GFLOP/s-equivalent
/// (nominal 2·params FLOPs per solve over wall time — bf16 does the same
/// arithmetic in f32 after decode, so the figure is comparable) plus the
/// physics-tolerance check on the two-stream growth rate.
struct Bf16Result {
    f32_gflops: f64,
    bf16_gflops: f64,
    growth_f32: f64,
    growth_bf16: f64,
}

fn bench_bf16_kernels(reps: usize) -> (f64, f64) {
    let arch = Scale::Paper.mlp_arch();
    let net = arch.build(0xD15E);
    let f32_model = net
        .freeze(Precision::F32)
        .expect("the paper MLP has a frozen form");
    let bf16_model = net
        .freeze(Precision::Bf16)
        .expect("the paper MLP has a frozen form");
    let input = arch.input_len();
    let x = Tensor::new(
        (0..input).map(|i| (i as f32 * 0.013).sin()).collect(),
        &[1, input],
    );
    let flops = 2.0 * arch.param_count() as f64;
    let iters = 20usize;
    let run = |model: &FrozenModel| {
        let mut ws = PredictWorkspace::new();
        std::hint::black_box(model.predict_into(&x, &mut ws));
        let times: Vec<f64> = (0..reps)
            .map(|_| {
                let t0 = Instant::now();
                for _ in 0..iters {
                    std::hint::black_box(model.predict_into(&x, &mut ws));
                }
                t0.elapsed().as_secs_f64()
            })
            .collect();
        flops * iters as f64 / median(times) / 1e9
    };
    (run(&f32_model), run(&bf16_model))
}

/// Runs two-stream at `Scale::Smoke` with one quick-trained bundle in
/// both precisions and returns the fitted growth rates. Both runs go
/// through the full engine path (frozen shared weights), so the numbers
/// gate exactly what a bf16 fleet would produce.
fn bf16_physics() -> (f64, f64) {
    let bundle = dl::quick_train_1d(Scale::Smoke, 42);
    let mut spec = engine::scenario("two_stream", Scale::Smoke).expect("registry");
    // The smoke preset is a 30-step plumbing check; a growth *fit* needs
    // the instability to actually develop (same geometry the end-to-end
    // DL test validates growth with).
    spec.ppc = 200;
    spec.n_steps = 150;
    let gamma = |bundle: dlpic_repro::core::ModelBundle| {
        use dlpic_repro::analytics::fit::{fit_growth_rate, GrowthFitOptions};
        let summary = Engine::new()
            .with_model_1d(bundle)
            .run(&spec, Backend::Dl1D)
            .expect("two-stream smoke run");
        let s = summary.history.mode_series(1).expect("mode 1 tracked");
        // A smoke-quality model's field noise keeps the amplitude within
        // one decade, so the default noise-floor→saturation window never
        // materializes; fit the full rise up to the peak instead — the
        // same series, the same slope, for both precisions.
        let opts = GrowthFitOptions {
            lo_frac: 0.0,
            hi_frac: 1.0,
            min_points: 5,
        };
        fit_growth_rate(&s.times, &s.values, opts)
            .expect("mode-1 growth fit on two-stream")
            .gamma
    };
    let g_f32 = gamma(bundle.clone());
    let g_bf16 = gamma(bundle.with_precision(Precision::Bf16));
    (g_f32, g_bf16)
}

struct Measurement {
    calibration: f64,
    simd: &'static str,
    steps: usize,
    threads: usize,
    solo: FleetResult,
    batched_1t: FleetResult,
    batched_mt: FleetResult,
    weights: WeightFootprint,
    bf16: Bf16Result,
}

fn measure(quick: bool) -> Measurement {
    let (steps, reps) = if quick { (30, 3) } else { (60, 5) };
    let threads = pool::available_threads();
    eprintln!("measuring calibration anchor...");
    let calibration = calibration_gflops(reps);
    verify_bit_identity();
    eprintln!("accounting fleet weight memory...");
    let weights = measure_weights();
    eprintln!("measuring bf16 vs f32 solo inference...");
    let (f32_gflops, bf16_gflops) = bench_bf16_kernels(reps);
    eprintln!("checking bf16 physics tolerance (quick-train + 2 smoke runs)...");
    let (growth_f32, growth_bf16) = bf16_physics();
    let bf16 = Bf16Result {
        f32_gflops,
        bf16_gflops,
        growth_f32,
        growth_bf16,
    };
    let specs = fleet_specs(steps);
    eprintln!("measuring solo loop ({RUNS} runs x {steps} steps x {reps} reps)...");
    let solo = bench_solo(&specs, reps);
    eprintln!("measuring batched ensemble, 1 thread...");
    let batched_1t = bench_batched(&specs, 1, reps);
    let batched_mt = if threads > 1 {
        eprintln!("measuring batched ensemble, {threads} threads...");
        bench_batched(&specs, threads, reps)
    } else {
        // One exposed core: a second 1-thread run would only record
        // machine noise as "thread scaling", so reuse the 1-thread
        // numbers (speedup_threads = 1.0 by construction).
        eprintln!("1 core exposed: batched_mt = batched_1t");
        batched_1t
    };
    Measurement {
        calibration,
        simd: simd_level(),
        steps,
        threads,
        solo,
        batched_1t,
        batched_mt,
        weights,
        bf16,
    }
}

fn measurement_json(m: &Measurement, indent: &str) -> String {
    let fleet = |f: &FleetResult| {
        format!(
            "{{\n{indent}    \"seconds\": {:.4},\n{indent}    \"session_steps_per_sec\": {:.3e}\n{indent}  }}",
            f.seconds, f.steps_per_sec
        )
    };
    let weights = format!(
        "{{\n{indent}    \"single_copy_bytes\": {},\n{indent}    \"fleet_per_copy_bytes\": {},\n{indent}    \"fleet_shared_bytes\": {},\n{indent}    \"distinct_models\": {},\n{indent}    \"fleet_vs_single_copy\": {:.3},\n{indent}    \"bf16_single_copy_bytes\": {}\n{indent}  }}",
        m.weights.single_copy_bytes,
        m.weights.fleet_per_copy_bytes,
        m.weights.fleet_shared_bytes,
        m.weights.distinct_models,
        m.weights.fleet_shared_bytes as f64 / m.weights.single_copy_bytes as f64,
        m.weights.bf16_single_copy_bytes,
    );
    let bf16 = format!(
        "{{\n{indent}    \"f32_gflops\": {:.3},\n{indent}    \"bf16_gflops\": {:.3},\n{indent}    \"speedup_bf16\": {:.3},\n{indent}    \"growth_rate_f32\": {:.6},\n{indent}    \"growth_rate_bf16\": {:.6},\n{indent}    \"growth_rel_err\": {:.6}\n{indent}  }}",
        m.bf16.f32_gflops,
        m.bf16.bf16_gflops,
        m.bf16.bf16_gflops / m.bf16.f32_gflops,
        m.bf16.growth_f32,
        m.bf16.growth_bf16,
        (m.bf16.growth_bf16 - m.bf16.growth_f32).abs() / m.bf16.growth_f32.abs(),
    );
    format!(
        "{{\n{indent}  \"calibration_gflops\": {:.3},\n{indent}  \"simd\": \"{}\",\n{indent}  \"runs\": {RUNS},\n{indent}  \"steps\": {},\n{indent}  \"ppc\": {PPC},\n{indent}  \"threads\": {},\n{indent}  \"solo\": {},\n{indent}  \"batched_1t\": {},\n{indent}  \"batched_mt\": {},\n{indent}  \"weights\": {weights},\n{indent}  \"bf16\": {bf16},\n{indent}  \"speedup_batched\": {:.3},\n{indent}  \"speedup_threads\": {:.3}\n{indent}}}",
        m.calibration,
        m.simd,
        m.steps,
        m.threads,
        fleet(&m.solo),
        fleet(&m.batched_1t),
        fleet(&m.batched_mt),
        m.batched_1t.steps_per_sec / m.solo.steps_per_sec,
        m.batched_mt.steps_per_sec / m.batched_1t.steps_per_sec,
    )
}

fn print_human(m: &Measurement) {
    println!(
        "solo loop   : {:.0} session·steps/s ({:.3}s)",
        m.solo.steps_per_sec, m.solo.seconds
    );
    println!(
        "batched (1t): {:.0} session·steps/s ({:.3}s)  -> {:.2}x vs solo",
        m.batched_1t.steps_per_sec,
        m.batched_1t.seconds,
        m.batched_1t.steps_per_sec / m.solo.steps_per_sec
    );
    println!(
        "batched ({}t): {:.0} session·steps/s ({:.3}s)  -> {:.2}x vs 1t",
        m.threads,
        m.batched_mt.steps_per_sec,
        m.batched_mt.seconds,
        m.batched_mt.steps_per_sec / m.batched_1t.steps_per_sec
    );
    let mb = |b: usize| b as f64 / (1024.0 * 1024.0);
    println!(
        "fleet weights: {:.1} MB shared across {} runs ({} model{}) vs {:.1} MB per-copy; \
         one copy {:.1} MB f32 / {:.1} MB bf16",
        mb(m.weights.fleet_shared_bytes),
        RUNS,
        m.weights.distinct_models,
        if m.weights.distinct_models == 1 {
            ""
        } else {
            "s"
        },
        mb(m.weights.fleet_per_copy_bytes),
        mb(m.weights.single_copy_bytes),
        mb(m.weights.bf16_single_copy_bytes),
    );
    println!(
        "bf16 solo inference: {:.2} GFLOP/s-eq vs {:.2} f32 -> {:.2}x; growth rate {:.4} \
         vs {:.4} f32 ({:+.2}%)",
        m.bf16.bf16_gflops,
        m.bf16.f32_gflops,
        m.bf16.bf16_gflops / m.bf16.f32_gflops,
        m.bf16.growth_bf16,
        m.bf16.growth_f32,
        (m.bf16.growth_bf16 / m.bf16.growth_f32 - 1.0) * 100.0,
    );
}

fn check(m: &Measurement) -> i32 {
    // Gate 1 (machine-relative, always active): the batched scheduler
    // must actually amortize — live speedup over the solo loop.
    let min_speedup: f64 = std::env::var("DLPIC_ENSEMBLE_MIN_SPEEDUP")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.5);
    let speedup = m.batched_1t.steps_per_sec / m.solo.steps_per_sec;
    println!("batched/solo speedup: {speedup:.2}x (gate: >= {min_speedup:.2}x)");
    let mut failed = speedup < min_speedup;
    if failed {
        println!("FAIL: batched ensemble no longer amortizes the DL inference");
    }

    // Gate 1b (machine-independent): the 16-run fleet must pin at most
    // 1.1x one weight copy — the Arc-sharing contract. Any private copy
    // sneaking back in jumps the ratio to >= 2x, far past the gate.
    let weight_ratio = m.weights.fleet_shared_bytes as f64 / m.weights.single_copy_bytes as f64;
    println!(
        "fleet/single-copy weight bytes: {weight_ratio:.3}x across {} distinct model(s) \
         (gate: <= 1.10x)",
        m.weights.distinct_models
    );
    if weight_ratio > 1.10 {
        failed = true;
        println!("FAIL: fleet weights are no longer shared (private copies per session?)");
    }

    // Gate 1c (machine-relative): bf16 storage must beat f32 on the
    // memory-bound solo inference it exists for.
    let min_bf16: f64 = std::env::var("DLPIC_BF16_MIN_SPEEDUP")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.3);
    let bf16_speedup = m.bf16.bf16_gflops / m.bf16.f32_gflops;
    println!("bf16/f32 solo inference: {bf16_speedup:.2}x (gate: >= {min_bf16:.2}x)");
    if bf16_speedup < min_bf16 {
        failed = true;
        println!("FAIL: bf16 weight storage no longer pays for its precision loss");
    }

    // Gate 1d (physics): bf16 must reproduce the f32 two-stream growth
    // rate within tolerance — the contract that gates bf16 adoption.
    let growth_tol: f64 = std::env::var("DLPIC_BF16_GROWTH_TOL")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.05);
    let growth_err = (m.bf16.growth_bf16 - m.bf16.growth_f32).abs() / m.bf16.growth_f32.abs();
    println!(
        "bf16 growth-rate deviation: {:.3}% (gate: <= {:.1}%)",
        growth_err * 100.0,
        growth_tol * 100.0
    );
    if growth_err > growth_tol {
        failed = true;
        println!("FAIL: bf16 inference drifts the two-stream growth rate past tolerance");
    }

    // Gate 2: absolute throughput vs the committed numbers, rescaled by
    // the calibration anchor.
    let text = match std::fs::read_to_string("BENCH_ensemble.json") {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read BENCH_ensemble.json: {e}");
            return 2;
        }
    };
    let Some(cur_at) = text.find("\"current\"") else {
        eprintln!("BENCH_ensemble.json has no \"current\" section");
        return 2;
    };
    let scale = match json_value_after(&text, cur_at, "calibration_gflops") {
        Some(cal) if cal > 0.0 => {
            let s = m.calibration / cal;
            println!(
                "calibration: committed {cal:.2} GFLOP/s, this machine {:.2} (scale {s:.2}x)",
                m.calibration
            );
            s
        }
        _ => 1.0,
    };
    // The DL-inference workload is f32-kernel-bound while the anchor is
    // f64: across an AVX-512 <-> portable dispatch mismatch the anchor
    // cannot track it, so derate 3x (same policy as the train gate).
    let derate = match json_string_after(&text, cur_at, "simd").as_deref() {
        Some(committed) if committed != m.simd => {
            println!(
                "kernel-path mismatch (committed {committed}, this machine {}): derating \
                 absolute expectations 3x",
                m.simd
            );
            3.0
        }
        _ => 1.0,
    };
    // Wider default than the step/train gates (0.35 vs 0.25): the
    // absolute check is the secondary backstop here (the primary,
    // machine-relative contract is the speedup ratio above), and the
    // f64 anchor swings ~±15% run-to-run on the dev container while the
    // fleet workload is steadier — a 25% gate would flake on anchor
    // drift alone.
    let tolerance: f64 = std::env::var("DLPIC_PERF_MAX_REGRESSION")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.35);
    let committed = |section: &str| {
        let at = text[cur_at..].find(&format!("\"{section}\""))? + cur_at;
        json_value_after(&text, at, "session_steps_per_sec")
    };
    for (name, measured) in [
        ("solo", m.solo.steps_per_sec),
        ("batched_1t", m.batched_1t.steps_per_sec),
    ] {
        let Some(base) = committed(name) else {
            eprintln!("BENCH_ensemble.json has no parsable \"{name}\" section");
            return 2;
        };
        let expected = base * scale / derate;
        let delta = measured / expected - 1.0;
        let verdict = if delta < -tolerance {
            failed = true;
            "REGRESSION"
        } else {
            "ok"
        };
        println!(
            "{name:>10}: expected {expected:.3e}, measured {measured:.3e} ({:+.1}%) {verdict}",
            delta * 100.0
        );
    }
    if failed {
        println!("FAIL: ensemble throughput gate");
        1
    } else {
        println!("PASS: ensemble throughput within tolerance");
        0
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let do_check = args.iter().any(|a| a == "--check");
    let flag_value = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };

    let m = measure(quick);
    print_human(&m);

    if let Some(path) = flag_value("--out") {
        std::fs::write(&path, measurement_json(&m, "") + "\n").expect("write --out file");
        println!("wrote {path}");
    }

    if args.iter().any(|a| a == "--write-bench") {
        let json = format!(
            "{{\n  \"bench\": \"ensemble_throughput\",\n  \"note\": \"single-machine; compare the speedup ratios, not cross-machine absolutes. solo = the hand-rolled Engine::start loop the ensemble API replaces (the pre-ensemble baseline)\",\n  \"current\": {},\n  \"speedup\": {{\n    \"batched_1t_vs_solo\": {:.3},\n    \"batched_mt_vs_1t\": {:.3}\n  }}\n}}\n",
            measurement_json(&m, "  "),
            m.batched_1t.steps_per_sec / m.solo.steps_per_sec,
            m.batched_mt.steps_per_sec / m.batched_1t.steps_per_sec,
        );
        std::fs::write("BENCH_ensemble.json", &json).expect("write BENCH_ensemble.json");
        println!("wrote BENCH_ensemble.json");
    }

    if do_check {
        std::process::exit(check(&m));
    }
}

//! Vlasov-based training samples — noise-free counterparts of the
//! PIC-harvested dataset.
//!
//! A Vlasov snapshot `f(x, v)` *is* the idealized phase-space histogram the
//! DL solver consumes: multiplying by the macro-particle count gives a
//! histogram with the same total mass as a PIC harvest, but without shot
//! noise. Samples produced here are bit-compatible with
//! `dlpic_dataset::PhaseDataset` rows, so the training pipeline and the
//! PIC/Vlasov data ablation need no special cases.

use crate::solver::{VlasovConfig, VlasovSolver};
use dlpic_pic::grid::Grid1D;

/// One Vlasov-generated training sample.
#[derive(Debug, Clone)]
pub struct VlasovSample {
    /// Phase-space histogram, row-major `[nv][nx]`, scaled to `total_mass`
    /// "particles".
    pub histogram: Vec<f32>,
    /// The self-consistent electric field on the spatial nodes.
    pub efield: Vec<f64>,
}

/// Harvest configuration.
#[derive(Debug, Clone)]
pub struct VlasovHarvest {
    /// Vlasov run configuration. The solver's own (nx × nv) resolution is
    /// also the histogram resolution.
    pub config: VlasovConfig,
    /// Steps between consecutive samples.
    pub stride: usize,
    /// Number of samples to collect.
    pub samples: usize,
    /// Total histogram mass, e.g. the PIC particle count the DL solver
    /// will see at inference time (64 000 for the paper's setup).
    pub total_mass: f64,
}

impl VlasovHarvest {
    /// A harvest matching the paper's run length: sample every step for
    /// `samples` steps.
    pub fn new(config: VlasovConfig, samples: usize, total_mass: f64) -> Self {
        Self {
            config,
            stride: 1,
            samples,
            total_mass,
        }
    }

    /// Runs the solver, invoking `sink(histogram, efield)` once per
    /// sample with **borrowed** per-sample snapshot buffers that are
    /// reused between samples — the allocation-free path the dataset
    /// generators consume (a harvest used to allocate a fresh histogram
    /// `Vec` and `efield.to_vec()` per sample).
    pub fn run_with(&self, mut sink: impl FnMut(&[f32], &[f64])) {
        let mut solver = VlasovSolver::new(self.config.clone());
        let nx = self.config.grid.ncells();
        let nv = self.config.nv;
        let cell_phase_volume = self.config.grid.dx() * solver.dv();
        // f integrates to L over the box; mass-per-histogram-count factor
        // turns the density into "macro-particles per phase cell".
        let scale = self.total_mass / self.config.grid.length() * cell_phase_volume;
        let mut histogram = vec![0.0f32; nx * nv];
        for _ in 0..self.samples {
            for (h, &f) in histogram.iter_mut().zip(solver.distribution()) {
                *h = (f * scale) as f32;
            }
            sink(&histogram, solver.efield());
            for _ in 0..self.stride {
                solver.step();
            }
        }
    }

    /// Runs the solver and collects owned samples (convenience wrapper
    /// over [`VlasovHarvest::run_with`]).
    pub fn run(&self) -> Vec<VlasovSample> {
        let mut out = Vec::with_capacity(self.samples);
        self.run_with(|histogram, efield| {
            out.push(VlasovSample {
                histogram: histogram.to_vec(),
                efield: efield.to_vec(),
            });
        });
        out
    }
}

/// Convenience: the spatial grid a harvest writes fields for.
pub fn field_grid(harvest: &VlasovHarvest) -> &Grid1D {
    &harvest.config.grid
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_harvest() -> VlasovHarvest {
        let mut cfg = VlasovConfig::two_stream(0.2, 0.02);
        cfg.nv = 64;
        cfg.dt = 0.1;
        VlasovHarvest::new(cfg, 5, 64_000.0)
    }

    #[test]
    fn harvest_yields_requested_samples() {
        let samples = tiny_harvest().run();
        assert_eq!(samples.len(), 5);
        for s in &samples {
            assert_eq!(s.histogram.len(), 64 * 64);
            assert_eq!(s.efield.len(), 64);
            assert!(s.efield.iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn histogram_mass_matches_particle_count() {
        let samples = tiny_harvest().run();
        for s in &samples {
            let mass: f64 = s.histogram.iter().map(|&h| h as f64).sum();
            assert!(
                (mass - 64_000.0).abs() / 64_000.0 < 1e-3,
                "histogram mass {mass}"
            );
        }
    }

    #[test]
    fn vlasov_histograms_are_smoother_than_pic() {
        // The whole point of §VII: no shot noise. Compare the row-to-row
        // roughness of a Vlasov histogram against a PIC histogram of the
        // same configuration and mass.
        use dlpic_core_free::roughness;
        let vlasov = tiny_harvest().run().remove(0);
        let rough_v = roughness(&vlasov.histogram, 64);

        // An equivalent PIC histogram.
        let grid = Grid1D::paper();
        let p = dlpic_pic::init::TwoStreamInit::random(0.2, 0.02, 64_000, 3).build(&grid);
        let mut hist = vec![0.0f32; 64 * 64];
        // NGP binning without depending on dlpic-core (avoids a cycle):
        let (vmin, vmax) = (-0.8, 0.8);
        let inv_dx = 64.0 / grid.length();
        let inv_dv = 64.0 / (vmax - vmin);
        for (&x, &v) in p.x.iter().zip(&p.v) {
            let ix = ((x * inv_dx) as usize).min(63);
            let iv = (((v - vmin) * inv_dv).max(0.0) as usize).min(63);
            hist[iv * 64 + ix] += 1.0;
        }
        let rough_p = roughness(&hist, 64);
        assert!(
            rough_v < rough_p * 0.2,
            "Vlasov roughness {rough_v} not clearly below PIC {rough_p}"
        );
    }

    /// Mean squared x-difference along occupied rows: a shot-noise probe.
    mod dlpic_core_free {
        pub fn roughness(hist: &[f32], nx: usize) -> f64 {
            let mut acc = 0.0f64;
            let mut count = 0usize;
            for row in hist.chunks(nx) {
                let sum: f32 = row.iter().sum();
                if sum < 1.0 {
                    continue;
                }
                for w in row.windows(2) {
                    let d = (w[1] - w[0]) as f64;
                    acc += d * d;
                    count += 1;
                }
            }
            acc / count.max(1) as f64
        }
    }
}

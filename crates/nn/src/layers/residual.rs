//! Residual dense block: `y = relu(x + Dense(x))`.
//!
//! The paper's §VII suggests that "the usage of neural networks fit to
//! encode time sequences, such as Residual networks (ResNet), might be a
//! better fit to DL-based PIC methods than MLPs" — this block lets the
//! `ablation_arch` experiment test a residual MLP against the plain one.

use crate::init::Init;
use crate::layer::Layer;
use crate::layers::dense::Dense;
use crate::tensor::Tensor;

/// A width-preserving residual block around one dense layer.
pub struct ResidualDense {
    inner: Dense,
    mask: Vec<bool>,
}

impl ResidualDense {
    /// Creates a residual block of the given width.
    pub fn new(width: usize, init: Init, seed: u64) -> Self {
        Self {
            inner: Dense::new(width, width, init, seed),
            mask: Vec::new(),
        }
    }
}

impl Layer for ResidualDense {
    fn forward(&mut self, input: &Tensor, training: bool) -> Tensor {
        let mut y = self.inner.forward(input, training);
        y.add_assign(input);
        if training {
            self.mask.clear();
            self.mask.extend(y.data().iter().map(|&v| v > 0.0));
        }
        y.map(|v| v.max(0.0))
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        assert_eq!(
            grad_out.len(),
            self.mask.len(),
            "backward before forward(training)"
        );
        // Through the ReLU.
        let masked = Tensor::new(
            grad_out
                .data()
                .iter()
                .zip(&self.mask)
                .map(|(&g, &m)| if m { g } else { 0.0 })
                .collect(),
            grad_out.shape(),
        );
        // Through the dense branch, plus the skip connection.
        let mut grad_in = self.inner.backward(&masked);
        grad_in.add_assign(&masked);
        grad_in
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut [f32], &mut [f32])) {
        self.inner.visit_params(f);
    }

    fn zero_grads(&mut self) {
        self.inner.zero_grads();
    }

    fn name(&self) -> &'static str {
        "residual-dense"
    }

    fn param_count(&self) -> usize {
        self.inner.param_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_weights_reduce_to_relu_identity() {
        let mut block = ResidualDense::new(3, Init::Zeros, 0);
        let x = Tensor::new(vec![1.0, -2.0, 0.5], &[1, 3]);
        let y = block.forward(&x, false);
        assert_eq!(y.data(), &[1.0, 0.0, 0.5]);
    }

    #[test]
    fn skip_connection_carries_gradient() {
        let mut block = ResidualDense::new(2, Init::Zeros, 0);
        let x = Tensor::new(vec![1.0, 2.0], &[1, 2]); // all positive → mask open
        let _ = block.forward(&x, true);
        let gx = block.backward(&Tensor::new(vec![1.0, 1.0], &[1, 2]));
        // Zero weights: gradient flows only through the skip → identity.
        assert_eq!(gx.data(), &[1.0, 1.0]);
    }

    #[test]
    fn parameter_count_matches_inner_dense() {
        let block = ResidualDense::new(8, Init::HeNormal, 1);
        assert_eq!(block.param_count(), 8 * 8 + 8);
    }
}

//! Per-step diagnostics: the quantities plotted in the paper's Figs. 4–6.

use crate::efield::field_energy;
use crate::grid::Grid1D;
use crate::particles::Particles;
use dlpic_analytics::dft;

/// One snapshot of the conserved-quantity diagnostics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyReport {
    /// Kinetic energy (time-centred when produced by the mover).
    pub kinetic: f64,
    /// Electrostatic field energy.
    pub field: f64,
    /// Total momentum `m·Σv`.
    pub momentum: f64,
}

impl EnergyReport {
    /// Total energy.
    pub fn total(&self) -> f64 {
        self.kinetic + self.field
    }
}

/// Computes an instantaneous report from the current state (used at `t = 0`
/// before the leap-frog stagger exists; later steps use the mover's
/// time-centred kinetic energy instead).
pub fn instantaneous_report(particles: &Particles, grid: &Grid1D, e: &[f64]) -> EnergyReport {
    EnergyReport {
        kinetic: particles.kinetic_energy(),
        field: field_energy(grid, e),
        momentum: particles.total_momentum(),
    }
}

/// Amplitude of grid mode `m` of the electric field — `E1` (m = 1) is the
/// quantity on the y-axis of the paper's Fig. 4 bottom panel.
pub fn field_mode_amplitude(e: &[f64], mode: usize) -> f64 {
    dft::mode_amplitude(e, mode)
}

/// Amplitudes of the first `count` modes (index 0 = mean).
pub fn field_mode_spectrum(e: &[f64], count: usize) -> Vec<f64> {
    let amps = dft::mode_amplitudes(e);
    amps.into_iter().take(count).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_totals_add_up() {
        let grid = Grid1D::new(8, 2.0);
        let p = Particles::new(vec![0.0, 1.0], vec![1.0, -1.0], -1.0, 2.0);
        let e = vec![0.5; 8];
        let r = instantaneous_report(&p, &grid, &e);
        assert!((r.kinetic - 2.0).abs() < 1e-15);
        assert!((r.field - 0.5 * 0.25 * 2.0).abs() < 1e-12);
        assert!((r.total() - r.kinetic - r.field).abs() < 1e-15);
        assert!(r.momentum.abs() < 1e-15);
    }

    #[test]
    fn mode_amplitude_extracts_planted_mode() {
        let n = 64;
        let e: Vec<f64> = (0..n)
            .map(|j| 0.05 * (2.0 * std::f64::consts::PI * 1.0 * j as f64 / n as f64).sin())
            .collect();
        assert!((field_mode_amplitude(&e, 1) - 0.05).abs() < 1e-12);
        assert!(field_mode_amplitude(&e, 2) < 1e-12);
    }

    #[test]
    fn spectrum_truncates_to_requested_count() {
        let e = vec![0.0; 64];
        assert_eq!(field_mode_spectrum(&e, 5).len(), 5);
    }
}

//! Fixture: a well-formed suppression — rule name in parentheses, colon,
//! non-empty reason — and prose that merely *mentions* the analyze:allow
//! syntax mid-sentence, which is not a directive.

use std::time::Instant;

pub fn stamp() -> Instant {
    // analyze:allow(no-wallclock-in-engine): fixture exercising the happy-path suppression syntax
    Instant::now()
}

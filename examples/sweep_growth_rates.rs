//! Parameter sweep demo: two-stream growth rate γ versus beam drift
//! speed v₀, run as one [`Ensemble`] instead of a hand-rolled loop over
//! `Engine::start`.
//!
//! Linear theory says the two-stream instability grows faster the faster
//! the beams counter-stream (γ ∝ ω_pe scaled by v₀/k matching); the sweep
//! makes that curve with five lines of driver code. Each point is a seed
//! ensemble of 3 runs whose fitted growth rates are averaged — the kind
//! of fleet workload the ensemble layer batches and parallelizes.
//!
//! Run: `cargo run --release --example sweep_growth_rates`
//! (set `DLPIC_SCALE=scaled` for paper-resolution runs).

use dlpic_repro::core::{pool, Scale};
use dlpic_repro::engine::{Backend, Engine, SweepSpec};

fn main() -> Result<(), dlpic_repro::engine::EngineError> {
    let scale = Scale::from_env_or(Scale::Smoke);
    let drifts = [0.12, 0.16, 0.20, 0.24];
    let seeds = [1u64, 2, 3];
    let sweep = SweepSpec::grid("two_stream", scale)
        .axis("v0", drifts)
        .seeds(seeds);

    // Smoke-scale registry entries run 30 steps; give the instability
    // room to develop so the exponential fit has a growth phase to latch
    // onto. (SweepSpec::specs exposes the expanded grid for exactly this
    // kind of spec-level adjustment.)
    let mut specs = sweep.specs()?;
    for spec in &mut specs {
        spec.n_steps = spec.n_steps.max(140);
    }

    let engine = Engine::new();
    let mut ensemble = engine.start_ensemble(&specs, Backend::Traditional1D)?;
    println!(
        "sweeping {} runs ({} drift speeds x {} seeds) on {} thread(s)...",
        ensemble.len(),
        drifts.len(),
        seeds.len(),
        pool::available_threads()
    );
    ensemble.run_to_end(pool::available_threads());
    let summaries = ensemble.finish();

    println!("\n  v0     <gamma>   fits   (per-seed gammas)");
    for (i, &v0) in drifts.iter().enumerate() {
        let runs = &summaries[i * seeds.len()..(i + 1) * seeds.len()];
        let gammas: Vec<f64> = runs
            .iter()
            .filter_map(|s| s.growth_rate(1).ok().map(|fit| fit.gamma))
            .collect();
        let mean = if gammas.is_empty() {
            f64::NAN
        } else {
            gammas.iter().sum::<f64>() / gammas.len() as f64
        };
        let detail: Vec<String> = gammas.iter().map(|g| format!("{g:.3}")).collect();
        println!(
            "  {v0:.2}   {mean:>7.3}   {}/{}    [{}]",
            gammas.len(),
            runs.len(),
            detail.join(", ")
        );
    }
    println!("\n(each row: mean fitted growth rate of E1 over the seed fan)");
    Ok(())
}

//! Dataset generation and inspection — the paper's Fig. 3 (training pairs
//! of phase-space histogram and electric field) as a runnable example.
//!
//! Generates a small sweep, prints dataset statistics, renders a few
//! samples as ASCII heatmaps with their target fields, and exercises the
//! binary store round trip.
//!
//! ```sh
//! cargo run --release --example dataset_gen
//! ```

use dlpic_repro::analytics::plot::heatmap;
use dlpic_repro::core::phase_space::PhaseGridSpec;
use dlpic_repro::dataset::generator::{generate, GeneratorConfig};
use dlpic_repro::dataset::spec::{SweepCombo, SweepSpec};
use dlpic_repro::dataset::{stats, store};
use dlpic_repro::engine::EngineError;

fn main() -> Result<(), EngineError> {
    println!("== dataset generation (paper Fig. 3 / §IV.A.1) ==\n");

    // A miniature sweep: two configurations, one run each.
    let sweep = SweepSpec {
        combos: vec![
            SweepCombo { v0: 0.2, vth: 0.0 },
            SweepCombo {
                v0: 0.1,
                vth: 0.005,
            },
        ],
        experiments_per_combo: 1,
        steps: 120,
        base_seed: 99,
    };
    let spec = PhaseGridSpec::new(32, 16, -0.5, 0.5);
    let mut cfg = GeneratorConfig::new(sweep, spec);
    cfg.ppc = 500;
    cfg.verbose = true;

    let t0 = std::time::Instant::now();
    let ds = generate(&cfg);
    println!("\ngenerated {} samples in {:.2?}\n", ds.len(), t0.elapsed());
    println!("{}", stats::summary(&ds));

    // Show the two-stream run early (straight beams) and late (vortex).
    for (label, idx) in [
        ("t = 0 (two cold beams)", 0usize),
        ("t = 22 (vortex forming)", 110),
    ] {
        println!("sample {idx} — {label}:");
        println!("{}", heatmap(ds.input_row(idx), spec.nx, spec.nv, ""));
        let e = ds.target_row(idx);
        let peak = e.iter().fold(0.0f32, |m, v| m.max(v.abs()));
        println!("  target E field: max |E| = {peak:.4}\n");
    }

    // Binary persistence round trip. Store failures surface as typed
    // `EngineError::Store` values instead of panics.
    std::fs::create_dir_all("out")?;
    let path = "out/example-dataset.dlds";
    store::save(&ds, path)?;
    let loaded = store::load(path)?;
    assert_eq!(loaded.len(), ds.len());
    assert_eq!(loaded.inputs(), ds.inputs());
    let bytes = std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);
    println!(
        "store round trip OK: {path} ({:.1} MiB)",
        bytes as f64 / (1024.0 * 1024.0)
    );
    println!(
        "(the paper's full dataset: 40,000 samples — `SweepSpec::paper_training()` — was 5.2 GB \
         as PNG/text; this packed format holds it in ~680 MB)"
    );
    Ok(())
}

//! The fused 2-D gather→accelerate→move kernel: one pass over the
//! particles per step, mirroring `dlpic_pic::fused` for the 2-D cycle.
//!
//! [`fused_gather_push_move`] interpolates `(Ex, Ey)` with the
//! tensor-product weights, pushes both velocity components and both
//! position components in registers, and accumulates the step's
//! diagnostics moments in the same pass. Per-particle arithmetic is
//! identical to the three-pass pipeline
//! [`gather_field`](crate::gather2d::gather_field) →
//! [`push_velocities`](crate::mover2d::push_velocities) →
//! [`push_positions`](crate::mover2d::push_positions); the grid wraps are
//! computed by compare-and-fold (equal values, no integer division), so
//! trajectories match the unfused oracle bit for bit. The kinetic-energy
//! *sum* interleaves the x- and y-contributions per particle instead of
//! summing all x-terms first, so that one diagnostic may differ from the
//! unfused value by rounding (≪ 1e-15 relative); the per-component
//! momentum sums keep the unfused order exactly.

// analyze:hot — the fused per-particle loop is the 2-D stepping hot path;
// loop bodies here must stay allocation-free (PR 3's single-pass win).

use crate::grid2d::Grid2D;
use crate::particles2d::Particles2D;
use dlpic_pic::fused::{advance_position, wrap_cell};
use dlpic_pic::shape::Shape;

/// Diagnostics moments accumulated by the fused 2-D pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepMoments2D {
    /// Time-centred kinetic energy `½·m·Σ(vx⁻·vx⁺ + vy⁻·vy⁺)`.
    pub centred_kinetic: f64,
    /// Total `x` momentum `m·Σ vx⁺` right after the velocity push.
    pub momentum_x: f64,
    /// Total `y` momentum `m·Σ vy⁺` right after the velocity push.
    pub momentum_y: f64,
}

/// One fused step of the 2-D particle pipeline: gather `(ex, ey)` at
/// every particle, push both velocity components, push both position
/// components with periodic wrap — a single pass, no per-particle field
/// buffers.
///
/// # Panics
/// Panics if the field lengths differ from the grid node count.
pub fn fused_gather_push_move(
    particles: &mut Particles2D,
    grid: &Grid2D,
    shape: Shape,
    ex: &[f64],
    ey: &[f64],
    dt: f64,
) -> StepMoments2D {
    assert_eq!(ex.len(), grid.nodes(), "ex length mismatch");
    assert_eq!(ey.len(), grid.nodes(), "ey length mismatch");
    let inv_dx = 1.0 / grid.dx();
    let inv_dy = 1.0 / grid.dy();
    let nx = grid.nx();
    let nxi = nx as i64;
    let nyi = grid.ny() as i64;
    let (lx, ly) = (grid.lx(), grid.ly());
    let support = shape.support();
    let qm_dt = particles.charge_over_mass() * dt;
    let half_m = 0.5 * particles.mass();
    let mass = particles.mass();

    let mut ke = 0.0f64;
    let mut mom_x = 0.0f64;
    let mut mom_y = 0.0f64;
    let iter = particles
        .x
        .iter_mut()
        .zip(particles.y.iter_mut())
        .zip(particles.vx.iter_mut().zip(particles.vy.iter_mut()));
    for ((x, y), (vx, vy)) in iter {
        // Gather (same expressions as `gather_field`).
        let ax = shape.assign(*x * inv_dx);
        let ay = shape.assign(*y * inv_dy);
        let mut ex_acc = 0.0;
        let mut ey_acc = 0.0;
        for jy in 0..support {
            let wy = ay.w[jy];
            if wy == 0.0 {
                continue;
            }
            let row = wrap_cell(ay.leftmost + jy as i64, nyi) * nx;
            for jx in 0..support {
                let w = ax.w[jx] * wy;
                if w == 0.0 {
                    continue;
                }
                let node = row + wrap_cell(ax.leftmost + jx as i64, nxi);
                ex_acc += w * ex[node];
                ey_acc += w * ey[node];
            }
        }
        // Accelerate (same expressions as `push_velocities`).
        let vx_old = *vx;
        let vx_new = vx_old + qm_dt * ex_acc;
        *vx = vx_new;
        let vy_old = *vy;
        let vy_new = vy_old + qm_dt * ey_acc;
        *vy = vy_new;
        ke += vx_old * vx_new + vy_old * vy_new;
        mom_x += vx_new;
        mom_y += vy_new;
        // Move (same expressions as `push_positions`).
        *x = advance_position(*x, vx_new, dt, lx);
        *y = advance_position(*y, vy_new, dt, ly);
    }
    StepMoments2D {
        centred_kinetic: half_m * ke,
        momentum_x: mass * mom_x,
        momentum_y: mass * mom_y,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gather2d::gather_field;
    use crate::mover2d::{push_positions, push_velocities};

    fn particles(seed: u64, n: usize, lx: f64, ly: f64) -> Particles2D {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let xs: Vec<f64> = (0..n).map(|_| next() * lx).collect();
        let ys: Vec<f64> = (0..n).map(|_| next() * ly).collect();
        let vxs: Vec<f64> = (0..n).map(|_| next() * 0.8 - 0.4).collect();
        let vys: Vec<f64> = (0..n).map(|_| next() * 0.8 - 0.4).collect();
        Particles2D::new(xs, ys, vxs, vys, -1.0, 1.0)
    }

    #[test]
    fn fused_step_trajectories_bitwise_equal_to_three_passes() {
        let grid = Grid2D::new(16, 8, 2.0532, 1.3);
        let ex: Vec<f64> = (0..grid.nodes())
            .map(|i| 0.1 * (i as f64 * 0.37).sin())
            .collect();
        let ey: Vec<f64> = (0..grid.nodes())
            .map(|i| 0.07 * (i as f64 * 0.91).cos())
            .collect();
        let dt = 0.2;
        for shape in [Shape::Ngp, Shape::Cic, Shape::Tsc] {
            let mut pf = particles(5, 2_000, grid.lx(), grid.ly());
            let mut pu = pf.clone();
            let m = fused_gather_push_move(&mut pf, &grid, shape, &ex, &ey, dt);

            let mut gx = vec![0.0; pu.len()];
            let mut gy = vec![0.0; pu.len()];
            gather_field(&pu, &grid, shape, &ex, &ey, &mut gx, &mut gy);
            let ke = push_velocities(&mut pu, &gx, &gy, dt);
            let (px, py) = pu.total_momentum();
            push_positions(&mut pu, &grid, dt);

            assert_eq!(pf.x, pu.x, "{shape:?} x");
            assert_eq!(pf.y, pu.y, "{shape:?} y");
            assert_eq!(pf.vx, pu.vx, "{shape:?} vx");
            assert_eq!(pf.vy, pu.vy, "{shape:?} vy");
            assert_eq!(m.momentum_x, px, "{shape:?} px");
            assert_eq!(m.momentum_y, py, "{shape:?} py");
            // The KE sum interleaves x/y contributions per particle, so it
            // may differ from the unfused order by rounding only.
            let tol = 1e-14 * (1.0 + ke.abs());
            assert!(
                (m.centred_kinetic - ke).abs() <= tol,
                "{shape:?} ke: {} vs {ke}",
                m.centred_kinetic
            );
        }
    }
}

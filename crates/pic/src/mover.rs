//! The leap-frog particle mover (paper Eqs. 1–2):
//!
//! ```text
//! v_p^{n+1/2} = v_p^{n-1/2} + (q/m)·E^n(x_p)·Δt
//! x_p^{n+1}   = x_p^n + v_p^{n+1/2}·Δt
//! ```
//!
//! Velocities live at half-integer time levels; [`half_step_back`]
//! initializes the stagger from the `t = 0` state. The velocity push
//! returns the time-centred kinetic energy `½·m·Σ v⁻·v⁺`, the standard
//! leap-frog energy estimate whose sum with the field energy is the
//! conserved "Total Energy" of the paper's Figs. 5–6.

use crate::grid::Grid1D;
use crate::particles::Particles;
use rayon::prelude::*;

/// Minimum particle count before the parallel path is worth spawning.
const PAR_THRESHOLD: usize = 1 << 15;

/// Advances velocities by one step: `v += (q/m)·E_p·Δt`.
///
/// Returns the time-centred kinetic energy `½·m·Σ v_old·v_new`.
///
/// # Panics
/// Panics if `e_part` length differs from the particle count.
pub fn push_velocities(particles: &mut Particles, e_part: &[f64], dt: f64) -> f64 {
    assert_eq!(e_part.len(), particles.len(), "per-particle field mismatch");
    let qm_dt = particles.charge_over_mass() * dt;
    let half_m = 0.5 * particles.mass();
    let ke_sum: f64 = if particles.len() >= PAR_THRESHOLD && rayon::current_num_threads() > 1 {
        particles
            .v
            .par_iter_mut()
            .zip(e_part.par_iter())
            .map(|(v, &ep)| {
                let v_old = *v;
                let v_new = v_old + qm_dt * ep;
                *v = v_new;
                v_old * v_new
            })
            .sum()
    } else {
        let mut acc = 0.0;
        for (v, &ep) in particles.v.iter_mut().zip(e_part) {
            let v_old = *v;
            let v_new = v_old + qm_dt * ep;
            *v = v_new;
            acc += v_old * v_new;
        }
        acc
    };
    half_m * ke_sum
}

/// Advances positions by one step with periodic wrap: `x += v·Δt`.
pub fn push_positions(particles: &mut Particles, grid: &Grid1D, dt: f64) {
    let length = grid.length();
    let advance = |x: &mut f64, v: f64| {
        let mut nx = *x + v * dt;
        if nx < 0.0 || nx >= length {
            nx = nx.rem_euclid(length);
            if nx >= length {
                nx = 0.0;
            }
        }
        *x = nx;
    };
    if particles.len() >= PAR_THRESHOLD && rayon::current_num_threads() > 1 {
        particles
            .x
            .par_iter_mut()
            .zip(particles.v.par_iter())
            .for_each(|(x, &v)| advance(x, v));
    } else {
        for (x, &v) in particles.x.iter_mut().zip(particles.v.iter()) {
            advance(x, v);
        }
    }
}

/// Rewinds velocities by half a step to set up the leap-frog stagger:
/// `v^{-1/2} = v^0 − (q/m)·E^0(x_p)·Δt/2`.
pub fn half_step_back(particles: &mut Particles, e_part: &[f64], dt: f64) {
    assert_eq!(e_part.len(), particles.len(), "per-particle field mismatch");
    let qm_half_dt = particles.charge_over_mass() * 0.5 * dt;
    for (v, &ep) in particles.v.iter_mut().zip(e_part) {
        *v -= qm_half_dt * ep;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn free_particles(x: Vec<f64>, v: Vec<f64>) -> Particles {
        Particles::new(x, v, -1.0, 1.0)
    }

    #[test]
    fn free_streaming_advances_linearly() {
        let grid = Grid1D::new(8, 8.0);
        let mut p = free_particles(vec![1.0, 2.0], vec![0.5, -0.25]);
        push_positions(&mut p, &grid, 2.0);
        assert!((p.x[0] - 2.0).abs() < 1e-15);
        assert!((p.x[1] - 1.5).abs() < 1e-15);
    }

    #[test]
    fn positions_wrap_periodically() {
        let grid = Grid1D::new(8, 8.0);
        let mut p = free_particles(vec![7.5, 0.5], vec![1.0, -1.0]);
        push_positions(&mut p, &grid, 1.0);
        assert!((p.x[0] - 0.5).abs() < 1e-12);
        assert!((p.x[1] - 7.5).abs() < 1e-12);
    }

    #[test]
    fn velocity_push_applies_lorentz_force() {
        // q/m = -1: E > 0 decelerates a positive-moving electron.
        let mut p = free_particles(vec![0.0], vec![0.2]);
        let ke = push_velocities(&mut p, &[0.1], 0.2);
        assert!((p.v[0] - (0.2 - 0.1 * 0.2)).abs() < 1e-15);
        // Time-centred KE: ½·m·v_old·v_new.
        assert!((ke - 0.5 * 0.2 * 0.18).abs() < 1e-15);
    }

    #[test]
    fn half_step_back_then_forward_is_identity() {
        let mut p = free_particles(vec![0.0, 1.0], vec![0.3, -0.3]);
        let e = [0.05, -0.02];
        let orig = p.v.clone();
        half_step_back(&mut p, &e, 0.2);
        // A forward half-step with the same field must restore v.
        let qm_half_dt = p.charge_over_mass() * 0.1;
        for (v, &ep) in p.v.iter_mut().zip(&e) {
            *v += qm_half_dt * ep;
        }
        for (a, b) in p.v.iter().zip(&orig) {
            assert!((a - b).abs() < 1e-15);
        }
    }

    #[test]
    fn zero_field_preserves_velocity_and_energy() {
        let mut p = free_particles(vec![0.0; 3], vec![0.1, -0.2, 0.3]);
        let ke0 = p.kinetic_energy();
        let ke = push_velocities(&mut p, &[0.0; 3], 0.2);
        assert!((ke - ke0).abs() < 1e-15);
        assert_eq!(p.v, vec![0.1, -0.2, 0.3]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Leap-frog is time-reversible: push with +dt then flip the sign of
        /// dt and push again — positions return exactly (the velocity push
        /// reverses trivially since E is held fixed here).
        #[test]
        fn leapfrog_time_reversibility(
            xs in proptest::collection::vec(0.0f64..7.9, 1..32),
            vs in proptest::collection::vec(-1.0f64..1.0, 32),
            e in proptest::collection::vec(-0.5f64..0.5, 32),
        ) {
            let grid = Grid1D::new(8, 8.0);
            let n = xs.len();
            let vs = vs[..n].to_vec();
            let e = e[..n].to_vec();
            let mut p = free_particles(xs.clone(), vs.clone());
            let dt = 0.2;
            push_velocities(&mut p, &e, dt);
            push_positions(&mut p, &grid, dt);
            // Reverse.
            push_positions(&mut p, &grid, -dt);
            push_velocities(&mut p, &e, -dt);
            for (a, b) in p.x.iter().zip(&xs) {
                let d = (a - b).abs();
                prop_assert!(d < 1e-10 || (grid.length() - d) < 1e-10, "{a} vs {b}");
            }
            for (a, b) in p.v.iter().zip(&vs) {
                prop_assert!((a - b).abs() < 1e-12);
            }
        }

        /// Momentum change equals total impulse q·ΣE·dt.
        #[test]
        fn momentum_change_matches_impulse(
            vs in proptest::collection::vec(-1.0f64..1.0, 1..64),
            e_val in -1.0f64..1.0,
        ) {
            let n = vs.len();
            let mut p = free_particles(vec![0.0; n], vs);
            let p0 = p.total_momentum();
            let e = vec![e_val; n];
            push_velocities(&mut p, &e, 0.2);
            let impulse = p.charge() * e_val * n as f64 * 0.2;
            prop_assert!((p.total_momentum() - p0 - impulse).abs() < 1e-9);
        }

        /// The time-centred KE lies between the old and new instantaneous
        /// KE for a uniform field (Cauchy-Schwarz-ish sanity bound).
        #[test]
        fn centred_ke_is_finite_and_sane(
            vs in proptest::collection::vec(-1.0f64..1.0, 1..32),
            e_val in -0.2f64..0.2,
        ) {
            let n = vs.len();
            let mut p = free_particles(vec![0.0; n], vs);
            let ke_old = p.kinetic_energy();
            let e = vec![e_val; n];
            let ke_mid = push_velocities(&mut p, &e, 0.1);
            let ke_new = p.kinetic_energy();
            let lo = ke_old.min(ke_new) - 1e-9;
            let hi = ke_old.max(ke_new) + 1e-9;
            prop_assert!(ke_mid >= lo - 0.05 * hi && ke_mid <= hi + 0.05 * hi,
                "centred {ke_mid} outside [{lo}, {hi}]");
        }
    }
}

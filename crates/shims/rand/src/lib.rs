//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the *small* subset of the `rand` 0.8 API it actually uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], [`Rng::gen`] and
//! [`Rng::gen_range`]. The generator is xoshiro256** seeded through
//! SplitMix64 — a different stream than upstream `StdRng` (ChaCha12), but
//! every consumer in this workspace only relies on determinism-under-seed
//! and on the usual statistical quality, both of which hold.

/// Types that can be sampled uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from the generator.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 random mantissa bits.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 random mantissa bits.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

/// Ranges [`Rng::gen_range`] accepts.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one value uniformly from the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange for std::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}
int_range!(usize, u64, u32, i64, i32);

impl SampleRange for std::ops::Range<f64> {
    type Output = f64;
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        self.start + (self.end - self.start) * f64::sample(rng)
    }
}

/// The subset of `rand::Rng` this workspace calls.
pub trait Rng {
    /// The raw 64-bit output of the generator.
    fn next_u64(&mut self) -> u64;

    /// Uniform sample of `T` (`f64`/`f32` in `[0, 1)`, integers full-range).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Uniform sample from an integer or float range.
    fn gen_range<Rg: SampleRange>(&mut self, range: Rg) -> Rg::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable construction (`rand::SeedableRng` subset).
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a deterministic function of
    /// `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard generator: xoshiro256** with SplitMix64
    /// seeding. Deterministic under seed, passes the statistical checks the
    /// test-suite performs (moment tests on ~10⁵ samples).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            Self { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_under_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn unit_interval_and_moments() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for i in 1..200usize {
            let v = rng.gen_range(0..=i);
            assert!(v <= i);
            let w = rng.gen_range(0..i);
            assert!(w < i);
        }
    }
}

//! The split-step semi-Lagrangian Vlasov–Poisson integrator.

use dlpic_analytics::dft;
use dlpic_pic::efield::efield_from_phi;
use dlpic_pic::grid::Grid1D;
use dlpic_pic::poisson::{FdPoisson, PoissonSolver};

/// Configuration of a Vlasov run.
#[derive(Debug, Clone)]
pub struct VlasovConfig {
    /// Spatial grid (shared with the PIC convention: nodes at `j·dx`).
    pub grid: Grid1D,
    /// Velocity-space points.
    pub nv: usize,
    /// Velocity window `[-vmax, vmax]`; `f` is assumed 0 outside.
    pub vmax: f64,
    /// Time step.
    pub dt: f64,
    /// Beam speed of the two-stream initial condition.
    pub v0: f64,
    /// Thermal spread of each beam (must be > 0 for a smooth `f`; a few
    /// velocity cells wide to be resolved).
    pub vth: f64,
    /// Seed perturbation amplitude on grid mode 1 (relative density).
    pub perturbation: f64,
}

impl VlasovConfig {
    /// A well-resolved default for the paper's box: 64×256 phase-space
    /// grid, `Δt = 0.05`.
    pub fn two_stream(v0: f64, vth: f64) -> Self {
        Self {
            grid: Grid1D::paper(),
            nv: 256,
            vmax: 0.8,
            dt: 0.05,
            v0,
            vth: vth.max(0.01),
            perturbation: 1e-3,
        }
    }
}

/// The running solver: owns `f(x, v)` (row-major `[nv][nx]`) and the
/// self-consistent field.
pub struct VlasovSolver {
    cfg: VlasovConfig,
    f: Vec<f64>,
    scratch: Vec<f64>,
    rho: Vec<f64>,
    phi: Vec<f64>,
    e: Vec<f64>,
    poisson: FdPoisson,
    time: f64,
    /// `advect_x` scratch: one velocity row rotated by the whole-cell
    /// shift, extended by 3 wrapped cells (`nx + 3`).
    row_ext: Vec<f64>,
    /// `advect_v` scratch: per-column Lagrange weights, layout `[4][nx]`.
    wcol: Vec<f64>,
    /// `advect_v` scratch: per-column whole-cell source offset.
    vbase: Vec<i64>,
}

impl VlasovSolver {
    /// Initializes the two-stream distribution
    /// `f = n/2·[G(v−v0) + G(v+v0)]·(1 + ε·cos(k₁x))` with Gaussians of
    /// width `vth`, normalized so `∫f dv = 1` (matching the unit ion
    /// background).
    pub fn new(cfg: VlasovConfig) -> Self {
        assert!(cfg.nv >= 8, "need a resolved velocity grid");
        assert!(
            cfg.vmax > cfg.v0 + 4.0 * cfg.vth,
            "velocity window clips the beams"
        );
        let nx = cfg.grid.ncells();
        let nv = cfg.nv;
        let dv = 2.0 * cfg.vmax / nv as f64;
        let k1 = cfg.grid.mode_wavenumber(1);
        let mut f = vec![0.0; nx * nv];
        let norm = 1.0 / (2.0 * (2.0 * std::f64::consts::PI).sqrt() * cfg.vth);
        for iv in 0..nv {
            let v = -cfg.vmax + (iv as f64 + 0.5) * dv;
            let gauss = |mu: f64| (-((v - mu) * (v - mu)) / (2.0 * cfg.vth * cfg.vth)).exp();
            let fv = norm * (gauss(cfg.v0) + gauss(-cfg.v0));
            for ix in 0..nx {
                let x = cfg.grid.node_position(ix);
                f[iv * nx + ix] = fv * (1.0 + cfg.perturbation * (k1 * x).cos());
            }
        }
        let mut solver = Self {
            scratch: vec![0.0; nx * nv],
            rho: vec![0.0; nx],
            phi: vec![0.0; nx],
            e: vec![0.0; nx],
            poisson: FdPoisson::new(),
            f,
            cfg,
            time: 0.0,
            row_ext: vec![0.0; nx + 3],
            wcol: vec![0.0; 4 * nx],
            vbase: vec![0; nx],
        };
        solver.field_solve();
        solver
    }

    /// Velocity-cell width.
    pub fn dv(&self) -> f64 {
        2.0 * self.cfg.vmax / self.cfg.nv as f64
    }

    /// Velocity of cell-centre `iv`.
    pub fn velocity(&self, iv: usize) -> f64 {
        -self.cfg.vmax + (iv as f64 + 0.5) * self.dv()
    }

    /// Current simulation time.
    pub fn time(&self) -> f64 {
        self.time
    }

    /// The distribution function, row-major `[nv][nx]`.
    pub fn distribution(&self) -> &[f64] {
        &self.f
    }

    /// The configuration.
    pub fn config(&self) -> &VlasovConfig {
        &self.cfg
    }

    /// The current electric field on the spatial nodes.
    pub fn efield(&self) -> &[f64] {
        &self.e
    }

    /// Total particle "mass" `∫∫ f dv dx` (conserved exactly up to the
    /// open v-boundary).
    pub fn mass(&self) -> f64 {
        self.f.iter().sum::<f64>() * self.dv() * self.cfg.grid.dx()
    }

    /// Total momentum `∫∫ v·f dv dx` (electron mass 1 per unit density).
    pub fn momentum(&self) -> f64 {
        let nx = self.cfg.grid.ncells();
        let mut acc = 0.0;
        for iv in 0..self.cfg.nv {
            let v = self.velocity(iv);
            let row_sum: f64 = self.f[iv * nx..(iv + 1) * nx].iter().sum();
            acc += v * row_sum;
        }
        acc * self.dv() * self.cfg.grid.dx()
    }

    /// Kinetic energy `½ ∫∫ v²·f dv dx`.
    pub fn kinetic_energy(&self) -> f64 {
        let nx = self.cfg.grid.ncells();
        let mut kinetic = 0.0;
        for iv in 0..self.cfg.nv {
            let v = self.velocity(iv);
            let row_sum: f64 = self.f[iv * nx..(iv + 1) * nx].iter().sum();
            kinetic += 0.5 * v * v * row_sum;
        }
        kinetic * self.dv() * self.cfg.grid.dx()
    }

    /// Electrostatic field energy `½ ∫ E² dx`.
    pub fn field_energy(&self) -> f64 {
        0.5 * self.cfg.grid.dx() * self.e.iter().map(|e| e * e).sum::<f64>()
    }

    /// Kinetic + field energy.
    pub fn total_energy(&self) -> f64 {
        self.kinetic_energy() + self.field_energy()
    }

    /// Amplitude of field mode `m` (the `E1` diagnostic).
    pub fn field_mode(&self, m: usize) -> f64 {
        dft::mode_amplitude(&self.e, m)
    }

    /// Overwrites the mutable state with a checkpointed snapshot of the
    /// distribution function and clock, then re-solves the field (the
    /// field is a pure function of `f`, so restoring `f` restores `E`
    /// deterministically).
    ///
    /// # Panics
    /// Panics if `f` does not match the solver's `nx·nv` phase grid.
    pub fn restore_state(&mut self, f: &[f64], time: f64) {
        assert_eq!(f.len(), self.f.len(), "phase-space grid mismatch");
        self.f.copy_from_slice(f);
        self.time = time;
        self.field_solve();
    }

    /// Charge density `ρ = 1 − ∫f dv` and the resulting field.
    fn field_solve(&mut self) {
        let nx = self.cfg.grid.ncells();
        let dv = self.dv();
        self.rho.iter_mut().for_each(|r| *r = 1.0);
        for iv in 0..self.cfg.nv {
            for (r, &fv) in self.rho.iter_mut().zip(&self.f[iv * nx..(iv + 1) * nx]) {
                *r -= fv * dv;
            }
        }
        self.poisson.solve(&self.cfg.grid, &self.rho, &mut self.phi);
        efield_from_phi(&self.cfg.grid, &self.phi, &mut self.e);
    }

    /// x-advection by `dt`: `f(x, v) ← f(x − v·dt, v)`, periodic cubic
    /// (4-point Lagrange) interpolation per velocity row — the classic
    /// Cheng–Knorr choice. Linear interpolation is measurably too
    /// diffusive here: its numerical damping of mode 1 is of the same
    /// order as the physical Landau rate at `k·λ_D = 0.5`.
    ///
    /// The shift is constant along a velocity row, so the interpolation
    /// fraction and its four Lagrange weights are hoisted out of the
    /// inner loop (the reference implementation recomputed them — and
    /// four `rem_euclid` index wraps — per cell), and the periodic wrap
    /// is handled by copying the row once into a rotated buffer extended
    /// by 3 cells: the inner loop is then a branch-free 4-tap stencil
    /// over contiguous memory. Per-element arithmetic order is unchanged;
    /// results differ from the reference only because the fraction is
    /// now computed once from `frac(−shift)` instead of per-cell as
    /// `(j − shift) − floor(j − shift)`, whose last-ulp rounding depends
    /// on `j` (see `advect_x_matches_reference_kernel`).
    fn advect_x(&mut self, dt: f64) {
        let nx = self.cfg.grid.ncells();
        let dx = self.cfg.grid.dx();
        for iv in 0..self.cfg.nv {
            let v = self.velocity(iv);
            let shift = v * dt / dx; // in cells
                                     // src = j − shift = j + nshift: whole-cell part D plus a
                                     // row-constant fraction s ∈ [0, 1).
            let nshift = -shift;
            let d = nshift.floor();
            let w = lagrange4(nshift - d);
            // Stencil cells for output j: (j + D − 1 .. j + D + 2) mod nx.
            let start = (d as i64 - 1).rem_euclid(nx as i64) as usize;
            let row = &self.f[iv * nx..(iv + 1) * nx];
            let ext = &mut self.row_ext;
            ext[..nx - start].copy_from_slice(&row[start..]);
            ext[nx - start..nx].copy_from_slice(&row[..start]);
            let (head, tail) = ext.split_at_mut(nx);
            tail.copy_from_slice(&head[..3]);
            let out = &mut self.scratch[iv * nx..(iv + 1) * nx];
            for (j, o) in out.iter_mut().enumerate() {
                *o = w[0] * ext[j] + w[1] * ext[j + 1] + w[2] * ext[j + 2] + w[3] * ext[j + 3];
            }
        }
        std::mem::swap(&mut self.f, &mut self.scratch);
    }

    /// v-advection by `dt`: `f(x, v) ← f(x, v − a·dt)` with `a = (q/m)·E =
    /// −E`, cubic (4-point Lagrange) interpolation per spatial column;
    /// inflow from outside the window is zero.
    ///
    /// The shift is constant along a spatial column, so `(j0, w)` are
    /// precomputed once per column, and the column-strided
    /// `f[j·nx + ix]` walk of the reference implementation is
    /// restructured into row-contiguous passes: columns are grouped into
    /// runs of equal whole-cell shift (the field is smooth, so runs are
    /// long), and each output row of a run reads four contiguous source
    /// row segments. Arithmetic order per element is preserved up to the
    /// same row-constant-fraction rounding as `advect_x`.
    fn advect_v(&mut self, dt: f64) {
        let nx = self.cfg.grid.ncells();
        let nv = self.cfg.nv as i64;
        let dv = self.dv();
        // Per-column whole-cell offset and interpolation weights
        // (weights stored per tap for contiguous access in the row pass).
        for ix in 0..nx {
            let accel = -self.e[ix]; // q/m = -1
            let shift = accel * dt / dv; // in cells
            let nshift = -shift;
            let d = nshift.floor();
            let w = lagrange4(nshift - d);
            self.vbase[ix] = d as i64 - 1;
            for (t, &wt) in w.iter().enumerate() {
                self.wcol[t * nx + ix] = wt;
            }
        }
        // Row-contiguous sweep over runs of equal whole-cell offset.
        let mut lo = 0;
        while lo < nx {
            let base = self.vbase[lo];
            let mut hi = lo + 1;
            while hi < nx && self.vbase[hi] == base {
                hi += 1;
            }
            for iv in 0..nv {
                let out = &mut self.scratch[iv as usize * nx + lo..iv as usize * nx + hi];
                out.fill(0.0);
                for t in 0..4i64 {
                    let src = iv + base + t;
                    if src < 0 || src >= nv {
                        continue; // zero inflow from outside the window
                    }
                    let frow = &self.f[src as usize * nx + lo..src as usize * nx + hi];
                    let wrow = &self.wcol[t as usize * nx + lo..t as usize * nx + hi];
                    for ((o, &fv), &wv) in out.iter_mut().zip(frow).zip(wrow) {
                        *o += wv * fv;
                    }
                }
            }
            lo = hi;
        }
        std::mem::swap(&mut self.f, &mut self.scratch);
    }

    /// The pre-restructuring `advect_x` (per-cell weights and
    /// `rem_euclid` wraps) — kept as the equivalence oracle.
    #[cfg(test)]
    fn advect_x_reference(&mut self, dt: f64) {
        let nx = self.cfg.grid.ncells();
        let dx = self.cfg.grid.dx();
        for iv in 0..self.cfg.nv {
            let v = self.velocity(iv);
            let shift = v * dt / dx; // in cells
            let row = &self.f[iv * nx..(iv + 1) * nx];
            let out = &mut self.scratch[iv * nx..(iv + 1) * nx];
            for (j, o) in out.iter_mut().enumerate() {
                let src = j as f64 - shift;
                let j0 = src.floor();
                let s = src - j0;
                let w = lagrange4(s);
                let base = j0 as i64 - 1;
                let mut acc = 0.0;
                for (k, &wk) in w.iter().enumerate() {
                    let idx = (base + k as i64).rem_euclid(nx as i64) as usize;
                    acc += wk * row[idx];
                }
                *o = acc;
            }
        }
        std::mem::swap(&mut self.f, &mut self.scratch);
    }

    /// The pre-restructuring `advect_v` (column-strided walk) — kept as
    /// the equivalence oracle.
    #[cfg(test)]
    fn advect_v_reference(&mut self, dt: f64) {
        let nx = self.cfg.grid.ncells();
        let nv = self.cfg.nv;
        let dv = self.dv();
        for ix in 0..nx {
            let accel = -self.e[ix]; // q/m = -1
            let shift = accel * dt / dv; // in cells
            for iv in 0..nv {
                let src = iv as f64 - shift;
                let j0 = src.floor();
                let s = src - j0;
                let w = lagrange4(s);
                let base = j0 as i64 - 1;
                let sample = |j: i64| -> f64 {
                    if j < 0 || j >= nv as i64 {
                        0.0
                    } else {
                        self.f[j as usize * nx + ix]
                    }
                };
                let mut acc = 0.0;
                for (k, &wk) in w.iter().enumerate() {
                    acc += wk * sample(base + k as i64);
                }
                self.scratch[iv * nx + ix] = acc;
            }
        }
        std::mem::swap(&mut self.f, &mut self.scratch);
    }

    /// One Strang-split step: x(dt/2) → field solve → v(dt) → x(dt/2).
    pub fn step(&mut self) {
        let dt = self.cfg.dt;
        self.advect_x(dt / 2.0);
        self.field_solve();
        self.advect_v(dt);
        self.advect_x(dt / 2.0);
        self.field_solve();
        self.time += dt;
    }

    /// Runs `n` steps.
    pub fn run(&mut self, n: usize) {
        for _ in 0..n {
            self.step();
        }
    }
}

/// Weights of 4-point (cubic) Lagrange interpolation at fraction
/// `s ∈ [0, 1)` between the middle two of four equispaced nodes
/// `{-1, 0, 1, 2}`. Exact for cubics; far less diffusive than linear —
/// the difference is visible directly in the measured Landau damping
/// rate (see `examples/landau_damping.rs`).
#[inline]
fn lagrange4(s: f64) -> [f64; 4] {
    [
        -s * (s - 1.0) * (s - 2.0) / 6.0,
        (s * s - 1.0) * (s - 2.0) / 2.0,
        -s * (s + 1.0) * (s - 2.0) / 2.0,
        s * (s * s - 1.0) / 6.0,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlpic_analytics::dispersion::TwoStreamDispersion;
    use dlpic_analytics::fit::{fit_growth_rate, GrowthFitOptions};

    fn small_cfg(v0: f64, vth: f64) -> VlasovConfig {
        VlasovConfig {
            grid: Grid1D::paper(),
            nv: 128,
            vmax: 0.8,
            dt: 0.1,
            v0,
            vth,
            perturbation: 1e-3,
        }
    }

    #[test]
    fn initial_state_is_neutral_and_normalized() {
        let s = VlasovSolver::new(small_cfg(0.2, 0.02));
        // ∫∫ f = L (density 1 over the box).
        let l = s.cfg.grid.length();
        assert!((s.mass() - l).abs() / l < 1e-3, "mass {} vs {l}", s.mass());
        // Symmetric beams: zero momentum.
        assert!(s.momentum().abs() < 1e-10, "momentum {}", s.momentum());
        // Seeded perturbation produces a small mode-1 field.
        assert!(s.field_mode(1) > 1e-5);
        assert!(s.field_mode(1) < 1e-2);
    }

    #[test]
    fn mass_is_conserved_through_evolution() {
        let mut s = VlasovSolver::new(small_cfg(0.2, 0.02));
        let m0 = s.mass();
        s.run(100);
        // Linear-interp advection conserves mass up to v-window leakage,
        // which is negligible while f is far from the boundary.
        assert!(
            (s.mass() - m0).abs() / m0 < 1e-6,
            "mass drift {} -> {}",
            m0,
            s.mass()
        );
    }

    #[test]
    fn distribution_undershoot_stays_small() {
        let mut s = VlasovSolver::new(small_cfg(0.2, 0.02));
        s.run(50);
        // Cubic (4-point Lagrange) interpolation is not monotone, so tiny
        // negative excursions are expected near steep gradients — the
        // standard behaviour of Cheng–Knorr solvers. They must stay a
        // small fraction of the peak, not grow into an instability.
        let peak = s.distribution().iter().cloned().fold(0.0f64, f64::max);
        let undershoot = s
            .distribution()
            .iter()
            .cloned()
            .fold(0.0f64, |m, f| m.max(-f));
        assert!(peak > 0.0);
        assert!(
            undershoot < 0.01 * peak,
            "undershoot {undershoot} vs peak {peak}"
        );
    }

    #[test]
    fn two_stream_growth_rate_matches_theory_closely() {
        // The headline: a Vlasov run is noise-free, so the measured growth
        // rate should be tighter to linear theory than PIC manages.
        let mut s = VlasovSolver::new(VlasovConfig {
            dt: 0.05,
            ..small_cfg(0.2, 0.02)
        });
        let theory = TwoStreamDispersion::new(0.2).mode_growth_rate(1, s.cfg.grid.length());
        let mut times = Vec::new();
        let mut amps = Vec::new();
        for _ in 0..500 {
            times.push(s.time());
            amps.push(s.field_mode(1));
            s.step();
        }
        let fit =
            fit_growth_rate(&times, &amps, GrowthFitOptions::default()).expect("growth detected");
        let rel = (fit.gamma - theory).abs() / theory;
        assert!(
            rel < 0.1,
            "Vlasov γ = {} vs theory {theory} ({:.1}% off)",
            fit.gamma,
            rel * 100.0
        );
        assert!(
            fit.r2 > 0.99,
            "noise-free run should fit cleanly: r² = {}",
            fit.r2
        );
    }

    #[test]
    fn stable_configuration_stays_quiet() {
        // v0 = 0.4: k·v0 > 1 for every mode; the seeded perturbation must
        // oscillate, not grow.
        let mut s = VlasovSolver::new(small_cfg(0.4, 0.02));
        let e0 = s.field_mode(1);
        s.run(200);
        assert!(
            s.field_mode(1) < 5.0 * e0,
            "stable case grew: {} -> {}",
            e0,
            s.field_mode(1)
        );
    }

    #[test]
    fn free_streaming_without_field_is_exact_for_cell_aligned_shifts() {
        // With E = 0 (suppressed by a huge neutralizing... simplest: set
        // perturbation 0 so E stays ~0) a velocity row shifts rigidly; a
        // whole-cell shift must be exact for linear interpolation.
        let mut cfg = small_cfg(0.2, 0.02);
        cfg.perturbation = 0.0;
        let mut s = VlasovSolver::new(cfg);
        let before = s.f.clone();
        // One x-advection of exactly one cell for the row with v·dt = dx:
        // pick dt accordingly for a synthetic check of the kernel.
        let dx = s.cfg.grid.dx();
        let iv = s.cfg.nv / 2 + 10; // some positive velocity
        let v = s.velocity(iv);
        let dt = dx / v;
        s.advect_x(dt);
        let nx = s.cfg.grid.ncells();
        for j in 0..nx {
            let shifted = before[iv * nx + (j + nx - 1) % nx];
            let now = s.f[iv * nx + j];
            assert!((now - shifted).abs() < 1e-12, "row not rigidly shifted");
        }
    }

    #[test]
    fn restore_state_resumes_bit_identically() {
        let mut straight = VlasovSolver::new(small_cfg(0.2, 0.02));
        straight.run(10);
        let f = straight.distribution().to_vec();
        let t = straight.time();
        let mut resumed = VlasovSolver::new(small_cfg(0.2, 0.02));
        resumed.run(3); // deliberately desynchronized before the restore
        resumed.restore_state(&f, t);
        assert_eq!(straight.efield(), resumed.efield());
        straight.run(10);
        resumed.run(10);
        assert_eq!(straight.distribution(), resumed.distribution());
        assert_eq!(straight.efield(), resumed.efield());
        assert_eq!(straight.time(), resumed.time());
    }

    #[test]
    #[should_panic(expected = "clips the beams")]
    fn unresolvable_window_rejected() {
        let mut cfg = small_cfg(0.75, 0.05);
        cfg.vmax = 0.8; // 0.75 + 4·0.05 = 0.95 > 0.8
        let _ = VlasovSolver::new(cfg);
    }

    /// Largest |a − b| relative to the distribution peak.
    fn max_rel_diff(a: &[f64], b: &[f64]) -> f64 {
        let peak = a.iter().fold(0.0f64, |m, v| m.max(v.abs())).max(1e-300);
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0f64, f64::max)
            / peak
    }

    #[test]
    fn advect_x_matches_reference_kernel() {
        // Evolve a little first so f is structured, then compare one
        // restructured x-advection against the reference kernel. The
        // interpolation fraction is mathematically row-constant; the
        // reference recomputed it per cell as (j−shift)−floor(j−shift),
        // whose last ulp depends on j, so agreement is to rounding noise
        // (≈1e-15 of the peak), not bitwise.
        let mut a = VlasovSolver::new(small_cfg(0.2, 0.02));
        a.run(20);
        let mut b = VlasovSolver::new(small_cfg(0.2, 0.02));
        b.run(20);
        assert_eq!(a.f, b.f, "identical evolutions must agree bitwise");
        for &dt in &[0.05, 0.1, -0.07, 1.3] {
            a.advect_x(dt);
            b.advect_x_reference(dt);
            let diff = max_rel_diff(&a.f, &b.f);
            assert!(diff < 1e-12, "dt {dt}: relative diff {diff}");
            // Keep the two solvers in lockstep on the same state.
            b.f.copy_from_slice(&a.f);
        }
    }

    #[test]
    fn advect_v_matches_reference_kernel() {
        let mut a = VlasovSolver::new(small_cfg(0.2, 0.02));
        a.run(20); // develop a structured field so shifts vary per column
        let mut b = VlasovSolver::new(small_cfg(0.2, 0.02));
        b.run(20);
        for &dt in &[0.05, 0.1, -0.07, 2.5] {
            a.advect_v(dt);
            b.advect_v_reference(dt);
            let diff = max_rel_diff(&a.f, &b.f);
            assert!(diff < 1e-12, "dt {dt}: relative diff {diff}");
            b.f.copy_from_slice(&a.f);
        }
    }

    #[test]
    fn advect_x_whole_cell_shift_is_exact_rotation() {
        // A shift of exactly one cell must reproduce the rotated row to
        // the last bit (weights degenerate to [0, 1, 0, 0] or
        // [0, 0, 1, 0] exactly).
        let mut s = VlasovSolver::new(small_cfg(0.2, 0.02));
        s.run(5);
        let before = s.f.clone();
        let nx = s.cfg.grid.ncells();
        let dx = s.cfg.grid.dx();
        let iv = s.cfg.nv / 2 + 10;
        let v = s.velocity(iv);
        let dt = dx / v;
        s.advect_x(dt);
        // Only rows whose shift v'·dt/dx lands exactly on an integer are
        // exactly rotated; row `iv` is by construction (shift = 1 up to
        // one rounding in v·dt/dx, which floor handles either way).
        let shift = v * dt / dx;
        if shift == 1.0 {
            for j in 0..nx {
                assert_eq!(
                    s.f[iv * nx + j],
                    before[iv * nx + (j + nx - 1) % nx],
                    "cell {j}"
                );
            }
        }
    }
}

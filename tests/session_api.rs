//! Session-API integration tests: step-wise runs reproduce `Engine::run`
//! exactly, checkpoint/resume round-trips continue every backend's
//! trajectory, lockstep comparison preserves each backend's physics, and
//! the early-stop controller truncates consistently.

use dlpic_repro::core::Scale;
use dlpic_repro::engine::{
    self, compare, Backend, Checkpoint, EnergyHistory, Engine, EngineError, Observer, Sample,
    ScenarioSpec,
};

/// Largest |a − b| over paired series, normalized by the peak |a|.
fn max_rel_diff(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "series lengths differ");
    let peak = a.iter().fold(0.0f64, |m, v| m.max(v.abs())).max(1e-300);
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0f64, f64::max)
        / peak
}

/// Asserts two histories describe the same physics. `tol == 0.0` demands
/// f64 equality (the deterministic-solver case); otherwise residuals are
/// bounded by `tol` of each series' peak.
fn assert_histories_match(a: &EnergyHistory, b: &EnergyHistory, tol: f64, what: &str) {
    if tol == 0.0 {
        assert_eq!(a, b, "{what}: histories differ");
        return;
    }
    assert_eq!(a.times, b.times, "{what}: time grids differ");
    for (name, x, y) in [
        ("kinetic", &a.kinetic, &b.kinetic),
        ("field", &a.field, &b.field),
        ("total", &a.total, &b.total),
        ("momentum", &a.momentum, &b.momentum),
    ] {
        let diff = max_rel_diff(x, y);
        assert!(diff <= tol, "{what}: {name} residual {diff:.3e} > {tol:e}");
    }
    for (slot, (x, y)) in a.mode_amps.iter().zip(&b.mode_amps).enumerate() {
        let diff = max_rel_diff(x, y);
        assert!(
            diff <= tol,
            "{what}: mode slot {slot} residual {diff:.3e} > {tol:e}"
        );
    }
}

fn small_spec(name: &str, n_steps: usize) -> ScenarioSpec {
    let mut spec = engine::scenario(name, Scale::Smoke).unwrap();
    spec.n_steps = n_steps;
    spec
}

#[test]
fn stepwise_session_reproduces_engine_run_exactly() {
    let spec = small_spec("two_stream", 20);
    let via_run = engine::run(&spec, Backend::Traditional1D).unwrap();

    let mut session = engine::start(&spec, Backend::Traditional1D).unwrap();
    assert_eq!(session.steps_done(), 0);
    assert_eq!(session.remaining(), 20);
    let mut steps_seen = Vec::new();
    while !session.is_complete() {
        steps_seen.push(session.step().step);
    }
    assert_eq!(steps_seen, (0..20).collect::<Vec<_>>());
    let via_session = session.finish();

    assert_eq!(via_run.history, via_session.history);
    assert_eq!(via_run.steps, via_session.steps);
    assert_eq!(via_run.t_end, via_session.t_end);
    let (pa, pb) = (
        via_run.phase_space.as_ref().unwrap(),
        via_session.phase_space.as_ref().unwrap(),
    );
    assert_eq!(pa.x, pb.x);
    assert_eq!(pa.v, pb.v);
}

#[test]
fn session_sample_peeks_the_final_row() {
    let spec = small_spec("two_stream", 6);
    let mut session = engine::start(&spec, Backend::Traditional1D).unwrap();
    for _ in 0..6 {
        session.step();
    }
    let peek = session.sample();
    let summary = session.finish();
    let h = &summary.history;
    assert_eq!(peek.step, 6);
    assert_eq!(peek.time, *h.times.last().unwrap());
    assert_eq!(peek.kinetic, *h.kinetic.last().unwrap());
    assert_eq!(peek.field, *h.field.last().unwrap());
    assert_eq!(peek.momentum, *h.momentum.last().unwrap());
}

/// The checkpoint/resume contract, exercised for one backend: run
/// straight to `n`; run `k` steps, checkpoint through the JSON text form,
/// resume in a fresh engine, continue to `n`; the two histories (and
/// final phase spaces) must agree to `tol` (0 = identical f64s).
fn check_roundtrip(spec: &ScenarioSpec, backend: Backend, k: usize, tol: f64) {
    let engine = Engine::new();

    let mut straight = engine.start(spec, backend).unwrap();
    straight.run_to_end();
    let straight = straight.finish();

    let mut first_leg = engine.start(spec, backend).unwrap();
    for _ in 0..k {
        first_leg.step();
    }
    let text = first_leg.checkpoint().to_json();
    drop(first_leg); // the resumed leg must not depend on the original

    let checkpoint = Checkpoint::from_json(&text).unwrap();
    assert_eq!(checkpoint.steps_done, k);
    assert_eq!(checkpoint.backend, backend);
    assert_eq!(&checkpoint.spec, spec);
    let mut resumed = engine.resume(&checkpoint).unwrap();
    assert_eq!(resumed.steps_done(), k);
    assert_eq!(resumed.history().len(), k);
    resumed.run_to_end();
    let resumed = resumed.finish();

    let what = format!("{} on {backend} resumed at {k}", spec.name);
    assert_eq!(straight.history.len(), spec.n_steps + 1, "{what}");
    assert_histories_match(&straight.history, &resumed.history, tol, &what);
    match (&straight.phase_space, &resumed.phase_space) {
        (Some(a), Some(b)) if tol == 0.0 => {
            assert_eq!(a.x, b.x, "{what}: positions diverged");
            assert_eq!(a.v, b.v, "{what}: velocities diverged");
        }
        _ => {}
    }
    for (key, val) in &straight.extras {
        assert_eq!(
            Some(*val),
            resumed.extra(key),
            "{what}: extra `{key}` diverged"
        );
    }
}

// Every backend steps deterministically and the JSON layer round-trips
// finite f64 state bit-exactly, so resumed runs are *identical*, not just
// close — asserted with tol = 0.0 throughout.

#[test]
fn checkpoint_roundtrip_traditional_1d() {
    check_roundtrip(
        &small_spec("two_stream", 16),
        Backend::Traditional1D,
        7,
        0.0,
    );
}

#[test]
fn checkpoint_roundtrip_dl_1d() {
    check_roundtrip(&small_spec("two_stream", 12), Backend::Dl1D, 5, 0.0);
}

#[test]
fn checkpoint_roundtrip_bump_on_tail_needs_no_placeholder_init() {
    // The load `TwoStreamInit` cannot express: the multi-beam path.
    check_roundtrip(
        &small_spec("bump_on_tail", 12),
        Backend::Traditional1D,
        6,
        0.0,
    );
}

#[test]
fn checkpoint_roundtrip_traditional_2d() {
    let mut spec = small_spec("two_stream_2d", 8);
    spec.ppc = 4;
    check_roundtrip(&spec, Backend::Traditional2D, 3, 0.0);
}

#[test]
fn checkpoint_roundtrip_dl_2d() {
    let mut spec = small_spec("two_stream_2d", 6);
    spec.ppc = 4;
    check_roundtrip(&spec, Backend::Dl2D, 2, 0.0);
}

#[test]
fn checkpoint_roundtrip_vlasov() {
    check_roundtrip(&small_spec("two_stream", 14), Backend::Vlasov, 6, 0.0);
}

#[test]
fn checkpoint_roundtrip_ddecomp() {
    check_roundtrip(
        &small_spec("two_stream", 16),
        Backend::Ddecomp { n_ranks: 4 },
        9,
        0.0,
    );
}

#[test]
fn checkpoint_rejects_state_spec_mismatches() {
    let spec = small_spec("two_stream", 8);
    let mut session = engine::start(&spec, Backend::Traditional1D).unwrap();
    session.step();
    let mut checkpoint = session.checkpoint();

    // A different particle count than the state was taken from.
    checkpoint.spec.ppc += 2;
    match Engine::new().resume(&checkpoint) {
        Err(EngineError::Checkpoint { .. }) => {}
        Err(other) => panic!("expected a checkpoint error, got {other}"),
        Ok(_) => panic!("mismatched checkpoint was accepted"),
    }

    // A corrupted header clock that disagrees with the state is refused.
    let mut skewed = session.checkpoint();
    skewed.time += 0.5;
    assert!(matches!(
        Engine::new().resume(&skewed),
        Err(EngineError::Checkpoint { .. })
    ));

    // A checkpoint taken with a different field solver is refused — a DL
    // run resumed in an engine without its model would otherwise
    // silently continue on the untrained fallback.
    let text = session.checkpoint().to_json();
    let tampered = text.replace("\"solver\": \"traditional\"", "\"solver\": \"dl-mlp\"");
    assert_ne!(text, tampered, "solver fingerprint missing from the state");
    let foreign = Checkpoint::from_json(&tampered).unwrap();
    match Engine::new().resume(&foreign) {
        Err(EngineError::Checkpoint { what }) => {
            assert!(what.contains("dl-mlp"), "unhelpful message: {what}")
        }
        Err(other) => panic!("expected a checkpoint error, got {other}"),
        Ok(_) => panic!("foreign-solver checkpoint was accepted"),
    }

    // Garbage text and wrong formats are typed errors, not panics.
    assert!(Checkpoint::from_json("not json").is_err());
    assert!(Checkpoint::from_json("{\"format\": \"other\"}").is_err());
}

#[test]
fn lockstep_comparison_preserves_each_backends_physics() {
    let spec = small_spec("two_stream", 15);
    let report = compare::lockstep(&spec, &[Backend::Traditional1D, Backend::Dl1D]).unwrap();

    assert_eq!(report.scenario, "two_stream");
    assert_eq!(report.reference, "traditional-1d");
    assert_eq!(report.times.len(), spec.n_steps + 1);
    assert_eq!(report.summaries.len(), 2);
    assert_eq!(report.diffs.len(), 1);

    // Lockstep must not perturb either backend: each summary is
    // bit-identical to running that backend alone.
    let solo_trad = engine::run(&spec, Backend::Traditional1D).unwrap();
    let solo_dl = engine::run(&spec, Backend::Dl1D).unwrap();
    assert_eq!(
        report.summary("traditional-1d").unwrap().history,
        solo_trad.history
    );
    assert_eq!(report.summary("dl-1d").unwrap().history, solo_dl.history);

    // Residuals cover every recorded row and are finite; the residuals
    // recompute from the two histories.
    let diff = report.diff("dl-1d").unwrap();
    assert_eq!(diff.total_energy_rel.len(), spec.n_steps + 1);
    assert!(diff.total_energy_rel.iter().all(|v| v.is_finite()));
    for (i, (a, b)) in solo_trad
        .history
        .momentum
        .iter()
        .zip(&solo_dl.history.momentum)
        .enumerate()
    {
        assert_eq!(diff.momentum_abs[i], (a - b).abs(), "row {i}");
    }
    assert!(diff.max_total_energy_rel().is_finite());
    assert!(diff.max_mode_amp_abs(0).is_some());
    assert!(diff.max_mode_amp_abs(99).is_none());

    // Growth rates are queryable per backend (Table 1's comparison).
    assert_eq!(report.growth_rates(1).len(), 2);
}

#[test]
fn lockstep_rejects_degenerate_inputs() {
    let spec = small_spec("two_stream", 5);
    assert!(compare::lockstep(&spec, &[]).is_err());
    assert!(compare::lockstep(&spec, &[Backend::Traditional1D]).is_err());
    // Incompatible pairings surface the backend's own error.
    let spec_2d = small_spec("two_stream_2d", 5);
    assert!(compare::lockstep(&spec_2d, &[Backend::Traditional2D, Backend::Vlasov]).is_err());
}

#[test]
fn run_until_stops_early_and_summarizes_consistently() {
    let mut spec = small_spec("two_stream", 120);
    spec.seed = 20210705;
    let mut session = engine::start(&spec, Backend::Traditional1D).unwrap();
    // Smoke-scale shot noise puts the E1 floor within ~a decade of
    // saturation (peak/floor ≈ 14 for this seed), so stop at 8× — far
    // above noise wiggle, comfortably below the run's peak.
    let e1_floor = session.sample().mode_amps[0];
    let stopped = session.run_until(|sample| sample.mode_amps[0] > 8.0 * e1_floor);
    assert!(stopped, "two-stream growth never crossed the threshold");
    let steps = session.steps_done();
    assert!(
        (1..spec.n_steps).contains(&steps),
        "expected an early stop, ran {steps}"
    );
    let summary = session.finish();
    assert_eq!(summary.steps, steps);
    assert_eq!(summary.history.len(), steps + 1);
    assert!(summary.all_finite());

    // A predicate that never fires runs to the configured end.
    let mut session = engine::start(&small_spec("two_stream", 9), Backend::Traditional1D).unwrap();
    assert!(!session.run_until(|_| false));
    assert_eq!(session.steps_done(), 9);
}

#[test]
fn sessions_stream_to_attached_observers() {
    // Arc<Mutex<…>>: observers are Send (sessions can cross threads).
    use std::sync::{Arc, Mutex};

    #[derive(Default)]
    struct Log {
        started: usize,
        steps: Vec<usize>,
        finished: usize,
    }
    struct Shared(Arc<Mutex<Log>>);
    impl Observer for Shared {
        fn on_start(&mut self, _spec: &ScenarioSpec, _backend: &Backend) {
            self.0.lock().unwrap().started += 1;
        }
        fn on_sample(&mut self, sample: &Sample) {
            self.0.lock().unwrap().steps.push(sample.step);
        }
        fn on_finish(&mut self, _summary: &dlpic_repro::engine::RunSummary) {
            self.0.lock().unwrap().finished += 1;
        }
    }

    let log = Arc::new(Mutex::new(Log::default()));
    let spec = small_spec("thermal_noise", 5);
    let mut session = engine::start(&spec, Backend::Traditional1D).unwrap();
    session.attach_observer(Box::new(Shared(log.clone())));
    session.run_to_end();
    session.finish();
    let log = log.lock().unwrap();
    assert_eq!(log.started, 1);
    assert_eq!(log.finished, 1);
    assert_eq!(log.steps, (0..=5).collect::<Vec<_>>());
}

#[test]
fn registry_names_are_enumerable_for_callers() {
    let names = engine::names();
    assert!(names.contains(&"two_stream"));
    assert_eq!(names, engine::SCENARIO_NAMES);
    // The unknown-scenario error carries the same list as suggestions.
    match engine::scenario("tokamak", Scale::Smoke) {
        Err(EngineError::UnknownScenario { known, .. }) => assert_eq!(known, names.to_vec()),
        other => panic!("unexpected: {other:?}"),
    }
}

/// `Checkpoint::write_file` / `read_file` carry the atomic tmp+rename
/// persistence discipline the serve spool and the saturation example
/// rely on: a resumed run from the on-disk file is bit-identical, and no
/// `.tmp` sibling outlives the write.
#[test]
fn checkpoint_file_roundtrip_is_atomic_and_exact() {
    let engine = Engine::new();
    let spec = small_spec("two_stream", 12);

    let mut straight = engine.start(&spec, Backend::Dl1D).unwrap();
    straight.run_to_end();
    let straight = straight.finish();

    let mut session = engine.start(&spec, Backend::Dl1D).unwrap();
    for _ in 0..5 {
        session.step();
    }
    let dir = std::env::temp_dir();
    let path = dir.join(format!("dlpic-ckpt-{}.json", std::process::id()));
    session.checkpoint().write_file(&path).unwrap();
    drop(session);

    let mut tmp = path.clone().into_os_string();
    tmp.push(".tmp");
    assert!(
        !std::path::Path::new(&tmp).exists(),
        "temp file must be renamed away"
    );

    let checkpoint = Checkpoint::read_file(&path).unwrap();
    assert_eq!(checkpoint.steps_done, 5);
    assert_eq!(&checkpoint.spec, &spec);
    let mut resumed = engine.resume(&checkpoint).unwrap();
    resumed.run_to_end();
    let resumed = resumed.finish();
    assert_histories_match(
        &straight.history,
        &resumed.history,
        0.0,
        "file-resumed dl-1d run",
    );
    std::fs::remove_file(&path).unwrap();

    // A missing file surfaces as an error, not a panic.
    assert!(Checkpoint::read_file(dir.join("dlpic-no-such-checkpoint.json")).is_err());
}

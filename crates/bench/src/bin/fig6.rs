//! **Fig. 6** — the cold-beam numerical-instability stress test:
//! `v0 = ±0.4`, `vth = 0`.
//!
//! With the paper's box, `k₁·v0 = 1.224 > 1`, so every mode is *linearly
//! stable* and the beams should stream forever. The traditional explicit
//! momentum-conserving PIC nevertheless develops the numerical "cold-beam
//! instability" (phase-space ripples, total-energy growth); the DL-based
//! PIC — whose field solver never saw grid-scale aliasing noise in
//! training — stays clean, at the price of a growing momentum drift.
//!
//! Both methods run the *same* engine scenario (`cold_beam` from the
//! registry); only the [`Backend`] value differs.
//!
//! Run: `cargo run -p dlpic-bench --release --bin fig6 [--scale ...]`

use dlpic_analytics::plot::{line_plot, scatter_density, PlotOptions};
use dlpic_analytics::series::write_csv;
use dlpic_analytics::stats;
use dlpic_bench::{get_or_train_mlp, out_dir, paper_figure_spec, Cli};
use dlpic_repro::engine::{Backend, Engine, Numerics1D};

fn main() {
    let cli = Cli::parse();
    let spec = paper_figure_spec("cold_beam", cli.scale);
    let v0 = 0.4;
    println!(
        "== Fig. 6: cold-beam stress test, v0 = ±{v0}, vth = 0 [{} scale] ==\n",
        cli.scale.name()
    );
    println!(
        "linear theory: k1*v0 = {:.3} > 1  ->  every mode stable; any growth is numerical\n",
        dlpic_pic::constants::PAPER_K1 * v0
    );

    // The paper's traditional baseline is the "basic NGP scheme" (§II) —
    // the variant where the cold-beam instability shows most clearly.
    let mut engine = Engine::new()
        .with_model_1d(get_or_train_mlp(cli.scale, cli.retrain, true))
        .with_numerics_1d(Numerics1D::basic_ngp());
    eprintln!("running traditional PIC...");
    let trad = engine
        .run(&spec, Backend::Traditional1D)
        .expect("traditional run");
    eprintln!("running DL-based PIC...");
    let dl = engine.run(&spec, Backend::Dl1D).expect("dl run");

    // Phase space at t = 40 (the paper's top panels: ripples vs clean).
    let l = dlpic_pic::constants::paper_box_length();
    for (summary, label) in [(&trad, "Traditional PIC"), (&dl, "DL-based PIC (MLP)")] {
        let ps = summary.phase_space.as_ref().expect("particle backend");
        println!(
            "{}",
            scatter_density(
                &ps.x,
                &ps.v,
                (0.0, l),
                (-0.6, 0.6),
                64,
                16,
                &format!("{label} - v0 = {v0}, vth = 0.0 (t = 40)")
            )
        );
    }

    let te_trad = trad.history.total_energy_series("energy-traditional");
    let te_dl = dl.history.total_energy_series("energy-dl-mlp");
    let p_trad = trad.history.momentum_series("momentum-traditional");
    let p_dl = dl.history.momentum_series("momentum-dl-mlp");

    println!(
        "{}",
        line_plot(
            &[('*', &te_trad), ('o', &te_dl)],
            &PlotOptions::titled(format!("Total Energy - v0 = {v0}, vth = 0.0")),
        )
    );
    println!(
        "{}",
        line_plot(
            &[('*', &p_trad), ('o', &p_dl)],
            &PlotOptions::titled(format!("Momentum - v0 = {v0}, vth = 0.0")),
        )
    );

    // Quantify the paper's qualitative claims.
    // Beam-velocity spread growth = phase-space "ripples".
    let spread = |v: &[f64]| {
        let beam: Vec<f64> = v.iter().copied().filter(|v| *v > 0.0).collect();
        stats::std_dev(&beam)
    };
    let ripple_trad = spread(&trad.phase_space.as_ref().expect("particles").v);
    let ripple_dl = spread(&dl.phase_space.as_ref().expect("particles").v);
    // The signature of the aliasing (cold-beam) instability is a *rising*
    // total-energy trend — plasma heating out of nothing. Peak-to-peak
    // variation would confuse that with benign fluctuations.
    let trend = |h: &[f64]| (h.last().unwrap() - h[0]) / h[0];
    let et_trad = trend(&trad.history.total);
    let et_dl = trend(&dl.history.total);
    let pd_trad = trad.momentum_drift();
    let pd_dl = dl.momentum_drift();

    println!("cold-beam (numerical) instability indicators at t = 40:");
    println!("  beam velocity spread  : traditional {ripple_trad:.4}  |  DL-based {ripple_dl:.4} (coherent ripples vs incoherent model-noise heating)");
    println!(
        "  energy trend (t=0..40): traditional {:+.2}%  |  DL-based {:+.2}%  (paper: trad rises ~1.5%)",
        et_trad * 100.0,
        et_dl * 100.0
    );
    println!("  momentum drift        : traditional {pd_trad:.2e}  |  DL-based {pd_dl:.2e}");

    let csv = out_dir().join(format!("fig6-{}.csv", cli.scale.name()));
    write_csv(&csv, &[&te_trad, &te_dl, &p_trad, &p_dl]).expect("write CSV");
    println!("\nwrote {}", csv.display());

    // The paper's shape: the traditional method heats (the numerical
    // instability), the DL method does not heat through that mechanism —
    // but it leaks momentum.
    let pass = et_trad > 0.002 && et_dl < et_trad && pd_dl > pd_trad * 100.0;
    println!(
        "verdict: {}",
        if pass {
            "PASS — traditional PIC heats (cold-beam instability); DL-based PIC does not, but drifts in momentum"
        } else {
            "CHECK — see indicators above"
        }
    );
}

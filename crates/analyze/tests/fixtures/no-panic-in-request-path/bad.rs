//! Fixture: panics reachable from a request handler. A hostile request
//! must produce a structured error response, never a daemon crash.

pub fn handle(body: &str) -> String {
    let n: u64 = body.parse().unwrap();
    if n > 1_000 {
        panic!("request too large");
    }
    let doubled = n.checked_mul(2).expect("overflow");
    match doubled % 2 {
        0 => format!("ok {doubled}"),
        _ => unreachable!("doubling is always even"),
    }
}

//! A minimal JSON value, parser and writer.
//!
//! The build environment pins this workspace to zero external
//! dependencies, so the engine carries its own ~200-line JSON layer
//! instead of `serde`. The emitted documents are plain JSON — readable by
//! any serde-based consumer — and [`ScenarioSpec`](super::ScenarioSpec)
//! round-trips through it losslessly (covered by the facade tests).

use std::fmt::Write as _;

/// A JSON document node.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (stored as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

/// Parse/shape failure raised by [`Json::parse`] and the typed accessors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong, with byte offset where applicable.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json: {}", self.message)
    }
}

impl std::error::Error for JsonError {}

fn err<T>(message: impl Into<String>) -> Result<T, JsonError> {
    Err(JsonError {
        message: message.into(),
    })
}

impl Json {
    /// Parses a JSON document.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return err(format!("trailing characters at byte {pos}"));
        }
        Ok(value)
    }

    /// Serializes with two-space indentation.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0, true);
        out
    }

    /// Serializes compactly.
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0, false);
        out
    }

    fn write(&self, out: &mut String, indent: usize, pretty: bool) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_num(out, *n),
            Json::Str(s) => write_str(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    if pretty {
                        newline_indent(out, indent + 1);
                    }
                    item.write(out, indent + 1, pretty);
                }
                if pretty {
                    newline_indent(out, indent);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    if pretty {
                        newline_indent(out, indent + 1);
                    }
                    write_str(out, key);
                    out.push(':');
                    if pretty {
                        out.push(' ');
                    }
                    value.write(out, indent + 1, pretty);
                }
                if pretty {
                    newline_indent(out, indent);
                }
                out.push('}');
            }
        }
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Required object field.
    pub fn field(&self, key: &str) -> Result<&Json, JsonError> {
        match self.get(key) {
            Some(v) => Ok(v),
            None => err(format!("missing field `{key}`")),
        }
    }

    /// Numeric value.
    pub fn as_f64(&self) -> Result<f64, JsonError> {
        match self {
            Json::Num(n) => Ok(*n),
            other => err(format!("expected number, found {}", other.kind())),
        }
    }

    /// Non-negative integer value.
    pub fn as_u64(&self) -> Result<u64, JsonError> {
        let n = self.as_f64()?;
        if n < 0.0 || n.fract() != 0.0 || n >= 2f64.powi(53) {
            return err(format!("expected non-negative integer, found {n}"));
        }
        Ok(n as u64)
    }

    /// `usize` value.
    pub fn as_usize(&self) -> Result<usize, JsonError> {
        Ok(self.as_u64()? as usize)
    }

    /// String value.
    pub fn as_str(&self) -> Result<&str, JsonError> {
        match self {
            Json::Str(s) => Ok(s),
            other => err(format!("expected string, found {}", other.kind())),
        }
    }

    /// Array items.
    pub fn as_arr(&self) -> Result<&[Json], JsonError> {
        match self {
            Json::Arr(items) => Ok(items),
            other => err(format!("expected array, found {}", other.kind())),
        }
    }

    /// Builds a number array from a slice of `f64` (state vectors in
    /// checkpoints). Finite values round-trip exactly: the writer emits
    /// the shortest decimal that parses back to the same bits.
    pub fn num_arr(values: &[f64]) -> Json {
        Json::Arr(values.iter().map(|&v| Json::Num(v)).collect())
    }

    /// The array's items as `f64`s (inverse of [`Json::num_arr`]).
    pub fn as_f64_vec(&self) -> Result<Vec<f64>, JsonError> {
        self.as_arr()?.iter().map(|v| v.as_f64()).collect()
    }

    fn kind(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "bool",
            Json::Num(_) => "number",
            Json::Str(_) => "string",
            Json::Arr(_) => "array",
            Json::Obj(_) => "object",
        }
    }
}

fn newline_indent(out: &mut String, indent: usize) {
    out.push('\n');
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_num(out: &mut String, n: f64) {
    if !n.is_finite() {
        // JSON has no Inf/NaN; `null` is the least-bad spelling.
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 2f64.powi(53) && !(n == 0.0 && n.is_sign_negative()) {
        // Whole numbers print without the float suffix; negative zero is
        // excluded so checkpointed state round-trips bit-exactly.
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => err("unexpected end of input"),
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = match parse_value(bytes, pos)? {
                    Json::Str(s) => s,
                    _ => return err(format!("object key must be a string at byte {pos}")),
                };
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return err(format!("expected ':' at byte {pos}"));
                }
                *pos += 1;
                let value = parse_value(bytes, pos)?;
                fields.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'"') => {
            *pos += 1;
            let mut s = String::new();
            loop {
                match bytes.get(*pos) {
                    None => return err("unterminated string"),
                    Some(b'"') => {
                        *pos += 1;
                        return Ok(Json::Str(s));
                    }
                    Some(b'\\') => {
                        *pos += 1;
                        match bytes.get(*pos) {
                            Some(b'"') => s.push('"'),
                            Some(b'\\') => s.push('\\'),
                            Some(b'/') => s.push('/'),
                            Some(b'n') => s.push('\n'),
                            Some(b'r') => s.push('\r'),
                            Some(b't') => s.push('\t'),
                            Some(b'b') => s.push('\u{8}'),
                            Some(b'f') => s.push('\u{c}'),
                            Some(b'u') => {
                                if *pos + 4 >= bytes.len() {
                                    return err("truncated \\u escape");
                                }
                                let hex = std::str::from_utf8(&bytes[*pos + 1..*pos + 5]).map_err(
                                    |_| JsonError {
                                        message: "bad \\u escape".into(),
                                    },
                                )?;
                                let code = u32::from_str_radix(hex, 16).map_err(|_| JsonError {
                                    message: "bad \\u escape".into(),
                                })?;
                                s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                                *pos += 4;
                            }
                            _ => return err("bad escape sequence"),
                        }
                        *pos += 1;
                    }
                    Some(&b) if b < 0x80 => {
                        s.push(b as char);
                        *pos += 1;
                    }
                    Some(_) => {
                        // Multi-byte UTF-8: copy the full sequence.
                        let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|_| JsonError {
                            message: "invalid UTF-8 in string".into(),
                        })?;
                        let c = rest.chars().next().expect("nonempty");
                        s.push(c);
                        *pos += c.len_utf8();
                    }
                }
            }
        }
        Some(b't') if bytes[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(Json::Bool(true))
        }
        Some(b'f') if bytes[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(Json::Bool(false))
        }
        Some(b'n') if bytes[*pos..].starts_with(b"null") => {
            *pos += 4;
            Ok(Json::Null)
        }
        Some(_) => {
            let start = *pos;
            while *pos < bytes.len()
                && matches!(bytes[*pos], b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
            {
                *pos += 1;
            }
            let text = std::str::from_utf8(&bytes[start..*pos]).expect("ascii");
            match text.parse::<f64>() {
                Ok(n) => Ok(Json::Num(n)),
                Err(_) => err(format!("invalid token at byte {start}")),
            }
        }
    }
}

/// Builds an object from key/value pairs (engine-internal sugar).
pub fn obj(fields: Vec<(&str, Json)>) -> Json {
    Json::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_documents() {
        let doc = obj(vec![
            ("name", Json::Str("two_stream".into())),
            ("dt", Json::Num(0.2)),
            ("steps", Json::Num(200.0)),
            (
                "modes",
                Json::Arr(vec![Json::Num(1.0), Json::Num(2.0), Json::Num(3.0)]),
            ),
            (
                "nested",
                obj(vec![("flag", Json::Bool(true)), ("none", Json::Null)]),
            ),
        ]);
        for text in [doc.to_pretty(), doc.to_compact()] {
            assert_eq!(Json::parse(&text).unwrap(), doc);
        }
    }

    #[test]
    fn escapes_and_unicode() {
        let doc = Json::Str("a \"quote\"\nnewline\ttab λ".into());
        let parsed = Json::parse(&doc.to_compact()).unwrap();
        assert_eq!(parsed, doc);
        assert_eq!(Json::parse(r#""λ""#).unwrap(), Json::Str("λ".into()));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "{",
            "[1,",
            "\"open",
            "{\"a\" 1}",
            "[1 2]",
            "tru",
            "1.2.3",
            "",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
        assert!(Json::parse("[1] trailing").is_err());
    }

    #[test]
    fn f64_values_round_trip_bit_exactly() {
        // Checkpoints rely on this: every finite f64 survives the text
        // round-trip with identical bits (Display prints the shortest
        // representation that parses back exactly).
        let vals = [
            0.1,
            1.0 / 3.0,
            -2.5e-17,
            6.02e23,
            f64::MIN_POSITIVE,
            -0.0,
            0.0,
            123_456_789.123_456_78,
            -1e308,
        ];
        let doc = Json::num_arr(&vals);
        for text in [doc.to_pretty(), doc.to_compact()] {
            let parsed = Json::parse(&text).unwrap().as_f64_vec().unwrap();
            for (a, b) in vals.iter().zip(&parsed) {
                assert_eq!(a.to_bits(), b.to_bits(), "{a} mutated in transit");
            }
        }
    }

    #[test]
    fn typed_accessors() {
        let doc = Json::parse(r#"{"n": 3, "s": "x", "a": [1.5]}"#).unwrap();
        assert_eq!(doc.field("n").unwrap().as_usize().unwrap(), 3);
        assert_eq!(doc.field("s").unwrap().as_str().unwrap(), "x");
        assert_eq!(doc.field("a").unwrap().as_arr().unwrap().len(), 1);
        assert!(doc.field("missing").is_err());
        assert!(doc.field("s").unwrap().as_f64().is_err());
        assert!(doc.field("a").unwrap().as_arr().unwrap()[0]
            .as_u64()
            .is_err());
    }
}

//! # dlpic-pic
//!
//! A traditional explicit electrostatic one-dimensional Particle-in-Cell
//! (PIC) method, following Birdsall & Langdon — the baseline method of
//! Aguilar & Markidis, *"A Deep Learning-Based Particle-in-Cell Method for
//! Plasma Simulations"* (CLUSTER 2021), and the generator of all its
//! training data.
//!
//! The computational cycle (paper Fig. 1):
//!
//! 1. **Gather** — interpolate the grid electric field to particle
//!    positions ([`gather`]).
//! 2. **Push** — advance velocities and positions with the leap-frog
//!    scheme, paper Eqs. (1)–(2) ([`mover`]).
//! 3. **Deposit** — interpolate particle charge to the grid
//!    ([`deposit`]).
//! 4. **Field solve** — solve the Poisson equation for Φ and take
//!    E = −∇Φ ([`poisson`], [`efield`]).
//!
//! Steps 3–4 are abstracted behind the [`solver::FieldSolver`] trait so the
//! DL-based method (crate `dlpic-core`) can replace them — exactly the grey
//! boxes of the paper's Fig. 2 — while sharing the same mover, gather and
//! diagnostics.
//!
//! ## Units
//!
//! Everything is dimensionless with electron plasma frequency `ω_p = 1`,
//! vacuum permittivity `ε₀ = 1` and electron charge-to-mass `|q|/m = 1`
//! (paper §III). See [`constants`] for the paper's standard configuration:
//! box `L = 2π/3.06`, 64 cells, 1000 electrons/cell, `Δt = 0.2`.

#![warn(missing_docs)]

pub mod constants;
pub mod deposit;
pub mod diagnostics;
pub mod efield;
pub mod fused;
pub mod gather;
pub mod grid;
pub mod history;
pub mod init;
pub mod mover;
pub mod particles;
pub mod poisson;
pub mod presets;
pub mod shape;
pub mod simulation;
pub mod solver;

pub use fused::{fused_gather_push_move, StepMoments};
pub use grid::Grid1D;
pub use history::{History, SampleRow};
pub use init::{BeamSpec, Loading, MultiBeamInit, TwoStreamInit};
pub use particles::Particles;
pub use poisson::{FdPoisson, PoissonSolver, SpectralPoisson};
pub use shape::Shape;
pub use simulation::{PicConfig, Simulation};
pub use solver::{FieldSolver, TraditionalSolver};

//! The message fabric: rank-to-rank mailboxes with exact byte accounting.
//!
//! The decomposed simulation runs its ranks in a bulk-synchronous loop
//! inside one process, but *every* inter-rank data transfer is routed
//! through this fabric as an explicit message — nothing is shared behind
//! the scenes — so the recorded traffic is exactly what an MPI
//! implementation of the same scheme would put on the wire. Payloads are
//! `f64` words; a message of `n` words is accounted as `8·n` bytes
//! (headers/envelopes are transport-specific and excluded, which favours
//! neither strategy since both send few, large messages).
//!
//! Messages from a rank to itself are delivered but *not* counted: local
//! copies are free on a real machine too.

use std::collections::VecDeque;

/// Accumulated traffic counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CommStats {
    /// Number of inter-rank messages.
    pub messages: u64,
    /// Total payload bytes (8 per `f64` word).
    pub bytes: u64,
}

impl CommStats {
    /// Adds another counter into this one.
    pub fn merge(&mut self, other: CommStats) {
        self.messages += other.messages;
        self.bytes += other.bytes;
    }
}

/// A named traffic class (deposition halo, field gather/scatter, particle
/// migration, histogram reduction); keys of the per-phase breakdown.
pub type Phase = &'static str;

/// The mailbox fabric connecting `n_ranks` ranks.
#[derive(Debug)]
pub struct Fabric {
    n_ranks: usize,
    /// `mailboxes[to * n_ranks + from]` — FIFO per ordered pair.
    mailboxes: Vec<VecDeque<Vec<f64>>>,
    total: CommStats,
    phases: Vec<(Phase, CommStats)>,
}

impl Fabric {
    /// Creates a fabric for `n_ranks` ranks.
    ///
    /// # Panics
    /// Panics for zero ranks.
    pub fn new(n_ranks: usize) -> Self {
        assert!(n_ranks > 0, "need at least one rank");
        Self {
            n_ranks,
            mailboxes: (0..n_ranks * n_ranks).map(|_| VecDeque::new()).collect(),
            total: CommStats::default(),
            phases: Vec::new(),
        }
    }

    /// Number of ranks the fabric connects.
    pub fn n_ranks(&self) -> usize {
        self.n_ranks
    }

    /// Sends `payload` from rank `from` to rank `to` under the given
    /// traffic class. Self-sends are delivered but not counted.
    ///
    /// # Panics
    /// Panics for out-of-range rank ids.
    pub fn send(&mut self, from: usize, to: usize, phase: Phase, payload: Vec<f64>) {
        assert!(from < self.n_ranks, "bad sender {from}");
        assert!(to < self.n_ranks, "bad receiver {to}");
        if from != to {
            let delta = CommStats {
                messages: 1,
                bytes: 8 * payload.len() as u64,
            };
            self.total.merge(delta);
            match self.phases.iter_mut().find(|(p, _)| *p == phase) {
                Some((_, stats)) => stats.merge(delta),
                None => self.phases.push((phase, delta)),
            }
        }
        self.mailboxes[to * self.n_ranks + from].push_back(payload);
    }

    /// Receives the oldest pending message from `from` at `to`, if any.
    pub fn recv(&mut self, to: usize, from: usize) -> Option<Vec<f64>> {
        assert!(from < self.n_ranks, "bad sender {from}");
        assert!(to < self.n_ranks, "bad receiver {to}");
        self.mailboxes[to * self.n_ranks + from].pop_front()
    }

    /// Receives a pending message for `to` from any rank, round-robin by
    /// sender id.
    pub fn recv_any(&mut self, to: usize) -> Option<(usize, Vec<f64>)> {
        for from in 0..self.n_ranks {
            if let Some(msg) = self.mailboxes[to * self.n_ranks + from].pop_front() {
                return Some((from, msg));
            }
        }
        None
    }

    /// Total messages currently queued (all pairs).
    pub fn pending(&self) -> usize {
        self.mailboxes.iter().map(|m| m.len()).sum()
    }

    /// Aggregate traffic counters since construction (or the last
    /// [`Fabric::reset_stats`]).
    pub fn stats(&self) -> CommStats {
        self.total
    }

    /// Traffic of one class.
    pub fn phase_stats(&self, phase: Phase) -> CommStats {
        self.phases
            .iter()
            .find(|(p, _)| *p == phase)
            .map(|(_, s)| *s)
            .unwrap_or_default()
    }

    /// All traffic classes seen so far, in first-seen order.
    pub fn phases(&self) -> impl Iterator<Item = (Phase, CommStats)> + '_ {
        self.phases.iter().copied()
    }

    /// Clears the counters (not the queued messages).
    pub fn reset_stats(&mut self) {
        self.total = CommStats::default();
        self.phases.clear();
    }

    /// Replaces the aggregate counters *and* the per-phase breakdown with
    /// a checkpointed snapshot, so a restored run continues both (the
    /// phase list keeps the snapshot's order as its first-seen order).
    pub fn restore_stats(&mut self, total: CommStats, phases: &[(Phase, CommStats)]) {
        self.total = total;
        self.phases.clear();
        self.phases.extend_from_slice(phases);
    }
}

/// Deposition halo exchange (gather/scatter strategy).
pub const PHASE_DEPOSIT_HALO: Phase = "deposit-halo";
/// Charge-density gather to rank 0 (gather/scatter strategy).
pub const PHASE_RHO_GATHER: Phase = "rho-gather";
/// Solved-field scatter from rank 0 (gather/scatter strategy).
pub const PHASE_E_SCATTER: Phase = "e-scatter";
/// Cross-rank particle migration (both strategies).
pub const PHASE_MIGRATION: Phase = "migration";
/// Phase-space-histogram reduction to rank 0 (DL strategy).
pub const PHASE_HIST_REDUCE: Phase = "hist-reduce";
/// Summed-histogram broadcast from rank 0 (DL strategy).
pub const PHASE_HIST_BCAST: Phase = "hist-bcast";

/// Every traffic class the distributed simulation emits — the closed set
/// checkpoint restores intern against (phase keys are `&'static str`).
/// Emission sites use the `PHASE_*` constants above, so a new class
/// added through them is one line away from being restorable; sending
/// under an ad-hoc string still works but will not survive a
/// checkpoint round-trip.
pub const KNOWN_PHASES: [Phase; 6] = [
    PHASE_DEPOSIT_HALO,
    PHASE_RHO_GATHER,
    PHASE_E_SCATTER,
    PHASE_MIGRATION,
    PHASE_HIST_REDUCE,
    PHASE_HIST_BCAST,
];

/// Maps a phase name read from a checkpoint back to its `&'static`
/// spelling; `None` for names no strategy emits.
pub fn intern_phase(name: &str) -> Option<Phase> {
    KNOWN_PHASES.iter().copied().find(|&p| p == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_fifo_per_pair() {
        let mut f = Fabric::new(2);
        f.send(0, 1, "test", vec![1.0]);
        f.send(0, 1, "test", vec![2.0]);
        assert_eq!(f.recv(1, 0), Some(vec![1.0]));
        assert_eq!(f.recv(1, 0), Some(vec![2.0]));
        assert_eq!(f.recv(1, 0), None);
    }

    #[test]
    fn bytes_counted_for_cross_rank_traffic() {
        let mut f = Fabric::new(3);
        f.send(0, 1, "halo", vec![0.0; 10]);
        f.send(2, 0, "halo", vec![0.0; 6]);
        let s = f.stats();
        assert_eq!(s.messages, 2);
        assert_eq!(s.bytes, 8 * 16);
    }

    #[test]
    fn self_sends_are_free_but_delivered() {
        let mut f = Fabric::new(2);
        f.send(1, 1, "local", vec![42.0; 100]);
        assert_eq!(f.stats(), CommStats::default());
        assert_eq!(f.recv(1, 1), Some(vec![42.0; 100]));
    }

    #[test]
    fn per_phase_breakdown() {
        let mut f = Fabric::new(2);
        f.send(0, 1, "halo", vec![0.0; 2]);
        f.send(1, 0, "migrate", vec![0.0; 4]);
        f.send(0, 1, "halo", vec![0.0; 2]);
        assert_eq!(
            f.phase_stats("halo"),
            CommStats {
                messages: 2,
                bytes: 32
            }
        );
        assert_eq!(
            f.phase_stats("migrate"),
            CommStats {
                messages: 1,
                bytes: 32
            }
        );
        assert_eq!(f.phase_stats("nope"), CommStats::default());
        assert_eq!(f.phases().count(), 2);
    }

    #[test]
    fn recv_any_scans_senders() {
        let mut f = Fabric::new(3);
        f.send(2, 0, "m", vec![2.0]);
        f.send(1, 0, "m", vec![1.0]);
        let (from_a, a) = f.recv_any(0).unwrap();
        let (from_b, b) = f.recv_any(0).unwrap();
        // Round-robin order: sender 1 first.
        assert_eq!((from_a, a), (1, vec![1.0]));
        assert_eq!((from_b, b), (2, vec![2.0]));
        assert!(f.recv_any(0).is_none());
    }

    #[test]
    fn reset_clears_counters_not_queues() {
        let mut f = Fabric::new(2);
        f.send(0, 1, "x", vec![1.0]);
        f.reset_stats();
        assert_eq!(f.stats(), CommStats::default());
        assert_eq!(f.pending(), 1);
    }
}

#[cfg(test)]
mod property_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Under any interleaving of sends, (a) per-pair delivery is FIFO
        /// and lossless, (b) counted bytes equal exactly 8× the payload
        /// words of cross-rank messages.
        #[test]
        fn fabric_is_lossless_fifo_with_exact_accounting(
            script in proptest::collection::vec(
                (0usize..4, 0usize..4, 1usize..12), 0..40),
        ) {
            let mut fabric = Fabric::new(4);
            let mut expected_bytes = 0u64;
            let mut expected_msgs = 0u64;
            // Tag each message with a sequence number for FIFO checking.
            for (i, &(from, to, len)) in script.iter().enumerate() {
                let mut payload = vec![i as f64];
                payload.resize(len, 0.0);
                fabric.send(from, to, "t", payload);
                if from != to {
                    expected_bytes += 8 * len as u64;
                    expected_msgs += 1;
                }
            }
            prop_assert_eq!(fabric.stats().bytes, expected_bytes);
            prop_assert_eq!(fabric.stats().messages, expected_msgs);
            prop_assert_eq!(fabric.pending(), script.len());

            // Drain every pair; sequence numbers must arrive ascending.
            for to in 0..4 {
                for from in 0..4 {
                    let mut last = -1.0f64;
                    while let Some(msg) = fabric.recv(to, from) {
                        prop_assert!(msg[0] > last,
                            "pair {from}->{to}: out of order");
                        last = msg[0];
                    }
                }
            }
            prop_assert_eq!(fabric.pending(), 0);
        }
    }
}

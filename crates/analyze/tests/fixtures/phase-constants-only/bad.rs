//! Fixture: ad-hoc phase tags at the emission site. String literals and
//! computed tags both drift from `KNOWN_PHASES` without any compile
//! error — only the constant is checkable.

pub fn exchange(fabric: &mut Fabric, rank: usize, buf: &[f64]) {
    fabric.send(rank, 0, "halo-left", buf.to_vec());
    let phase = phase_name(rank);
    fabric.send(rank, 1, phase, buf.to_vec());
}

fn phase_name(rank: usize) -> String {
    format!("phase-{rank}")
}

pub struct Fabric;

impl Fabric {
    pub fn send(&mut self, _to: usize, _from: usize, _phase: impl AsRef<str>, _payload: Vec<f64>) {}
}

//! Early stopping with the session API: run the two-stream instability
//! only until its growth saturates, then checkpoint, resume and finish —
//! the full incremental workflow in one example.
//!
//! A fixed-length run has to guess how many steps saturation needs; the
//! session's [`run_until`](dlpic_repro::engine::Session::run_until)
//! controller instead watches the live `E1` diagnostic and stops when the
//! growth stalls, and a JSON checkpoint proves the run can be cut and
//! continued anywhere without changing the physics.
//!
//! ```sh
//! cargo run --release --example saturation
//! DLPIC_SCALE=scaled cargo run --release --example saturation
//! ```

use dlpic_repro::core::Scale;
use dlpic_repro::engine::{self, Backend, Checkpoint, Engine, EngineError};

fn scale_from_env() -> Scale {
    std::env::var("DLPIC_SCALE")
        .ok()
        .and_then(|s| Scale::parse(&s))
        .unwrap_or(Scale::Smoke)
}

fn main() -> Result<(), EngineError> {
    let scale = scale_from_env();
    let mut spec = engine::scenario("two_stream", scale)?;
    // Give the controller headroom: saturation needs ~100 steps at this
    // box, and the point of early stopping is a generous budget.
    spec.n_steps = spec.n_steps.max(200);
    println!(
        "two_stream at {scale:?}: budget {} steps, stopping at E1 saturation\n",
        spec.n_steps
    );

    // --- Early stop: grow until E1 stalls against its running peak. ----
    let mut session = engine::start(&spec, Backend::Traditional1D)?;
    let floor = session.sample().mode_amps[0];
    let mut peak = floor;
    let mut stalled = 0usize;
    let saturated = session.run_until(|sample| {
        let e1 = sample.mode_amps[0];
        // Saturation: a decade above the noise floor and no new peak for
        // 15 consecutive steps (the nonlinear trapping plateau).
        if e1 > peak {
            peak = e1;
            stalled = 0;
        } else {
            stalled += 1;
        }
        peak > 10.0 * floor && stalled >= 15
    });
    let used = session.steps_done();

    // --- Checkpoint to disk, resume in a fresh engine, finish. ---------
    // `write_file` is atomic (tmp + rename), the same discipline the
    // dlpic-serve spool uses — a crash never leaves a half checkpoint.
    let path =
        std::env::temp_dir().join(format!("dlpic-saturation-{}.ckpt.json", std::process::id()));
    session.checkpoint().write_file(&path)?;
    drop(session);
    println!(
        "checkpointed at step {used} ({:.1} kB on disk)",
        std::fs::metadata(&path).map_or(0.0, |m| m.len() as f64) / 1024.0
    );
    let checkpoint = Checkpoint::read_file(&path)?;
    let _ = std::fs::remove_file(&path);
    let mut resumed = Engine::new().resume(&checkpoint)?;
    let summary = {
        // A short grace run past saturation shows the plateau.
        for _ in 0..10.min(resumed.remaining()) {
            resumed.step();
        }
        resumed.finish()
    };

    println!(
        "saturation {}: E1 {floor:.2e} -> {peak:.2e} in {used} steps",
        if saturated { "detected" } else { "not reached" },
    );
    println!(
        "steps saved vs fixed budget: {} of {} ({:.0}%)",
        spec.n_steps.saturating_sub(summary.steps),
        spec.n_steps,
        100.0 * spec.n_steps.saturating_sub(summary.steps) as f64 / spec.n_steps as f64
    );
    println!(
        "summary: {} samples to t = {:.1}, energy variation {:.2}%",
        summary.history.len(),
        summary.t_end,
        summary.energy_variation() * 100.0
    );
    Ok(())
}

//! The ensemble execution layer's contracts:
//!
//! * an N-run ensemble's per-run histories are **bit-identical** to N
//!   solo `Session` runs, for every backend family, at 1 and at T > 1
//!   worker threads (batched DL inference and multi-core scheduling must
//!   not perturb any run's arithmetic);
//! * ensemble checkpoint/resume round-trips through the existing
//!   per-session `Checkpoint` JSON format;
//! * `SweepSpec` expands cartesian grids, explicit points and seed fans
//!   against the registry's sweepable-parameter metadata.

use dlpic_repro::core::Scale;
use dlpic_repro::engine::{self, Backend, Checkpoint, EnergyHistory, Engine, SweepSpec};

/// A small registry scenario with a short step budget and a seed fan.
fn fan(scenario: &str, n_steps: usize, seeds: &[u64]) -> Vec<engine::ScenarioSpec> {
    seeds
        .iter()
        .map(|&seed| {
            let mut spec = engine::scenario(scenario, Scale::Smoke).expect("registry");
            spec.n_steps = n_steps;
            spec.seed = seed;
            spec.name = format!("{scenario}[seed={seed}]");
            spec
        })
        .collect()
}

/// Histories of solo `Engine::run` calls over the same specs.
fn solo_histories(specs: &[engine::ScenarioSpec], backend: Backend) -> Vec<EnergyHistory> {
    specs
        .iter()
        .map(|spec| Engine::new().run(spec, backend).expect("solo run").history)
        .collect()
}

fn assert_histories_equal(context: &str, got: &[EnergyHistory], want: &[EnergyHistory]) {
    assert_eq!(got.len(), want.len(), "{context}: run count");
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        // EnergyHistory PartialEq compares every f64 series exactly —
        // the bit-identity contract (finite values; -0.0 == 0.0 cannot
        // mask a sign flip in energies, which are sums of squares).
        assert_eq!(g, w, "{context}: run {i} history differs from solo");
    }
}

#[test]
fn ensemble_bit_identical_to_solo_for_every_backend_family() {
    // (scenario, backend, runs): DL 1-D gets 9 runs so the batched GEMM
    // crosses the 8-row tile boundary (one full zmm tile + a GEMV
    // remainder row); warm_two_stream has the thermal spread the
    // continuum backend needs.
    let cases: Vec<(&str, Backend, Vec<u64>)> = vec![
        ("two_stream", Backend::Traditional1D, vec![1, 2, 3]),
        ("two_stream", Backend::Dl1D, vec![1, 2, 3, 4, 5, 6, 7, 8, 9]),
        ("two_stream_2d", Backend::Traditional2D, vec![1, 2, 3]),
        ("two_stream_2d", Backend::Dl2D, vec![1, 2, 3]),
        ("warm_two_stream", Backend::Vlasov, vec![1, 2, 3]),
        ("two_stream", Backend::Ddecomp { n_ranks: 4 }, vec![1, 2, 3]),
    ];
    for (scenario, backend, seeds) in cases {
        let steps = if matches!(backend, Backend::Traditional2D | Backend::Dl2D) {
            4
        } else {
            6
        };
        let specs = fan(scenario, steps, &seeds);
        let solo = solo_histories(&specs, backend);

        for threads in [1usize, 3] {
            let engine = Engine::new();
            let mut ensemble = engine
                .start_ensemble(&specs, backend)
                .expect("start ensemble");
            ensemble.run_to_end(threads);
            assert!(ensemble.is_complete());
            let summaries = ensemble.finish();
            let histories: Vec<EnergyHistory> =
                summaries.iter().map(|s| s.history.clone()).collect();
            assert_histories_equal(
                &format!("{scenario}/{backend} @ {threads} threads"),
                &histories,
                &solo,
            );
            // Phase space too, where the backend has one.
            for (i, (summary, spec)) in summaries.iter().zip(&specs).enumerate() {
                if let Some(ps) = &summary.phase_space {
                    let solo_summary = Engine::new().run(spec, backend).unwrap();
                    let solo_ps = solo_summary.phase_space.expect("solo phase space");
                    assert_eq!(ps.x, solo_ps.x, "{scenario} run {i} x");
                    assert_eq!(ps.v, solo_ps.v, "{scenario} run {i} v");
                }
            }
        }
    }
}

#[test]
fn step_wave_batches_dl_sessions_and_counts_progress() {
    let specs = fan("two_stream", 5, &[1, 2, 3, 4]);
    let engine = Engine::new();
    let mut ensemble = engine.start_ensemble(&specs, Backend::Dl1D).unwrap();
    // Every wave advances all four unfinished runs by one step.
    for wave in 0..5 {
        assert!(!ensemble.is_complete(), "wave {wave}");
        assert_eq!(ensemble.step_wave(), 4, "wave {wave}");
    }
    assert!(ensemble.is_complete());
    assert_eq!(ensemble.step_wave(), 0);
    for (i, session) in ensemble.sessions().iter().enumerate() {
        assert_eq!(session.steps_done(), 5, "run {i}");
        // One history row per wave (the final snapshot comes at finish).
        assert_eq!(session.history().len(), 5, "run {i}");
    }
    let summaries = ensemble.finish();
    assert!(summaries.iter().all(|s| s.history.len() == 6));
    assert!(summaries.iter().all(|s| s.all_finite()));
}

#[test]
fn ensemble_checkpoints_round_trip_through_session_format() {
    let specs = fan("two_stream", 8, &[11, 12, 13]);
    let engine = Engine::new();

    // Uninterrupted reference.
    let mut straight = engine.start_ensemble(&specs, Backend::Dl1D).unwrap();
    straight.run_to_end(1);
    let want: Vec<EnergyHistory> = straight.finish().into_iter().map(|s| s.history).collect();

    // Interrupted: three waves, checkpoint, serialize through the
    // *standard per-session JSON*, resume, finish on two threads.
    let mut ensemble = engine.start_ensemble(&specs, Backend::Dl1D).unwrap();
    for _ in 0..3 {
        ensemble.step_wave();
    }
    let round_tripped: Vec<Checkpoint> = ensemble
        .checkpoints()
        .iter()
        .map(|c| Checkpoint::from_json(&c.to_json()).expect("checkpoint JSON round-trip"))
        .collect();
    drop(ensemble);
    let mut resumed = engine.resume_ensemble(&round_tripped).unwrap();
    assert!(resumed.sessions().iter().all(|s| s.steps_done() == 3));
    resumed.run_to_end(2);
    let got: Vec<EnergyHistory> = resumed.finish().into_iter().map(|s| s.history).collect();
    assert_histories_equal("dl-1d checkpoint/resume", &got, &want);
}

#[test]
fn ddecomp_ensemble_checkpoint_preserves_comm_phase_breakdown() {
    let specs = fan("two_stream", 8, &[5]);
    let backend = Backend::Ddecomp { n_ranks: 4 };
    let engine = Engine::new();

    let mut straight = engine.start_ensemble(&specs, backend).unwrap();
    straight.run_to_end(1);
    let want = straight.finish();

    let mut ensemble = engine.start_ensemble(&specs, backend).unwrap();
    for _ in 0..4 {
        ensemble.step_wave();
    }
    let checkpoints: Vec<Checkpoint> = ensemble
        .checkpoints()
        .iter()
        .map(|c| Checkpoint::from_json(&c.to_json()).unwrap())
        .collect();
    let mut resumed = engine.resume_ensemble(&checkpoints).unwrap();
    resumed.run_to_end(1);
    let got = resumed.finish();

    assert_eq!(got[0].history, want[0].history);
    // The comm totals — and with them the per-phase breakdown persisted
    // in the checkpoint (PR 4's known wart) — continue across resume.
    for key in ["comm_messages", "comm_bytes", "migrated_particles"] {
        assert_eq!(got[0].extra(key), want[0].extra(key), "{key}");
    }
    assert!(got[0].extra("comm_bytes").unwrap() > 0.0);
}

#[test]
fn ddecomp_checkpoints_without_comm_phases_still_resume() {
    // Checkpoints written before the per-phase breakdown was persisted
    // are still valid v1 documents: a missing `comm_phases` restores as
    // an empty breakdown (the old behavior), it does not reject.
    use dlpic_repro::engine::json::Json;
    let specs = fan("two_stream", 6, &[5]);
    let backend = Backend::Ddecomp { n_ranks: 4 };
    let engine = Engine::new();
    let mut ensemble = engine.start_ensemble(&specs, backend).unwrap();
    for _ in 0..2 {
        ensemble.step_wave();
    }
    let text = ensemble.checkpoints()[0].to_json();
    let mut doc = Json::parse(&text).unwrap();
    if let Json::Obj(fields) = &mut doc {
        for (key, value) in fields.iter_mut() {
            if key == "state" {
                if let Json::Obj(state_fields) = value {
                    state_fields.retain(|(k, _)| k != "comm_phases");
                }
            }
        }
    }
    let stripped = Checkpoint::from_json(&doc.to_pretty()).expect("legacy checkpoint parses");
    let mut resumed = engine.resume(&stripped).expect("legacy checkpoint resumes");
    assert_eq!(resumed.steps_done(), 2);
    resumed.run_to_end();
    let summary = resumed.finish();
    assert!(summary.all_finite());
    // Aggregate traffic still continues across the legacy resume.
    assert!(summary.extra("comm_bytes").unwrap() > 0.0);
}

#[test]
fn mixed_backend_ensembles_resume_and_schedule_together() {
    // Checkpoints from different backends resume into ONE ensemble: the
    // wave scheduler batches the DL cohort and solo-steps the rest.
    let engine = Engine::new();
    let dl_specs = fan("two_stream", 6, &[21, 22]);
    let trad_specs = fan("two_stream", 6, &[23]);

    let dl = engine.start_ensemble(&dl_specs, Backend::Dl1D).unwrap();
    let trad = engine
        .start_ensemble(&trad_specs, Backend::Traditional1D)
        .unwrap();
    let mut checkpoints = dl.checkpoints();
    checkpoints.extend(trad.checkpoints());
    drop((dl, trad));

    let mut mixed = engine.resume_ensemble(&checkpoints).unwrap();
    assert_eq!(mixed.len(), 3);
    assert_eq!(
        mixed.backends(),
        vec![Backend::Dl1D, Backend::Dl1D, Backend::Traditional1D]
    );
    mixed.run_to_end(2);
    let got: Vec<EnergyHistory> = mixed.finish().into_iter().map(|s| s.history).collect();

    let mut want = solo_histories(&dl_specs, Backend::Dl1D);
    want.extend(solo_histories(&trad_specs, Backend::Traditional1D));
    assert_histories_equal("mixed ensemble", &got, &want);
}

#[test]
fn sweep_spec_expands_grids_seed_fans_and_rejects_unknown_params() {
    // Cartesian: 3 × 2 points × 2 seeds = 12 specs, first axis slowest.
    let sweep = SweepSpec::grid("two_stream", Scale::Smoke)
        .axis("v0", [0.12, 0.16, 0.20])
        .axis("vth", [0.0, 0.01])
        .seeds([7, 8]);
    assert_eq!(sweep.len(), 12);
    let specs = sweep.specs().unwrap();
    assert_eq!(specs.len(), 12);
    assert_eq!(specs[0].name, "two_stream[v0=0.12, vth=0, seed=7]");
    assert_eq!(specs[1].seed, 8);
    assert_eq!(specs[11].name, "two_stream[v0=0.2, vth=0.01, seed=8]");
    for spec in &specs {
        spec.validate().unwrap();
        assert_eq!(spec.scale, Scale::Smoke);
    }

    // Explicit points.
    let explicit = SweepSpec::explicit(
        "bump_on_tail",
        Scale::Smoke,
        vec![
            vec![("beam_v".into(), 0.25)],
            vec![("beam_v".into(), 0.35), ("beam_fraction".into(), 0.2)],
        ],
    );
    assert_eq!(explicit.len(), 2);
    let specs = explicit.specs().unwrap();
    assert!(specs[1].name.contains("beam_fraction=0.2"));

    // Unknown parameters are rejected with the known list.
    let bad = SweepSpec::grid("two_stream", Scale::Smoke).axis("warp_factor", [9.0]);
    let err = bad.specs().unwrap_err();
    assert!(
        err.to_string().contains("not a sweepable parameter"),
        "{err}"
    );

    // Sweepable-parameter metadata is exposed per scenario.
    let params = engine::sweep_params("ion_acoustic").unwrap();
    let names: Vec<&str> = params.iter().map(|p| p.name).collect();
    assert!(names.contains(&"drift") && names.contains(&"amplitude"));
}

#[test]
fn sweep_drives_an_ensemble_end_to_end() {
    let sweep = SweepSpec::grid("two_stream", Scale::Smoke).axis("v0", [0.15, 0.2]);
    let engine = Engine::new();
    let mut ensemble = engine.start_sweep(&sweep, Backend::Traditional1D).unwrap();
    // Trim the step budget for test speed.
    assert_eq!(ensemble.len(), 2);
    ensemble.run_to_end(2);
    let summaries = ensemble.finish();
    assert!(summaries.iter().all(|s| s.all_finite()));
    assert_eq!(summaries[0].scenario, "two_stream[v0=0.15]");
    assert_eq!(summaries[1].scenario, "two_stream[v0=0.2]");
}

#[test]
fn sweep_spec_round_trips_through_json() {
    let grid = SweepSpec::grid("two_stream", Scale::Smoke)
        .axis("v0", [0.12, 0.16, 0.20])
        .axis("vth", [0.0, 0.01])
        .seeds([7, 8]);
    let back = SweepSpec::from_json_value(&grid.to_json_value()).expect("grid parses back");
    // The JSON form is the wire/spool format — expansion must be
    // unchanged by a round trip, spec for spec.
    assert_eq!(back.specs().unwrap(), grid.specs().unwrap());

    let explicit = SweepSpec::explicit(
        "bump_on_tail",
        Scale::Smoke,
        vec![
            vec![("beam_v".into(), 0.25)],
            vec![("beam_v".into(), 0.35), ("beam_fraction".into(), 0.2)],
        ],
    );
    let back = SweepSpec::from_json_value(&explicit.to_json_value()).expect("points parse back");
    assert_eq!(back.specs().unwrap(), explicit.specs().unwrap());

    // A document with neither axes nor points is rejected.
    let err = SweepSpec::from_json_value(
        &dlpic_repro::engine::json::Json::parse(r#"{"scenario":"two_stream","scale":"smoke"}"#)
            .unwrap(),
    )
    .unwrap_err();
    assert!(err.to_string().contains("axes"), "{err}");
}

//! **§VII follow-up** — "More studies, such as spectral analysis of errors
//! in the electric field values, are needed to gain more insight into the
//! DL-based PIC methods."
//!
//! This binary performs that analysis: for each test sample it computes
//! the prediction-error vector `E_pred − E_true`, Fourier-transforms it,
//! and averages the per-mode amplitude over the test set — separately for
//! the MLP and the CNN, on Test Set I and Test Set II. The result shows
//! *where in k-space* each architecture concentrates its error (e.g.
//! whether the physically dominant k₁ mode is predicted better or worse
//! than the noise-dominated high-k tail).
//!
//! Run: `cargo run -p dlpic-bench --release --bin spectral_error [--scale ...]`

use dlpic_analytics::dft::mode_amplitudes;
use dlpic_analytics::plot::{line_plot, PlotOptions};
use dlpic_analytics::series::{write_csv, Table, TimeSeries};
use dlpic_bench::{out_dir, prepare_data, train_arch, Cli, DataBundle};
use dlpic_core::bundle::ModelBundle;
use dlpic_core::phase_space::BinningShape;
use dlpic_dataset::sample::PhaseDataset;
use dlpic_nn::loss::Mse;

/// Mean per-mode amplitude of the prediction error over a dataset.
fn error_spectrum(bundle: &ModelBundle, data: &PhaseDataset) -> Vec<f64> {
    let mut solver = bundle.clone().into_solver().expect("bundle -> solver");
    let n_modes = data.e_cells / 2 + 1;
    let mut acc = vec![0.0f64; n_modes];
    let mut hist = vec![0.0f32; data.spec.cells()];
    for i in 0..data.len() {
        hist.copy_from_slice(data.input_row(i));
        bundle.norm.apply(&mut hist);
        let pred = solver.predict_from_histogram(&hist);
        let err: Vec<f64> = pred
            .iter()
            .zip(data.target_row(i))
            .map(|(&p, &t)| (p - t) as f64)
            .collect();
        for (a, m) in acc.iter_mut().zip(mode_amplitudes(&err)) {
            *a += m;
        }
    }
    for a in &mut acc {
        *a /= data.len() as f64;
    }
    acc
}

fn spectrum_series(name: &str, spectrum: &[f64]) -> TimeSeries {
    TimeSeries::from_data(
        name,
        (0..spectrum.len()).map(|m| m as f64).collect(),
        spectrum.to_vec(),
    )
}

fn main() {
    let cli = Cli::parse();
    println!(
        "== spectral analysis of E-field errors [{} scale] ==\n",
        cli.scale.name()
    );

    eprintln!("generating datasets...");
    let data: DataBundle = prepare_data(cli.scale, BinningShape::Ngp, false);
    eprintln!("training MLP...");
    let mlp = train_arch(
        &cli.scale.mlp_arch(),
        &data,
        &Mse,
        cli.scale.mlp_epochs(),
        cli.scale.learning_rate(),
        0xD1,
        0,
    );
    eprintln!("training CNN...");
    let cnn = train_arch(
        &cli.scale.cnn_arch(),
        &data,
        &Mse,
        cli.scale.cnn_epochs(),
        cli.scale.learning_rate(),
        0xC1,
        0,
    );

    let mlp_i = error_spectrum(&mlp.bundle, &data.test1);
    let mlp_ii = error_spectrum(&mlp.bundle, &data.test2);
    let cnn_i = error_spectrum(&cnn.bundle, &data.test1);
    let cnn_ii = error_spectrum(&cnn.bundle, &data.test2);

    // Table of the first 8 modes + the high-k tail mean.
    let mut table = Table::new(&[
        "mode k",
        "MLP set I",
        "MLP set II",
        "CNN set I",
        "CNN set II",
    ]);
    let f = |v: f64| format!("{v:.6}");
    for m in 0..8.min(mlp_i.len()) {
        table.row(&[
            m.to_string(),
            f(mlp_i[m]),
            f(mlp_ii[m]),
            f(cnn_i[m]),
            f(cnn_ii[m]),
        ]);
    }
    let tail = |s: &[f64]| s[8.min(s.len())..].iter().sum::<f64>() / (s.len() - 8).max(1) as f64;
    table.row(&[
        "8..Nyq mean".into(),
        f(tail(&mlp_i)),
        f(tail(&mlp_ii)),
        f(tail(&cnn_i)),
        f(tail(&cnn_ii)),
    ]);
    println!("{}", table.render());

    let s_mlp_i = spectrum_series("mlp-I", &mlp_i);
    let s_mlp_ii = spectrum_series("mlp-II", &mlp_ii);
    let s_cnn_i = spectrum_series("cnn-I", &cnn_i);
    let s_cnn_ii = spectrum_series("cnn-II", &cnn_ii);
    println!(
        "{}",
        line_plot(
            &[
                ('m', &s_mlp_i),
                ('M', &s_mlp_ii),
                ('c', &s_cnn_i),
                ('C', &s_cnn_ii)
            ],
            &PlotOptions::titled("mean error amplitude per field mode (x-axis: mode number)")
                .log_y(true),
        )
    );

    let csv = out_dir().join(format!("spectral-error-{}.csv", cli.scale.name()));
    write_csv(&csv, &[&s_mlp_i, &s_mlp_ii, &s_cnn_i, &s_cnn_ii]).expect("write CSV");
    println!("wrote {}", csv.display());

    // Where does each architecture put its error?
    let dominant = |s: &[f64]| {
        s.iter()
            .enumerate()
            .skip(1)
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(m, _)| m)
    };
    println!(
        "\ndominant error mode: MLP set II -> k = {:?}, CNN set II -> k = {:?}",
        dominant(&mlp_ii),
        dominant(&cnn_ii)
    );
}

//! **Fig. 4** — validation of the DL-based PIC on the two-stream
//! instability at `v0 = ±0.2`, `vth = 0.025` (parameters *not* in the
//! training set).
//!
//! Top panels: electron phase space of the traditional and DL-based PIC at
//! the end of the run (the "phase-space hole" of the saturated
//! instability). Bottom panel: `E1(t)` of both methods against the
//! linear-theory growth rate `γ = 1/(2√2) ≈ 0.354`.
//!
//! Both methods run the *same* engine scenario; only the [`Backend`]
//! value differs.
//!
//! Run: `cargo run -p dlpic-bench --release --bin fig4 [--scale ...]`

use dlpic_analytics::dispersion::TwoStreamDispersion;
use dlpic_analytics::fit::GrowthFit;
use dlpic_analytics::plot::{line_plot, scatter_density, PlotOptions};
use dlpic_analytics::series::{write_csv, TimeSeries};
use dlpic_bench::{get_or_train_mlp, out_dir, paper_figure_spec, Cli};
use dlpic_repro::engine::{Backend, Engine, Numerics1D};

fn main() {
    let cli = Cli::parse();
    let spec = paper_figure_spec("two_stream", cli.scale);
    let (v0, vth) = (0.2, 0.025);
    println!(
        "== Fig. 4: two-stream validation, v0 = ±{v0}, vth = {vth} [{} scale] ==\n",
        cli.scale.name()
    );

    // The DL electric-field solver (trained on the sweep; cached on disk).
    // The paper's traditional baseline is the "basic NGP scheme" (§II);
    // both methods share the NGP gather so the comparison is apples to
    // apples (the DL method "retains the interpolation step", Fig. 2).
    let mut engine = Engine::new()
        .with_model_1d(get_or_train_mlp(cli.scale, cli.retrain, true))
        .with_numerics_1d(Numerics1D::basic_ngp());

    eprintln!("running traditional PIC (200 steps, 64k particles)...");
    let trad = engine
        .run(&spec, Backend::Traditional1D)
        .expect("traditional run");
    eprintln!("running DL-based PIC (200 steps, 64k particles)...");
    let dl = engine.run(&spec, Backend::Dl1D).expect("dl run");

    // --- Top panels: phase space. -------------------------------------
    let l = dlpic_pic::constants::paper_box_length();
    for (summary, label) in [(&trad, "Traditional PIC"), (&dl, "DL-based PIC (MLP)")] {
        let ps = summary.phase_space.as_ref().expect("particle backend");
        println!(
            "{}",
            scatter_density(
                &ps.x,
                &ps.v,
                (0.0, l),
                (-0.4, 0.4),
                64,
                16,
                &format!("{label} - v0 = {v0}, vth = {vth} (t = 40)")
            )
        );
    }

    // --- Bottom panel: E1 amplitude vs linear theory. ------------------
    let mut e1_trad = trad.history.mode_series(1).expect("mode 1 tracked");
    e1_trad.name = "traditional".into();
    let mut e1_dl = dl.history.mode_series(1).expect("mode 1 tracked");
    e1_dl.name = "dl-mlp".into();

    let gamma_theory = TwoStreamDispersion::new(v0).mode_growth_rate(1, l);
    let fit_trad = trad.growth_rate(1).ok();
    let fit_dl = dl.growth_rate(1).ok();

    // Theory line anchored to the traditional run's fitted intercept.
    let theory = if let Some(f) = &fit_trad {
        let values: Vec<f64> = e1_trad
            .times
            .iter()
            .map(|&t| (f.log_intercept + gamma_theory * t).exp())
            .collect();
        TimeSeries::from_data("linear-theory", e1_trad.times.clone(), values)
    } else {
        TimeSeries::new("linear-theory")
    };

    println!(
        "{}",
        line_plot(
            &[('*', &e1_trad), ('o', &e1_dl), ('-', &theory)],
            &PlotOptions::titled(format!("E1 Amplitude - v0 = {v0}, vth = {vth} (log scale)"))
                .log_y(true)
                .with_y_limits(1e-4, 1.0),
        )
    );

    println!("growth rate of the most unstable mode:");
    println!("  linear theory     : γ = {gamma_theory:.4}");
    let report = |label: &str, fit: &Option<GrowthFit>| match fit {
        Some(f) => println!(
            "  {label:<18}: γ = {:.4}  ({:+.1}% vs theory, r² = {:.3}, t = {:.1}..{:.1})",
            f.gamma,
            (f.gamma - gamma_theory) / gamma_theory * 100.0,
            f.r2,
            f.t_start,
            f.t_end
        ),
        None => println!("  {label:<18}: no exponential-growth phase detected"),
    };
    report("traditional PIC", &fit_trad);
    report("DL-based PIC (MLP)", &fit_dl);

    let csv = out_dir().join(format!("fig4-{}.csv", cli.scale.name()));
    write_csv(&csv, &[&e1_trad, &e1_dl, &theory]).expect("write CSV");
    println!("\nwrote {}", csv.display());

    // Shape verdict: both methods within 25% of the analytic slope (the
    // paper's claim is qualitative slope agreement in the linear phase).
    let ok = |f: &Option<GrowthFit>| {
        f.as_ref()
            .map(|f| (f.gamma - gamma_theory).abs() / gamma_theory < 0.25)
            .unwrap_or(false)
    };
    println!(
        "verdict: traditional {}  |  DL-based {}",
        if ok(&fit_trad) { "PASS" } else { "CHECK" },
        if ok(&fit_dl) { "PASS" } else { "CHECK" },
    );
}

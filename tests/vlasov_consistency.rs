//! Integration test: the continuum Vlasov solver and the particle PIC
//! solver are independent discretizations of the same physics — their
//! agreement (with each other and with analytic theory) is the strongest
//! correctness evidence either can get.

use dlpic_repro::analytics::dispersion::TwoStreamDispersion;
use dlpic_repro::analytics::fit::{fit_growth_rate, GrowthFitOptions};
use dlpic_repro::pic::presets::paper_config;
use dlpic_repro::pic::simulation::Simulation;
use dlpic_repro::pic::solver::TraditionalSolver;
use dlpic_repro::vlasov::{VlasovConfig, VlasovSolver};

#[test]
fn vlasov_initial_field_matches_gauss_law_exactly() {
    // f = (1 + ε·cos(k₁x))·g(v) ⇒ ρ = −ε·cos(k₁x) ⇒ |E₁| = ε/k₁.
    let eps = 1e-3;
    let mut cfg = VlasovConfig::two_stream(0.2, 0.02);
    cfg.perturbation = eps;
    let solver = VlasovSolver::new(cfg);
    let k1 = 3.06;
    let expect = eps / k1;
    let measured = solver.field_mode(1);
    assert!(
        (measured - expect).abs() / expect < 0.01,
        "E1 = {measured}, Gauss law says {expect}"
    );
}

#[test]
fn both_solvers_measure_the_same_growth_rate() {
    let (v0, vth) = (0.2, 0.02);
    let theory = TwoStreamDispersion::new(v0).growth_rate(3.06);

    // Continuum run.
    let mut vlasov = VlasovSolver::new(VlasovConfig::two_stream(v0, vth));
    let mut vt = Vec::new();
    let mut va = Vec::new();
    for _ in 0..600 {
        vt.push(vlasov.time());
        va.push(vlasov.field_mode(1));
        vlasov.step();
    }
    let vfit = fit_growth_rate(&vt, &va, GrowthFitOptions::default()).expect("vlasov growth");

    // Particle run, same physics.
    let mut pic = Simulation::new(
        paper_config(v0, vth, 2024),
        Box::new(TraditionalSolver::paper_default()),
    );
    pic.run();
    let e1 = pic.history().mode_series(1).unwrap();
    let pfit =
        fit_growth_rate(&e1.times, &e1.values, GrowthFitOptions::default()).expect("pic growth");

    // Each within 20% of theory, and within 15% of each other.
    for (name, fit) in [("vlasov", &vfit), ("pic", &pfit)] {
        let rel = (fit.gamma - theory).abs() / theory;
        assert!(rel < 0.2, "{name}: γ = {} vs theory {theory}", fit.gamma);
    }
    let cross = (vfit.gamma - pfit.gamma).abs() / theory;
    assert!(
        cross < 0.15,
        "solvers disagree: vlasov {} vs pic {}",
        vfit.gamma,
        pfit.gamma
    );
    // The continuum run must fit more cleanly (no shot noise).
    assert!(vfit.r2 >= pfit.r2 - 0.01, "vlasov fit unexpectedly noisy");
}

#[test]
fn both_solvers_agree_the_cold_beam_case_is_stable() {
    // v0 = 0.4: physically stable. The continuum solver has no particle
    // noise, so *nothing* should grow; the PIC may heat numerically (its
    // Fig. 6 artifact) but mode 1 stays at the noise floor in both.
    let mut vlasov = VlasovSolver::new(VlasovConfig::two_stream(0.4, 0.02));
    let e0 = vlasov.field_mode(1);
    vlasov.run(400);
    assert!(vlasov.field_mode(1) < 5.0 * e0, "vlasov cold beams grew");

    let mut pic = Simulation::new(
        paper_config(0.4, 0.0, 11),
        Box::new(TraditionalSolver::paper_default()),
    );
    pic.run();
    let e1 = pic.history().mode_series(1).unwrap();
    let floor = e1.values[..10].iter().copied().fold(f64::MIN, f64::max);
    let peak = e1.values.iter().copied().fold(f64::MIN, f64::max);
    assert!(
        peak < 20.0 * floor,
        "pic cold beams grew: {floor} -> {peak}"
    );
}

#[test]
fn vlasov_conserves_what_pic_conserves() {
    let mut s = VlasovSolver::new(VlasovConfig::two_stream(0.2, 0.02));
    let m0 = s.mass();
    let p0 = s.momentum();
    let e0 = s.total_energy();
    s.run(400); // through saturation
    assert!(
        (s.mass() - m0).abs() / m0 < 1e-4,
        "mass: {m0} -> {}",
        s.mass()
    );
    assert!(
        (s.momentum() - p0).abs() < 1e-6,
        "momentum: {p0} -> {}",
        s.momentum()
    );
    // Semi-Lagrangian advection is slightly diffusive; energy drifts by a
    // few percent through saturation, like the PIC does.
    let rel = (s.total_energy() - e0).abs() / e0;
    assert!(rel < 0.08, "energy drift {rel}");
}

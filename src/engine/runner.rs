//! The [`Engine`]: validates a scenario×backend pairing, builds the
//! matching solver stack and hands it out as an incremental
//! [`Session`] — or drives one to completion via the [`Engine::run`]
//! convenience.
//!
//! Every backend follows the same protocol: build → step `n_steps` times →
//! final snapshot, emitting one [`Sample`](super::Sample) per recorded
//! diagnostics row (so a full run yields `n_steps + 1` samples, matching
//! the solver crates' long-standing convention). The per-backend stepping
//! logic lives in [`super::session`]; this module owns configuration
//! (models, numerics, observers) and solver construction.

use super::backend::Backend;
use super::dl::{self, Dl2DModel};
use super::ensemble::{Ensemble, SweepSpec};
use super::error::EngineError;
use super::fault::FaultPlan;
use super::observer::{Observer, RunSummary};
use super::session::{
    BackendSession, Checkpoint, DdecompSession, Pic1DSession, Pic2DSession, Session, VlasovSession,
};
use super::spec::ScenarioSpec;
use crate::core::presets::Scale;
use crate::core::ModelBundle;
use crate::pic::solver::{FieldSolver, PoissonKind, TraditionalSolver};
use crate::pic::Shape;
use crate::pic2d::solver2d::FieldSolver2D;
use crate::pic2d::TraditionalSolver2D;

/// Numerical options of the 1-D particle backends that the paper's figure
/// experiments vary; the scenario spec stays purely physical. Defaults
/// match `TraditionalSolver::paper_default()`: CIC deposit and gather,
/// finite-difference Poisson.
#[derive(Debug, Clone, Copy)]
pub struct Numerics1D {
    /// Shape used to gather E to the particles (shared by all backends).
    pub gather_shape: Shape,
    /// Deposition shape of the traditional solver (keep equal to
    /// `gather_shape` for momentum conservation).
    pub deposit_shape: Shape,
    /// Poisson backend of the traditional solver.
    pub poisson: PoissonKind,
}

impl Default for Numerics1D {
    fn default() -> Self {
        Self {
            gather_shape: Shape::Cic,
            deposit_shape: Shape::Cic,
            poisson: PoissonKind::FiniteDifference,
        }
    }
}

impl Numerics1D {
    /// The paper §II "basic NGP scheme" — the traditional baseline of the
    /// figure experiments, which exhibits the cold-beam instability most
    /// clearly.
    pub fn basic_ngp() -> Self {
        Self {
            gather_shape: Shape::Ngp,
            deposit_shape: Shape::Ngp,
            poisson: PoissonKind::FiniteDifference,
        }
    }
}

/// The facade entry point: holds optional DL models and observers, builds
/// [`Session`]s for any compatible scenario×backend pairing, and runs them
/// to completion on request.
#[derive(Default)]
pub struct Engine {
    model_1d: Option<ModelBundle>,
    model_2d: Option<Dl2DModel>,
    numerics_1d: Numerics1D,
    observers: Vec<Box<dyn Observer>>,
    faults: FaultPlan,
}

impl Engine {
    /// An engine with no models and no observers.
    pub fn new() -> Self {
        Self::default()
    }

    /// Uses this trained 1-D bundle for `Backend::Dl1D` runs.
    pub fn with_model_1d(mut self, bundle: ModelBundle) -> Self {
        self.model_1d = Some(bundle);
        self
    }

    /// Uses this trained 2-D model for `Backend::Dl2D` runs.
    pub fn with_model_2d(mut self, model: Dl2DModel) -> Self {
        self.model_2d = Some(model);
        self
    }

    /// Overrides the 1-D numerical options (gather/deposit shapes, Poisson
    /// backend).
    pub fn with_numerics_1d(mut self, numerics: Numerics1D) -> Self {
        self.numerics_1d = numerics;
        self
    }

    /// Registers a run monitor. Engine-held observers follow every
    /// [`Self::run`]/[`Self::run_named`] call; sessions started with
    /// [`Self::start`] attach their own via
    /// [`Session::attach_observer`].
    pub fn with_observer(mut self, observer: Box<dyn Observer>) -> Self {
        self.observers.push(observer);
        self
    }

    /// True when a trained 1-D model is configured.
    pub fn has_model_1d(&self) -> bool {
        self.model_1d.is_some()
    }

    /// Injects deterministic faults into matching sessions (supervision
    /// tests and `dlpic-serve --inject`).
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = plan;
        self
    }

    /// Builds the solver stack for `spec` on `backend` and returns it as
    /// a steppable [`Session`] positioned before the first step — the
    /// incremental primitive behind [`Self::run`].
    pub fn start(&self, spec: &ScenarioSpec, backend: Backend) -> Result<Session, EngineError> {
        spec.validate()?;
        backend.supports(spec)?;
        // Clock from before the build: wall_seconds includes solver-stack
        // construction, matching the pre-session Engine::run.
        // analyze:allow(no-wallclock-in-engine): feeds only the wall_seconds diagnostic in RunSummary, never simulation state — checkpoints exclude it
        let started = std::time::Instant::now();
        let inner: Box<dyn BackendSession> = match backend {
            Backend::Traditional1D | Backend::Dl1D => Box::new(Pic1DSession::new(
                spec,
                self.build_1d_solver(spec, backend)?,
                self.numerics_1d.gather_shape,
            )),
            Backend::Traditional2D | Backend::Dl2D => Box::new(Pic2DSession::new(
                spec,
                self.build_2d_solver(spec, backend)?,
            )),
            Backend::Vlasov => Box::new(VlasovSession::new(spec)),
            Backend::Ddecomp { n_ranks } => {
                Box::new(DdecompSession::new(spec, n_ranks, self.numerics_1d)?)
            }
        };
        let inner = self.faults.wrap(&spec.name, inner);
        Ok(Session::new(spec.clone(), backend, inner, started))
    }

    /// Rebuilds a session from a [`Checkpoint`] (the solver stack is
    /// reconstructed from the embedded spec, then the mutable state and
    /// recorded history are restored) and returns it ready to continue.
    /// For deterministic solvers the resumed trajectory is bit-identical
    /// to the uninterrupted run.
    pub fn resume(&self, checkpoint: &Checkpoint) -> Result<Session, EngineError> {
        let mut session = self.start(&checkpoint.spec, checkpoint.backend)?;
        session.restore(checkpoint)?;
        Ok(session)
    }

    /// Starts one session per spec and returns them as an [`Ensemble`] —
    /// the fleet primitive: lockstep waves, batched DL inference within
    /// each wave, multi-core [`Ensemble::run_to_end`]. All sessions are
    /// built by this engine, so every DL session of a dimension shares
    /// the engine's (single) model — the invariant cohort batching needs.
    pub fn start_ensemble(
        &self,
        specs: &[ScenarioSpec],
        backend: Backend,
    ) -> Result<Ensemble, EngineError> {
        let sessions = specs
            .iter()
            .map(|spec| self.start(spec, backend))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Ensemble::new(sessions))
    }

    /// Expands a [`SweepSpec`] (parameter grid × seed fan) and starts the
    /// resulting fleet — `start_ensemble` over [`SweepSpec::specs`].
    pub fn start_sweep(
        &self,
        sweep: &SweepSpec,
        backend: Backend,
    ) -> Result<Ensemble, EngineError> {
        self.start_ensemble(&sweep.specs()?, backend)
    }

    /// Rebuilds a fleet from per-session checkpoints (the inverse of
    /// [`Ensemble::checkpoints`]); each run resumes bit-identically, and
    /// mixed backends are fine.
    pub fn resume_ensemble(&self, checkpoints: &[Checkpoint]) -> Result<Ensemble, EngineError> {
        let sessions = checkpoints
            .iter()
            .map(|c| self.resume(c))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Ensemble::new(sessions))
    }

    /// Runs a registry scenario by name.
    pub fn run_named(
        &mut self,
        name: &str,
        scale: Scale,
        backend: Backend,
    ) -> Result<RunSummary, EngineError> {
        let spec = super::registry::scenario(name, scale)?;
        self.run(&spec, backend)
    }

    /// Runs a scenario on a backend to completion: a thin wrapper that
    /// starts a [`Session`], lends it the engine's observers, steps it to
    /// `n_steps` and finishes it.
    pub fn run(
        &mut self,
        spec: &ScenarioSpec,
        backend: Backend,
    ) -> Result<RunSummary, EngineError> {
        let mut session = self.start(spec, backend)?;
        session.attach_observers(std::mem::take(&mut self.observers));
        session.run_to_end();
        let (summary, observers) = session.finish_detach();
        self.observers = observers;
        Ok(summary)
    }

    fn build_1d_solver(
        &self,
        spec: &ScenarioSpec,
        backend: Backend,
    ) -> Result<Box<dyn FieldSolver>, EngineError> {
        let n = &self.numerics_1d;
        match backend {
            Backend::Traditional1D => Ok(Box::new(TraditionalSolver::new(
                n.deposit_shape,
                n.poisson,
                1.0,
            ))),
            Backend::Dl1D => {
                let ncells = spec.domain.cells();
                let output = match &self.model_1d {
                    Some(bundle) => dl::bundle_output_cells(bundle),
                    None => spec.scale.mlp_arch().output_len(),
                };
                if output != ncells {
                    return Err(EngineError::Incompatible {
                        scenario: spec.name.clone(),
                        backend: backend.name(),
                        why: format!(
                            "DL solver predicts {output} cells but the domain has {ncells}"
                        ),
                    });
                }
                match &self.model_1d {
                    Some(bundle) => Ok(Box::new(bundle.clone().into_solver()?)),
                    None => Ok(Box::new(dl::untrained_1d(spec.scale))),
                }
            }
            _ => unreachable!("1-D solver for non-1-D backend"),
        }
    }

    fn build_2d_solver(
        &self,
        spec: &ScenarioSpec,
        backend: Backend,
    ) -> Result<Box<dyn FieldSolver2D>, EngineError> {
        match backend {
            Backend::Traditional2D => Ok(Box::new(TraditionalSolver2D::default_config())),
            Backend::Dl2D => match &self.model_2d {
                Some(model) => Ok(Box::new(model.into_solver(&spec.grid_2d())?)),
                None => Ok(Box::new(dl::untrained_2d(spec.scale, &spec.grid_2d()))),
            },
            _ => unreachable!("2-D solver for non-2-D backend"),
        }
    }
}

/// One-shot convenience: runs `spec` on `backend` with no observers and no
/// trained models (DL backends fall back to untrained networks).
pub fn run(spec: &ScenarioSpec, backend: Backend) -> Result<RunSummary, EngineError> {
    Engine::new().run(spec, backend)
}

/// One-shot convenience: runs a registry scenario by name.
pub fn run_scenario(name: &str, scale: Scale, backend: Backend) -> Result<RunSummary, EngineError> {
    Engine::new().run_named(name, scale, backend)
}

/// One-shot convenience: starts a session with no observers and no
/// trained models (the free-function form of [`Engine::start`]).
pub fn start(spec: &ScenarioSpec, backend: Backend) -> Result<Session, EngineError> {
    Engine::new().start(spec, backend)
}

//! Single-precision matrix kernels.
//!
//! Three GEMM variants cover everything dense layers need:
//!
//! * [`matmul_nn`] — `C = A·B` (forward pass),
//! * [`matmul_tn`] — `C = Aᵀ·B` (weight gradients `dW = Xᵀ·dY`),
//! * [`matmul_nt`] — `C = A·Bᵀ` (input gradients `dX = dY·Wᵀ`),
//!
//! plus two *implicit-im2col* convolution kernels that run the same
//! register tiles directly over a zero-padded image, with the patch
//! matrix described by per-row base offsets instead of being packed:
//!
//! * [`conv_gemm`] — forward / input-gradient convolution as a GEMM whose
//!   B rows are windows of the padded planes,
//! * [`conv_dw_accum`] — the weight-gradient correlation `dW += dY·colsᵀ`
//!   against the same virtual patch matrix.
//!
//! Two code paths exist for the `nn`/`tn`/conv kernels:
//!
//! * a **portable** path: cache-blocked 4×16 register tiles (64 scalar
//!   accumulators — vectorized by LLVM at whatever width the target
//!   offers) with axpy/dot fallbacks for edge rows/columns, and
//! * an **AVX-512** path (x86-64 only, runtime-detected via
//!   `avx512f`): explicit 8×32 zmm tiles. LLVM auto-vectorizes the
//!   portable tiles to 256-bit ymm even on AVX-512 hardware, which
//!   leaves half the FMA width and most of the register file unused —
//!   measured on the dev machine the explicit tiles run the DL-solver
//!   shapes at 2.3–2.4× the portable path (≈105 vs ≈45 GFLOP/s).
//!
//! Both paths compute every C element as one sequential product-sum over
//! `k` in the same order; they differ only in FMA contraction (the
//! portable path rounds after each multiply, fused multiply-add does
//! not), so results agree to normal f32 tolerance but are not bitwise
//! identical across machines. `nt` keeps eight 8-wide lane accumulators
//! per 2×4 output tile so the dot-product reduction vectorizes without
//! `-ffast-math`.
//!
//! Accumulation order is deterministic for a given shape and machine.
//! Stronger, [`matmul_nn`] is **row-stable**: row `i` of an `m`-row
//! product is bitwise identical for every `m` (on a given machine),
//! because each row is always one sequential chain over `k` with the same
//! contraction — the 8-row zmm tiles, the [`gemv`] remainder-row kernel
//! and the portable tile/axpy paths all agree element by element. The
//! ensemble scheduler relies on this: batching `m` concurrent DL field
//! solves into one GEMM must reproduce each solo solve bit-for-bit.

// analyze:hot — GEMM/conv micro-kernels are the inference hot path; loop
// bodies here must stay allocation-free (workspaces are caller-provided).

/// Rows per register tile of the `nn`/`tn` micro-kernels.
const MR: usize = 4;
/// Columns per register tile of the `nn`/`tn` micro-kernels.
const NR: usize = 16;
/// f32 lanes per accumulator vector of the `nt` micro-kernel.
const LANES: usize = 8;

/// True when the AVX-512 kernels can run on this machine (always false
/// off x86-64). The first call pays a `cpuid`; the result is cached by
/// `std`.
#[inline]
pub fn avx512_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        is_x86_feature_detected!("avx512f")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// The kernel path the dispatcher picks on this machine — recorded by the
/// throughput benches so regression gates can tell kernel-path changes
/// from real regressions.
pub fn simd_level() -> &'static str {
    if avx512_available() {
        "avx512f"
    } else {
        "portable"
    }
}

/// `C = A·B` where A is `m×k`, B is `k×n`, C is `m×n`. C is overwritten.
///
/// # Panics
/// Panics if slice lengths disagree with the dimensions.
pub fn matmul_nn(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k, "A size");
    assert_eq!(b.len(), k * n, "B size");
    assert_eq!(c.len(), m * n, "C size");
    if n == 0 || m == 0 {
        return;
    }
    #[cfg(target_arch = "x86_64")]
    if n >= 16 && avx512_available() {
        let (m8, n16) = (m - m % 8, n - n % 16);
        if m8 > 0 {
            // SAFETY: avx512f was detected and the slice sizes were
            // asserted.
            unsafe { avx512::nn_main(a, b, c, m, k, n) };
        }
        // Remainder rows (m % 8, and all of m < 8) go through the GEMV
        // kernel, whose per-element FMA chains match the 8-row tiles
        // exactly — see the module docs on row stability.
        for i in m8..m {
            // SAFETY: avx512f was detected and the row slices have the
            // lengths gemv_main requires (asserted above).
            unsafe { avx512::gemv_main(&a[i * k..(i + 1) * k], b, &mut c[i * n..(i + 1) * n], n) };
        }
        if n16 < n {
            for i in 0..m {
                axpy_rows(a, b, &mut c[i * n..(i + 1) * n], i, 1, k, n, n16);
            }
        }
        return;
    }
    matmul_nn_portable(a, b, c, m, k, n);
}

/// `c = a·B` for one row: A is `1×k`, B is `k×n`, `c` is `1×n` — the
/// batch-1 inference shape of the DL field solvers. On AVX-512 machines
/// the row runs a `k`-outer streaming zmm FMA kernel whose per-element
/// chains equal one row of the 8-row tiles (so a solo solve is bitwise
/// identical to any row of a batched solve); elsewhere it takes the
/// portable axpy path, which is already element-order-identical to the
/// portable tiles.
///
/// Measured on the dev machine vs the previous autovectorized-axpy m = 1
/// path: +20–40% on cache-resident DL shapes (1024×256, 256×64), ~−12%
/// on the DRAM-bound paper shape (4096×512), where any GEMV is pinned at
/// memory bandwidth — the FMA chain there is the price of exact
/// batchability, and the ensemble's batched GEMM (which streams the
/// weights once for the whole fleet) is the actual lever.
///
/// Equivalent to `matmul_nn(a, b, c, 1, k, n)` — provided as a named
/// entry point for the solo-inference hot path.
///
/// # Panics
/// Panics if slice lengths disagree with the dimensions.
pub fn gemv(a: &[f32], b: &[f32], c: &mut [f32], k: usize, n: usize) {
    matmul_nn(a, b, c, 1, k, n);
}

/// The portable register-tiled path of [`matmul_nn`] — public so
/// equivalence tests can pin the AVX-512 path against it.
///
/// # Panics
/// Panics if slice lengths disagree with the dimensions.
pub fn matmul_nn_portable(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k, "A size");
    assert_eq!(b.len(), k * n, "B size");
    assert_eq!(c.len(), m * n, "C size");
    if n == 0 || m == 0 {
        return;
    }
    let main_n = n - n % NR;
    let mut i0 = 0;
    for c_block in c.chunks_mut(MR * n) {
        let rows = c_block.len() / n;
        if rows == MR {
            let a_rows: [&[f32]; MR] = [
                &a[i0 * k..(i0 + 1) * k],
                &a[(i0 + 1) * k..(i0 + 2) * k],
                &a[(i0 + 2) * k..(i0 + 3) * k],
                &a[(i0 + 3) * k..(i0 + 4) * k],
            ];
            let mut j0 = 0;
            while j0 < main_n {
                let mut acc = [[0.0f32; NR]; MR];
                for kk in 0..k {
                    let bb: &[f32; NR] = b[kk * n + j0..kk * n + j0 + NR].try_into().unwrap();
                    for r in 0..MR {
                        let av = a_rows[r][kk];
                        for (ac, &bv) in acc[r].iter_mut().zip(bb) {
                            *ac += av * bv;
                        }
                    }
                }
                for (r, acc_row) in acc.iter().enumerate() {
                    c_block[r * n + j0..r * n + j0 + NR].copy_from_slice(acc_row);
                }
                j0 += NR;
            }
            if main_n < n {
                axpy_rows(a, b, c_block, i0, rows, k, n, main_n);
            }
        } else {
            axpy_rows(a, b, c_block, i0, rows, k, n, 0);
        }
        i0 += rows;
    }
}

/// The pre-tiling axpy form (`C_row += a_ik·B_row`), restricted to the
/// columns `j_start..n` — handles edge rows and edge columns of
/// [`matmul_nn`].
#[allow(clippy::too_many_arguments)]
fn axpy_rows(
    a: &[f32],
    b: &[f32],
    c_block: &mut [f32],
    i0: usize,
    rows: usize,
    k: usize,
    n: usize,
    j_start: usize,
) {
    for r in 0..rows {
        let c_row = &mut c_block[r * n + j_start..r * n + n];
        c_row.fill(0.0);
        let a_row = &a[(i0 + r) * k..(i0 + r + 1) * k];
        for (kk, &aik) in a_row.iter().enumerate() {
            if aik == 0.0 {
                continue;
            }
            let b_row = &b[kk * n + j_start..kk * n + n];
            for (cv, &bv) in c_row.iter_mut().zip(b_row) {
                *cv += aik * bv;
            }
        }
    }
}

/// `C = Aᵀ·B` where A is `k×m`, B is `k×n`, C is `m×n`. C is overwritten.
///
/// This is the weight-gradient kernel: `dW[in, out] = Xᵀ[in, batch]·dY[batch, out]`.
///
/// # Panics
/// Panics if slice lengths disagree with the dimensions.
pub fn matmul_tn(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), k * m, "A size");
    assert_eq!(b.len(), k * n, "B size");
    assert_eq!(c.len(), m * n, "C size");
    if n == 0 || m == 0 {
        return;
    }
    #[cfg(target_arch = "x86_64")]
    if m >= 8 && n >= 16 && avx512_available() {
        // SAFETY: avx512f was detected and the slice sizes were asserted.
        unsafe { avx512::tn_main(a, b, c, m, k, n) };
        let (m8, n16) = (m - m % 8, n - n % 16);
        if n16 < n {
            for i in 0..m8 {
                axpy_rows_tn(a, b, &mut c[i * n..(i + 1) * n], i, 1, m, k, n, n16);
            }
        }
        if m8 < m {
            axpy_rows_tn(a, b, &mut c[m8 * n..], m8, m - m8, m, k, n, 0);
        }
        return;
    }
    matmul_tn_portable(a, b, c, m, k, n);
}

/// The portable register-tiled path of [`matmul_tn`] — public so
/// equivalence tests can pin the AVX-512 path against it.
///
/// # Panics
/// Panics if slice lengths disagree with the dimensions.
pub fn matmul_tn_portable(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), k * m, "A size");
    assert_eq!(b.len(), k * n, "B size");
    assert_eq!(c.len(), m * n, "C size");
    if n == 0 || m == 0 {
        return;
    }
    let main_n = n - n % NR;
    let mut i0 = 0;
    for c_block in c.chunks_mut(MR * n) {
        let rows = c_block.len() / n;
        if rows == MR {
            // A's tile rows are contiguous: a[kk·m + i0 .. + MR].
            let mut j0 = 0;
            while j0 < main_n {
                let mut acc = [[0.0f32; NR]; MR];
                for kk in 0..k {
                    let aa: &[f32; MR] = a[kk * m + i0..kk * m + i0 + MR].try_into().unwrap();
                    let bb: &[f32; NR] = b[kk * n + j0..kk * n + j0 + NR].try_into().unwrap();
                    for r in 0..MR {
                        let av = aa[r];
                        for (ac, &bv) in acc[r].iter_mut().zip(bb) {
                            *ac += av * bv;
                        }
                    }
                }
                for (r, acc_row) in acc.iter().enumerate() {
                    c_block[r * n + j0..r * n + j0 + NR].copy_from_slice(acc_row);
                }
                j0 += NR;
            }
            if main_n < n {
                axpy_rows_tn(a, b, c_block, i0, rows, m, k, n, main_n);
            }
        } else {
            axpy_rows_tn(a, b, c_block, i0, rows, m, k, n, 0);
        }
        i0 += rows;
    }
}

/// Edge-row/edge-column axpy form of [`matmul_tn`] (A accessed as
/// `a[kk·m + i]`), restricted to columns `j_start..n`.
#[allow(clippy::too_many_arguments)]
fn axpy_rows_tn(
    a: &[f32],
    b: &[f32],
    c_block: &mut [f32],
    i0: usize,
    rows: usize,
    m: usize,
    k: usize,
    n: usize,
    j_start: usize,
) {
    for r in 0..rows {
        c_block[r * n + j_start..r * n + n].fill(0.0);
    }
    for kk in 0..k {
        let b_row = &b[kk * n + j_start..kk * n + n];
        for r in 0..rows {
            let aik = a[kk * m + i0 + r];
            if aik == 0.0 {
                continue;
            }
            let c_row = &mut c_block[r * n + j_start..r * n + n];
            for (cv, &bv) in c_row.iter_mut().zip(b_row) {
                *cv += aik * bv;
            }
        }
    }
}

/// `C = A·Bᵀ` where A is `m×k`, B is `n×k`, C is `m×n`. C is overwritten.
///
/// This is the input-gradient kernel: `dX[batch, in] = dY[batch, out]·Wᵀ`
/// with `W` stored `[in, out]` passed via its transpose-free rows.
///
/// # Panics
/// Panics if slice lengths disagree with the dimensions.
pub fn matmul_nt(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k, "A size");
    assert_eq!(b.len(), n * k, "B size");
    assert_eq!(c.len(), m * n, "C size");
    if n == 0 || m == 0 {
        return;
    }
    const DR: usize = 2; // output rows per tile
    const DC: usize = 4; // output cols per tile
    let main_n = n - n % DC;
    let main_k = k - k % LANES;
    let mut i0 = 0;
    for c_block in c.chunks_mut(DR * n) {
        let rows = c_block.len() / n;
        if rows == DR {
            let a0 = &a[i0 * k..(i0 + 1) * k];
            let a1 = &a[(i0 + 1) * k..(i0 + 2) * k];
            let mut j0 = 0;
            while j0 < main_n {
                // Eight 8-lane accumulators: the reduction over k stays
                // vectorized without reassociation flags.
                let mut acc = [[[0.0f32; LANES]; DC]; DR];
                let [acc0, acc1] = &mut acc;
                let mut kb = 0;
                while kb < main_k {
                    let av0: &[f32; LANES] = a0[kb..kb + LANES].try_into().unwrap();
                    let av1: &[f32; LANES] = a1[kb..kb + LANES].try_into().unwrap();
                    for (cdx, (c0, c1)) in acc0.iter_mut().zip(acc1.iter_mut()).enumerate() {
                        let p = (j0 + cdx) * k + kb;
                        let bv: &[f32; LANES] = b[p..p + LANES].try_into().unwrap();
                        for l in 0..LANES {
                            c0[l] += av0[l] * bv[l];
                            c1[l] += av1[l] * bv[l];
                        }
                    }
                    kb += LANES;
                }
                for kk in main_k..k {
                    for (cdx, (c0, c1)) in acc0.iter_mut().zip(acc1.iter_mut()).enumerate() {
                        let bv = b[(j0 + cdx) * k + kk];
                        c0[0] += a0[kk] * bv;
                        c1[0] += a1[kk] * bv;
                    }
                }
                for (r, acc_row) in acc.iter().enumerate() {
                    for (cdx, lanes) in acc_row.iter().enumerate() {
                        c_block[r * n + j0 + cdx] = lanes.iter().sum();
                    }
                }
                j0 += DC;
            }
            for j in main_n..n {
                let b_row = &b[j * k..(j + 1) * k];
                c_block[j] = dot(a0, b_row);
                c_block[n + j] = dot(a1, b_row);
            }
        } else {
            for r in 0..rows {
                let a_row = &a[(i0 + r) * k..(i0 + r + 1) * k];
                for (j, cv) in c_block[r * n..(r + 1) * n].iter_mut().enumerate() {
                    *cv = dot(a_row, &b[j * k..(j + 1) * k]);
                }
            }
        }
        i0 += rows;
    }
}

/// Lane-accumulated dot product (vectorizes without fast-math) — the edge
/// path of [`matmul_nt`].
fn dot(a: &[f32], b: &[f32]) -> f32 {
    let mut lanes = [0.0f32; LANES];
    let a_chunks = a.chunks_exact(LANES);
    let b_chunks = b.chunks_exact(LANES);
    let a_rem = a_chunks.remainder();
    let b_rem = b_chunks.remainder();
    for (x, y) in a_chunks.zip(b_chunks) {
        for l in 0..LANES {
            lanes[l] += x[l] * y[l];
        }
    }
    let mut s: f32 = lanes.iter().sum();
    for (x, y) in a_rem.iter().zip(b_rem) {
        s += x * y;
    }
    s
}

/// Adds a bias row to every row of a `m×n` matrix.
///
/// # Panics
/// Panics if sizes disagree.
pub fn add_bias(c: &mut [f32], bias: &[f32], m: usize, n: usize) {
    assert_eq!(c.len(), m * n, "C size");
    assert_eq!(bias.len(), n, "bias size");
    for row in c.chunks_mut(n) {
        for (cv, &bv) in row.iter_mut().zip(bias) {
            *cv += bv;
        }
    }
}

/// Column sums of a `m×n` matrix, accumulated into `out` (bias gradients).
///
/// # Panics
/// Panics if sizes disagree.
pub fn col_sums_into(c: &[f32], out: &mut [f32], m: usize, n: usize) {
    assert_eq!(c.len(), m * n, "C size");
    assert_eq!(out.len(), n, "out size");
    for row in c.chunks(n) {
        for (o, &v) in out.iter_mut().zip(row) {
            *o += v;
        }
    }
}

/// Implicit-im2col convolution GEMM over one zero-padded sample.
///
/// Computes, for every output channel `i < m`, output row `oy < h` and
/// output column `ox < w`:
///
/// ```text
/// out[i·h·w + oy·w + ox] = Σ_kk  a[i·k + kk] · pad[boff[kk] + oy·pw + ox]
/// ```
///
/// which is exactly `C = A·cols` with the patch-column matrix `cols`
/// *described* by the `boff` base offsets into the padded image instead
/// of being packed: row `kk` of `cols` restricted to output row `oy` is
/// the contiguous window `pad[boff[kk] + oy·pw ..][..w]`. For a
/// same-padded k×k convolution the caller sets
/// `boff[(c·k + ky)·k + kx] = (c·ph + ky)·pw + kx` over a
/// `[channels, ph, pw]` padded buffer. Accumulation order over `kk`
/// matches a packed im2col GEMM.
///
/// `out` is overwritten; with `bias` given, output channel `i` starts
/// from `bias[i]` instead of zero (the forward pass fused, saving one
/// full pass over the output). Runs the AVX-512 tiles when available,
/// the portable 4×16 tiles otherwise.
///
/// # Panics
/// Panics if slice lengths disagree with the dimensions or an offset
/// window would fall outside `pad`.
// The eight arguments are the convolution geometry; a struct would only
// rename the same numbers in the hot loop.
#[allow(clippy::too_many_arguments)]
pub fn conv_gemm(
    a: &[f32],
    pad: &[f32],
    boff: &[usize],
    out: &mut [f32],
    m: usize,
    k: usize,
    h: usize,
    w: usize,
    pw: usize,
    bias: Option<&[f32]>,
) {
    assert_eq!(a.len(), m * k, "A size");
    assert_eq!(boff.len(), k, "offset count");
    assert_eq!(out.len(), m * h * w, "out size");
    assert!(pw >= w, "padded row narrower than output row");
    if let Some(b) = bias {
        assert_eq!(b.len(), m, "bias size");
    }
    if h == 0 || w == 0 || m == 0 {
        return;
    }
    if let Some(&max_off) = boff.iter().max() {
        assert!(
            max_off + (h - 1) * pw + w <= pad.len(),
            "offset window outside padded buffer"
        );
    }
    #[cfg(target_arch = "x86_64")]
    if w >= 16 && avx512_available() {
        // SAFETY: avx512f was detected and the window bounds were asserted.
        unsafe { avx512::conv_main(a, pad, boff, out, m, k, h, w, pw, bias) };
        let w16 = w - w % 16;
        if w16 < w {
            conv_rows_axpy(a, pad, boff, out, 0, m, k, h, w, pw, w16, bias);
        }
        return;
    }
    conv_gemm_portable(a, pad, boff, out, m, k, h, w, pw, bias);
}

/// Portable 4×16-tile path of [`conv_gemm`].
#[allow(clippy::too_many_arguments)]
fn conv_gemm_portable(
    a: &[f32],
    pad: &[f32],
    boff: &[usize],
    out: &mut [f32],
    m: usize,
    k: usize,
    h: usize,
    w: usize,
    pw: usize,
    bias: Option<&[f32]>,
) {
    let hw = h * w;
    let (m4, w16) = (m - m % MR, w - w % NR);
    for oy in 0..h {
        let bsh = oy * pw;
        let mut i0 = 0;
        while i0 < m4 {
            let mut j0 = 0;
            while j0 < w16 {
                let mut acc = [[0.0f32; NR]; MR];
                if let Some(b) = bias {
                    for (r, row) in acc.iter_mut().enumerate() {
                        row.fill(b[i0 + r]);
                    }
                }
                for (kk, &off) in boff.iter().enumerate() {
                    let bb: &[f32; NR] =
                        pad[off + bsh + j0..off + bsh + j0 + NR].try_into().unwrap();
                    for r in 0..MR {
                        let av = a[(i0 + r) * k + kk];
                        for (ac, &bv) in acc[r].iter_mut().zip(bb) {
                            *ac += av * bv;
                        }
                    }
                }
                for (r, acc_row) in acc.iter().enumerate() {
                    let at = (i0 + r) * hw + oy * w + j0;
                    out[at..at + NR].copy_from_slice(acc_row);
                }
                j0 += NR;
            }
            i0 += MR;
        }
    }
    if w16 < w {
        conv_rows_axpy(a, pad, boff, out, 0, m4, k, h, w, pw, w16, bias);
    }
    if m4 < m {
        conv_rows_axpy(a, pad, boff, out, m4, m, k, h, w, pw, 0, bias);
    }
}

/// Edge path of [`conv_gemm`]: axpy form over output rows `i0..i1`,
/// columns `j_start..w`.
#[allow(clippy::too_many_arguments)]
fn conv_rows_axpy(
    a: &[f32],
    pad: &[f32],
    boff: &[usize],
    out: &mut [f32],
    i0: usize,
    i1: usize,
    k: usize,
    h: usize,
    w: usize,
    pw: usize,
    j_start: usize,
    bias: Option<&[f32]>,
) {
    let hw = h * w;
    for i in i0..i1 {
        let init = bias.map_or(0.0, |b| b[i]);
        for oy in 0..h {
            let at = i * hw + oy * w;
            let (lo, hi) = (at + j_start, at + w);
            out[lo..hi].fill(init);
            for (kk, &off) in boff.iter().enumerate() {
                let aik = a[i * k + kk];
                if aik == 0.0 {
                    continue;
                }
                let b_row = &pad[off + oy * pw + j_start..off + oy * pw + w];
                for (cv, &bv) in out[lo..hi].iter_mut().zip(b_row) {
                    *cv += aik * bv;
                }
            }
        }
    }
}

/// Weight-gradient correlation against the same virtual patch matrix as
/// [`conv_gemm`]: accumulates (`+=`), for every output channel `i < m`
/// and patch row `kk < k`:
///
/// ```text
/// dw[i·k + kk] += Σ_oy Σ_ox  dy[i·h·w + oy·w + ox] · pad[boff[kk] + oy·pw + ox]
/// ```
///
/// i.e. `dW += dY·colsᵀ` without packing `cols`. Lane-accumulated so the
/// reduction vectorizes without `-ffast-math`; the lane sums are reduced
/// per (i, kk) pair, so the result matches a packed `matmul_nt` to f32
/// tolerance (not bitwise).
///
/// # Panics
/// Panics if slice lengths disagree with the dimensions or an offset
/// window would fall outside `pad`.
#[allow(clippy::too_many_arguments)]
pub fn conv_dw_accum(
    dy: &[f32],
    pad: &[f32],
    boff: &[usize],
    dw: &mut [f32],
    m: usize,
    k: usize,
    h: usize,
    w: usize,
    pw: usize,
) {
    assert_eq!(boff.len(), k, "offset count");
    assert_eq!(dy.len(), m * h * w, "dY size");
    assert_eq!(dw.len(), m * k, "dW size");
    assert!(pw >= w, "padded row narrower than output row");
    if h == 0 || w == 0 || m == 0 {
        return;
    }
    if let Some(&max_off) = boff.iter().max() {
        assert!(
            max_off + (h - 1) * pw + w <= pad.len(),
            "offset window outside padded buffer"
        );
    }
    #[cfg(target_arch = "x86_64")]
    if avx512_available() {
        // SAFETY: avx512f was detected and the window bounds were asserted.
        unsafe { avx512::dw_main(dy, pad, boff, dw, m, k, h, w, pw) };
        return;
    }
    let hw = h * w;
    for i in 0..m {
        for (kk, &off) in boff.iter().enumerate() {
            let mut lanes = [0.0f32; LANES];
            let mut tail = 0.0f32;
            for oy in 0..h {
                let a_row = &dy[i * hw + oy * w..i * hw + oy * w + w];
                let b_row = &pad[off + oy * pw..off + oy * pw + w];
                let a_chunks = a_row.chunks_exact(LANES);
                let b_chunks = b_row.chunks_exact(LANES);
                // analyze:allow(no-alloc-in-hot-loop): ChunksExact::clone copies a two-pointer iterator, no heap allocation — the originals are kept for .remainder() below
                for (x, y) in a_chunks.clone().zip(b_chunks.clone()) {
                    for l in 0..LANES {
                        lanes[l] += x[l] * y[l];
                    }
                }
                for (x, y) in a_chunks.remainder().iter().zip(b_chunks.remainder()) {
                    tail += x * y;
                }
            }
            dw[i * k + kk] += lanes.iter().sum::<f32>() + tail;
        }
    }
}

/// The explicit AVX-512 micro-kernels (runtime-dispatched; see the module
/// docs for why auto-vectorization is not enough on this hardware). Every
/// kernel computes each output element as one sequential FMA chain over
/// `k` in the same order as the portable path — the only numerical
/// difference is FMA contraction.
#[cfg(target_arch = "x86_64")]
mod avx512 {
    #[cfg(target_arch = "x86_64")]
    use std::arch::x86_64::*;

    /// `C = A·B` main region: rows `0..m - m%8`, columns `0..n - n%16`,
    /// in 8×32 (and one trailing 8×16) zmm tiles.
    ///
    /// # Safety
    /// `avx512f` must be available and the slices must satisfy the
    /// [`super::matmul_nn`] size contract.
    #[target_feature(enable = "avx512f")]
    pub unsafe fn nn_main(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
        let (ap, bp, cp) = (a.as_ptr(), b.as_ptr(), c.as_mut_ptr());
        let (m8, n16, n32) = (m - m % 8, n - n % 16, n - n % 32);
        let mut i0 = 0;
        while i0 < m8 {
            let mut j0 = 0;
            while j0 < n32 {
                let mut acc0 = [_mm512_setzero_ps(); 8];
                let mut acc1 = [_mm512_setzero_ps(); 8];
                for kk in 0..k {
                    let b0 = _mm512_loadu_ps(bp.add(kk * n + j0));
                    let b1 = _mm512_loadu_ps(bp.add(kk * n + j0 + 16));
                    for r in 0..8 {
                        let av = _mm512_set1_ps(*ap.add((i0 + r) * k + kk));
                        acc0[r] = _mm512_fmadd_ps(av, b0, acc0[r]);
                        acc1[r] = _mm512_fmadd_ps(av, b1, acc1[r]);
                    }
                }
                for r in 0..8 {
                    _mm512_storeu_ps(cp.add((i0 + r) * n + j0), acc0[r]);
                    _mm512_storeu_ps(cp.add((i0 + r) * n + j0 + 16), acc1[r]);
                }
                j0 += 32;
            }
            if j0 < n16 {
                let mut acc = [_mm512_setzero_ps(); 8];
                for kk in 0..k {
                    let b0 = _mm512_loadu_ps(bp.add(kk * n + j0));
                    for (r, ac) in acc.iter_mut().enumerate() {
                        let av = _mm512_set1_ps(*ap.add((i0 + r) * k + kk));
                        *ac = _mm512_fmadd_ps(av, b0, *ac);
                    }
                }
                for (r, ac) in acc.iter().enumerate() {
                    _mm512_storeu_ps(cp.add((i0 + r) * n + j0), *ac);
                }
            }
            i0 += 8;
        }
    }

    /// One-row GEMV main region: columns `0..n - n%16` of `c = a·B`,
    /// iterated `k`-outer / `j`-inner so the row of B streams
    /// **contiguously** (the DL-solver GEMV shapes put megabytes of
    /// weights behind `b`; a column-panel loop would walk them at stride
    /// `n` and lose half the bandwidth). The accumulator row lives in
    /// `c` itself (L1-resident) and every element is one FMA chain over
    /// ascending `kk` — round-tripping the partial sums through memory
    /// changes no bits, so the chain is identical to a row of
    /// [`nn_main`]'s 8-row register tiles, which is what makes
    /// [`super::matmul_nn`] row-stable across batch sizes (the `n % 16`
    /// tail columns use the same axpy form in both paths). No zero-skip:
    /// `nn_main` has none, and `fmadd(+0, b, -0.0)` flushes a negative
    /// zero a skip would preserve.
    ///
    /// # Safety
    /// `avx512f` must be available, `a.len() == k·1` row of A,
    /// `b.len() == k·n`, `c.len() == n`, and `n >= 16`.
    #[target_feature(enable = "avx512f")]
    pub unsafe fn gemv_main(a: &[f32], b: &[f32], c: &mut [f32], n: usize) {
        let k = a.len();
        let (ap, bp, cp) = (a.as_ptr(), b.as_ptr(), c.as_mut_ptr());
        let (n16, n64) = (n - n % 16, n - n % 64);
        let mut j = 0;
        while j < n16 {
            _mm512_storeu_ps(cp.add(j), _mm512_setzero_ps());
            j += 16;
        }
        for kk in 0..k {
            let av = _mm512_set1_ps(*ap.add(kk));
            let brow = bp.add(kk * n);
            let mut j = 0;
            // 64 columns per iteration: four independent FMA chains in
            // flight while the B row streams.
            while j < n64 {
                let c0 =
                    _mm512_fmadd_ps(av, _mm512_loadu_ps(brow.add(j)), _mm512_loadu_ps(cp.add(j)));
                let c1 = _mm512_fmadd_ps(
                    av,
                    _mm512_loadu_ps(brow.add(j + 16)),
                    _mm512_loadu_ps(cp.add(j + 16)),
                );
                let c2 = _mm512_fmadd_ps(
                    av,
                    _mm512_loadu_ps(brow.add(j + 32)),
                    _mm512_loadu_ps(cp.add(j + 32)),
                );
                let c3 = _mm512_fmadd_ps(
                    av,
                    _mm512_loadu_ps(brow.add(j + 48)),
                    _mm512_loadu_ps(cp.add(j + 48)),
                );
                _mm512_storeu_ps(cp.add(j), c0);
                _mm512_storeu_ps(cp.add(j + 16), c1);
                _mm512_storeu_ps(cp.add(j + 32), c2);
                _mm512_storeu_ps(cp.add(j + 48), c3);
                j += 64;
            }
            while j < n16 {
                let c0 =
                    _mm512_fmadd_ps(av, _mm512_loadu_ps(brow.add(j)), _mm512_loadu_ps(cp.add(j)));
                _mm512_storeu_ps(cp.add(j), c0);
                j += 16;
            }
        }
    }

    /// `C = Aᵀ·B` main region (A stored `k×m`), same tiling as
    /// [`nn_main`].
    ///
    /// # Safety
    /// `avx512f` must be available and the slices must satisfy the
    /// [`super::matmul_tn`] size contract.
    #[target_feature(enable = "avx512f")]
    pub unsafe fn tn_main(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
        let (ap, bp, cp) = (a.as_ptr(), b.as_ptr(), c.as_mut_ptr());
        let (m8, n16, n32) = (m - m % 8, n - n % 16, n - n % 32);
        let mut i0 = 0;
        while i0 < m8 {
            let mut j0 = 0;
            while j0 < n32 {
                let mut acc0 = [_mm512_setzero_ps(); 8];
                let mut acc1 = [_mm512_setzero_ps(); 8];
                for kk in 0..k {
                    let b0 = _mm512_loadu_ps(bp.add(kk * n + j0));
                    let b1 = _mm512_loadu_ps(bp.add(kk * n + j0 + 16));
                    for r in 0..8 {
                        let av = _mm512_set1_ps(*ap.add(kk * m + i0 + r));
                        acc0[r] = _mm512_fmadd_ps(av, b0, acc0[r]);
                        acc1[r] = _mm512_fmadd_ps(av, b1, acc1[r]);
                    }
                }
                for r in 0..8 {
                    _mm512_storeu_ps(cp.add((i0 + r) * n + j0), acc0[r]);
                    _mm512_storeu_ps(cp.add((i0 + r) * n + j0 + 16), acc1[r]);
                }
                j0 += 32;
            }
            if j0 < n16 {
                let mut acc = [_mm512_setzero_ps(); 8];
                for kk in 0..k {
                    let b0 = _mm512_loadu_ps(bp.add(kk * n + j0));
                    for (r, ac) in acc.iter_mut().enumerate() {
                        let av = _mm512_set1_ps(*ap.add(kk * m + i0 + r));
                        *ac = _mm512_fmadd_ps(av, b0, *ac);
                    }
                }
                for (r, ac) in acc.iter().enumerate() {
                    _mm512_storeu_ps(cp.add((i0 + r) * n + j0), *ac);
                }
            }
            i0 += 8;
        }
    }

    /// [`super::conv_gemm`] main region: every output row, columns
    /// `0..w - w%16`, in R×32/R×16 zmm tiles loading B directly from the
    /// padded planes. Full 8-row blocks first, then one 1–7-row tail
    /// block (monomorphized per row count so the accumulators stay in
    /// registers — the `dX` pass of a 1-input-channel conv is an m = 1
    /// GEMM).
    ///
    /// # Safety
    /// `avx512f` must be available and the offset windows must lie inside
    /// `pad` (asserted by the dispatching wrapper).
    #[target_feature(enable = "avx512f")]
    #[allow(clippy::too_many_arguments)]
    pub unsafe fn conv_main(
        a: &[f32],
        pad: &[f32],
        boff: &[usize],
        out: &mut [f32],
        m: usize,
        k: usize,
        h: usize,
        w: usize,
        pw: usize,
        bias: Option<&[f32]>,
    ) {
        let m8 = m - m % 8;
        let mut i0 = 0;
        while i0 < m8 {
            conv_row_tile::<8>(a, pad, boff, out, i0, k, h, w, pw, bias);
            i0 += 8;
        }
        match m - m8 {
            1 => conv_row_tile::<1>(a, pad, boff, out, i0, k, h, w, pw, bias),
            2 => conv_row_tile::<2>(a, pad, boff, out, i0, k, h, w, pw, bias),
            3 => conv_row_tile::<3>(a, pad, boff, out, i0, k, h, w, pw, bias),
            4 => conv_row_tile::<4>(a, pad, boff, out, i0, k, h, w, pw, bias),
            5 => conv_row_tile::<5>(a, pad, boff, out, i0, k, h, w, pw, bias),
            6 => conv_row_tile::<6>(a, pad, boff, out, i0, k, h, w, pw, bias),
            7 => conv_row_tile::<7>(a, pad, boff, out, i0, k, h, w, pw, bias),
            _ => {}
        }
    }

    /// One R-row block of [`conv_main`] (R ≤ 8: at most 16 accumulator
    /// registers plus two B vectors).
    ///
    /// # Safety
    /// As [`conv_main`], with `i0 + R <= m`.
    #[target_feature(enable = "avx512f")]
    #[allow(clippy::too_many_arguments)]
    unsafe fn conv_row_tile<const R: usize>(
        a: &[f32],
        pad: &[f32],
        boff: &[usize],
        out: &mut [f32],
        i0: usize,
        k: usize,
        h: usize,
        w: usize,
        pw: usize,
        bias: Option<&[f32]>,
    ) {
        let (ap, pp, op) = (a.as_ptr(), pad.as_ptr(), out.as_mut_ptr());
        let hw = h * w;
        let (w16, w32) = (w - w % 16, w - w % 32);
        let mut init = [_mm512_setzero_ps(); R];
        if let Some(b) = bias {
            for (r, iv) in init.iter_mut().enumerate() {
                *iv = _mm512_set1_ps(b[i0 + r]);
            }
        }
        for oy in 0..h {
            let bsh = oy * pw;
            let mut j0 = 0;
            while j0 < w32 {
                let mut acc0 = init;
                let mut acc1 = init;
                for (kk, &off) in boff.iter().enumerate() {
                    let b0 = _mm512_loadu_ps(pp.add(off + bsh + j0));
                    let b1 = _mm512_loadu_ps(pp.add(off + bsh + j0 + 16));
                    for r in 0..R {
                        let av = _mm512_set1_ps(*ap.add((i0 + r) * k + kk));
                        acc0[r] = _mm512_fmadd_ps(av, b0, acc0[r]);
                        acc1[r] = _mm512_fmadd_ps(av, b1, acc1[r]);
                    }
                }
                for r in 0..R {
                    let at = (i0 + r) * hw + oy * w + j0;
                    _mm512_storeu_ps(op.add(at), acc0[r]);
                    _mm512_storeu_ps(op.add(at + 16), acc1[r]);
                }
                j0 += 32;
            }
            if j0 < w16 {
                let mut acc = init;
                for (kk, &off) in boff.iter().enumerate() {
                    let b0 = _mm512_loadu_ps(pp.add(off + bsh + j0));
                    for (r, ac) in acc.iter_mut().enumerate() {
                        let av = _mm512_set1_ps(*ap.add((i0 + r) * k + kk));
                        *ac = _mm512_fmadd_ps(av, b0, *ac);
                    }
                }
                for (r, ac) in acc.iter().enumerate() {
                    _mm512_storeu_ps(op.add((i0 + r) * hw + oy * w + j0), *ac);
                }
            }
        }
    }

    /// [`super::conv_dw_accum`], all of it: 4×4 (channel × patch-row)
    /// tiles of zmm lane accumulators over 16-wide image chunks (16 FMAs
    /// per 8 loads), masked loads for the row tails, reduced once per
    /// output element.
    ///
    /// # Safety
    /// `avx512f` must be available and the offset windows must lie inside
    /// `pad` (asserted by the dispatching wrapper).
    #[target_feature(enable = "avx512f")]
    #[allow(clippy::too_many_arguments)]
    pub unsafe fn dw_main(
        dy: &[f32],
        pad: &[f32],
        boff: &[usize],
        dw: &mut [f32],
        m: usize,
        k: usize,
        h: usize,
        w: usize,
        pw: usize,
    ) {
        let mut i0 = 0;
        while i0 < m {
            match m - i0 {
                1 => dw_rows::<1>(dy, pad, boff, dw, i0, k, h, w, pw),
                2 => dw_rows::<2>(dy, pad, boff, dw, i0, k, h, w, pw),
                3 => dw_rows::<3>(dy, pad, boff, dw, i0, k, h, w, pw),
                _ => dw_rows::<4>(dy, pad, boff, dw, i0, k, h, w, pw),
            }
            i0 += (m - i0).min(4);
        }
    }

    /// NI dY-channels of [`dw_main`], tiled NI×4 / NI×2 / NI×1 over the
    /// patch rows (const bounds so every accumulator register-allocates).
    ///
    /// # Safety
    /// As [`dw_main`], with `i0 + NI <= m`.
    #[target_feature(enable = "avx512f")]
    #[allow(clippy::too_many_arguments)]
    unsafe fn dw_rows<const NI: usize>(
        dy: &[f32],
        pad: &[f32],
        boff: &[usize],
        dw: &mut [f32],
        i0: usize,
        k: usize,
        h: usize,
        w: usize,
        pw: usize,
    ) {
        let mut k0 = 0;
        while k0 + 4 <= k {
            dw_tile::<NI, 4>(dy, pad, boff, dw, i0, k0, k, h, w, pw);
            k0 += 4;
        }
        if k0 + 2 <= k {
            dw_tile::<NI, 2>(dy, pad, boff, dw, i0, k0, k, h, w, pw);
            k0 += 2;
        }
        if k0 < k {
            dw_tile::<NI, 1>(dy, pad, boff, dw, i0, k0, k, h, w, pw);
        }
    }

    /// One NI×NK accumulator tile of [`dw_main`].
    ///
    /// # Safety
    /// As [`dw_main`], with `i0 + NI <= m` and `k0 + NK <= k`.
    #[target_feature(enable = "avx512f")]
    #[allow(clippy::too_many_arguments)]
    unsafe fn dw_tile<const NI: usize, const NK: usize>(
        dy: &[f32],
        pad: &[f32],
        boff: &[usize],
        dw: &mut [f32],
        i0: usize,
        k0: usize,
        k: usize,
        h: usize,
        w: usize,
        pw: usize,
    ) {
        let (yp, pp) = (dy.as_ptr(), pad.as_ptr());
        let hw = h * w;
        let w16 = w - w % 16;
        let tail_mask: __mmask16 = (1u16 << (w % 16)).wrapping_sub(1);
        let mut acc = [[_mm512_setzero_ps(); NK]; NI];
        for oy in 0..h {
            let a_base = oy * w;
            let mut j = 0;
            while j < w16 {
                let mut av = [_mm512_setzero_ps(); NI];
                for (r, v) in av.iter_mut().enumerate() {
                    *v = _mm512_loadu_ps(yp.add((i0 + r) * hw + a_base + j));
                }
                for q in 0..NK {
                    let bv = _mm512_loadu_ps(pp.add(boff[k0 + q] + oy * pw + j));
                    for r in 0..NI {
                        acc[r][q] = _mm512_fmadd_ps(av[r], bv, acc[r][q]);
                    }
                }
                j += 16;
            }
            if tail_mask != 0 {
                let mut av = [_mm512_setzero_ps(); NI];
                for (r, v) in av.iter_mut().enumerate() {
                    *v = _mm512_maskz_loadu_ps(tail_mask, yp.add((i0 + r) * hw + a_base + j));
                }
                for q in 0..NK {
                    let bv = _mm512_maskz_loadu_ps(tail_mask, pp.add(boff[k0 + q] + oy * pw + j));
                    for r in 0..NI {
                        acc[r][q] = _mm512_fmadd_ps(av[r], bv, acc[r][q]);
                    }
                }
            }
        }
        for r in 0..NI {
            for q in 0..NK {
                dw[(i0 + r) * k + k0 + q] += _mm512_reduce_add_ps(acc[r][q]);
            }
        }
    }
}

/// Reference O(mnk) naive matmul — the oracle for property tests.
pub fn matmul_naive(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    let mut c = vec![0.0f32; m * n];
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f64; // higher-precision accumulation for the oracle
            for kk in 0..k {
                acc += a[i * k + kk] as f64 * b[kk * n + j] as f64;
            }
            c[i * n + j] = acc as f32;
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn assert_close(a: &[f32], b: &[f32], tol: f32) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!(
                (x - y).abs() <= tol * (1.0 + x.abs().max(y.abs())),
                "elem {i}: {x} vs {y}"
            );
        }
    }

    fn gen(len: usize, s: u64) -> Vec<f32> {
        (0..len)
            .map(|i| (((i as u64 + s) * 2654435761 % 1000) as f32 / 500.0) - 1.0)
            .collect()
    }

    #[test]
    fn identity_multiplication() {
        let a = vec![1.0, 2.0, 3.0, 4.0]; // 2x2
        let eye = vec![1.0, 0.0, 0.0, 1.0];
        let mut c = vec![0.0; 4];
        matmul_nn(&a, &eye, &mut c, 2, 2, 2);
        assert_eq!(c, a);
    }

    #[test]
    fn known_product() {
        // [1 2; 3 4] * [5 6; 7 8] = [19 22; 43 50]
        let a = vec![1.0, 2.0, 3.0, 4.0];
        let b = vec![5.0, 6.0, 7.0, 8.0];
        let mut c = vec![0.0; 4];
        matmul_nn(&a, &b, &mut c, 2, 2, 2);
        assert_eq!(c, vec![19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn tn_matches_explicit_transpose() {
        // A is k×m = 3×2; Aᵀ·B with B k×n = 3×2.
        let a = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]; // 3x2
        let b = vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0]; // 3x2
        let at = vec![1.0, 3.0, 5.0, 2.0, 4.0, 6.0]; // 2x3 explicit transpose
        let mut c1 = vec![0.0; 4];
        let mut c2 = vec![0.0; 4];
        matmul_tn(&a, &b, &mut c1, 2, 3, 2);
        matmul_nn(&at, &b, &mut c2, 2, 3, 2);
        assert_close(&c1, &c2, 1e-6);
    }

    #[test]
    fn nt_matches_explicit_transpose() {
        let a = vec![1.0, 2.0, 3.0, 4.0]; // 2x2
        let b = vec![5.0, 6.0, 7.0, 8.0]; // 2x2, use Bᵀ
        let bt = vec![5.0, 7.0, 6.0, 8.0];
        let mut c1 = vec![0.0; 4];
        let mut c2 = vec![0.0; 4];
        matmul_nt(&a, &b, &mut c1, 2, 2, 2);
        matmul_nn(&a, &bt, &mut c2, 2, 2, 2);
        assert_close(&c1, &c2, 1e-6);
    }

    #[test]
    fn bias_and_col_sums_round_trip() {
        let mut c = vec![0.0; 6];
        add_bias(&mut c, &[1.0, 2.0, 3.0], 2, 3);
        assert_eq!(c, vec![1.0, 2.0, 3.0, 1.0, 2.0, 3.0]);
        let mut sums = vec![0.0; 3];
        col_sums_into(&c, &mut sums, 2, 3);
        assert_eq!(sums, vec![2.0, 4.0, 6.0]);
    }

    #[test]
    fn tile_multiple_shape_matches_oracle() {
        // 128 is a multiple of every tile dimension: the pure micro-kernel
        // path with no edge handling.
        let m = 128;
        let a = gen(m * m, 3);
        let b = gen(m * m, 11);
        let mut c = vec![0.0; m * m];
        matmul_nn(&a, &b, &mut c, m, m, m);
        let oracle = matmul_naive(&a, &b, m, m, m);
        assert_close(&c, &oracle, 1e-4);
    }

    #[test]
    fn awkward_shapes_match_oracle_all_kernels() {
        // Shapes straddling every tile boundary: rows % 4, cols % 16,
        // k % 8 all nonzero, plus degenerate 1-row/1-col cases.
        let shapes = [
            (1, 1, 1),
            (1, 7, 1),
            (3, 5, 2),
            (4, 16, 16),
            (5, 17, 18),
            (6, 9, 31),
            (7, 33, 15),
            (9, 8, 17),
            (13, 21, 19),
            (16, 24, 33),
            (1, 100, 37),
        ];
        for &(m, k, n) in &shapes {
            let a = gen(m * k, 5);
            let b = gen(k * n, 9);
            let mut c = vec![0.0; m * n];
            matmul_nn(&a, &b, &mut c, m, k, n);
            assert_close(&c, &matmul_naive(&a, &b, m, k, n), 1e-4);

            // tn: A stored k×m; oracle via explicit transpose.
            let a_km = gen(k * m, 21);
            let mut at = vec![0.0f32; m * k];
            for kk in 0..k {
                for i in 0..m {
                    at[i * k + kk] = a_km[kk * m + i];
                }
            }
            let mut c_tn = vec![0.0; m * n];
            matmul_tn(&a_km, &b, &mut c_tn, m, k, n);
            assert_close(&c_tn, &matmul_naive(&at, &b, m, k, n), 1e-4);

            // nt: B stored n×k; oracle via explicit transpose.
            let b_nk = gen(n * k, 33);
            let mut bt = vec![0.0f32; k * n];
            for j in 0..n {
                for kk in 0..k {
                    bt[kk * n + j] = b_nk[j * k + kk];
                }
            }
            let mut c_nt = vec![0.0; m * n];
            matmul_nt(&a, &b_nk, &mut c_nt, m, k, n);
            assert_close(&c_nt, &matmul_naive(&a, &bt, m, k, n), 1e-4);
        }
    }

    /// Packs the virtual patch matrix that `conv_gemm`/`conv_dw_accum`
    /// read through `boff` into an explicit `[k, h·w]` matrix.
    fn pack_cols(pad: &[f32], boff: &[usize], h: usize, w: usize, pw: usize) -> Vec<f32> {
        let mut cols = vec![0.0f32; boff.len() * h * w];
        for (kk, &off) in boff.iter().enumerate() {
            for oy in 0..h {
                cols[kk * h * w + oy * w..kk * h * w + oy * w + w]
                    .copy_from_slice(&pad[off + oy * pw..off + oy * pw + w]);
            }
        }
        cols
    }

    /// Same-padding conv offsets for a `[c, ph, pw]` padded buffer.
    fn conv_offsets(c: usize, kside: usize, ph: usize, pw: usize) -> Vec<usize> {
        let mut boff = Vec::with_capacity(c * kside * kside);
        for ci in 0..c {
            for ky in 0..kside {
                for kx in 0..kside {
                    boff.push((ci * ph + ky) * pw + kx);
                }
            }
        }
        boff
    }

    #[test]
    fn gemv_matches_oracle() {
        // Shapes straddling the 32/16-wide column blocks and the axpy
        // tail, plus n < 16 (pure portable) and the DL-solver inference
        // shapes (k = phase cells, n = hidden width).
        for &(k, n) in &[
            (1usize, 1usize),
            (7, 5),
            (20, 16),
            (33, 31),
            (48, 64),
            (37, 50),
            (64, 100),
            (1024, 256),
            (4096, 512),
        ] {
            let a = gen(k, 5);
            let b = gen(k * n, 9);
            let mut c = vec![0.0f32; n];
            gemv(&a, &b, &mut c, k, n);
            assert_close(&c, &matmul_naive(&a, &b, 1, k, n), 1e-4);
        }
    }

    /// The contract the ensemble's batched DL inference stands on: row
    /// `i` of an `m`-row product is *bitwise* identical for every `m` —
    /// batching `m` concurrent field solves into one GEMM reproduces each
    /// solo (m = 1) solve exactly. Exercises the 8-row zmm tiles, the
    /// GEMV remainder rows, the axpy column tails, and the portable
    /// tile/axpy paths on machines without AVX-512.
    #[test]
    fn rows_bit_identical_across_batch_sizes() {
        for &(k, n) in &[(48usize, 64usize), (37, 50), (64, 16), (20, 7), (100, 33)] {
            const M_MAX: usize = 13;
            let a = gen(M_MAX * k, 3);
            let b = gen(k * n, 7);
            // Reference: every row computed as its own m = 1 product.
            let mut solo = vec![0.0f32; M_MAX * n];
            for i in 0..M_MAX {
                gemv(
                    &a[i * k..(i + 1) * k],
                    &b,
                    &mut solo[i * n..(i + 1) * n],
                    k,
                    n,
                );
            }
            for m in [1usize, 2, 3, 5, 8, 9, 12, 13] {
                let mut c = vec![0.0f32; m * n];
                matmul_nn(&a[..m * k], &b, &mut c, m, k, n);
                for (i, (x, y)) in c.iter().zip(&solo[..m * n]).enumerate() {
                    assert_eq!(
                        x.to_bits(),
                        y.to_bits(),
                        "k={k} n={n} m={m} elem {i}: batched {x} != solo {y}"
                    );
                }
            }
        }
    }

    #[test]
    fn avx512_paths_match_portable_kernels() {
        if !avx512_available() {
            eprintln!("skipping: no avx512f on this machine");
            return;
        }
        // Shapes exercising the 8x32 tile, the 8x16 trailing tile, and
        // both edge kinds.
        for &(m, k, n) in &[
            (8, 72, 1024),
            (16, 9, 48),
            (8, 3, 16),
            (9, 17, 35),
            (64, 512, 96),
        ] {
            let a = gen(m * k, 3);
            let b = gen(k * n, 7);
            let mut c_fast = vec![0.0f32; m * n];
            let mut c_ref = vec![0.0f32; m * n];
            matmul_nn(&a, &b, &mut c_fast, m, k, n);
            matmul_nn_portable(&a, &b, &mut c_ref, m, k, n);
            assert_close(&c_fast, &c_ref, 1e-5);

            let a_km = gen(k * m, 11);
            let mut t_fast = vec![0.0f32; m * n];
            let mut t_ref = vec![0.0f32; m * n];
            matmul_tn(&a_km, &b, &mut t_fast, m, k, n);
            matmul_tn_portable(&a_km, &b, &mut t_ref, m, k, n);
            assert_close(&t_fast, &t_ref, 1e-5);
        }
    }

    #[test]
    fn conv_gemm_matches_packed_im2col_gemm() {
        // Awkward geometries: odd widths, width < one tile, 5x5 kernels.
        for &(m, c, kside, h, w) in &[
            (8usize, 3usize, 3usize, 6usize, 32usize),
            (4, 1, 3, 5, 7),
            (16, 8, 3, 16, 16),
            (3, 2, 5, 9, 19),
            (9, 4, 3, 4, 33),
        ] {
            let pad = kside / 2;
            let (ph, pw) = (h + 2 * pad, w + 2 * pad);
            let k = c * kside * kside;
            let a = gen(m * k, 13);
            // A fully random padded buffer (borders included) exercises
            // the kernel as a pure offset-GEMM, not just zero padding.
            let padbuf = gen(c * ph * pw, 17);
            let boff = conv_offsets(c, kside, ph, pw);

            let mut out = vec![0.0f32; m * h * w];
            conv_gemm(&a, &padbuf, &boff, &mut out, m, k, h, w, pw, None);

            let cols = pack_cols(&padbuf, &boff, h, w, pw);
            let mut oracle = vec![0.0f32; m * h * w];
            matmul_nn_portable(&a, &cols, &mut oracle, m, k, h * w);
            assert_close(&out, &oracle, 1e-4);

            // Fused bias: every element of channel i shifts by bias[i].
            let bias = gen(m, 41);
            let mut out_b = vec![0.0f32; m * h * w];
            conv_gemm(&a, &padbuf, &boff, &mut out_b, m, k, h, w, pw, Some(&bias));
            for i in 0..m {
                for (x, y) in out_b[i * h * w..(i + 1) * h * w]
                    .iter()
                    .zip(&out[i * h * w..(i + 1) * h * w])
                {
                    assert!((x - (y + bias[i])).abs() < 1e-4 * (1.0 + y.abs()));
                }
            }
        }
    }

    #[test]
    fn conv_dw_accum_matches_packed_nt_gemm() {
        for &(m, c, kside, h, w) in &[
            (8usize, 3usize, 3usize, 6usize, 32usize),
            (2, 1, 3, 5, 7),
            (16, 8, 3, 16, 16),
            (5, 2, 5, 9, 19),
        ] {
            let pad = kside / 2;
            let (ph, pw) = (h + 2 * pad, w + 2 * pad);
            let k = c * kside * kside;
            let dy = gen(m * h * w, 19);
            let padbuf = gen(c * ph * pw, 23);
            let boff = conv_offsets(c, kside, ph, pw);

            // Accumulate on top of a nonzero start to exercise `+=`.
            let mut dw = gen(m * k, 29);
            let start = dw.clone();
            conv_dw_accum(&dy, &padbuf, &boff, &mut dw, m, k, h, w, pw);

            let cols = pack_cols(&padbuf, &boff, h, w, pw);
            let mut prod = vec![0.0f32; m * k];
            matmul_nt(&dy, &cols, &mut prod, m, h * w, k);
            let oracle: Vec<f32> = start.iter().zip(&prod).map(|(s, p)| s + p).collect();
            assert_close(&dw, &oracle, 1e-4);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn nn_matches_oracle(
            m in 1usize..20, k in 1usize..20, n in 1usize..36,
            seed in 0u64..1000,
        ) {
            let a = gen(m * k, seed);
            let b = gen(k * n, seed + 1);
            let mut c = vec![0.0; m * n];
            matmul_nn(&a, &b, &mut c, m, k, n);
            let oracle = matmul_naive(&a, &b, m, k, n);
            for (x, y) in c.iter().zip(&oracle) {
                prop_assert!((x - y).abs() < 1e-4);
            }
        }

        #[test]
        fn tn_and_nt_consistent_with_nn(
            m in 1usize..10, k in 1usize..12, n in 1usize..20,
            seed in 0u64..1000,
        ) {
            // tn: A (k×m) — build explicit transpose and compare.
            let a_km = gen(k * m, seed);
            let b_kn = gen(k * n, seed + 7);
            let mut at = vec![0.0f32; m * k];
            for kk in 0..k {
                for i in 0..m {
                    at[i * k + kk] = a_km[kk * m + i];
                }
            }
            let mut c_tn = vec![0.0; m * n];
            let mut c_ref = vec![0.0; m * n];
            matmul_tn(&a_km, &b_kn, &mut c_tn, m, k, n);
            matmul_nn(&at, &b_kn, &mut c_ref, m, k, n);
            for (x, y) in c_tn.iter().zip(&c_ref) {
                prop_assert!((x - y).abs() < 1e-4);
            }
            // nt: B (n×k).
            let a_mk = gen(m * k, seed + 13);
            let b_nk = gen(n * k, seed + 19);
            let mut bt = vec![0.0f32; k * n];
            for j in 0..n {
                for kk in 0..k {
                    bt[kk * n + j] = b_nk[j * k + kk];
                }
            }
            let mut c_nt = vec![0.0; m * n];
            let mut c_ref2 = vec![0.0; m * n];
            matmul_nt(&a_mk, &b_nk, &mut c_nt, m, k, n);
            matmul_nn(&a_mk, &bt, &mut c_ref2, m, k, n);
            for (x, y) in c_nt.iter().zip(&c_ref2) {
                prop_assert!((x - y).abs() < 1e-4);
            }
        }
    }
}

//! `dlpic-analyze`: repo-specific static analysis for the dlpic
//! workspace.
//!
//! The workspace's core contracts — checkpoint/resume and cohort-batching
//! **bit-identity**, panic containment in the serve request path, and the
//! `// SAFETY:` discipline around the explicit-SIMD kernels — are runtime
//! properties that a single careless line can silently break long before
//! any test notices. This crate turns them into machine-checked rules on
//! every commit:
//!
//! | rule | contract it protects |
//! |------|----------------------|
//! | `no-hashmap-iter-in-state` | byte-deterministic checkpoint/spool/status output |
//! | `no-wallclock-in-engine` | checkpoint/resume bit-identity of engine state |
//! | `no-panic-in-request-path` | hostile requests become errors, not daemon crashes |
//! | `safety-comment-required` | every `unsafe` carries its justification |
//! | `no-alloc-in-hot-loop` | the allocation-free stepping wins stay won |
//! | `phase-constants-only` | `KNOWN_PHASES` can never drift from emitters |
//!
//! The implementation is a lightweight token scanner ([`lexer`]) plus a
//! rule engine ([`rules`], [`engine`]) with per-rule allow/warn/deny
//! levels ([`config`]), inline `// analyze:allow(rule): reason`
//! suppressions ([`source`]), a committed baseline, and text + SARIF-lite
//! output ([`report`]). Std-only by design: the build container is
//! offline, so no external parser crates.

pub mod config;
pub mod engine;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod source;

pub use config::{Config, Level};
pub use engine::{analyze_source, analyze_tree, collect_files};
pub use report::{Baseline, Finding, Report};
pub use source::SourceFile;

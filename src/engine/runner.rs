//! The [`Engine`]: validates a scenario×backend pairing, builds the
//! matching solver stack and hands it out as an incremental
//! [`Session`] — or drives one to completion via the [`Engine::run`]
//! convenience.
//!
//! Every backend follows the same protocol: build → step `n_steps` times →
//! final snapshot, emitting one [`Sample`](super::Sample) per recorded
//! diagnostics row (so a full run yields `n_steps + 1` samples, matching
//! the solver crates' long-standing convention). The per-backend stepping
//! logic lives in [`super::session`]; this module owns configuration
//! (models, numerics, observers) and solver construction.

use super::backend::Backend;
use super::dl::{self, Dl2DModel, SharedModelRegistry};
use super::ensemble::{Ensemble, SweepSpec};
use super::error::EngineError;
use super::fault::FaultPlan;
use super::observer::{Observer, RunSummary};
use super::session::{
    BackendSession, Checkpoint, DdecompSession, Pic1DSession, Pic2DSession, Session, VlasovSession,
};
use super::spec::ScenarioSpec;
use crate::core::builder::ArchSpec;
use crate::core::presets::Scale;
use crate::core::twod::Frozen2DModel;
use crate::core::{FrozenBundle, ModelBundle};
use crate::nn::frozen::{FrozenModel, Precision};
use crate::pic::solver::{FieldSolver, PoissonKind, TraditionalSolver};
use crate::pic::Shape;
use crate::pic2d::solver2d::FieldSolver2D;
use crate::pic2d::TraditionalSolver2D;
use std::sync::{Arc, Mutex};

/// Numerical options of the 1-D particle backends that the paper's figure
/// experiments vary; the scenario spec stays purely physical. Defaults
/// match `TraditionalSolver::paper_default()`: CIC deposit and gather,
/// finite-difference Poisson.
#[derive(Debug, Clone, Copy)]
pub struct Numerics1D {
    /// Shape used to gather E to the particles (shared by all backends).
    pub gather_shape: Shape,
    /// Deposition shape of the traditional solver (keep equal to
    /// `gather_shape` for momentum conservation).
    pub deposit_shape: Shape,
    /// Poisson backend of the traditional solver.
    pub poisson: PoissonKind,
}

impl Default for Numerics1D {
    fn default() -> Self {
        Self {
            gather_shape: Shape::Cic,
            deposit_shape: Shape::Cic,
            poisson: PoissonKind::FiniteDifference,
        }
    }
}

impl Numerics1D {
    /// The paper §II "basic NGP scheme" — the traditional baseline of the
    /// figure experiments, which exhibits the cold-beam instability most
    /// clearly.
    pub fn basic_ngp() -> Self {
        Self {
            gather_shape: Shape::Ngp,
            deposit_shape: Shape::Ngp,
            poisson: PoissonKind::FiniteDifference,
        }
    }
}

/// The facade entry point: holds optional DL models and observers, builds
/// [`Session`]s for any compatible scenario×backend pairing, and runs them
/// to completion on request.
///
/// DL sessions built by one engine share weights: a configured model is
/// frozen once into an `Arc`-shared allocation and every session minted
/// from it reads the same memory (the f32 path is bit-identical to a
/// per-session copy). The untrained fallback shares per (scale, grid)
/// the same way, and a [`ModelRegistry`](super::ModelRegistry) attached
/// via [`Self::with_registry`] extends sharing to quick-trained models
/// keyed by (scenario, scale, seed).
#[derive(Default)]
pub struct Engine {
    model_1d: Option<ModelBundle>,
    /// Frozen snapshot of `model_1d`, computed once at configuration.
    /// `None` with `model_1d` set means the architecture has no frozen
    /// form (the CNN) and sessions fall back to per-copy owned networks.
    frozen_1d: Option<FrozenBundle>,
    model_2d: Option<Dl2DModel>,
    /// Lazily frozen snapshots of `model_2d`, keyed by grid node count
    /// (one trained parameter set can only ever fit one grid, but the
    /// key keeps lookups honest).
    frozen_2d: Mutex<Vec<(usize, Frozen2DModel)>>,
    /// Shared untrained 1-D weight allocations, keyed by scale.
    untrained_1d: Mutex<FrozenCache<Scale>>,
    /// Shared untrained 2-D weight allocations, keyed by (scale, nodes).
    untrained_2d: Mutex<FrozenCache<(Scale, usize)>>,
    registry: Option<SharedModelRegistry>,
    numerics_1d: Numerics1D,
    observers: Vec<Box<dyn Observer>>,
    faults: FaultPlan,
}

/// A tiny keyed cache of `Arc`-shared frozen weight allocations.
type FrozenCache<K> = Vec<(K, Arc<FrozenModel>)>;

/// Locks tolerating poisoning: a panicked holder leaves a cache of
/// immutable `Arc`s, which is still safe to read.
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

impl Engine {
    /// An engine with no models and no observers.
    pub fn new() -> Self {
        Self::default()
    }

    /// Uses this trained 1-D bundle for `Backend::Dl1D` runs. The bundle
    /// is frozen here, once — every session shares the allocation.
    pub fn with_model_1d(mut self, bundle: ModelBundle) -> Self {
        self.frozen_1d = bundle.freeze().ok();
        self.model_1d = Some(bundle);
        self
    }

    /// Uses this trained 2-D model for `Backend::Dl2D` runs.
    pub fn with_model_2d(mut self, model: Dl2DModel) -> Self {
        *lock(&self.frozen_2d) = Vec::new();
        self.model_2d = Some(model);
        self
    }

    /// Attaches a model registry: `Dl1D`/`Dl2D` runs without an explicit
    /// model get-or-train through it instead of falling back to untrained
    /// networks, and sessions with equal (scenario, scale, seed) share
    /// one weight allocation.
    pub fn with_registry(mut self, registry: SharedModelRegistry) -> Self {
        self.registry = Some(registry);
        self
    }

    /// The attached model registry, if any (serve's `prune` hook).
    pub fn registry(&self) -> Option<&SharedModelRegistry> {
        self.registry.as_ref()
    }

    /// Overrides the 1-D numerical options (gather/deposit shapes, Poisson
    /// backend).
    pub fn with_numerics_1d(mut self, numerics: Numerics1D) -> Self {
        self.numerics_1d = numerics;
        self
    }

    /// Registers a run monitor. Engine-held observers follow every
    /// [`Self::run`]/[`Self::run_named`] call; sessions started with
    /// [`Self::start`] attach their own via
    /// [`Session::attach_observer`].
    pub fn with_observer(mut self, observer: Box<dyn Observer>) -> Self {
        self.observers.push(observer);
        self
    }

    /// True when a trained 1-D model is configured.
    pub fn has_model_1d(&self) -> bool {
        self.model_1d.is_some()
    }

    /// Injects deterministic faults into matching sessions (supervision
    /// tests and `dlpic-serve --inject`).
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = plan;
        self
    }

    /// Builds the solver stack for `spec` on `backend` and returns it as
    /// a steppable [`Session`] positioned before the first step — the
    /// incremental primitive behind [`Self::run`].
    pub fn start(&self, spec: &ScenarioSpec, backend: Backend) -> Result<Session, EngineError> {
        spec.validate()?;
        backend.supports(spec)?;
        // Clock from before the build: wall_seconds includes solver-stack
        // construction, matching the pre-session Engine::run.
        // analyze:allow(no-wallclock-in-engine): feeds only the wall_seconds diagnostic in RunSummary, never simulation state — checkpoints exclude it
        let started = std::time::Instant::now();
        let inner: Box<dyn BackendSession> = match backend {
            Backend::Traditional1D | Backend::Dl1D => Box::new(Pic1DSession::new(
                spec,
                self.build_1d_solver(spec, backend)?,
                self.numerics_1d.gather_shape,
            )),
            Backend::Traditional2D | Backend::Dl2D => Box::new(Pic2DSession::new(
                spec,
                self.build_2d_solver(spec, backend)?,
            )),
            Backend::Vlasov => Box::new(VlasovSession::new(spec)),
            Backend::Ddecomp { n_ranks } => {
                Box::new(DdecompSession::new(spec, n_ranks, self.numerics_1d)?)
            }
        };
        let inner = self.faults.wrap(&spec.name, inner);
        Ok(Session::new(spec.clone(), backend, inner, started))
    }

    /// Rebuilds a session from a [`Checkpoint`] (the solver stack is
    /// reconstructed from the embedded spec, then the mutable state and
    /// recorded history are restored) and returns it ready to continue.
    /// For deterministic solvers the resumed trajectory is bit-identical
    /// to the uninterrupted run.
    pub fn resume(&self, checkpoint: &Checkpoint) -> Result<Session, EngineError> {
        let mut session = self.start(&checkpoint.spec, checkpoint.backend)?;
        session.restore(checkpoint)?;
        Ok(session)
    }

    /// Starts one session per spec and returns them as an [`Ensemble`] —
    /// the fleet primitive: lockstep waves, batched DL inference within
    /// each wave, multi-core [`Ensemble::run_to_end`]. All sessions are
    /// built by this engine, so every DL session of a dimension shares
    /// the engine's (single) model — the invariant cohort batching needs.
    pub fn start_ensemble(
        &self,
        specs: &[ScenarioSpec],
        backend: Backend,
    ) -> Result<Ensemble, EngineError> {
        let sessions = specs
            .iter()
            .map(|spec| self.start(spec, backend))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Ensemble::new(sessions))
    }

    /// Expands a [`SweepSpec`] (parameter grid × seed fan) and starts the
    /// resulting fleet — `start_ensemble` over [`SweepSpec::specs`].
    pub fn start_sweep(
        &self,
        sweep: &SweepSpec,
        backend: Backend,
    ) -> Result<Ensemble, EngineError> {
        self.start_ensemble(&sweep.specs()?, backend)
    }

    /// Rebuilds a fleet from per-session checkpoints (the inverse of
    /// [`Ensemble::checkpoints`]); each run resumes bit-identically, and
    /// mixed backends are fine.
    pub fn resume_ensemble(&self, checkpoints: &[Checkpoint]) -> Result<Ensemble, EngineError> {
        let sessions = checkpoints
            .iter()
            .map(|c| self.resume(c))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Ensemble::new(sessions))
    }

    /// Runs a registry scenario by name.
    pub fn run_named(
        &mut self,
        name: &str,
        scale: Scale,
        backend: Backend,
    ) -> Result<RunSummary, EngineError> {
        let spec = super::registry::scenario(name, scale)?;
        self.run(&spec, backend)
    }

    /// Runs a scenario on a backend to completion: a thin wrapper that
    /// starts a [`Session`], lends it the engine's observers, steps it to
    /// `n_steps` and finishes it.
    pub fn run(
        &mut self,
        spec: &ScenarioSpec,
        backend: Backend,
    ) -> Result<RunSummary, EngineError> {
        let mut session = self.start(spec, backend)?;
        session.attach_observers(std::mem::take(&mut self.observers));
        session.run_to_end();
        let (summary, observers) = session.finish_detach();
        self.observers = observers;
        Ok(summary)
    }

    /// How a DL session for this spec × backend stores its weights under
    /// the current configuration: `Some((fingerprint, bytes))` means
    /// sessions with equal fingerprints read **one** `bytes`-sized shared
    /// allocation (charge it once per distinct fingerprint); `None` means
    /// every session owns a private copy (model-free backends, or an
    /// unfreezable explicit model). This is the accounting contract the
    /// serve tier's budget admission keys on.
    pub fn weight_profile(&self, spec: &ScenarioSpec, backend: Backend) -> Option<(String, usize)> {
        self.weight_profiler().profile(spec, backend)
    }

    /// A `Send + Sync` snapshot of the engine's weight-sharing
    /// configuration, answering [`Self::weight_profile`] without the
    /// engine — the serve tier's request handlers hold one while the
    /// scheduler thread owns the engine itself. The snapshot is taken at
    /// configuration time and stays valid because models and registry
    /// attachment are builder-time decisions.
    pub fn weight_profiler(&self) -> WeightProfiler {
        WeightProfiler {
            frozen_1d_bytes: self.frozen_1d.as_ref().map(FrozenBundle::weight_bytes),
            has_model_1d: self.model_1d.is_some(),
            model_2d_hidden: self.model_2d.as_ref().map(|m| m.hidden.clone()),
            has_registry: self.registry.is_some(),
        }
    }

    fn build_1d_solver(
        &self,
        spec: &ScenarioSpec,
        backend: Backend,
    ) -> Result<Box<dyn FieldSolver>, EngineError> {
        let n = &self.numerics_1d;
        match backend {
            Backend::Traditional1D => Ok(Box::new(TraditionalSolver::new(
                n.deposit_shape,
                n.poisson,
                1.0,
            ))),
            Backend::Dl1D => {
                let ncells = spec.domain.cells();
                let output = match &self.model_1d {
                    Some(bundle) => dl::bundle_output_cells(bundle),
                    None => spec.scale.mlp_arch().output_len(),
                };
                if output != ncells {
                    return Err(EngineError::Incompatible {
                        scenario: spec.name.clone(),
                        backend: backend.name(),
                        why: format!(
                            "DL solver predicts {output} cells but the domain has {ncells}"
                        ),
                    });
                }
                if let Some(frozen) = &self.frozen_1d {
                    // Explicit model, frozen form: every session shares
                    // the one allocation.
                    return Ok(Box::new(frozen.solver()));
                }
                if let Some(bundle) = &self.model_1d {
                    // Unfreezable (CNN) explicit model: per-session copy.
                    return Ok(Box::new(bundle.solver()?));
                }
                if let Some(registry) = &self.registry {
                    let (bundle, frozen) = lock(registry).model_1d(spec)?;
                    return match frozen {
                        Some(frozen) => Ok(Box::new(frozen.solver())),
                        None => Ok(Box::new(bundle.solver()?)),
                    };
                }
                // Untrained fallback, shared per scale.
                let model = {
                    let mut cache = lock(&self.untrained_1d);
                    match cache.iter().find(|(s, _)| *s == spec.scale) {
                        Some((_, model)) => Arc::clone(model),
                        None => {
                            let model = dl::untrained_frozen_1d(spec.scale);
                            cache.push((spec.scale, Arc::clone(&model)));
                            model
                        }
                    }
                };
                Ok(Box::new(dl::untrained_1d_shared(spec.scale, model)))
            }
            _ => unreachable!("1-D solver for non-1-D backend"),
        }
    }

    fn build_2d_solver(
        &self,
        spec: &ScenarioSpec,
        backend: Backend,
    ) -> Result<Box<dyn FieldSolver2D>, EngineError> {
        match backend {
            Backend::Traditional2D => Ok(Box::new(TraditionalSolver2D::default_config())),
            Backend::Dl2D => {
                let nodes = spec.domain.cells();
                if let Some(model) = &self.model_2d {
                    let frozen = {
                        let cache = lock(&self.frozen_2d);
                        cache
                            .iter()
                            .find(|(n, _)| *n == nodes)
                            .map(|(_, f)| f.clone())
                    };
                    let frozen = match frozen {
                        Some(frozen) => Some(frozen),
                        None => {
                            // Freeze once per grid; `into_solver` still
                            // validates the parameter shapes.
                            let solver = model.into_solver(&spec.grid_2d())?;
                            match solver.freeze(Precision::F32) {
                                Ok(frozen) => {
                                    lock(&self.frozen_2d).push((nodes, frozen.clone()));
                                    Some(frozen)
                                }
                                Err(_) => return Ok(Box::new(solver)),
                            }
                        }
                    };
                    return Ok(Box::new(frozen.expect("frozen or early-returned").solver()));
                }
                if let Some(registry) = &self.registry {
                    let (model, frozen) = lock(registry).model_2d(spec)?;
                    return match frozen {
                        Some(frozen) => Ok(Box::new(frozen.solver())),
                        None => Ok(Box::new(model.into_solver(&spec.grid_2d())?)),
                    };
                }
                // Untrained fallback, shared per (scale, grid).
                let model = {
                    let mut cache = lock(&self.untrained_2d);
                    match cache.iter().find(|(k, _)| *k == (spec.scale, nodes)) {
                        Some((_, model)) => Arc::clone(model),
                        None => {
                            let model = dl::untrained_frozen_2d(spec.scale, &spec.grid_2d());
                            cache.push(((spec.scale, nodes), Arc::clone(&model)));
                            model
                        }
                    }
                };
                Ok(Box::new(dl::untrained_2d_shared(model)))
            }
            _ => unreachable!("2-D solver for non-2-D backend"),
        }
    }
}

/// A detached snapshot of an engine's weight-sharing configuration (see
/// [`Engine::weight_profiler`]): answers "which sessions share one weight
/// allocation, and how big is it" for any spec × backend, without holding
/// the engine.
#[derive(Debug, Clone)]
pub struct WeightProfiler {
    frozen_1d_bytes: Option<usize>,
    has_model_1d: bool,
    model_2d_hidden: Option<Vec<usize>>,
    has_registry: bool,
}

impl WeightProfiler {
    /// See [`Engine::weight_profile`] for the `Some((fingerprint,
    /// bytes))` contract.
    pub fn profile(&self, spec: &ScenarioSpec, backend: Backend) -> Option<(String, usize)> {
        match backend {
            Backend::Dl1D => {
                if let Some(bytes) = self.frozen_1d_bytes {
                    Some(("dl1d|model".to_string(), bytes))
                } else if self.has_model_1d {
                    // Unfreezable (CNN) explicit model: per-session copies.
                    None
                } else {
                    let bytes = spec.scale.mlp_arch().param_count() * 4;
                    let key = if self.has_registry {
                        format!("dl1d|reg|{}|{:?}|{}", spec.name, spec.scale, spec.seed)
                    } else {
                        format!("dl1d|untrained|{:?}", spec.scale)
                    };
                    Some((key, bytes))
                }
            }
            Backend::Dl2D => {
                let nodes = spec.domain.cells();
                let hidden = match &self.model_2d_hidden {
                    Some(hidden) => hidden.clone(),
                    None => dl::hidden_2d(spec.scale),
                };
                let bytes = ArchSpec::Mlp {
                    input: nodes,
                    hidden,
                    output: 2 * nodes,
                }
                .param_count()
                    * 4;
                let key = if self.model_2d_hidden.is_some() {
                    "dl2d|model".to_string()
                } else if self.has_registry {
                    format!(
                        "dl2d|reg|{}|{:?}|{}|{}",
                        spec.name, spec.scale, spec.seed, nodes
                    )
                } else {
                    format!("dl2d|untrained|{:?}|{}", spec.scale, nodes)
                };
                Some((key, bytes))
            }
            _ => None,
        }
    }
}

/// One-shot convenience: runs `spec` on `backend` with no observers and no
/// trained models (DL backends fall back to untrained networks).
pub fn run(spec: &ScenarioSpec, backend: Backend) -> Result<RunSummary, EngineError> {
    Engine::new().run(spec, backend)
}

/// One-shot convenience: runs a registry scenario by name.
pub fn run_scenario(name: &str, scale: Scale, backend: Backend) -> Result<RunSummary, EngineError> {
    Engine::new().run_named(name, scale, backend)
}

/// One-shot convenience: starts a session with no observers and no
/// trained models (the free-function form of [`Engine::start`]).
pub fn start(spec: &ScenarioSpec, backend: Backend) -> Result<Session, EngineError> {
    Engine::new().start(spec, backend)
}

//! Immutable inference models: weights split from training state.
//!
//! A trained [`Sequential`](crate::Sequential) carries per-layer gradient and optimizer
//! buffers, activation caches and `&mut self` inference entry points —
//! none of which inference needs. [`Sequential::freeze`](crate::Sequential::freeze) snapshots the
//! weights into a [`FrozenModel`]: an immutable, `Send + Sync` layer
//! stack whose [`FrozenModel::predict_into`] takes `&self`, so **many
//! sessions can share one weight allocation behind an `Arc`** instead of
//! each cloning megabytes of identical parameters.
//!
//! Two storage precisions:
//!
//! * [`Precision::F32`] — the dense weights are copied verbatim and
//!   inference runs the exact kernel sequence of
//!   [`Sequential::predict_into`](crate::Sequential::predict_into) (`matmul_nn` + `add_bias` per dense
//!   layer), so a frozen f32 model is **bit-identical** to the network
//!   it was frozen from, solo or batched, at any `Arc` sharing degree.
//! * [`Precision::Bf16`] — dense weights are stored bf16
//!   (round-to-nearest-even) and inference runs the
//!   [`crate::bf16`] kernels with f32 accumulation: half the weight
//!   bytes and roughly half the GEMV memory traffic, accurate to the
//!   weight quantization (callers gate on a task-level tolerance).
//!
//! Only inference-path layers freeze (dense / relu / flatten — the
//! paper's MLP); [`Sequential::freeze`](crate::Sequential::freeze) reports the first unsupported
//! layer by name so callers can fall back to an owned network (the CNN
//! keeps its per-session copy).

use crate::bf16::{encode_bf16, matmul_nn_bf16};
use crate::linalg::{add_bias, matmul_nn};
use crate::network::PredictWorkspace;
use crate::tensor::Tensor;

/// Weight storage precision of a [`FrozenModel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Precision {
    /// Exact f32 copies of the source weights (bit-identical inference).
    F32,
    /// bf16 weight storage with f32 accumulation (half the bytes;
    /// accurate to the weight quantization).
    Bf16,
}

impl Precision {
    /// Short name for logs and serialized bundles.
    pub fn name(self) -> &'static str {
        match self {
            Self::F32 => "f32",
            Self::Bf16 => "bf16",
        }
    }

    /// Parses [`Self::name`] back.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "f32" => Some(Self::F32),
            "bf16" => Some(Self::Bf16),
            _ => None,
        }
    }
}

/// Dense-layer weight storage in one of the two precisions.
pub enum DenseWeights {
    /// Exact f32 copies.
    F32(Vec<f32>),
    /// Round-to-nearest-even bf16.
    Bf16(Vec<u16>),
}

/// One frozen layer: the immutable inference form of a [`crate::Layer`].
pub enum FrozenLayer {
    /// A dense layer: weights `[in, out]` row-major plus an f32 bias
    /// (bias stays f32 in both precisions — it is the accumulator seed).
    Dense {
        /// Input width.
        in_features: usize,
        /// Output width.
        out_features: usize,
        /// Weight matrix in the model's storage precision.
        w: DenseWeights,
        /// Bias row.
        b: Vec<f32>,
    },
    /// Element-wise `max(0, x)`.
    Relu,
    /// `[batch, ...] → [batch, features]`.
    Flatten,
}

impl FrozenLayer {
    /// A frozen dense layer from its weight/bias slices.
    pub fn dense(
        in_features: usize,
        out_features: usize,
        w: &[f32],
        b: &[f32],
        precision: Precision,
    ) -> Self {
        assert_eq!(w.len(), in_features * out_features, "weight size");
        assert_eq!(b.len(), out_features, "bias size");
        let w = match precision {
            Precision::F32 => DenseWeights::F32(w.to_vec()),
            Precision::Bf16 => DenseWeights::Bf16(encode_bf16(w)),
        };
        Self::Dense {
            in_features,
            out_features,
            w,
            b: b.to_vec(),
        }
    }

    /// Bytes of weight/bias storage this layer holds.
    fn weight_bytes(&self) -> usize {
        match self {
            Self::Dense { w, b, .. } => {
                let wb = match w {
                    DenseWeights::F32(v) => v.len() * 4,
                    DenseWeights::Bf16(v) => v.len() * 2,
                };
                wb + b.len() * 4
            }
            Self::Relu | Self::Flatten => 0,
        }
    }

    /// Trainable-parameter count of the source layer.
    fn param_count(&self) -> usize {
        match self {
            Self::Dense { w, b, .. } => {
                let wn = match w {
                    DenseWeights::F32(v) => v.len(),
                    DenseWeights::Bf16(v) => v.len(),
                };
                wn + b.len()
            }
            Self::Relu | Self::Flatten => 0,
        }
    }

    /// Inference for one layer, mirroring the corresponding
    /// [`crate::Layer::infer_into`] implementation exactly (f32 dense:
    /// the same `resize` + `matmul_nn` + `add_bias` sequence, so frozen
    /// f32 inference is bit-identical to the mutable path).
    fn infer_into(&self, input: &Tensor, out: &mut Tensor) {
        match self {
            Self::Dense {
                in_features,
                out_features,
                w,
                b,
            } => {
                let batch = input.batch();
                assert_eq!(
                    input.row_len(),
                    *in_features,
                    "frozen dense expected {} features, got {:?}",
                    in_features,
                    input.shape()
                );
                out.resize_in_place(&[batch, *out_features]);
                match w {
                    DenseWeights::F32(w) => {
                        matmul_nn(
                            input.data(),
                            w,
                            out.data_mut(),
                            batch,
                            *in_features,
                            *out_features,
                        );
                    }
                    DenseWeights::Bf16(w) => {
                        matmul_nn_bf16(
                            input.data(),
                            w,
                            out.data_mut(),
                            batch,
                            *in_features,
                            *out_features,
                        );
                    }
                }
                add_bias(out.data_mut(), b, batch, *out_features);
            }
            Self::Relu => {
                out.resize_in_place(input.shape());
                for (o, &v) in out.data_mut().iter_mut().zip(input.data()) {
                    *o = v.max(0.0);
                }
            }
            Self::Flatten => {
                out.resize_in_place(&[input.batch(), input.row_len()]);
                out.data_mut().copy_from_slice(input.data());
            }
        }
    }
}

/// A layer cannot be frozen (it has no immutable inference form).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FreezeError {
    /// Index of the offending layer in the network.
    pub layer_index: usize,
    /// Its [`crate::Layer::name`].
    pub layer_name: &'static str,
}

impl std::fmt::Display for FreezeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "layer {} (`{}`) has no frozen inference form",
            self.layer_index, self.layer_name
        )
    }
}

impl std::error::Error for FreezeError {}

/// An immutable inference model: frozen weights plus the layer order,
/// shareable across threads and sessions behind one `Arc`. Built with
/// [`Sequential::freeze`](crate::Sequential::freeze).
pub struct FrozenModel {
    layers: Vec<FrozenLayer>,
    precision: Precision,
}

impl std::fmt::Debug for FrozenModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FrozenModel")
            .field("layers", &self.layers.len())
            .field("params", &self.param_count())
            .field("precision", &self.precision)
            .finish()
    }
}

impl FrozenModel {
    /// Assembles a model from already-frozen layers.
    pub fn from_layers(layers: Vec<FrozenLayer>, precision: Precision) -> Self {
        Self { layers, precision }
    }

    /// The storage precision of the dense weights.
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// True for a model with no layers (inference copies the input).
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Trainable-parameter count of the source network.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(FrozenLayer::param_count).sum()
    }

    /// Actual bytes of weight/bias storage (the figure the fleet memory
    /// accounting charges once per shared model): f32 models hold
    /// `4·params`, bf16 roughly half that.
    pub fn weight_bytes(&self) -> usize {
        self.layers.iter().map(FrozenLayer::weight_bytes).sum()
    }

    /// Inference through the reusable ping-pong `workspace` — the
    /// `&self` twin of [`Sequential::predict_into`](crate::Sequential::predict_into), identical buffer
    /// choreography and (at [`Precision::F32`]) identical kernels, so
    /// results are bit-identical to the source network's.
    pub fn predict_into<'w>(
        &self,
        input: &Tensor,
        workspace: &'w mut PredictWorkspace,
    ) -> &'w Tensor {
        if self.layers.is_empty() {
            workspace.a.resize_in_place(input.shape());
            workspace.a.data_mut().copy_from_slice(input.data());
            return &workspace.a;
        }
        let mut out_is_a = true;
        for (i, layer) in self.layers.iter().enumerate() {
            let (src, dst) = if out_is_a {
                (&workspace.b, &mut workspace.a)
            } else {
                (&workspace.a, &mut workspace.b)
            };
            let src = if i == 0 { input } else { src };
            layer.infer_into(src, dst);
            out_is_a = !out_is_a;
        }
        if out_is_a {
            &workspace.b
        } else {
            &workspace.a
        }
    }

    /// Batched inference: identical math to [`Self::predict_into`] (the
    /// kernels are row-stable, so row `i` of an `m`-row batch is bitwise
    /// identical to running that row alone). Kept as a separate entry
    /// point so callers hold distinct warm workspaces for solo and
    /// batched shapes, mirroring [`Sequential::predict_batch_into`](crate::Sequential::predict_batch_into).
    pub fn predict_batch_into<'w>(
        &self,
        batch: &Tensor,
        workspace: &'w mut PredictWorkspace,
    ) -> &'w Tensor {
        self.predict_into(batch, workspace)
    }
}

// Compile-time proof the model is shareable across threads (all fields
// are plain owned data).
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<FrozenModel>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::Init;
    use crate::layers::{Conv2d, Dense, Flatten, Relu};
    use crate::network::Sequential;

    fn mlp(seed: u64) -> Sequential {
        Sequential::new()
            .push(Flatten::new())
            .push(Dense::new(12, 32, Init::HeNormal, seed))
            .push(Relu::new())
            .push(Dense::new(32, 7, Init::HeNormal, seed + 1))
    }

    #[test]
    fn frozen_f32_is_bit_identical_to_source_network() {
        let mut net = mlp(3);
        let frozen = net.freeze(Precision::F32).unwrap();
        assert_eq!(frozen.param_count(), net.param_count());
        assert_eq!(frozen.weight_bytes(), net.param_count() * 4);
        for m in [1usize, 3, 8, 11] {
            let x = Tensor::new(
                (0..m * 12).map(|i| (i as f32 * 0.31).sin()).collect(),
                &[m, 12],
            );
            let mut ws_net = PredictWorkspace::new();
            let mut ws_frozen = PredictWorkspace::new();
            let expect = net.predict_into(&x, &mut ws_net).clone();
            let got = frozen.predict_into(&x, &mut ws_frozen);
            assert_eq!(got.shape(), expect.shape());
            for (i, (a, b)) in got.data().iter().zip(expect.data()).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "m={m} elem {i}: {a} != {b}");
            }
        }
    }

    #[test]
    fn frozen_batch_rows_bit_identical_to_solo_rows() {
        let net = mlp(9);
        let frozen = net.freeze(Precision::F32).unwrap();
        let m = 5;
        let batch = Tensor::new(
            (0..m * 12).map(|i| (i as f32 * 0.17).cos()).collect(),
            &[m, 12],
        );
        let mut batch_ws = PredictWorkspace::new();
        let out = frozen.predict_batch_into(&batch, &mut batch_ws).clone();
        for r in 0..m {
            let row = Tensor::new(batch.data()[r * 12..(r + 1) * 12].to_vec(), &[1, 12]);
            let mut solo_ws = PredictWorkspace::new();
            let solo = frozen.predict_into(&row, &mut solo_ws);
            for (a, b) in out.data()[r * 7..(r + 1) * 7].iter().zip(solo.data()) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn bf16_model_halves_dense_weight_bytes() {
        let net = mlp(5);
        let f32_model = net.freeze(Precision::F32).unwrap();
        let bf16_model = net.freeze(Precision::Bf16).unwrap();
        assert_eq!(bf16_model.precision(), Precision::Bf16);
        // Weight matrices halve; the f32 biases stay.
        let bias_bytes = (32 + 7) * 4;
        let f32_w = f32_model.weight_bytes() - bias_bytes;
        assert_eq!(bf16_model.weight_bytes() - bias_bytes, f32_w / 2);
    }

    #[test]
    fn bf16_inference_close_and_deterministic() {
        let mut net = mlp(7);
        let frozen = net.freeze(Precision::Bf16).unwrap();
        let x = Tensor::new((0..12).map(|i| (i as f32 * 0.23).sin()).collect(), &[1, 12]);
        let mut ws = PredictWorkspace::new();
        let first = frozen.predict_into(&x, &mut ws).clone();
        let mut ws_net = PredictWorkspace::new();
        let exact = net.predict_into(&x, &mut ws_net);
        for (a, b) in first.data().iter().zip(exact.data()) {
            // bf16 has ~2-3 decimal digits; hidden widths here are small.
            assert!((a - b).abs() <= 2e-2 * (1.0 + b.abs()), "{a} vs {b}");
        }
        // Deterministic: same bytes in, same bits out.
        let mut ws2 = PredictWorkspace::new();
        let second = frozen.predict_into(&x, &mut ws2);
        for (a, b) in first.data().iter().zip(second.data()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn conv_layers_refuse_to_freeze_with_a_named_error() {
        let net = Sequential::new()
            .push(Conv2d::new(1, 2, 3, Init::HeNormal, 1))
            .push(Relu::new());
        let err = net.freeze(Precision::F32).unwrap_err();
        assert_eq!(err.layer_index, 0);
        assert_eq!(err.layer_name, "conv2d");
        assert!(err.to_string().contains("conv2d"));
    }

    #[test]
    fn empty_model_copies_input() {
        let net = Sequential::new();
        let frozen = net.freeze(Precision::F32).unwrap();
        let x = Tensor::new(vec![1.0, -2.0], &[1, 2]);
        let mut ws = PredictWorkspace::new();
        let y = frozen.predict_into(&x, &mut ws);
        assert_eq!(y.data(), x.data());
        assert_eq!(y.shape(), x.shape());
    }
}

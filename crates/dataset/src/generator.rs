//! Harvesting training data from traditional PIC runs (paper Fig. 3 left).
//!
//! For every run in a sweep the generator initializes a traditional PIC
//! simulation and, at the start of every step, captures
//!
//! * the phase-space histogram of the *current* particle state, and
//! * the electric field that is self-consistent with that state —
//!
//! exactly the pair the DL solver must map between at inference time
//! inside the DL-PIC cycle.

use crate::sample::PhaseDataset;
use crate::spec::SweepSpec;
use dlpic_core::phase_space::{bin_phase_space, BinningShape, PhaseGridSpec};
use dlpic_pic::presets::reduced_config;
use dlpic_pic::simulation::Simulation;
use dlpic_pic::solver::TraditionalSolver;
use rayon::prelude::*;

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct GeneratorConfig {
    /// The parameter sweep to run.
    pub sweep: SweepSpec,
    /// Histogram geometry.
    pub phase_spec: PhaseGridSpec,
    /// Histogram binning order (paper: NGP).
    pub binning: BinningShape,
    /// Electrons per cell for the harvest runs (paper: 1000).
    pub ppc: usize,
    /// Print one progress line per combination.
    pub verbose: bool,
}

impl GeneratorConfig {
    /// A generator with the paper's PIC settings for the given sweep.
    pub fn new(sweep: SweepSpec, phase_spec: PhaseGridSpec) -> Self {
        Self {
            sweep,
            phase_spec,
            binning: BinningShape::Ngp,
            ppc: 1000,
            verbose: false,
        }
    }
}

/// Runs one harvest simulation and returns its samples.
fn harvest_run(cfg: &GeneratorConfig, combo_idx: usize, experiment: usize) -> PhaseDataset {
    let combo = cfg.sweep.combos[combo_idx];
    let seed = cfg.sweep.run_seed(combo_idx, experiment);
    let pic_cfg = reduced_config(combo.v0, combo.vth, cfg.ppc, cfg.sweep.steps, seed);
    let e_cells = pic_cfg.grid.ncells();
    let mut sim = Simulation::new(pic_cfg, Box::new(TraditionalSolver::paper_default()));

    let mut out = PhaseDataset::new(cfg.phase_spec, cfg.binning, e_cells);
    out.reserve(cfg.sweep.steps);
    let mut hist = vec![0.0f32; cfg.phase_spec.cells()];
    for _ in 0..cfg.sweep.steps {
        bin_phase_space(
            sim.particles(),
            sim.grid(),
            &cfg.phase_spec,
            cfg.binning,
            &mut hist,
        );
        out.push(&hist, sim.efield());
        sim.step();
    }
    out
}

/// Generates the full dataset for a sweep. Runs are independent and are
/// executed in parallel (deterministically merged in sweep order).
pub fn generate(cfg: &GeneratorConfig) -> PhaseDataset {
    let runs: Vec<(usize, usize)> = (0..cfg.sweep.combos.len())
        .flat_map(|c| (0..cfg.sweep.experiments_per_combo).map(move |e| (c, e)))
        .collect();

    let harvested: Vec<PhaseDataset> = runs
        .par_iter()
        .map(|&(c, e)| {
            let ds = harvest_run(cfg, c, e);
            if cfg.verbose && e == 0 {
                let combo = cfg.sweep.combos[c];
                eprintln!(
                    "harvested combo {:>2}/{}: v0 = ±{:<5} vth = {:<6} ({} samples/run)",
                    c + 1,
                    cfg.sweep.combos.len(),
                    combo.v0,
                    combo.vth,
                    ds.len()
                );
            }
            ds
        })
        .collect();

    let mut merged = PhaseDataset::new(
        cfg.phase_spec,
        cfg.binning,
        harvested.first().map_or(64, |d| d.e_cells),
    );
    for part in &harvested {
        merged.extend(part);
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::SweepCombo;

    fn tiny_cfg(steps: usize) -> GeneratorConfig {
        GeneratorConfig {
            sweep: SweepSpec {
                combos: vec![
                    SweepCombo { v0: 0.2, vth: 0.0 },
                    SweepCombo { v0: 0.1, vth: 0.01 },
                ],
                experiments_per_combo: 2,
                steps,
                base_seed: 42,
            },
            phase_spec: PhaseGridSpec::smoke(),
            binning: BinningShape::Ngp,
            ppc: 20,
            verbose: false,
        }
    }

    #[test]
    fn sample_count_matches_sweep() {
        let cfg = tiny_cfg(5);
        let ds = generate(&cfg);
        assert_eq!(ds.len(), cfg.sweep.total_samples());
        assert_eq!(ds.len(), 20);
    }

    #[test]
    fn histograms_conserve_particle_count() {
        let cfg = tiny_cfg(3);
        let ds = generate(&cfg);
        let expected = (cfg.ppc * 64) as f32;
        for i in 0..ds.len() {
            let mass: f32 = ds.input_row(i).iter().sum();
            assert!((mass - expected).abs() < 1e-2, "sample {i}: mass {mass}");
        }
    }

    #[test]
    fn fields_are_finite_and_nontrivial() {
        let cfg = tiny_cfg(10);
        let ds = generate(&cfg);
        assert!(ds.targets().iter().all(|v| v.is_finite()));
        // Shot noise guarantees a nonzero field somewhere.
        assert!(ds.max_abs_field() > 0.0);
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = tiny_cfg(4);
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(a.inputs(), b.inputs());
        assert_eq!(a.targets(), b.targets());
    }

    #[test]
    fn different_experiments_differ() {
        // Augmentation means different seeds → different samples.
        let cfg = tiny_cfg(4);
        let ds = generate(&cfg);
        // Runs are [combo0/exp0 (4), combo0/exp1 (4), combo1/exp0, ...].
        assert_ne!(
            ds.input_row(0),
            ds.input_row(4),
            "seeds did not differentiate runs"
        );
    }
}

//! Parameter (de)serialization.
//!
//! The byte format is deliberately simple and self-describing:
//!
//! ```text
//! magic "DLNN" | version u32 | tensor-count u32 | { len u64 | f32·len }*
//! ```
//!
//! Parameters are stored in the network's stable visitation order, so a
//! load must target an *architecturally identical* network — the model
//! bundles in `dlpic-core` store the architecture spec alongside.

use crate::network::Sequential;
use bytes::{Buf, BufMut};

const MAGIC: &[u8; 4] = b"DLNN";
const VERSION: u32 = 1;

/// Serialization / deserialization failure.
#[derive(Debug, PartialEq, Eq)]
pub enum SerializeError {
    /// The byte stream does not start with the expected magic.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u32),
    /// The stream ended early or has trailing/mismatched tensor sizes.
    Corrupt(&'static str),
}

impl std::fmt::Display for SerializeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::BadMagic => write!(f, "bad magic: not a DLNN parameter blob"),
            Self::BadVersion(v) => write!(f, "unsupported DLNN version {v}"),
            Self::Corrupt(what) => write!(f, "corrupt parameter blob: {what}"),
        }
    }
}

impl std::error::Error for SerializeError {}

/// Serializes all parameters of a network.
pub fn params_to_bytes(net: &mut Sequential) -> Vec<u8> {
    let mut tensors: Vec<Vec<f32>> = Vec::new();
    net.visit_params(&mut |p, _| tensors.push(p.to_vec()));
    let payload: usize = tensors.iter().map(|t| 8 + 4 * t.len()).sum();
    let mut buf = Vec::with_capacity(12 + payload);
    buf.put_slice(MAGIC);
    buf.put_u32_le(VERSION);
    buf.put_u32_le(tensors.len() as u32);
    for t in &tensors {
        buf.put_u64_le(t.len() as u64);
        for &v in t {
            buf.put_f32_le(v);
        }
    }
    buf
}

/// Restores parameters into an architecturally identical network.
pub fn params_from_bytes(net: &mut Sequential, bytes: &[u8]) -> Result<(), SerializeError> {
    let mut buf = bytes;
    if buf.remaining() < 12 {
        return Err(SerializeError::Corrupt("truncated header"));
    }
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(SerializeError::BadMagic);
    }
    let version = buf.get_u32_le();
    if version != VERSION {
        return Err(SerializeError::BadVersion(version));
    }
    let count = buf.get_u32_le() as usize;

    // Decode all tensors first so a failure cannot leave the network
    // half-overwritten.
    let mut tensors: Vec<Vec<f32>> = Vec::with_capacity(count);
    for _ in 0..count {
        if buf.remaining() < 8 {
            return Err(SerializeError::Corrupt("truncated tensor header"));
        }
        let len = buf.get_u64_le() as usize;
        if buf.remaining() < 4 * len {
            return Err(SerializeError::Corrupt("truncated tensor payload"));
        }
        let mut t = Vec::with_capacity(len);
        for _ in 0..len {
            t.push(buf.get_f32_le());
        }
        tensors.push(t);
    }

    // Shape check against the target network.
    let mut expected: Vec<usize> = Vec::new();
    net.visit_params(&mut |p, _| expected.push(p.len()));
    if expected.len() != tensors.len() {
        return Err(SerializeError::Corrupt(
            "tensor count does not match architecture",
        ));
    }
    if expected.iter().zip(&tensors).any(|(&e, t)| e != t.len()) {
        return Err(SerializeError::Corrupt(
            "tensor size does not match architecture",
        ));
    }

    let mut it = tensors.into_iter();
    net.visit_params(&mut |p, _| {
        let t = it.next().expect("counted above");
        p.copy_from_slice(&t);
    });
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::Init;
    use crate::layers::{Conv2d, Dense, Relu};
    use crate::tensor::Tensor;

    fn make_net(seed: u64) -> Sequential {
        Sequential::new()
            .push(Conv2d::new(1, 2, 3, Init::HeNormal, seed))
            .push(Relu::new())
            .push(crate::layers::Flatten::new())
            .push(Dense::new(2 * 16, 4, Init::GlorotUniform, seed + 1))
    }

    #[test]
    fn round_trip_restores_exact_predictions() {
        let mut net = make_net(1);
        let x = Tensor::new((0..16).map(|i| i as f32 / 16.0).collect(), &[1, 1, 4, 4]);
        let before = net.predict(&x);
        let blob = params_to_bytes(&mut net);

        let mut restored = make_net(999); // different init, same architecture
        assert_ne!(restored.predict(&x).data(), before.data());
        params_from_bytes(&mut restored, &blob).unwrap();
        assert_eq!(restored.predict(&x).data(), before.data());
    }

    #[test]
    fn bad_magic_detected() {
        let mut net = make_net(1);
        let mut blob = params_to_bytes(&mut net);
        blob[0] = b'X';
        assert_eq!(
            params_from_bytes(&mut net, &blob),
            Err(SerializeError::BadMagic)
        );
    }

    #[test]
    fn truncation_detected_without_corrupting_target() {
        let mut net = make_net(1);
        let x = Tensor::zeros(&[1, 1, 4, 4]);
        let blob = params_to_bytes(&mut net);
        let mut other = make_net(2);
        let before = other.predict(&x);
        let err = params_from_bytes(&mut other, &blob[..blob.len() - 7]).unwrap_err();
        assert!(matches!(err, SerializeError::Corrupt(_)));
        // Target unchanged on failure.
        assert_eq!(other.predict(&x).data(), before.data());
    }

    #[test]
    fn architecture_mismatch_detected() {
        let mut net = make_net(1);
        let blob = params_to_bytes(&mut net);
        let mut smaller = Sequential::new().push(Dense::new(4, 2, Init::Zeros, 0));
        let err = params_from_bytes(&mut smaller, &blob).unwrap_err();
        assert!(matches!(err, SerializeError::Corrupt(_)));
    }

    #[test]
    fn version_mismatch_detected() {
        let mut net = make_net(1);
        let mut blob = params_to_bytes(&mut net);
        blob[4] = 99;
        assert!(matches!(
            params_from_bytes(&mut net, &blob),
            Err(SerializeError::BadVersion(_))
        ));
    }
}

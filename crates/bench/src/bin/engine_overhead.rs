//! Measures the engine facade's overhead against driving the solver
//! crates directly, and records the baseline to `BENCH_engine.json`.
//!
//! Two facade layers are measured, in 1-D and 2-D, at physics-relevant
//! particle counts:
//!
//! * `engine::run` — the one-shot convenience (build + run + summary);
//! * the incremental `Session` — per-step virtual dispatch through
//!   `BackendSession::step`, one `Sample` allocation, history push and
//!   observer fan-out per step, driven from the caller's loop.
//!
//! Both must be noise against the direct `Simulation::step` loop. With
//! `--check` the binary gates the session dispatch overhead at <2%
//! (override with `DLPIC_ENGINE_MAX_OVERHEAD`, in percent) and exits
//! non-zero on failure — the CI perf-smoke job runs this form alongside
//! the step/train throughput gates. Without `--check` it rewrites
//! `BENCH_engine.json`.
//!
//! Run: `cargo run -p dlpic-bench --release --bin engine_overhead`

use dlpic_pic::init::TwoStreamInit;
use dlpic_pic::simulation::{PicConfig, Simulation};
use dlpic_pic::solver::TraditionalSolver;
use dlpic_pic::{Grid1D, Shape};
use dlpic_pic2d::init2d::TwoStream2DInit;
use dlpic_pic2d::simulation2d::Pic2DConfig;
use dlpic_pic2d::{Grid2D, Simulation2D, TraditionalSolver2D};
use dlpic_repro::core::Scale;
use dlpic_repro::engine::{self, Backend, LoadingSpec};
use std::time::Instant;

const REPS: usize = 7;
const STEPS_1D: usize = 100;
const PPC_1D: usize = 300;
const STEPS_2D: usize = 40;
const PPC_2D: usize = 64;

/// Median seconds of `REPS` timed calls.
fn median_secs(mut run: impl FnMut()) -> f64 {
    // One warm-up.
    run();
    let mut times: Vec<f64> = (0..REPS)
        .map(|_| {
            let t0 = Instant::now();
            run();
            t0.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(|a, b| a.total_cmp(b));
    times[times.len() / 2]
}

/// Overhead of `facade` over `direct` in percent, from the median of
/// per-rep time ratios measured in *interleaved pairs*. Independent
/// medians taken seconds apart see ±5% machine drift on this container —
/// far above a 2% gate — while the ratio within one back-to-back pair
/// cancels the drift.
fn paired_overhead_pct(mut direct: impl FnMut(), mut facade: impl FnMut()) -> f64 {
    // More reps than the timing medians: the gate sits at 2% and the
    // per-pair ratio still carries ~±0.7% noise.
    const PAIR_REPS: usize = 11;
    direct();
    facade(); // warm-up
    let mut ratios: Vec<f64> = (0..PAIR_REPS)
        .map(|_| {
            let t0 = Instant::now();
            direct();
            let d = t0.elapsed().as_secs_f64();
            let t1 = Instant::now();
            facade();
            let f = t1.elapsed().as_secs_f64();
            f / d
        })
        .collect();
    ratios.sort_by(|a, b| a.total_cmp(b));
    (ratios[ratios.len() / 2] - 1.0) * 100.0
}

fn spec_1d() -> engine::ScenarioSpec {
    let mut spec = engine::scenario("two_stream", Scale::Smoke).expect("registry");
    spec.ppc = PPC_1D;
    spec.n_steps = STEPS_1D;
    spec.seed = 9;
    spec
}

fn spec_2d() -> engine::ScenarioSpec {
    let mut spec = engine::scenario("two_stream_2d", Scale::Smoke).expect("registry");
    spec.ppc = PPC_2D;
    spec.n_steps = STEPS_2D;
    spec.loading = LoadingSpec::Quiet {
        mode: 1,
        amplitude: 1e-3,
    };
    spec.seed = 9;
    spec
}

fn main() {
    let check = std::env::args().any(|a| a == "--check");
    println!("== engine facade overhead vs direct crate drivers ==\n");

    // --- 1-D: engine vs pic::Simulation with the identical setup. ------
    let mut run_direct_1d = || {
        let cfg = PicConfig {
            grid: Grid1D::paper(),
            init: Some(TwoStreamInit::random(0.2, 0.025, 64 * PPC_1D, 9)),
            dt: 0.2,
            n_steps: STEPS_1D,
            gather_shape: Shape::Cic,
            tracked_modes: vec![1, 2, 3],
        };
        let mut sim = Simulation::new(cfg, Box::new(TraditionalSolver::paper_default()));
        sim.run();
        std::hint::black_box(sim.history().len());
    };
    let spec = spec_1d();
    let mut run_engine_1d = || {
        let summary = engine::run(&spec, Backend::Traditional1D).expect("run");
        std::hint::black_box(summary.history.len());
    };
    // The incremental primitive: per-step virtual dispatch + Sample
    // emission, driven from the caller's own loop.
    let mut run_session_1d = || {
        let mut session = engine::start(&spec, Backend::Traditional1D).expect("start");
        while !session.is_complete() {
            std::hint::black_box(session.step().step);
        }
        let summary = session.finish();
        std::hint::black_box(summary.history.len());
    };
    let direct_1d = median_secs(&mut run_direct_1d);
    let engine_1d = median_secs(&mut run_engine_1d);
    let session_1d = median_secs(&mut run_session_1d);
    let oh_1d = paired_overhead_pct(&mut run_direct_1d, &mut run_engine_1d);
    let oh_session_1d = paired_overhead_pct(&mut run_direct_1d, &mut run_session_1d);

    // --- 2-D: engine vs pic2d::Simulation2D. ---------------------------
    let mut run_direct_2d = || {
        let grid = Grid2D::default_square();
        let n = grid.nx() * grid.ny() * PPC_2D;
        let cfg = Pic2DConfig {
            grid,
            init: TwoStream2DInit::quiet(0.2, 0.0, n, 1e-3, 9),
            dt: 0.2,
            n_steps: STEPS_2D,
            gather_shape: Shape::Cic,
            tracked_modes: vec![(1, 0), (2, 0)],
        };
        let mut sim = Simulation2D::new(cfg, Box::new(TraditionalSolver2D::default_config()));
        sim.run();
        std::hint::black_box(sim.history().len());
    };
    let spec2 = spec_2d();
    let mut run_engine_2d = || {
        let summary = engine::run(&spec2, Backend::Traditional2D).expect("run");
        std::hint::black_box(summary.history.len());
    };
    let mut run_session_2d = || {
        let mut session = engine::start(&spec2, Backend::Traditional2D).expect("start");
        while !session.is_complete() {
            std::hint::black_box(session.step().step);
        }
        let summary = session.finish();
        std::hint::black_box(summary.history.len());
    };
    let direct_2d = median_secs(&mut run_direct_2d);
    let engine_2d = median_secs(&mut run_engine_2d);
    let session_2d = median_secs(&mut run_session_2d);
    let oh_2d = paired_overhead_pct(&mut run_direct_2d, &mut run_engine_2d);
    let oh_session_2d = paired_overhead_pct(&mut run_direct_2d, &mut run_session_2d);

    println!(
        "1-D ({} particles, {STEPS_1D} steps, median of {REPS}):",
        64 * PPC_1D
    );
    println!("  direct pic::Simulation : {:.2} ms", direct_1d * 1e3);
    println!(
        "  engine facade          : {:.2} ms  ({oh_1d:+.2}%)",
        engine_1d * 1e3
    );
    println!(
        "  session step loop      : {:.2} ms  ({oh_session_1d:+.2}%)",
        session_1d * 1e3
    );
    println!(
        "2-D ({} particles, {STEPS_2D} steps, median of {REPS}):",
        32 * 32 * PPC_2D
    );
    println!("  direct Simulation2D    : {:.2} ms", direct_2d * 1e3);
    println!(
        "  engine facade          : {:.2} ms  ({oh_2d:+.2}%)",
        engine_2d * 1e3
    );
    println!(
        "  session step loop      : {:.2} ms  ({oh_session_2d:+.2}%)",
        session_2d * 1e3
    );

    if check {
        // The CI gate: per-step session dispatch must stay under 2% of
        // the direct solver loop (the engine::run path is the session
        // path, so gating the session covers both).
        let max_overhead: f64 = std::env::var("DLPIC_ENGINE_MAX_OVERHEAD")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(2.0);
        let worst = oh_session_1d.max(oh_session_2d);
        println!(
            "\ngate: session dispatch overhead {worst:+.2}% (limit {max_overhead:.1}%, override with DLPIC_ENGINE_MAX_OVERHEAD)"
        );
        if worst > max_overhead {
            println!("verdict: FAIL — session dispatch exceeds the gate");
            std::process::exit(1);
        }
        println!("verdict: PASS");
        return;
    }

    let json = format!(
        "{{\n  \"bench\": \"engine_overhead\",\n  \"reps\": {REPS},\n  \"oned\": {{\n    \"particles\": {},\n    \"steps\": {STEPS_1D},\n    \"direct_ms\": {:.3},\n    \"engine_ms\": {:.3},\n    \"overhead_pct\": {:.3},\n    \"session_ms\": {:.3},\n    \"session_overhead_pct\": {:.3}\n  }},\n  \"twod\": {{\n    \"particles\": {},\n    \"steps\": {STEPS_2D},\n    \"direct_ms\": {:.3},\n    \"engine_ms\": {:.3},\n    \"overhead_pct\": {:.3},\n    \"session_ms\": {:.3},\n    \"session_overhead_pct\": {:.3}\n  }}\n}}\n",
        64 * PPC_1D,
        direct_1d * 1e3,
        engine_1d * 1e3,
        oh_1d,
        session_1d * 1e3,
        oh_session_1d,
        32 * 32 * PPC_2D,
        direct_2d * 1e3,
        engine_2d * 1e3,
        oh_2d,
        session_2d * 1e3,
        oh_session_2d,
    );
    std::fs::write("BENCH_engine.json", &json).expect("write BENCH_engine.json");
    println!("\nwrote BENCH_engine.json");

    let pass = oh_1d < 2.0 && oh_2d < 2.0 && oh_session_1d < 2.0 && oh_session_2d < 2.0;
    println!(
        "verdict: {}",
        if pass {
            "PASS — run facade and session dispatch both under 2%"
        } else {
            "CHECK"
        }
    );
}

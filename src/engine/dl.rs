//! DL model plumbing for the engine's `Dl1D`/`Dl2D` backends.
//!
//! Three ways to get a model into an [`Engine`](super::Engine):
//!
//! 1. **Bring a trained bundle** — `engine.with_model_1d(bundle)` with a
//!    [`ModelBundle`] from `dlpic-bench` or [`quick_train_1d`].
//! 2. **Quick-train here** — [`quick_train_1d`]/[`quick_train_2d`] run the
//!    full harvest→train pipeline at the spec's scale (seconds at
//!    `Scale::Smoke`).
//! 3. **Untrained fallback** — with no model configured, the engine builds
//!    an untrained network of the scale's architecture. The produced
//!    fields are physically meaningless (finite, near-zero) but every
//!    plumbing path is exercised; runs report the solver name
//!    `dl-*-untrained` so nobody mistakes them for physics.

use super::error::EngineError;
use super::spec::ScenarioSpec;
use crate::core::normalize::NormStats;
use crate::core::phase_space::BinningShape;
use crate::core::presets::Scale;
use crate::core::twod::{
    arch_2d, harvest_2d, train_2d_solver, DensityBinning, Dl2DFieldSolver, Train2DConfig,
};
use crate::core::{DlFieldSolver, ModelBundle};
use crate::nn::serialize::{params_from_bytes, params_to_bytes};
use crate::pic2d::{Grid2D, Pic2DConfig};

/// A persisted-in-memory 2-D DL model (the 2-D analogue of
/// [`ModelBundle`]): enough to rebuild a [`Dl2DFieldSolver`] any number of
/// times.
#[derive(Debug, Clone)]
pub struct Dl2DModel {
    /// Hidden-layer widths of the MLP.
    pub hidden: Vec<usize>,
    /// Serialized network parameters.
    pub params: Vec<u8>,
    /// Density-binning order used in training.
    pub binning: DensityBinning,
    /// Training-input normalization statistics.
    pub norm: NormStats,
    /// Total mass of the training histograms (0 disables rescaling).
    pub reference_mass: f32,
}

impl Dl2DModel {
    /// Rebuilds the solver for the given grid. Fails if the grid's node
    /// count mismatches the trained parameter shapes.
    pub fn into_solver(&self, grid: &Grid2D) -> Result<Dl2DFieldSolver, EngineError> {
        let arch = arch_2d(grid, self.hidden.clone());
        let mut net = arch.build(0);
        params_from_bytes(&mut net, &self.params).map_err(|_| EngineError::InvalidSpec {
            scenario: String::new(),
            what: format!(
                "2-D model parameters do not fit a {}×{} grid",
                grid.nx(),
                grid.ny()
            ),
        })?;
        Ok(
            Dl2DFieldSolver::new(net, self.binning, self.norm, "dl-2d-mlp")
                .with_reference_mass(self.reference_mass),
        )
    }
}

/// Hidden widths of the default 2-D architecture at each scale.
pub fn hidden_2d(scale: Scale) -> Vec<usize> {
    match scale {
        Scale::Smoke => vec![32, 32],
        Scale::Scaled => vec![256, 256],
        Scale::Paper => vec![512, 512],
    }
}

/// An untrained 1-D DL solver with the scale's MLP architecture. The
/// network output width is the paper's 64 cells, so the scenario domain
/// must match (checked by the engine before building).
pub fn untrained_1d(scale: Scale) -> DlFieldSolver {
    let arch = scale.mlp_arch();
    DlFieldSolver::new(
        arch.build(0xD15E),
        scale.phase_spec(),
        BinningShape::Ngp,
        NormStats::identity(),
        arch.input_kind(),
        "dl-mlp-untrained",
    )
}

/// An untrained 2-D DL solver sized for the grid.
pub fn untrained_2d(scale: Scale, grid: &Grid2D) -> Dl2DFieldSolver {
    let arch = arch_2d(grid, hidden_2d(scale));
    Dl2DFieldSolver::new(
        arch.build(0xD15E),
        DensityBinning::Ngp,
        NormStats::identity(),
        "dl-2d-mlp-untrained",
    )
}

/// Output width (field cells) of a 1-D bundle's network.
pub fn bundle_output_cells(bundle: &ModelBundle) -> usize {
    bundle.arch.output_len()
}

/// Trains a 1-D MLP field solver from scratch at the given scale — the
/// full paper pipeline (traditional-PIC harvest → shuffle/split →
/// Adam/MSE training) with the scale's sweep and architecture. Seconds at
/// `Scale::Smoke`; see `dlpic-bench` for cached, full-size training.
pub fn quick_train_1d(scale: Scale, seed: u64) -> ModelBundle {
    use crate::dataset::generator::{generate, GeneratorConfig};
    use crate::dataset::spec::SweepSpec;
    use crate::nn::optimizer::Adam;
    use crate::nn::trainer::{train, TrainConfig};

    let mut cfg = GeneratorConfig::new(SweepSpec::training_for(scale), scale.phase_spec());
    cfg.ppc = scale.dataset_ppc();
    let data = generate(&cfg);
    let norm = data.input_norm_stats();
    let arch = scale.mlp_arch();
    let kind = arch.input_kind();
    let mut net = arch.build(seed);
    let mut opt = Adam::new(scale.learning_rate());
    let tc = TrainConfig {
        epochs: scale.mlp_epochs(),
        batch_size: 64,
        shuffle_seed: seed,
        log_every: 0,
    };
    train(
        &mut net,
        &crate::nn::Mse,
        &mut opt,
        &data.to_nn_dataset(&norm, kind),
        None,
        &tc,
    );
    let reference_mass: f32 = data.input_row(0).iter().sum();
    ModelBundle::from_network(&mut net, arch, data.spec, data.binning, norm)
        .with_reference_mass(reference_mass)
}

/// Trains a 2-D DL field solver by harvesting a traditional 2-D run of the
/// given scenario, then fitting the scale's MLP.
pub fn quick_train_2d(spec: &ScenarioSpec, seed: u64) -> Result<Dl2DModel, EngineError> {
    let grid = match spec.dim() {
        super::spec::Dim::TwoD => spec.grid_2d(),
        super::spec::Dim::OneD => {
            return Err(EngineError::InvalidSpec {
                scenario: spec.name.clone(),
                what: "quick_train_2d needs a 2-D scenario".into(),
            })
        }
    };
    let init = spec.init_2d().ok_or_else(|| EngineError::InvalidSpec {
        scenario: spec.name.clone(),
        what: "2-D training harvest needs a symmetric two-beam species".into(),
    })?;
    let cfg = Pic2DConfig {
        grid: grid.clone(),
        init,
        dt: spec.dt,
        n_steps: spec.n_steps,
        gather_shape: crate::pic::Shape::Cic,
        tracked_modes: vec![],
    };
    let binning = DensityBinning::Ngp;
    let samples = harvest_2d(cfg, binning, 1);
    let tc = Train2DConfig {
        hidden: hidden_2d(spec.scale),
        learning_rate: spec.scale.learning_rate().max(1e-3),
        epochs: match spec.scale {
            Scale::Smoke => 10,
            Scale::Scaled => 40,
            Scale::Paper => 80,
        },
        batch_size: 32,
        seed,
    };
    let (mut solver, _history) = train_2d_solver(&grid, &samples, binning, &tc);
    let reference_mass: f32 = samples.first().map(|s| s.hist.iter().sum()).unwrap_or(0.0);
    let params = params_to_bytes(solver.network_mut());
    Ok(Dl2DModel {
        hidden: hidden_2d(spec.scale),
        params,
        binning,
        norm: solver.norm(),
        reference_mass,
    })
}

//! The engine's error type: every failure mode of the facade — invalid
//! scenario specifications, incompatible scenario×backend pairings,
//! (de)serialization problems and the analytics/model/dataset errors of
//! the underlying crates — surfaces as one [`EngineError`].

use super::json::JsonError;
use crate::analytics::fit::FitError;
use crate::core::bundle::BundleError;
use crate::dataset::store::StoreError;

/// Any failure raised by the `dlpic_repro::engine` API.
#[derive(Debug)]
pub enum EngineError {
    /// The scenario specification fails validation.
    InvalidSpec {
        /// Scenario name (may be empty if that is what is invalid).
        scenario: String,
        /// What is wrong.
        what: String,
    },
    /// The scenario cannot run on the requested backend.
    Incompatible {
        /// Scenario name.
        scenario: String,
        /// Backend name.
        backend: &'static str,
        /// Why the pairing is impossible.
        why: String,
    },
    /// No registry entry under this name.
    UnknownScenario {
        /// The requested name.
        name: String,
        /// Valid names, for the error message.
        known: Vec<&'static str>,
    },
    /// A session checkpoint is malformed or does not fit the spec it
    /// claims to continue.
    Checkpoint {
        /// What is wrong.
        what: String,
    },
    /// A run's diagnostics went non-finite — the solver left the physical
    /// regime (for DL backends: the surrogate was driven off its training
    /// distribution). The run's history up to `step` remains valid.
    Diverged {
        /// Index of the first non-finite diagnostics row.
        step: usize,
        /// Which quantity went non-finite, and how.
        diagnostic: String,
    },
    /// Spec (de)serialization failed.
    Json(JsonError),
    /// A growth-rate/line fit failed.
    Fit(FitError),
    /// Model-bundle persistence failed.
    Bundle(BundleError),
    /// Dataset persistence failed.
    Store(StoreError),
    /// Filesystem error.
    Io(std::io::Error),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::InvalidSpec { scenario, what } => {
                write!(f, "invalid scenario `{scenario}`: {what}")
            }
            Self::Incompatible {
                scenario,
                backend,
                why,
            } => {
                write!(
                    f,
                    "scenario `{scenario}` cannot run on backend `{backend}`: {why}"
                )
            }
            Self::UnknownScenario { name, known } => {
                write!(f, "unknown scenario `{name}`; known: {}", known.join(", "))
            }
            Self::Checkpoint { what } => write!(f, "checkpoint: {what}"),
            Self::Diverged { step, diagnostic } => {
                write!(f, "run diverged at step {step}: {diagnostic}")
            }
            Self::Json(e) => write!(f, "scenario spec: {e}"),
            Self::Fit(e) => write!(f, "fit: {e}"),
            Self::Bundle(e) => write!(f, "model bundle: {e}"),
            Self::Store(e) => write!(f, "dataset store: {e}"),
            Self::Io(e) => write!(f, "i/o: {e}"),
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Json(e) => Some(e),
            Self::Fit(e) => Some(e),
            Self::Bundle(e) => Some(e),
            Self::Store(e) => Some(e),
            Self::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<JsonError> for EngineError {
    fn from(e: JsonError) -> Self {
        Self::Json(e)
    }
}

impl From<FitError> for EngineError {
    fn from(e: FitError) -> Self {
        Self::Fit(e)
    }
}

impl From<BundleError> for EngineError {
    fn from(e: BundleError) -> Self {
        Self::Bundle(e)
    }
}

impl From<StoreError> for EngineError {
    fn from(e: StoreError) -> Self {
        Self::Store(e)
    }
}

impl From<std::io::Error> for EngineError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

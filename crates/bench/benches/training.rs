//! Criterion benches of the training substrate: GEMM throughput and
//! per-batch training cost (the paper trained on a Tesla K80; these
//! numbers characterize the CPU substitute).

use criterion::{criterion_group, criterion_main, Criterion};
use dlpic_nn::data::Dataset;
use dlpic_nn::init::Init;
use dlpic_nn::layers::{Dense, Relu};
use dlpic_nn::linalg::matmul_nn;
use dlpic_nn::loss::Mse;
use dlpic_nn::network::Sequential;
use dlpic_nn::optimizer::{Adam, Optimizer};
use dlpic_nn::tensor::Tensor;
use std::time::Duration;

fn bench_gemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    for n in [64usize, 256, 512] {
        let a: Vec<f32> = (0..n * n).map(|i| (i % 13) as f32 / 13.0 - 0.5).collect();
        let b: Vec<f32> = (0..n * n).map(|i| (i % 17) as f32 / 17.0 - 0.5).collect();
        let mut cm = vec![0.0f32; n * n];
        group.bench_function(format!("nn_{n}x{n}"), |bch| {
            bch.iter(|| matmul_nn(&a, &b, &mut cm, n, n, n));
        });
    }
    group.finish();
}

fn scaled_mlp() -> Sequential {
    Sequential::new()
        .push(Dense::new(1024, 256, Init::HeNormal, 1))
        .push(Relu::new())
        .push(Dense::new(256, 256, Init::HeNormal, 2))
        .push(Relu::new())
        .push(Dense::new(256, 256, Init::HeNormal, 3))
        .push(Relu::new())
        .push(Dense::new(256, 64, Init::GlorotUniform, 4))
}

fn bench_train_batch(c: &mut Criterion) {
    let mut group = c.benchmark_group("train");
    group
        .sample_size(15)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3));
    let n = 64; // the paper's batch size
    let x = Tensor::new(
        (0..n * 1024).map(|i| (i % 19) as f32 / 19.0).collect(),
        &[n, 1024],
    );
    let y = Tensor::new(
        (0..n * 64).map(|i| (i % 7) as f32 / 70.0).collect(),
        &[n, 64],
    );
    let data = Dataset::new(x.clone(), y.clone());

    group.bench_function("mlp_scaled_batch64_fwd_bwd_adam", |b| {
        let mut net = scaled_mlp();
        let mut opt = Adam::paper();
        b.iter(|| {
            let loss = net.compute_gradients(&Mse, &x, &y);
            opt.step(&mut net);
            loss
        });
    });
    group.bench_function("mlp_scaled_inference_batch64", |b| {
        let mut net = scaled_mlp();
        b.iter(|| net.predict(&data.x));
    });
    group.finish();
}

criterion_group!(benches, bench_gemm, bench_train_batch);
criterion_main!(benches);

//! The PIC computational cycle (paper Figs. 1–2).
//!
//! [`Simulation`] owns the particle state, the grid fields and a pluggable
//! [`FieldSolver`]. With a [`crate::solver::TraditionalSolver`] it is the paper's baseline
//! method; with the DL solver from `dlpic-core` it is the paper's DL-based
//! PIC — mover, gather and diagnostics are shared, exactly as in the
//! paper's design where only the grey boxes of Fig. 2 change.
//!
//! ## Stepping and diagnostics convention
//!
//! Velocities are staggered half a step behind positions (leap-frog). Each
//! [`Simulation::step`] records diagnostics for the time level `tⁿ` at
//! which it *starts*:
//!
//! * field energy from `Eⁿ`,
//! * kinetic energy from the time-centred product `½m·Σ v^{n-1/2}·v^{n+1/2}`,
//! * momentum right after the velocity push.
//!
//! [`Simulation::run`] appends one final snapshot (instantaneous kinetic
//! energy) at `t_end`, so a 200-step run yields 201 samples.

use crate::diagnostics::{field_mode_amplitude, instantaneous_report, EnergyReport};
use crate::efield::field_energy;
use crate::fused::fused_gather_push_move;
use crate::gather::gather_field;
use crate::grid::Grid1D;
use crate::history::History;
use crate::init::TwoStreamInit;
use crate::mover::half_step_back;
use crate::particles::Particles;
use crate::shape::Shape;
use crate::solver::FieldSolver;

/// Full configuration of a PIC run.
#[derive(Debug, Clone)]
pub struct PicConfig {
    /// The periodic field grid.
    pub grid: Grid1D,
    /// Two-stream initial condition. Required by [`Simulation::new`];
    /// `None` for runs that bring their own particle load through
    /// [`Simulation::from_particles`] (e.g. bump-on-tail, which
    /// [`TwoStreamInit`] cannot express).
    pub init: Option<TwoStreamInit>,
    /// Time step.
    pub dt: f64,
    /// Number of steps a [`Simulation::run`] performs.
    pub n_steps: usize,
    /// Shape function used to gather E to the particles (the solver has its
    /// own deposition shape; keep them equal for momentum conservation).
    pub gather_shape: Shape,
    /// Field modes whose amplitudes are recorded each step (e.g. `[1, 2]`).
    pub tracked_modes: Vec<usize>,
}

/// A running PIC simulation (traditional or DL-based, depending on the
/// injected field solver).
pub struct Simulation {
    cfg: PicConfig,
    particles: Particles,
    solver: Box<dyn FieldSolver>,
    e: Vec<f64>,
    history: History,
    amps_scratch: Vec<f64>,
    time: f64,
    steps_done: usize,
}

impl Simulation {
    /// Initializes the simulation: loads particles, performs the initial
    /// field solve and sets up the leap-frog stagger.
    ///
    /// # Panics
    /// Panics if `cfg.init` is `None`; bring-your-own-load runs go through
    /// [`Self::from_particles`].
    pub fn new(cfg: PicConfig, solver: Box<dyn FieldSolver>) -> Self {
        let particles = cfg
            .init
            .as_ref()
            .expect("PicConfig.init is required by Simulation::new")
            .build(&cfg.grid);
        Self::from_particles(cfg, particles, solver)
    }

    /// Initializes from an already-built particle load — the
    /// bring-your-own-loading entry point used by `dlpic_repro::engine` for
    /// species (e.g. bump-on-tail) that [`TwoStreamInit`] cannot express.
    /// `cfg.init` is not consulted (and is typically `None`).
    pub fn from_particles(
        cfg: PicConfig,
        particles: Particles,
        solver: Box<dyn FieldSolver>,
    ) -> Self {
        let mut history = History::new(cfg.tracked_modes.clone());
        // One sample per step plus the final snapshot: reserving up front
        // keeps the per-step path free of reallocation.
        history.reserve(cfg.n_steps + 1);
        let mut sim = Self {
            e: cfg.grid.zeros(),
            history,
            amps_scratch: Vec::with_capacity(cfg.tracked_modes.len()),
            particles,
            solver,
            time: 0.0,
            steps_done: 0,
            cfg,
        };
        // E⁰ from the initial particle state.
        sim.solver.solve(&sim.particles, &sim.cfg.grid, &mut sim.e);
        // v⁰ → v^{-1/2}. The per-particle buffer lives only for this
        // set-up gather; the stepping loop is fused and needs none.
        let mut e_part = vec![0.0; sim.particles.len()];
        gather_field(
            &sim.particles,
            &sim.cfg.grid,
            sim.cfg.gather_shape,
            &sim.e,
            &mut e_part,
        );
        half_step_back(&mut sim.particles, &e_part, sim.cfg.dt);
        sim
    }

    /// Advances one step and records diagnostics for the starting time
    /// level (see module docs).
    pub fn step(&mut self) {
        self.step_pre_solve();
        self.solver
            .solve(&self.particles, &self.cfg.grid, &mut self.e);
        self.step_post_solve();
    }

    /// The first half of a split step: diagnostics for the starting time
    /// level, the fused particle push, and the history row — everything
    /// [`Self::step`] does *before* the field solve. An external driver
    /// (the engine's ensemble scheduler) then performs the solve itself
    /// through [`Self::split_for_solve`] — possibly batching the DL
    /// inference of many simulations — and completes the step with
    /// [`Self::step_post_solve`]. The
    /// pre-solve → solve → post-solve sequence is exactly [`Self::step`].
    pub fn step_pre_solve(&mut self) {
        let grid = &self.cfg.grid;
        let dt = self.cfg.dt;

        // Diagnostics tied to tⁿ: field energy and mode amplitudes of Eⁿ.
        let fe = field_energy(grid, &self.e);
        self.amps_scratch.clear();
        self.amps_scratch.extend(
            self.cfg
                .tracked_modes
                .iter()
                .map(|&m| field_mode_amplitude(&self.e, m)),
        );

        // Fused gather → velocity push → position push: one pass over the
        // particles, arithmetically identical to the unfused pipeline
        // (gather_field + push_velocities + push_positions).
        let moments = fused_gather_push_move(
            &mut self.particles,
            grid,
            self.cfg.gather_shape,
            &self.e,
            dt,
        );

        self.history.push(
            self.time,
            EnergyReport {
                kinetic: moments.centred_kinetic,
                field: fe,
                momentum: moments.momentum,
            },
            &self.amps_scratch,
        );
    }

    /// The second half of a split step: advances the clock and step
    /// counter. Call only after [`Self::step_pre_solve`] and the external
    /// field solve.
    pub fn step_post_solve(&mut self) {
        self.time += self.cfg.dt;
        self.steps_done += 1;
    }

    /// Disjoint borrows of the pieces an external field solve needs
    /// (between [`Self::step_pre_solve`] and [`Self::step_post_solve`]):
    /// the injected solver, the pushed particle state, the grid, and the
    /// field buffer to fill.
    pub fn split_for_solve(&mut self) -> (&mut dyn FieldSolver, &Particles, &Grid1D, &mut [f64]) {
        (
            self.solver.as_mut(),
            &self.particles,
            &self.cfg.grid,
            &mut self.e,
        )
    }

    /// Runs the configured number of steps and appends a final snapshot at
    /// `t_end`.
    pub fn run(&mut self) {
        for _ in 0..self.cfg.n_steps {
            self.step();
        }
        self.finish();
    }

    /// Appends the final diagnostics snapshot (instantaneous kinetic
    /// energy) at the current time. [`Self::run`] calls this after its
    /// steps; external drivers that call [`Self::step`] themselves (the
    /// engine facade, benchmarks) call it once at the end to reproduce the
    /// `n + 1`-sample convention.
    pub fn finish(&mut self) {
        let report = instantaneous_report(&self.particles, &self.cfg.grid, &self.e);
        self.amps_scratch.clear();
        self.amps_scratch.extend(
            self.cfg
                .tracked_modes
                .iter()
                .map(|&m| field_mode_amplitude(&self.e, m)),
        );
        self.history.push(self.time, report, &self.amps_scratch);
    }

    /// Current simulation time.
    pub fn time(&self) -> f64 {
        self.time
    }

    /// Steps taken so far.
    pub fn steps_done(&self) -> usize {
        self.steps_done
    }

    /// The particle state.
    pub fn particles(&self) -> &Particles {
        &self.particles
    }

    /// The current grid electric field.
    pub fn efield(&self) -> &[f64] {
        &self.e
    }

    /// The field grid.
    pub fn grid(&self) -> &Grid1D {
        &self.cfg.grid
    }

    /// The run configuration.
    pub fn config(&self) -> &PicConfig {
        &self.cfg
    }

    /// Accumulated diagnostics history.
    pub fn history(&self) -> &History {
        &self.history
    }

    /// Name of the injected field solver ("traditional", "dl-mlp", ...).
    pub fn solver_name(&self) -> &'static str {
        self.solver.name()
    }

    /// The injected field solver (mirrors `Simulation2D::solver`).
    pub fn solver(&self) -> &dyn FieldSolver {
        self.solver.as_ref()
    }

    /// Phase-space snapshot `(x, v)` — the scatter data of the paper's
    /// Figs. 4/6 top panels.
    pub fn phase_space(&self) -> (&[f64], &[f64]) {
        (&self.particles.x, &self.particles.v)
    }

    /// Overwrites the mutable state with a checkpointed snapshot: particle
    /// phase space (velocities at their staggered `v^{n−1/2}` level — no
    /// leap-frog set-up is re-applied), grid field, clock and step
    /// counter. The internal diagnostics history is *not* rewound; a
    /// restored simulation records from the restore point onward, and
    /// external drivers (the engine's sessions) keep the authoritative
    /// pre-restore record.
    ///
    /// # Panics
    /// Panics if the buffer lengths do not match the simulation's particle
    /// count or grid.
    pub fn restore_state(&mut self, x: &[f64], v: &[f64], e: &[f64], time: f64, steps_done: usize) {
        assert_eq!(x.len(), self.particles.len(), "particle count mismatch");
        assert_eq!(v.len(), self.particles.len(), "particle count mismatch");
        assert_eq!(e.len(), self.e.len(), "grid size mismatch");
        self.particles.x.copy_from_slice(x);
        self.particles.v.copy_from_slice(v);
        self.e.copy_from_slice(e);
        self.time = time;
        self.steps_done = steps_done;
    }
}

/// Convenience: builds a two-stream config with the paper's grid and
/// standard numerical parameters but a custom particle count.
pub fn two_stream_config(init: TwoStreamInit, n_steps: usize) -> PicConfig {
    PicConfig {
        grid: Grid1D::paper(),
        init: Some(init),
        dt: crate::constants::PAPER_DT,
        n_steps,
        gather_shape: Shape::Cic,
        tracked_modes: vec![1, 2, 3],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::TraditionalSolver;

    fn small_sim(v0: f64, vth: f64, n_steps: usize) -> Simulation {
        let init = TwoStreamInit::random(v0, vth, 6_400, 42);
        let cfg = two_stream_config(init, n_steps);
        Simulation::new(cfg, Box::new(TraditionalSolver::paper_default()))
    }

    #[test]
    fn run_records_expected_sample_count() {
        let mut sim = small_sim(0.2, 0.0, 10);
        sim.run();
        assert_eq!(sim.history().len(), 11);
        assert_eq!(sim.steps_done(), 10);
        assert!((sim.time() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn momentum_conserved_by_traditional_method() {
        let mut sim = small_sim(0.2, 0.0, 50);
        sim.run();
        let p = &sim.history().momentum;
        let drift = dlpic_analytics::stats::max_drift(p);
        // CIC gather+deposit: momentum conserved to rounding noise.
        assert!(drift < 1e-10, "momentum drift {drift}");
    }

    #[test]
    fn energy_bounded_over_short_run() {
        let mut sim = small_sim(0.2, 0.0, 50);
        sim.run();
        let var = dlpic_analytics::stats::relative_variation(&sim.history().total);
        assert!(var < 0.05, "energy variation {var}");
    }

    #[test]
    fn particles_stay_in_box() {
        let mut sim = small_sim(0.3, 0.01, 30);
        sim.run();
        let (x, _) = sim.phase_space();
        let l = sim.grid().length();
        for &xi in x {
            assert!((0.0..l).contains(&xi), "escaped particle at {xi}");
        }
    }

    #[test]
    fn fields_stay_finite() {
        let mut sim = small_sim(0.2, 0.025, 60);
        sim.run();
        assert!(sim.efield().iter().all(|v| v.is_finite()));
        assert!(sim.history().total.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn two_stream_mode_one_grows() {
        // The physics smoke test: E1 must grow by orders of magnitude.
        let mut sim = small_sim(0.2, 0.0, 120);
        sim.run();
        let e1 = sim.history().mode_series(1).unwrap();
        let start = e1.values[0].max(1e-12);
        let peak = e1.values.iter().copied().fold(0.0f64, f64::max);
        // At 6 400 particles the shot-noise floor is ~1e-2, so saturation
        // (~0.15) is roughly a decade above it; paper-scale runs (64 000
        // particles) have far more headroom and are covered by the
        // integration tests.
        assert!(
            peak / start > 8.0,
            "instability did not develop: start {start}, peak {peak}"
        );
    }

    #[test]
    fn tsc_cycle_conserves_momentum_and_stays_stable() {
        // The higher-order path through the full cycle (gather + deposit
        // both TSC).
        let init = TwoStreamInit::random(0.2, 0.01, 6_400, 8);
        let mut cfg = two_stream_config(init, 60);
        cfg.gather_shape = crate::shape::Shape::Tsc;
        let solver = crate::solver::TraditionalSolver::new(
            crate::shape::Shape::Tsc,
            crate::solver::PoissonKind::Spectral,
            1.0,
        );
        let mut sim = Simulation::new(cfg, Box::new(solver));
        sim.run();
        let drift = dlpic_analytics::stats::max_drift(&sim.history().momentum);
        assert!(drift < 1e-10, "TSC momentum drift {drift}");
        let var = dlpic_analytics::stats::relative_variation(&sim.history().total);
        assert!(var < 0.05, "TSC energy variation {var}");
    }

    #[test]
    fn restore_state_resumes_bit_identically() {
        let mut straight = small_sim(0.2, 0.01, 20);
        for _ in 0..8 {
            straight.step();
        }
        let x = straight.phase_space().0.to_vec();
        let v = straight.phase_space().1.to_vec();
        let e = straight.efield().to_vec();
        let mut resumed = small_sim(0.2, 0.01, 20);
        resumed.restore_state(&x, &v, &e, straight.time(), straight.steps_done());
        assert_eq!(resumed.steps_done(), 8);
        for _ in 0..12 {
            straight.step();
            resumed.step();
        }
        assert_eq!(straight.phase_space(), resumed.phase_space());
        assert_eq!(straight.efield(), resumed.efield());
        assert_eq!(straight.time(), resumed.time());
    }

    #[test]
    fn solver_name_is_exposed() {
        let sim = small_sim(0.2, 0.0, 1);
        assert_eq!(sim.solver_name(), "traditional");
    }
}

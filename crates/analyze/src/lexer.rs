//! A lightweight Rust token scanner — just enough lexical structure for
//! the rule engine: identifiers, punctuation, literals, and comments,
//! each tagged with its 1-based source line. No parsing, no external
//! dependencies; the container is offline and the rules only need token
//! patterns, not a syntax tree.
//!
//! The scanner understands everything that could make a naive substring
//! search lie: nested block comments, string/char/byte literals, raw
//! strings with arbitrary `#` fences, and lifetimes (so `'a` is not a
//! truncated char literal).

/// What a token is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`unsafe`, `HashMap`, `for`, …).
    Ident,
    /// A single punctuation character (`.`, `(`, `!`, …).
    Punct,
    /// String / char / byte-string literal (text excludes quotes).
    Literal,
    /// Numeric literal.
    Number,
    /// Lifetime (`'a`) — kept distinct so char-literal logic stays honest.
    Lifetime,
    /// `// …` line comment, including `///` and `//!` doc comments.
    LineComment,
    /// `/* … */` block comment (possibly nested).
    BlockComment,
}

/// One lexed token.
#[derive(Debug, Clone)]
pub struct Token {
    pub kind: TokenKind,
    /// Source text: the identifier/number itself, the single punctuation
    /// character, the comment including its `//`/`/*` markers, or the
    /// literal body without quotes.
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: usize,
}

impl Token {
    /// True for an identifier with exactly this text.
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == text
    }

    /// True for a punctuation token with exactly this character.
    pub fn is_punct(&self, ch: char) -> bool {
        self.kind == TokenKind::Punct && self.text.len() == 1 && self.text.starts_with(ch)
    }

    /// True for either comment kind.
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokenKind::LineComment | TokenKind::BlockComment)
    }
}

/// Lexes `source` into tokens. Never fails: unterminated constructs are
/// closed at end-of-file (the rules prefer best-effort findings over
/// refusing a file rustc already accepts or rejects elsewhere).
pub fn lex(source: &str) -> Vec<Token> {
    let chars: Vec<char> = source.chars().collect();
    let mut tokens = Vec::new();
    let mut i = 0;
    let mut line = 1;

    while i < chars.len() {
        let c = chars[i];
        let at = |k: usize| chars.get(k).copied().unwrap_or('\0');

        if c == '\n' {
            line += 1;
            i += 1;
        } else if c.is_whitespace() {
            i += 1;
        } else if c == '/' && at(i + 1) == '/' {
            let start = i;
            while i < chars.len() && chars[i] != '\n' {
                i += 1;
            }
            tokens.push(Token {
                kind: TokenKind::LineComment,
                text: chars[start..i].iter().collect(),
                line,
            });
        } else if c == '/' && at(i + 1) == '*' {
            let start = i;
            let start_line = line;
            let mut depth = 1usize;
            i += 2;
            while i < chars.len() && depth > 0 {
                if chars[i] == '/' && at(i + 1) == '*' {
                    depth += 1;
                    i += 2;
                } else if chars[i] == '*' && at(i + 1) == '/' {
                    depth -= 1;
                    i += 2;
                } else {
                    if chars[i] == '\n' {
                        line += 1;
                    }
                    i += 1;
                }
            }
            tokens.push(Token {
                kind: TokenKind::BlockComment,
                text: chars[start..i].iter().collect(),
                line: start_line,
            });
        } else if c == 'r' && (at(i + 1) == '"' || at(i + 1) == '#')
            || (c == 'b' && at(i + 1) == 'r' && (at(i + 2) == '"' || at(i + 2) == '#'))
        {
            // Raw (byte) string: r"…", r#"…"#, br##"…"##, …
            let mut j = i + if c == 'b' { 2 } else { 1 };
            let mut hashes = 0usize;
            while j < chars.len() && chars[j] == '#' {
                hashes += 1;
                j += 1;
            }
            if chars.get(j).copied() == Some('"') {
                let start_line = line;
                j += 1;
                let body_start = j;
                'scan: while j < chars.len() {
                    if chars[j] == '"' {
                        let mut k = 0;
                        while k < hashes && chars.get(j + 1 + k).copied() == Some('#') {
                            k += 1;
                        }
                        if k == hashes {
                            break 'scan;
                        }
                    }
                    if chars[j] == '\n' {
                        line += 1;
                    }
                    j += 1;
                }
                tokens.push(Token {
                    kind: TokenKind::Literal,
                    text: chars[body_start..j.min(chars.len())].iter().collect(),
                    line: start_line,
                });
                i = (j + 1 + hashes).min(chars.len());
            } else {
                // `r` / `br` not followed by a raw string: plain ident.
                let start = i;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                tokens.push(Token {
                    kind: TokenKind::Ident,
                    text: chars[start..i].iter().collect(),
                    line,
                });
            }
        } else if c == '"' || (c == 'b' && at(i + 1) == '"') {
            let start_line = line;
            i += if c == 'b' { 2 } else { 1 };
            let body_start = i;
            while i < chars.len() && chars[i] != '"' {
                if chars[i] == '\\' {
                    i += 1; // skip the escaped character
                }
                if chars.get(i).copied() == Some('\n') {
                    line += 1;
                }
                i += 1;
            }
            tokens.push(Token {
                kind: TokenKind::Literal,
                text: chars[body_start..i.min(chars.len())].iter().collect(),
                line: start_line,
            });
            i += 1; // closing quote
        } else if c == '\'' {
            // Lifetime or char literal. A lifetime is `'` + ident-start
            // NOT followed by a closing `'` (so `'a'` is a char literal
            // and `'a` is a lifetime).
            if (at(i + 1).is_alphabetic() || at(i + 1) == '_') && at(i + 2) != '\'' {
                let start = i + 1;
                i += 2;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                tokens.push(Token {
                    kind: TokenKind::Lifetime,
                    text: chars[start..i].iter().collect(),
                    line,
                });
            } else {
                i += 1;
                let body_start = i;
                while i < chars.len() && chars[i] != '\'' {
                    if chars[i] == '\\' {
                        i += 1;
                    }
                    i += 1;
                }
                tokens.push(Token {
                    kind: TokenKind::Literal,
                    text: chars[body_start..i.min(chars.len())].iter().collect(),
                    line,
                });
                i += 1;
            }
        } else if c.is_alphabetic() || c == '_' {
            let start = i;
            while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                i += 1;
            }
            tokens.push(Token {
                kind: TokenKind::Ident,
                text: chars[start..i].iter().collect(),
                line,
            });
        } else if c.is_ascii_digit() {
            let start = i;
            i += 1;
            while i < chars.len() {
                let d = chars[i];
                if d.is_alphanumeric() || d == '_' {
                    i += 1;
                } else if d == '.' && at(i + 1).is_ascii_digit() {
                    i += 2;
                } else {
                    break;
                }
            }
            tokens.push(Token {
                kind: TokenKind::Number,
                text: chars[start..i].iter().collect(),
                line,
            });
        } else {
            tokens.push(Token {
                kind: TokenKind::Punct,
                text: c.to_string(),
                line,
            });
            i += 1;
        }
    }
    tokens
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_strings_and_comments_are_separated() {
        let toks = kinds(r#"let x = "HashMap::iter"; // HashMap here too"#);
        assert!(toks.contains(&(TokenKind::Ident, "let".into())));
        // The string body and the comment are NOT ident tokens, so a
        // rule scanning idents cannot be fooled by either.
        assert!(!toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "HashMap"));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::LineComment && t.contains("HashMap here")));
    }

    #[test]
    fn raw_strings_and_nested_block_comments() {
        let toks = kinds(r##"x r#"unsafe { "quoted" }"# /* outer /* unsafe */ still */ y"##);
        assert!(!toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "unsafe"));
        assert_eq!(
            toks.iter().filter(|(k, _)| *k == TokenKind::Ident).count(),
            2 // x and y
        );
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::BlockComment && t.contains("still")));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let nl = '\\n'; }");
        assert_eq!(
            toks.iter()
                .filter(|(k, _)| *k == TokenKind::Lifetime)
                .count(),
            2
        );
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Literal && t == "x"));
    }

    #[test]
    fn line_numbers_track_newlines_everywhere() {
        let src = "a\n\"two\nlines\"\nb /* c\nd */ e";
        let toks = lex(src);
        let find = |text: &str| toks.iter().find(|t| t.text == text).unwrap().line;
        assert_eq!(find("a"), 1);
        assert_eq!(find("b"), 4);
        assert_eq!(find("e"), 5);
    }

    #[test]
    fn unterminated_string_does_not_panic() {
        let toks = lex("let s = \"never closed");
        assert!(toks.iter().any(|t| t.kind == TokenKind::Literal));
    }
}

//! # dlpic-ddecomp
//!
//! A domain-decomposed 1-D PIC with an explicit, *measurable*
//! communication model — the substrate behind the paper's §VII claim that
//! the DL electric-field solver "does not need communication when running
//! ... on distributed memory systems as all neural networks can be loaded
//! on each process", whereas the traditional method "requires a linear
//! system".
//!
//! The decomposition follows the standard PIC parallelization: the box is
//! split into contiguous cell slabs, each owned by one *rank* (a thread in
//! this in-process emulation); particles live on the rank that owns their
//! cell slab. Each cycle step then needs:
//!
//! 1. **Halo reduction** after deposition — boundary-node charge
//!    contributions travel to the neighbouring rank ([`halo`]).
//! 2. **Field solve** — strategy-dependent ([`strategy`]):
//!    * [`strategy::GatherScatter`] (traditional): ranks send their local
//!      ρ slab to rank 0, which solves the global Poisson system and
//!      scatters E slabs (plus gather-shape ghost nodes) back.
//!    * [`strategy::ReplicatedDl`] (DL): ranks all-reduce their *local
//!      phase-space histograms* (a fixed-size array much smaller than the
//!      particle data) and every rank runs the replicated network's
//!      inference locally — no field exchange at all.
//! 3. **Particle migration** after the position push — particles whose new
//!    position left the slab move to the neighbour ([`migrate`]).
//!
//! Every byte that crosses a rank boundary is counted by the [`comm`]
//! fabric, so the §VII discussion becomes a table: bytes/step and
//! wall-time/step for each strategy at 1, 2, 4, 8 ranks (the `perf_dist`
//! bench binary).
//!
//! The decomposed simulation is the *same algorithm* as the single-process
//! baseline: only the floating-point summation order differs (boundary
//! deposits arrive via halo messages after the interior ones), so with the
//! same initial state the E₁ and energy series agree to ~10⁻⁹ over tens of
//! steps and the growth rate at full length — which the integration tests
//! enforce at 1, 2, 4 and 8 ranks.

#![warn(missing_docs)]

pub mod comm;
pub mod halo;
pub mod migrate;
pub mod sim;
pub mod strategy;
pub mod topology;

pub use comm::{CommStats, Fabric};
pub use sim::{DistConfig, DistSimulation, DistState, RankStateSnapshot};
pub use strategy::{DistFieldStrategy, GatherScatter, ReplicatedDl};
pub use topology::Topology;

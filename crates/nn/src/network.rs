//! Sequential network container.

use crate::frozen::{FreezeError, FrozenModel, Precision};
use crate::layer::Layer;
use crate::loss::Loss;
use crate::tensor::Tensor;

/// A feed-forward stack of layers — the shape of both architectures in the
/// paper's §IV.A.
#[derive(Default)]
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
}

/// Reusable ping-pong activation buffers for
/// [`Sequential::predict_into`]: once warm, repeated inference performs
/// no heap allocation (for layer stacks whose members implement
/// [`Layer::infer_into`]; others fall back to the allocating path but
/// still reuse the workspace slots).
pub struct PredictWorkspace {
    pub(crate) a: Tensor,
    pub(crate) b: Tensor,
}

impl Default for PredictWorkspace {
    fn default() -> Self {
        Self {
            a: Tensor::zeros(&[0]),
            b: Tensor::zeros(&[0]),
        }
    }
}

impl PredictWorkspace {
    /// An empty workspace; buffers grow to the network's widest
    /// activation on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Reusable buffers for [`Sequential::compute_gradients_into`]: two
/// ping-pong activation slots for the forward pass and a third slot so
/// the backward pass can ping-pong the gradient without touching the
/// loss input. Once warm, a full forward + loss + backward step performs
/// no heap allocation (layers cache activations in their own reused
/// buffers).
pub struct TrainWorkspace {
    bufs: [Tensor; 3],
}

impl Default for TrainWorkspace {
    fn default() -> Self {
        Self {
            bufs: [
                Tensor::zeros(&[0]),
                Tensor::zeros(&[0]),
                Tensor::zeros(&[0]),
            ],
        }
    }
}

impl TrainWorkspace {
    /// An empty workspace; buffers grow to the network's widest
    /// activation on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Disjoint (read, write) access to two of the workspace slots.
fn two_slots(bufs: &mut [Tensor; 3], src: usize, dst: usize) -> (&Tensor, &mut Tensor) {
    assert_ne!(src, dst);
    if src < dst {
        let (lo, hi) = bufs.split_at_mut(dst);
        (&lo[src], &mut hi[0])
    } else {
        let (lo, hi) = bufs.split_at_mut(src);
        (&hi[0], &mut lo[dst])
    }
}

impl Sequential {
    /// Creates an empty network.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a layer (builder style).
    pub fn push(mut self, layer: impl Layer + 'static) -> Self {
        self.layers.push(Box::new(layer));
        self
    }

    /// Appends a boxed layer.
    pub fn push_boxed(&mut self, layer: Box<dyn Layer>) {
        self.layers.push(layer);
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// True for a network with no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Total trainable parameter count.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(|l| l.param_count()).sum()
    }

    /// Forward pass. `training = true` retains activation caches for a
    /// subsequent [`Sequential::backward`].
    pub fn forward(&mut self, input: &Tensor, training: bool) -> Tensor {
        let mut x = input.clone();
        for layer in &mut self.layers {
            x = layer.forward(&x, training);
        }
        x
    }

    /// Inference without caching.
    pub fn predict(&mut self, input: &Tensor) -> Tensor {
        self.forward(input, false)
    }

    /// Inference into the reusable `workspace`, returning a reference to
    /// the output activation. Layers alternate between the workspace's
    /// two buffers, so a warm workspace makes repeated inference
    /// allocation-free — the per-step path of the DL field solvers.
    pub fn predict_into<'w>(
        &mut self,
        input: &Tensor,
        workspace: &'w mut PredictWorkspace,
    ) -> &'w Tensor {
        if self.layers.is_empty() {
            workspace.a.resize_in_place(input.shape());
            workspace.a.data_mut().copy_from_slice(input.data());
            return &workspace.a;
        }
        let mut out_is_a = true;
        for (i, layer) in self.layers.iter_mut().enumerate() {
            let (src, dst) = if out_is_a {
                (&workspace.b, &mut workspace.a)
            } else {
                (&workspace.a, &mut workspace.b)
            };
            let src = if i == 0 { input } else { src };
            layer.infer_into(src, dst);
            out_is_a = !out_is_a;
        }
        // The last layer wrote the buffer `out_is_a` now points away from.
        if out_is_a {
            &workspace.b
        } else {
            &workspace.a
        }
    }

    /// Batched inference: one forward pass over an `m`-row batch (shape
    /// `[m, in]` for flat inputs, `[m, c, h, w]` for image inputs) through
    /// the reusable ping-pong `workspace`. The layer stack treats rows as
    /// independent samples, and the `nn`/GEMV kernels are row-stable, so
    /// row `i` of the batched output is **bitwise identical** to running
    /// that row alone through [`Self::predict_into`] — the property the
    /// engine's ensemble scheduler relies on when it folds `m` concurrent
    /// DL field solves into one GEMM that hits the 8-row zmm tiles.
    ///
    /// Identical math to [`Self::predict_into`]; kept as a separate entry
    /// point so callers hold distinct warm workspaces for their solo and
    /// batched shapes (a workspace regrown every call would reallocate).
    pub fn predict_batch_into<'w>(
        &mut self,
        batch: &Tensor,
        workspace: &'w mut PredictWorkspace,
    ) -> &'w Tensor {
        self.predict_into(batch, workspace)
    }

    /// Backward pass from the output gradient; accumulates parameter
    /// gradients and returns the input gradient.
    pub fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mut g = grad_out.clone();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g);
        }
        g
    }

    /// One training step's gradient computation: zeroes gradients, runs
    /// forward + loss + backward. Returns the loss value. The caller then
    /// applies an optimizer step. Allocating convenience form of
    /// [`Sequential::compute_gradients_into`].
    pub fn compute_gradients(&mut self, loss: &dyn Loss, x: &Tensor, y: &Tensor) -> f32 {
        let mut ws = TrainWorkspace::new();
        self.compute_gradients_into(loss, x, y, &mut ws)
    }

    /// One training step's gradient computation through the reusable
    /// `workspace`: activations ping-pong between two workspace slots on
    /// the way up, the gradient ping-pongs through the third on the way
    /// down, so a warm workspace makes the whole step allocation-free —
    /// the per-batch path of [`crate::trainer::train`]. Numerically
    /// identical to [`Sequential::compute_gradients`].
    pub fn compute_gradients_into(
        &mut self,
        loss: &dyn Loss,
        x: &Tensor,
        y: &Tensor,
        workspace: &mut TrainWorkspace,
    ) -> f32 {
        self.zero_grads();
        if self.layers.is_empty() {
            // Degenerate network: prediction is the input itself.
            workspace.bufs[0].copy_from(x);
            let (pred, grad) = two_slots(&mut workspace.bufs, 0, 2);
            grad.resize_in_place(pred.shape());
            return loss.loss_and_grad(pred, y, grad);
        }
        // Forward: x → bufs[1] → bufs[0] → bufs[1] → …
        let mut cur = 0;
        for (i, layer) in self.layers.iter_mut().enumerate() {
            let nxt = 1 - cur;
            let (src, dst) = two_slots(&mut workspace.bufs, cur, nxt);
            layer.train_forward_into(if i == 0 { x } else { src }, dst);
            cur = nxt;
        }
        // Loss gradient into the third slot.
        let (pred, grad) = two_slots(&mut workspace.bufs, cur, 2);
        grad.resize_in_place(pred.shape());
        let value = loss.loss_and_grad(pred, y, grad);
        // Backward: bufs[2] → the freed activation slot → bufs[2] → …
        let free = 1 - cur;
        let mut g = 2;
        for layer in self.layers.iter_mut().rev() {
            let dst = if g == 2 { free } else { 2 };
            let (src, out) = two_slots(&mut workspace.bufs, g, dst);
            layer.backward_into(src, out);
            g = dst;
        }
        value
    }

    /// Snapshots the weights into an immutable [`FrozenModel`] at the
    /// given storage precision — the shareable inference form
    /// (`Arc<FrozenModel>`) whose `&self` prediction path is
    /// bit-identical to this network's at [`Precision::F32`]. Training
    /// state (gradients, caches) stays behind; the network is unchanged.
    ///
    /// Fails on the first layer without a frozen form (conv / pooling /
    /// residual blocks), naming it, so callers can fall back to an
    /// owned per-session network.
    pub fn freeze(&self, precision: Precision) -> Result<FrozenModel, FreezeError> {
        let mut layers = Vec::with_capacity(self.layers.len());
        for (i, layer) in self.layers.iter().enumerate() {
            match layer.freeze(precision) {
                Some(frozen) => layers.push(frozen),
                None => {
                    return Err(FreezeError {
                        layer_index: i,
                        layer_name: layer.name(),
                    })
                }
            }
        }
        Ok(FrozenModel::from_layers(layers, precision))
    }

    /// Visits every (parameter, gradient) slice pair in a stable order.
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut [f32], &mut [f32])) {
        for layer in &mut self.layers {
            layer.visit_params(f);
        }
    }

    /// Zeros all parameter gradients.
    pub fn zero_grads(&mut self) {
        for layer in &mut self.layers {
            layer.zero_grads();
        }
    }

    /// One line per layer: name and parameter count.
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (i, layer) in self.layers.iter().enumerate() {
            let _ = writeln!(
                out,
                "{i:>3}  {:<16} {:>10} params",
                layer.name(),
                layer.param_count()
            );
        }
        let _ = writeln!(out, "     total {:>21} params", self.param_count());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::Init;
    use crate::layers::{Dense, Relu};
    use crate::loss::Mse;

    fn tiny_net() -> Sequential {
        Sequential::new()
            .push(Dense::new(2, 4, Init::HeNormal, 1))
            .push(Relu::new())
            .push(Dense::new(4, 1, Init::HeNormal, 2))
    }

    #[test]
    fn forward_shapes_flow_through() {
        let mut net = tiny_net();
        let x = Tensor::zeros(&[3, 2]);
        let y = net.forward(&x, false);
        assert_eq!(y.shape(), &[3, 1]);
        assert_eq!(net.len(), 3);
        assert_eq!(net.param_count(), (2 * 4 + 4) + (4 + 1));
    }

    #[test]
    fn gradient_descent_reduces_loss_on_tiny_problem() {
        // Fit y = x0 - x1 with plain gradient descent on the raw grads.
        let mut net = tiny_net();
        let x = Tensor::new(vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0, 0.5, -0.5], &[4, 2]);
        let y = Tensor::new(vec![1.0, -1.0, 0.0, 1.0], &[4, 1]);
        let loss = Mse;
        let first = net.compute_gradients(&loss, &x, &y);
        for _ in 0..300 {
            net.compute_gradients(&loss, &x, &y);
            net.visit_params(&mut |p, g| {
                for (pv, gv) in p.iter_mut().zip(g.iter()) {
                    *pv -= 0.05 * gv;
                }
            });
        }
        let last = net.compute_gradients(&loss, &x, &y);
        assert!(last < first * 0.05, "loss {first} -> {last}");
    }

    #[test]
    fn predict_into_matches_predict() {
        let mut net = tiny_net();
        let mut ws = PredictWorkspace::new();
        for trial in 0..3 {
            let x = Tensor::new(
                (0..6).map(|i| (i + trial) as f32 * 0.3 - 0.8).collect(),
                &[3, 2],
            );
            let expect = net.predict(&x);
            let got = net.predict_into(&x, &mut ws);
            assert_eq!(got.shape(), expect.shape());
            assert_eq!(got.data(), expect.data());
        }
    }

    #[test]
    fn predict_batch_rows_bit_identical_to_solo_rows() {
        // The ensemble-batching contract at the network level: every row
        // of a batched inference equals the same input run alone,
        // bit for bit (row-stable GEMM kernels + per-row bias/ReLU).
        let mut net = Sequential::new()
            .push(Dense::new(6, 32, Init::HeNormal, 7))
            .push(Relu::new())
            .push(Dense::new(32, 17, Init::HeNormal, 8));
        for m in [1usize, 3, 8, 11] {
            let batch = Tensor::new(
                (0..m * 6).map(|i| (i as f32 * 0.37).sin()).collect(),
                &[m, 6],
            );
            let mut batch_ws = PredictWorkspace::new();
            let out = net.predict_batch_into(&batch, &mut batch_ws).clone();
            assert_eq!(out.shape(), &[m, 17]);
            for r in 0..m {
                let row = Tensor::new(batch.data()[r * 6..(r + 1) * 6].to_vec(), &[1, 6]);
                let mut solo_ws = PredictWorkspace::new();
                let solo = net.predict_into(&row, &mut solo_ws);
                for (j, (x, y)) in out.data()[r * 17..(r + 1) * 17]
                    .iter()
                    .zip(solo.data())
                    .enumerate()
                {
                    assert_eq!(
                        x.to_bits(),
                        y.to_bits(),
                        "m={m} row {r} elem {j}: batched {x} != solo {y}"
                    );
                }
            }
        }
    }

    #[test]
    fn predict_into_on_empty_network_copies_input() {
        let mut net = Sequential::new();
        let mut ws = PredictWorkspace::new();
        let x = Tensor::new(vec![1.0, -2.0], &[1, 2]);
        let y = net.predict_into(&x, &mut ws);
        assert_eq!(y.data(), x.data());
        assert_eq!(y.shape(), x.shape());
    }

    #[test]
    fn summary_lists_layers() {
        let net = tiny_net();
        let s = net.summary();
        assert!(s.contains("dense"));
        assert!(s.contains("relu"));
        assert!(s.contains("total"));
    }
}

//! Fixture: the sanctioned sharing idioms. Handles come from
//! `Arc::clone`, cheap metadata strings may be cloned freely, and a
//! genuinely per-copy site carries an inline allow.

use std::sync::Arc;

pub struct Engine {
    model_1d: Arc<Bundle>,
}

impl Engine {
    pub fn spawn(&self, spec: &Spec, base_model: &Bundle) -> Session {
        let shared = Arc::clone(&self.model_1d);
        let name = spec.scenario.clone();
        let frozen = self.frozen.clone();
        // analyze:allow(no-weight-clone): mutation fuzzing needs a private weight copy per trial
        let scratch = base_model.clone();
        Session::new(shared, frozen, name, scratch)
    }
}

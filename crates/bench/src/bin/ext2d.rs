//! **Extension: 2-D systems** — the paper's §VII names "two- and
//! three-dimensional systems" as the next step for the DL-PIC method.
//! This binary runs the full pipeline in 2-D: harvest training data from
//! traditional 2-D PIC runs across a small (v0, seed) sweep, train the
//! 2-D DL field solver (density histogram → `[Ex | Ey]`), and compare the
//! DL-based and traditional 2-D PIC on the two-stream validation run —
//! the 2-D analogue of the paper's Figs. 4–5.
//!
//! Run: `cargo run -p dlpic-bench --release --bin ext2d [--scale ...]`

use dlpic_analytics::dispersion::TwoStreamDispersion;
use dlpic_analytics::fit::{fit_growth_rate, GrowthFitOptions};
use dlpic_analytics::plot::{line_plot, PlotOptions};
use dlpic_analytics::series::{write_csv, Table, TimeSeries};
use dlpic_analytics::stats;
use dlpic_bench::{out_dir, Cli};
use dlpic_core::presets::Scale;
use dlpic_core::twod::{harvest_2d, train_2d_solver, DensityBinning, Train2DConfig};
use dlpic_pic::shape::Shape;
use dlpic_pic2d::grid2d::Grid2D;
use dlpic_pic2d::init2d::TwoStream2DInit;
use dlpic_pic2d::simulation2d::{Pic2DConfig, Simulation2D};
use dlpic_pic2d::solver2d::TraditionalSolver2D;

/// Experiment sizes per scale: (cells per axis, particles, train seeds,
/// hidden width, epochs).
fn sizing(scale: Scale) -> (usize, usize, usize, usize, usize) {
    match scale {
        Scale::Smoke => (16, 8_192, 2, 96, 40),
        Scale::Scaled => (32, 65_536, 3, 256, 60),
        Scale::Paper => (64, 1 << 20, 6, 1024, 100),
    }
}

fn config(grid: &Grid2D, n_part: usize, v0: f64, vth: f64, seed: u64) -> Pic2DConfig {
    // Seed amplitude 3e-3: large enough that the instability signal rises
    // above the DL model's prediction floor early (the paper's own Fig. 4
    // shows the DL curve riding a higher floor for the same reason).
    Pic2DConfig {
        grid: grid.clone(),
        init: TwoStream2DInit::quiet(v0, vth, n_part, 3e-3, seed),
        dt: 0.2,
        n_steps: 200,
        gather_shape: Shape::Cic,
        tracked_modes: vec![(1, 0), (0, 1)],
    }
}

fn main() {
    let cli = Cli::parse();
    let (n_axis, n_part, n_seeds, hidden, epochs) = sizing(cli.scale);
    let grid = Grid2D::new(n_axis, n_axis, 2.0532, 2.0532);
    println!(
        "== Extension: 2-D DL-PIC [{} scale: {n_axis}²(cells) {n_part} particles] ==\n",
        cli.scale.name()
    );

    // 1. Harvest training data: a small sweep over v0 × seeds (the same
    //    augmentation-by-seed procedure as the paper's 1-D dataset).
    eprintln!(
        "harvesting 2-D training data ({n_seeds} seeds × 2 drift speeds × 2 thermal spreads)..."
    );
    let mut samples = Vec::new();
    for &v0 in &[0.18, 0.2] {
        for &vth in &[0.0, 0.01] {
            for seed in 0..n_seeds as u64 {
                samples.extend(harvest_2d(
                    config(&grid, n_part, v0, vth, seed),
                    DensityBinning::Cic,
                    1,
                ));
            }
        }
    }
    eprintln!("  {} samples harvested", samples.len());

    // 2. Train.
    eprintln!("training 2-D MLP ({hidden} hidden, {epochs} epochs)...");
    let tc = Train2DConfig {
        hidden: vec![hidden],
        learning_rate: 1e-3,
        epochs,
        batch_size: 32,
        seed: 7,
    };
    let (mut solver, history) = train_2d_solver(&grid, &samples, DensityBinning::Cic, &tc);
    eprintln!(
        "  final MSE {:.3e} ({:.1}s)",
        history.final_loss().unwrap_or(f64::NAN),
        history.seconds
    );

    // 3. Validation run on an unseen seed, traditional vs DL.
    let seed = 20210705;
    let (v0, vth) = (0.2, 0.0125);

    // Held-out field accuracy (the 2-D analogue of Table I's MAE): drive a
    // traditional run at the evaluation parameters and compare the DL
    // prediction against the Poisson field on the same states.
    let (field_mae, field_scale) = {
        use dlpic_pic2d::solver2d::FieldSolver2D;
        let mut probe = Simulation2D::new(
            config(&grid, n_part, v0, vth, seed + 1),
            Box::new(TraditionalSolver2D::default_config()),
        );
        let mut err_sum = 0.0f64;
        let mut count = 0usize;
        let mut scale = 0.0f64;
        let mut ex_dl = grid.zeros();
        let mut ey_dl = grid.zeros();
        for step in 0..200 {
            probe.step();
            if step % 10 != 0 {
                continue;
            }
            solver.solve(probe.particles(), &grid, &mut ex_dl, &mut ey_dl);
            for (a, b) in ex_dl
                .iter()
                .zip(probe.ex())
                .chain(ey_dl.iter().zip(probe.ey()))
            {
                err_sum += (a - b).abs();
                scale = scale.max(b.abs());
                count += 1;
            }
        }
        (err_sum / count as f64, scale)
    };
    eprintln!("held-out field MAE {field_mae:.2e} (max |E| = {field_scale:.3})");
    eprintln!("running traditional 2-D PIC (v0 = {v0}, vth = {vth})...");
    let mut trad = Simulation2D::new(
        config(&grid, n_part, v0, vth, seed),
        Box::new(TraditionalSolver2D::default_config()),
    );
    trad.run();
    eprintln!("running DL-based 2-D PIC...");
    let mut dl = Simulation2D::new(config(&grid, n_part, v0, vth, seed), Box::new(solver));
    dl.run();

    // 4. Report: growth of the streaming (1,0) mode vs 1-D linear theory.
    let theory = TwoStreamDispersion::new(v0).growth_rate(3.06);
    let series = |sim: &Simulation2D, name: &str| -> TimeSeries {
        let (t, a) = sim.history().mode_series((1, 0)).expect("mode tracked");
        TimeSeries::from_data(name, t.to_vec(), a.to_vec())
    };
    let e_trad = series(&trad, "E10-traditional");
    let e_dl = series(&dl, "E10-dl");
    let fit_of = |s: &TimeSeries| fit_growth_rate(&s.times, &s.values, GrowthFitOptions::default());

    println!(
        "{}",
        line_plot(
            &[('*', &e_trad), ('o', &e_dl)],
            &PlotOptions::titled(format!(
                "E(1,0) amplitude - 2D two-stream, v0 = {v0}, vth = {vth}"
            ))
            .log_y(true),
        )
    );

    let mut table = Table::new(&["quantity", "linear theory", "traditional 2D", "DL-based 2D"]);
    let (g_trad, r2_trad) = fit_of(&e_trad)
        .map(|f| (f.gamma, f.r2))
        .unwrap_or((f64::NAN, f64::NAN));
    let (g_dl, r2_dl) = fit_of(&e_dl)
        .map(|f| (f.gamma, f.r2))
        .unwrap_or((f64::NAN, f64::NAN));
    table.row(&[
        "growth rate γ".into(),
        format!("{theory:.4}"),
        format!("{g_trad:.4} (r²={r2_trad:.3})"),
        format!("{g_dl:.4} (r²={r2_dl:.3})"),
    ]);

    let energy_var = |sim: &Simulation2D| -> f64 {
        let tot = &sim.history().total;
        stats::relative_variation(tot)
    };
    table.row(&[
        "total-energy variation".into(),
        "0 (exact)".into(),
        format!("{:.2}%", 100.0 * energy_var(&trad)),
        format!("{:.2}%", 100.0 * energy_var(&dl)),
    ]);
    let mom_drift = |sim: &Simulation2D| -> f64 {
        let px = &sim.history().momentum_x;
        px.iter().fold(0.0f64, |m, p| m.max((p - px[0]).abs()))
    };
    table.row(&[
        "max |Δpx|".into(),
        "0 (exact)".into(),
        format!("{:.2e}", mom_drift(&trad)),
        format!("{:.2e}", mom_drift(&dl)),
    ]);
    table.row(&[
        "held-out field MAE".into(),
        "-".into(),
        "(reference)".into(),
        format!(
            "{field_mae:.2e} ({:.1}% of max |E| = {field_scale:.3})",
            100.0 * field_mae / field_scale
        ),
    ]);
    println!("{}", table.render());

    let path = out_dir().join(format!("ext2d-{}.csv", cli.scale.name()));
    let tot_trad = TimeSeries::from_data(
        "energy-traditional",
        trad.history().times.clone(),
        trad.history().total.clone(),
    );
    let tot_dl = TimeSeries::from_data(
        "energy-dl",
        dl.history().times.clone(),
        dl.history().total.clone(),
    );
    write_csv(&path, &[&e_trad, &e_dl, &tot_trad, &tot_dl]).expect("write csv");
    println!("series written to {}", path.display());
}

//! The 2-D extension in action: the two-stream instability in a 2-D box
//! (paper §VII's "two-dimensional systems" future-work item).
//!
//! Two counter-streaming electron beams along `x`, uniform in `y`: the
//! `(kx, ky) = (1, 0)` mode must grow at the 1-D linear-theory rate while
//! every transverse mode stays at noise level — the cleanest way to
//! validate a 2-D PIC against closed-form theory.
//!
//! ```sh
//! cargo run --release --example two_stream_2d
//! ```

use dlpic_repro::analytics::dispersion::TwoStreamDispersion;
use dlpic_repro::analytics::fit::{fit_growth_rate, GrowthFitOptions};
use dlpic_repro::analytics::plot::{line_plot, PlotOptions};
use dlpic_repro::analytics::series::TimeSeries;
use dlpic_repro::analytics::stats;
use dlpic_repro::pic::shape::Shape;
use dlpic_repro::pic2d::grid2d::Grid2D;
use dlpic_repro::pic2d::init2d::TwoStream2DInit;
use dlpic_repro::pic2d::simulation2d::{Pic2DConfig, Simulation2D};
use dlpic_repro::pic2d::solver2d::TraditionalSolver2D;

fn main() {
    println!("== 2-D extension: two-stream instability in a 2-D box ==\n");

    let (v0, vth) = (0.2, 0.0);
    let grid = Grid2D::new(32, 32, 2.0532, 2.0532);
    let n_particles = 131_072; // 128 per cell
    println!(
        "grid {}x{} over {:.4}x{:.4}, {n_particles} electrons, v0 = ±{v0}",
        grid.nx(),
        grid.ny(),
        grid.lx(),
        grid.ly()
    );

    let cfg = Pic2DConfig {
        grid,
        init: TwoStream2DInit::quiet(v0, vth, n_particles, 1e-4, 20210705),
        dt: 0.2,
        n_steps: 200,
        gather_shape: Shape::Cic,
        tracked_modes: vec![(1, 0), (2, 0), (0, 1)],
    };
    let start = std::time::Instant::now();
    let mut sim = Simulation2D::new(cfg, Box::new(TraditionalSolver2D::default_config()));
    sim.run();
    println!(
        "ran {} steps to t = {} in {:.2?}\n",
        sim.steps_done(),
        sim.time(),
        start.elapsed()
    );

    // Growth of the streaming mode vs 1-D theory.
    let theory = TwoStreamDispersion::new(v0).growth_rate(3.06);
    let h = sim.history();
    let series = |mode: (usize, usize), name: &str| -> TimeSeries {
        let (t, a) = h.mode_series(mode).expect("mode tracked");
        TimeSeries::from_data(name, t.to_vec(), a.to_vec())
    };
    let streaming = series((1, 0), "E(1,0)");
    let transverse = series((0, 1), "E(0,1)");

    let fit = fit_growth_rate(&streaming.times, &streaming.values, GrowthFitOptions::default())
        .expect("growth phase detected");
    println!("streaming mode (1, 0):");
    println!("  1-D linear theory : γ = {theory:.4}");
    println!(
        "  measured (2-D)    : γ = {:.4}  (r² = {:.4})",
        fit.gamma, fit.r2
    );
    println!(
        "  relative error    : {:.1}%\n",
        (fit.gamma - theory).abs() / theory * 100.0
    );

    let max_transverse = transverse.values.iter().cloned().fold(0.0f64, f64::max);
    let max_streaming = streaming.values.iter().cloned().fold(0.0f64, f64::max);
    println!(
        "transverse mode (0, 1): peak {max_transverse:.2e} \
         ({:.1}% of streaming peak — stays at noise level)\n",
        100.0 * max_transverse / max_streaming
    );

    println!(
        "{}",
        line_plot(
            &[('*', &streaming), ('.', &transverse)],
            &PlotOptions::titled("2-D two-stream: streaming vs transverse mode (log)")
                .log_y(true),
        )
    );

    let energy_var = stats::relative_variation(&h.total);
    println!("total-energy variation: {:.2}%", 100.0 * energy_var);
    let ok = (fit.gamma - theory).abs() / theory < 0.2
        && max_transverse < 0.05 * max_streaming
        && energy_var < 0.05;
    println!(
        "verdict: {}",
        if ok {
            "PASS — 2-D extension carries the 1-D physics"
        } else {
            "CHECK — outside expected bands"
        }
    );
}

//! Overload-governance instrumentation: the scheduler's per-wave latency
//! histogram and the poison-job circuit breakers.
//!
//! Both live inside the control-plane mutex and are updated by the
//! scheduler thread only; handlers read them under the same lock when
//! answering `status`/`health`, so neither adds synchronization beyond
//! the existing control-plane pass.

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use dlpic_repro::engine::json::{obj, Json};

/// Power-of-two microsecond buckets: bucket `i` counts waves whose
/// latency fell in `[2^i, 2^(i+1))` µs. 40 buckets reach ~18 minutes —
/// far past any sane wave.
const BUCKETS: usize = 40;

/// A log-bucketed latency histogram with O(1) record and O(buckets)
/// quantiles. Tracks the scheduler's wave latency (step + publish work
/// per wave): tail quantiles surface jitter that a throughput mean
/// hides, which is exactly what an overloaded scheduler degrades first.
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    counts: [u64; BUCKETS],
    count: u64,
    total_us: f64,
    max_us: f64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self {
            counts: [0; BUCKETS],
            count: 0,
            total_us: 0.0,
            max_us: 0.0,
        }
    }
}

impl LatencyHistogram {
    /// Records one wave's latency.
    pub fn record(&mut self, latency: Duration) {
        let us = latency.as_secs_f64() * 1e6;
        let bucket = (us.max(1.0).log2().floor() as usize).min(BUCKETS - 1);
        self.counts[bucket] += 1;
        self.count += 1;
        self.total_us += us;
        self.max_us = self.max_us.max(us);
    }

    /// Recorded wave count.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The latency (in ms) below which a fraction `q` of waves finished,
    /// reported as the upper edge of the matching bucket (a guaranteed
    /// upper bound, conservative by at most 2x). 0 when nothing was
    /// recorded.
    pub fn quantile_ms(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // Upper edge of bucket i, but never past the true max.
                return (f64::powi(2.0, i as i32 + 1)).min(self.max_us) / 1e3;
            }
        }
        self.max_us / 1e3
    }

    /// Mean wave latency in ms (0 when empty).
    pub fn mean_ms(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_us / self.count as f64 / 1e3
        }
    }

    /// The `wave_latency` document of `status`/`health`: scalar quantiles
    /// plus the non-empty buckets as `[upper_edge_ms, count]` pairs.
    pub fn to_json(&self) -> Json {
        let buckets: Vec<Json> = self
            .counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| {
                Json::Arr(vec![
                    Json::Num(f64::powi(2.0, i as i32 + 1) / 1e3),
                    Json::Num(c as f64),
                ])
            })
            .collect();
        obj(vec![
            ("count", Json::Num(self.count as f64)),
            ("mean_ms", Json::Num(self.mean_ms())),
            ("p50_ms", Json::Num(self.quantile_ms(0.50))),
            ("p90_ms", Json::Num(self.quantile_ms(0.90))),
            ("p99_ms", Json::Num(self.quantile_ms(0.99))),
            ("max_ms", Json::Num(self.max_us / 1e3)),
            ("buckets", Json::Arr(buckets)),
        ])
    }
}

struct BreakerState {
    /// Consecutive failures since the last success of this fingerprint.
    consecutive: usize,
    /// When set, the circuit is open until this instant.
    open_until: Option<Instant>,
    /// How many times the circuit has tripped (observability).
    trips: u64,
}

/// Per-spec circuit breakers: after `threshold` *consecutive* failed runs
/// of the same spec fingerprint the circuit opens, and submissions of
/// that spec are rejected (`circuit-open`) for `cooldown` — a poison job
/// resubmitted in a loop stops burning scheduler waves. After the
/// cooldown the circuit half-opens: one more run may try, and one more
/// failure re-opens it immediately.
pub struct CircuitBreakers {
    threshold: usize,
    cooldown: Duration,
    // BTreeMap, not HashMap: breaker state is aggregated into
    // wire-visible `status`/`health` numbers, and the serve tier's
    // serialization paths are held to deterministic iteration order
    // (enforced by dlpic-analyze's no-hashmap-iter-in-state rule).
    states: BTreeMap<String, BreakerState>,
}

impl CircuitBreakers {
    /// Breakers that trip after `threshold` consecutive failures (0
    /// disables tripping entirely) and stay open for `cooldown`.
    pub fn new(threshold: usize, cooldown: Duration) -> Self {
        Self {
            threshold,
            cooldown,
            states: BTreeMap::new(),
        }
    }

    /// The configured consecutive-failure threshold (0 = disabled).
    pub fn threshold(&self) -> usize {
        self.threshold
    }

    /// Records a failed run of `fingerprint`; true when this failure
    /// tripped the circuit open.
    pub fn record_failure(&mut self, fingerprint: &str, now: Instant) -> bool {
        if self.threshold == 0 {
            return false;
        }
        let state = self
            .states
            .entry(fingerprint.to_string())
            .or_insert(BreakerState {
                consecutive: 0,
                open_until: None,
                trips: 0,
            });
        state.consecutive += 1;
        if state.consecutive >= self.threshold && state.open_until.is_none() {
            state.open_until = Some(now + self.cooldown);
            state.trips += 1;
            return true;
        }
        false
    }

    /// Records a successful run of `fingerprint`: the streak resets and
    /// the circuit closes for good.
    pub fn record_success(&mut self, fingerprint: &str) {
        self.states.remove(fingerprint);
    }

    /// Time left before `fingerprint`'s circuit half-opens, or `None`
    /// when the circuit is closed (including the half-open trial state:
    /// an expired cooldown admits the next run, and its failure re-opens
    /// the circuit at once).
    pub fn open_remaining(&mut self, fingerprint: &str, now: Instant) -> Option<Duration> {
        let state = self.states.get_mut(fingerprint)?;
        let until = state.open_until?;
        if now < until {
            return Some(until - now);
        }
        // Cooldown over: half-open. One trial run is admitted; keep the
        // streak at threshold-1 so a single failure re-opens.
        state.open_until = None;
        state.consecutive = self.threshold.saturating_sub(1);
        None
    }

    /// Number of circuits currently open.
    pub fn open_count(&self, now: Instant) -> usize {
        self.states
            .values()
            .filter(|s| s.open_until.is_some_and(|t| now < t))
            .count()
    }

    /// Total trips across all fingerprints (monotonic, for `health`).
    pub fn total_trips(&self) -> u64 {
        self.states.values().map(|s| s.trips).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_bound_the_samples() {
        let mut h = LatencyHistogram::default();
        for us in [100u64, 200, 400, 800, 100_000] {
            h.record(Duration::from_micros(us));
        }
        assert_eq!(h.count(), 5);
        // p50 upper bound must cover 200 µs but sit far below the 100 ms
        // outlier; p99 must cover the outlier.
        let p50 = h.quantile_ms(0.50);
        let p99 = h.quantile_ms(0.99);
        assert!((0.2..1.0).contains(&p50), "p50 {p50} ms out of band");
        assert!(p99 >= 100.0, "p99 {p99} ms misses the outlier");
        assert!(h.mean_ms() > 0.0 && h.max_us / 1e3 >= p99 - 1e-9);
        let doc = h.to_json();
        assert_eq!(doc.field("count").unwrap().as_usize().unwrap(), 5);
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = LatencyHistogram::default();
        assert_eq!(h.quantile_ms(0.99), 0.0);
        assert_eq!(h.mean_ms(), 0.0);
    }

    #[test]
    fn breaker_trips_after_threshold_and_half_opens() {
        let t0 = Instant::now();
        let mut b = CircuitBreakers::new(3, Duration::from_secs(60));
        assert!(!b.record_failure("spec-a", t0));
        assert!(!b.record_failure("spec-a", t0));
        assert!(b.open_remaining("spec-a", t0).is_none(), "not yet tripped");
        assert!(b.record_failure("spec-a", t0), "third failure trips");
        let remaining = b.open_remaining("spec-a", t0).expect("open");
        assert!(remaining <= Duration::from_secs(60));
        assert_eq!(b.open_count(t0), 1);

        // After the cooldown the circuit half-opens: one trial run is
        // admitted, and one failure re-opens immediately.
        let later = t0 + Duration::from_secs(61);
        assert!(b.open_remaining("spec-a", later).is_none());
        assert!(
            b.record_failure("spec-a", later),
            "half-open failure re-trips"
        );
        assert!(b.open_remaining("spec-a", later).is_some());

        // Success clears everything.
        b.record_success("spec-a");
        assert!(b.open_remaining("spec-a", later).is_none());
        assert!(!b.record_failure("spec-a", later));
    }

    #[test]
    fn breaker_isolates_fingerprints_and_respects_disable() {
        let t0 = Instant::now();
        let mut b = CircuitBreakers::new(1, Duration::from_secs(60));
        assert!(b.record_failure("sick", t0));
        assert!(b.open_remaining("sick", t0).is_some());
        assert!(b.open_remaining("healthy", t0).is_none());

        let mut off = CircuitBreakers::new(0, Duration::from_secs(60));
        for _ in 0..10 {
            assert!(!off.record_failure("sick", t0));
        }
        assert!(off.open_remaining("sick", t0).is_none());
    }
}

//! The unified diagnostics surface: every backend — 1-D, 2-D, Vlasov,
//! distributed — reports its per-step physics through the same
//! [`Sample`]/[`EnergyHistory`] shapes, streamed live to [`Observer`]s and
//! collected into the final [`RunSummary`].

use super::backend::Backend;
use super::error::EngineError;
use super::json::{obj, Json};
use super::spec::{Dim, ScenarioSpec};
use crate::analytics::fit::{try_fit_growth_rate, GrowthFit, GrowthFitOptions};
use crate::analytics::series::TimeSeries;
use crate::analytics::stats;

/// One recorded diagnostics row, identical in shape for every backend.
#[derive(Debug, Clone)]
pub struct Sample {
    /// Step index this row belongs to (`0..=n_steps`; the last row is the
    /// final snapshot).
    pub step: usize,
    /// Simulation time.
    pub time: f64,
    /// Kinetic energy.
    pub kinetic: f64,
    /// Electrostatic field energy.
    pub field: f64,
    /// Total momentum (the `x` component in 2-D).
    pub momentum: f64,
    /// Amplitudes of the spec's tracked modes, in spec order.
    pub mode_amps: Vec<f64>,
}

impl Sample {
    /// Kinetic + field energy.
    pub fn total(&self) -> f64 {
        self.kinetic + self.field
    }
}

/// Per-run diagnostics history in one shape for all backends — the
/// common denominator of `pic::History`, `pic2d::History2D` and the
/// Vlasov/distributed diagnostics, directly consumable by `analytics`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EnergyHistory {
    /// Sample times.
    pub times: Vec<f64>,
    /// Kinetic energy per sample.
    pub kinetic: Vec<f64>,
    /// Field energy per sample.
    pub field: Vec<f64>,
    /// Total energy per sample.
    pub total: Vec<f64>,
    /// Momentum per sample (`x` component in 2-D).
    pub momentum: Vec<f64>,
    /// Which modes are tracked (spec order).
    pub tracked_modes: Vec<usize>,
    /// Amplitude series per tracked mode (outer index = mode slot).
    pub mode_amps: Vec<Vec<f64>>,
}

impl EnergyHistory {
    /// An empty history tracking the given modes.
    pub fn new(tracked_modes: Vec<usize>) -> Self {
        let slots = tracked_modes.len();
        Self {
            tracked_modes,
            mode_amps: vec![Vec::new(); slots],
            ..Self::default()
        }
    }

    /// Appends one sample.
    pub fn push(&mut self, sample: &Sample) {
        self.times.push(sample.time);
        self.kinetic.push(sample.kinetic);
        self.field.push(sample.field);
        self.total.push(sample.total());
        self.momentum.push(sample.momentum);
        for (slot, &a) in self.mode_amps.iter_mut().zip(&sample.mode_amps) {
            slot.push(a);
        }
    }

    /// Number of recorded samples.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Discards every row from index `len` on — the divergence guard uses
    /// this to freeze a quarantined run's history at the last row whose
    /// diagnostics were all finite, so partial histories stay losslessly
    /// JSON-serializable.
    pub fn truncate(&mut self, len: usize) {
        self.times.truncate(len);
        self.kinetic.truncate(len);
        self.field.truncate(len);
        self.total.truncate(len);
        self.momentum.truncate(len);
        for series in &mut self.mode_amps {
            series.truncate(len);
        }
    }

    /// The amplitude history of tracked mode `m` as a named series.
    pub fn mode_series(&self, mode: usize) -> Option<TimeSeries> {
        let idx = self.tracked_modes.iter().position(|&m| m == mode)?;
        Some(TimeSeries::from_data(
            format!("E{mode}"),
            self.times.clone(),
            self.mode_amps[idx].clone(),
        ))
    }

    /// Total-energy history as a named series.
    pub fn total_energy_series(&self, name: impl Into<String>) -> TimeSeries {
        TimeSeries::from_data(name, self.times.clone(), self.total.clone())
    }

    /// Momentum history as a named series.
    pub fn momentum_series(&self, name: impl Into<String>) -> TimeSeries {
        TimeSeries::from_data(name, self.times.clone(), self.momentum.clone())
    }

    /// The history as a [`Json`] value — session checkpoints persist the
    /// already-recorded rows so a resumed run's summary is seamless.
    pub fn to_json_value(&self) -> Json {
        obj(vec![
            ("times", Json::num_arr(&self.times)),
            ("kinetic", Json::num_arr(&self.kinetic)),
            ("field", Json::num_arr(&self.field)),
            ("total", Json::num_arr(&self.total)),
            ("momentum", Json::num_arr(&self.momentum)),
            (
                "tracked_modes",
                Json::Arr(
                    self.tracked_modes
                        .iter()
                        .map(|&m| Json::Num(m as f64))
                        .collect(),
                ),
            ),
            (
                "mode_amps",
                Json::Arr(self.mode_amps.iter().map(|s| Json::num_arr(s)).collect()),
            ),
        ])
    }

    /// Rebuilds a history from [`Self::to_json_value`]'s shape, checking
    /// the series lengths agree.
    pub fn from_json_value(doc: &Json) -> Result<Self, EngineError> {
        let history = Self {
            times: doc.field("times")?.as_f64_vec()?,
            kinetic: doc.field("kinetic")?.as_f64_vec()?,
            field: doc.field("field")?.as_f64_vec()?,
            total: doc.field("total")?.as_f64_vec()?,
            momentum: doc.field("momentum")?.as_f64_vec()?,
            tracked_modes: doc
                .field("tracked_modes")?
                .as_arr()?
                .iter()
                .map(|m| m.as_usize())
                .collect::<Result<Vec<_>, _>>()?,
            mode_amps: doc
                .field("mode_amps")?
                .as_arr()?
                .iter()
                .map(|s| s.as_f64_vec())
                .collect::<Result<Vec<_>, _>>()?,
        };
        let n = history.times.len();
        let consistent = history.kinetic.len() == n
            && history.field.len() == n
            && history.total.len() == n
            && history.momentum.len() == n
            && history.mode_amps.len() == history.tracked_modes.len()
            && history.mode_amps.iter().all(|s| s.len() == n);
        if !consistent {
            return Err(EngineError::Checkpoint {
                what: "history series lengths disagree".into(),
            });
        }
        Ok(history)
    }
}

/// Final particle phase-space coordinates of a run (positions along `x`
/// and the velocity component along `x`) — the scatter data of the
/// paper's Figs. 4/6 top panels. `None` for the continuum backend.
#[derive(Debug, Clone)]
pub struct PhaseSpace {
    /// Particle positions along `x`.
    pub x: Vec<f64>,
    /// Particle velocities along `x`.
    pub v: Vec<f64>,
}

/// The result of one engine run.
#[derive(Debug, Clone)]
pub struct RunSummary {
    /// Scenario name.
    pub scenario: String,
    /// Backend display name (e.g. `"traditional-1d"`, `"dl-1d"`).
    pub backend: String,
    /// Dimensionality of the run.
    pub dim: Dim,
    /// Steps performed.
    pub steps: usize,
    /// Final simulation time.
    pub t_end: f64,
    /// Unified diagnostics history (`steps + 1` samples).
    pub history: EnergyHistory,
    /// Final `(x, vx)` phase space (particle backends only).
    pub phase_space: Option<PhaseSpace>,
    /// Wall-clock seconds the run took.
    pub wall_seconds: f64,
    /// Backend-specific extras (e.g. `migrated_particles`, `comm_bytes`
    /// for the distributed backend).
    pub extras: Vec<(String, f64)>,
}

impl RunSummary {
    /// Relative peak-to-peak variation of the total energy.
    pub fn energy_variation(&self) -> f64 {
        stats::relative_variation(&self.history.total)
    }

    /// Maximum drift of the total momentum from its initial value.
    pub fn momentum_drift(&self) -> f64 {
        stats::max_drift(&self.history.momentum)
    }

    /// Fits the exponential-growth phase of a tracked mode, surfacing the
    /// analytics error through the engine API.
    pub fn growth_rate(&self, mode: usize) -> Result<GrowthFit, EngineError> {
        let series = self
            .history
            .mode_series(mode)
            .ok_or_else(|| EngineError::InvalidSpec {
                scenario: self.scenario.clone(),
                what: format!("mode {mode} is not tracked by this run"),
            })?;
        try_fit_growth_rate(&series.times, &series.values, GrowthFitOptions::default())
            .map_err(EngineError::from)
    }

    /// True when every recorded energy and momentum value is finite.
    pub fn all_finite(&self) -> bool {
        let h = &self.history;
        h.total
            .iter()
            .chain(&h.kinetic)
            .chain(&h.field)
            .chain(&h.momentum)
            .all(|v| v.is_finite())
            && h.mode_amps.iter().flatten().all(|v| v.is_finite())
    }

    /// Looks up a backend-specific extra by name.
    pub fn extra(&self, name: &str) -> Option<f64> {
        self.extras.iter().find(|(k, _)| k == name).map(|(_, v)| *v)
    }
}

/// A run monitor: the engine calls these hooks as the run proceeds.
/// Implementations stream diagnostics to consoles, CSV files, dashboards —
/// anything that should not be wired into the solver crates themselves.
///
/// `Send` because sessions (which own their observers) are distributed
/// across worker threads by the ensemble scheduler; share mutable state
/// out of an observer through `Arc<Mutex<…>>` rather than `Rc`.
pub trait Observer: Send {
    /// Called once before the first step.
    fn on_start(&mut self, spec: &ScenarioSpec, backend: &Backend) {
        let _ = (spec, backend);
    }

    /// Called for every recorded diagnostics row (including the final
    /// snapshot).
    fn on_sample(&mut self, sample: &Sample) {
        let _ = sample;
    }

    /// Called once after the run completes.
    fn on_finish(&mut self, summary: &RunSummary) {
        let _ = summary;
    }
}

/// Prints a one-line progress report every `every` steps.
pub struct ProgressPrinter {
    /// Reporting cadence in steps (0 disables step lines).
    pub every: usize,
}

impl Observer for ProgressPrinter {
    fn on_start(&mut self, spec: &ScenarioSpec, backend: &Backend) {
        eprintln!(
            "[engine] {} on {}: {} particles, {} steps, dt = {}",
            spec.name,
            backend.name(),
            spec.n_particles(),
            spec.n_steps,
            spec.dt
        );
    }

    fn on_sample(&mut self, sample: &Sample) {
        if self.every > 0 && sample.step.is_multiple_of(self.every) {
            eprintln!(
                "[engine]   step {:>5}  t = {:>7.2}  E_tot = {:.6e}  p = {:+.3e}",
                sample.step,
                sample.time,
                sample.total(),
                sample.momentum
            );
        }
    }

    fn on_finish(&mut self, summary: &RunSummary) {
        eprintln!(
            "[engine] {} on {}: {} steps to t = {:.1} in {:.2}s (ΔE = {:.2}%)",
            summary.scenario,
            summary.backend,
            summary.steps,
            summary.t_end,
            summary.wall_seconds,
            summary.energy_variation() * 100.0
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(step: usize, t: f64, amps: &[f64]) -> Sample {
        Sample {
            step,
            time: t,
            kinetic: 1.0,
            field: 0.5,
            momentum: -0.1,
            mode_amps: amps.to_vec(),
        }
    }

    #[test]
    fn history_accumulates_and_exposes_series() {
        let mut h = EnergyHistory::new(vec![1, 3]);
        h.push(&sample(0, 0.0, &[1e-4, 2e-4]));
        h.push(&sample(1, 0.2, &[3e-4, 4e-4]));
        assert_eq!(h.len(), 2);
        assert_eq!(h.total, vec![1.5, 1.5]);
        let e3 = h.mode_series(3).unwrap();
        assert_eq!(e3.values, vec![2e-4, 4e-4]);
        assert_eq!(e3.name, "E3");
        assert!(h.mode_series(2).is_none());
        assert_eq!(h.momentum_series("p").values, vec![-0.1, -0.1]);
    }

    #[test]
    fn history_round_trips_through_json() {
        let mut h = EnergyHistory::new(vec![1, 3]);
        h.push(&sample(0, 0.0, &[1e-4, 2e-4]));
        h.push(&sample(1, 0.2, &[3e-4, 4e-4]));
        let doc = Json::parse(&h.to_json_value().to_pretty()).unwrap();
        assert_eq!(EnergyHistory::from_json_value(&doc).unwrap(), h);
        // Length mismatches are rejected, not silently accepted.
        let mut bad = h.to_json_value();
        if let Json::Obj(fields) = &mut bad {
            fields.retain(|(k, _)| k != "kinetic");
            fields.push(("kinetic".into(), Json::num_arr(&[1.0])));
        }
        assert!(EnergyHistory::from_json_value(&bad).is_err());
    }

    #[test]
    fn summary_helpers() {
        let mut h = EnergyHistory::new(vec![1]);
        for i in 0..6 {
            h.push(&sample(i, i as f64 * 0.2, &[1e-4 * (i as f64 + 1.0)]));
        }
        let summary = RunSummary {
            scenario: "t".into(),
            backend: "traditional-1d".into(),
            dim: Dim::OneD,
            steps: 5,
            t_end: 1.0,
            history: h,
            phase_space: None,
            wall_seconds: 0.0,
            extras: vec![("comm_bytes".into(), 42.0)],
        };
        assert!(summary.all_finite());
        assert!(summary.energy_variation() < 1e-12);
        assert!(summary.momentum_drift() < 1e-12);
        assert_eq!(summary.extra("comm_bytes"), Some(42.0));
        assert_eq!(summary.extra("nope"), None);
        assert!(summary.growth_rate(2).is_err());
    }
}

//! The periodic one-dimensional field grid.

use crate::constants;

/// A uniform periodic grid on `[0, length)` with `ncells` cells.
///
/// Field quantities (ρ, Φ, E) live on the *nodes* `x_j = j·dx`,
/// `j = 0..ncells`; node `ncells` is identified with node 0 by periodicity,
/// so arrays have `ncells` entries.
#[derive(Debug, Clone, PartialEq)]
pub struct Grid1D {
    ncells: usize,
    length: f64,
    dx: f64,
}

impl Grid1D {
    /// Creates a grid with `ncells` cells over `[0, length)`.
    ///
    /// # Panics
    /// Panics for zero cells or a non-positive length.
    pub fn new(ncells: usize, length: f64) -> Self {
        assert!(ncells > 0, "grid needs at least one cell");
        assert!(
            length.is_finite() && length > 0.0,
            "invalid box length {length}"
        );
        Self {
            ncells,
            length,
            dx: length / ncells as f64,
        }
    }

    /// The paper's grid: 64 cells over `L = 2π/3.06`.
    pub fn paper() -> Self {
        Self::new(constants::PAPER_NCELLS, constants::paper_box_length())
    }

    /// Number of cells (== number of stored nodes).
    #[inline]
    pub fn ncells(&self) -> usize {
        self.ncells
    }

    /// Box length.
    #[inline]
    pub fn length(&self) -> f64 {
        self.length
    }

    /// Cell size.
    #[inline]
    pub fn dx(&self) -> f64 {
        self.dx
    }

    /// Position of node `j` (`j` may exceed `ncells`; it wraps).
    #[inline]
    pub fn node_position(&self, j: usize) -> f64 {
        (j % self.ncells) as f64 * self.dx
    }

    /// Wavenumber of periodic mode `m`: `k_m = 2π·m/L`.
    #[inline]
    pub fn mode_wavenumber(&self, m: usize) -> f64 {
        2.0 * std::f64::consts::PI * m as f64 / self.length
    }

    /// Wraps a (possibly negative or out-of-range) node index into
    /// `[0, ncells)`.
    #[inline]
    pub fn wrap_index(&self, j: i64) -> usize {
        j.rem_euclid(self.ncells as i64) as usize
    }

    /// Wraps a position into `[0, length)`.
    #[inline]
    pub fn wrap_position(&self, x: f64) -> f64 {
        let wrapped = x.rem_euclid(self.length);
        // rem_euclid can return `length` itself when x is a tiny negative
        // number; fold that back to 0.
        if wrapped >= self.length {
            0.0
        } else {
            wrapped
        }
    }

    /// Allocates a zeroed node-array.
    pub fn zeros(&self) -> Vec<f64> {
        vec![0.0; self.ncells]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn paper_grid_dimensions() {
        let g = Grid1D::paper();
        assert_eq!(g.ncells(), 64);
        assert!((g.length() - 2.0532).abs() < 1e-3);
        assert!((g.dx() * 64.0 - g.length()).abs() < 1e-12);
    }

    #[test]
    fn node_positions_cover_box() {
        let g = Grid1D::new(8, 4.0);
        assert_eq!(g.node_position(0), 0.0);
        assert!((g.node_position(7) - 3.5).abs() < 1e-12);
        assert_eq!(g.node_position(8), 0.0); // wraps
    }

    #[test]
    fn wrap_index_handles_negatives() {
        let g = Grid1D::new(8, 1.0);
        assert_eq!(g.wrap_index(-1), 7);
        assert_eq!(g.wrap_index(8), 0);
        assert_eq!(g.wrap_index(17), 1);
        assert_eq!(g.wrap_index(-9), 7);
    }

    #[test]
    fn mode_wavenumber_of_paper_grid() {
        let g = Grid1D::paper();
        assert!((g.mode_wavenumber(1) - 3.06).abs() < 1e-12);
        assert!((g.mode_wavenumber(2) - 6.12).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one cell")]
    fn zero_cells_rejected() {
        let _ = Grid1D::new(0, 1.0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn wrap_position_lands_in_box(x in -100.0f64..100.0) {
            let g = Grid1D::new(16, 2.0532);
            let w = g.wrap_position(x);
            prop_assert!((0.0..g.length()).contains(&w), "wrapped {x} -> {w}");
        }

        #[test]
        fn wrap_position_is_periodic(x in 0.0f64..2.0, shift in -5i32..5) {
            let g = Grid1D::new(16, 2.0);
            let w = g.wrap_position(x + shift as f64 * g.length());
            prop_assert!((w - x).abs() < 1e-9 * (1.0 + shift.abs() as f64)
                || (g.length() - (w - x).abs()) < 1e-9);
        }
    }
}

//! Input normalization — the paper's Eq. 5:
//!
//! ```text
//! y = (x - min) / (max - min)
//! ```
//!
//! where "min and max are the minimum and maximum values in the data set"
//! (dataset-global, not per-sample). The statistics are computed once from
//! the training data and stored with the model so inference inside the
//! DL-PIC loop applies the identical transform.

/// Dataset-global min/max statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NormStats {
    /// Minimum over the dataset.
    pub min: f32,
    /// Maximum over the dataset.
    pub max: f32,
}

impl NormStats {
    /// Identity normalization (min 0, max 1).
    pub fn identity() -> Self {
        Self { min: 0.0, max: 1.0 }
    }

    /// Computes statistics over a data slice.
    ///
    /// # Panics
    /// Panics on empty input.
    pub fn from_data(data: &[f32]) -> Self {
        assert!(!data.is_empty(), "cannot normalize an empty dataset");
        let mut min = f32::INFINITY;
        let mut max = f32::NEG_INFINITY;
        for &v in data {
            min = min.min(v);
            max = max.max(v);
        }
        Self { min, max }
    }

    /// The span `max - min`.
    pub fn span(&self) -> f32 {
        self.max - self.min
    }

    /// Applies Eq. 5 in place. A degenerate span maps everything to 0.
    pub fn apply(&self, data: &mut [f32]) {
        let span = self.span();
        if span <= 0.0 {
            data.fill(0.0);
            return;
        }
        let inv = 1.0 / span;
        for v in data.iter_mut() {
            *v = (*v - self.min) * inv;
        }
    }

    /// Inverts Eq. 5 in place.
    pub fn invert(&self, data: &mut [f32]) {
        let span = self.span();
        for v in data.iter_mut() {
            *v = *v * span + self.min;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn known_normalization() {
        let stats = NormStats::from_data(&[2.0, 4.0, 6.0]);
        assert_eq!(stats.min, 2.0);
        assert_eq!(stats.max, 6.0);
        let mut data = vec![2.0, 4.0, 6.0];
        stats.apply(&mut data);
        assert_eq!(data, vec![0.0, 0.5, 1.0]);
    }

    #[test]
    fn training_range_maps_into_unit_interval() {
        let train: Vec<f32> = (0..100).map(|i| (i as f32 * 0.37).sin() * 50.0).collect();
        let stats = NormStats::from_data(&train);
        let mut data = train;
        stats.apply(&mut data);
        assert!(data.iter().all(|&v| (0.0..=1.0).contains(&v)));
        assert!(data.iter().any(|&v| v < 0.01));
        assert!(data.iter().any(|&v| v > 0.99));
    }

    #[test]
    fn degenerate_span_maps_to_zero() {
        let stats = NormStats::from_data(&[7.0, 7.0]);
        let mut data = vec![7.0, 7.0, 9.0];
        stats.apply(&mut data);
        assert_eq!(data, vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn identity_stats_are_a_noop() {
        let mut data = vec![0.1, 0.9];
        NormStats::identity().apply(&mut data);
        assert_eq!(data, vec![0.1, 0.9]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn apply_invert_round_trip(
            data in proptest::collection::vec(-100.0f32..100.0, 2..64),
        ) {
            let stats = NormStats::from_data(&data);
            prop_assume!(stats.span() > 1e-3);
            let mut work = data.clone();
            stats.apply(&mut work);
            stats.invert(&mut work);
            for (a, b) in work.iter().zip(&data) {
                prop_assert!((a - b).abs() < 1e-3 * (1.0 + b.abs()));
            }
        }

        #[test]
        fn output_bounded_for_in_range_data(
            data in proptest::collection::vec(-10.0f32..10.0, 2..64),
        ) {
            let stats = NormStats::from_data(&data);
            prop_assume!(stats.span() > 1e-6);
            let mut work = data;
            stats.apply(&mut work);
            for &v in &work {
                prop_assert!((-1e-5..=1.0 + 1e-5).contains(&v));
            }
        }
    }
}

//! In-memory dataset with shuffling, splitting and mini-batching — the
//! "shuffled and then divided into 38,000 / 1,000 / 1,000" workflow of the
//! paper's §IV.A.1.

use crate::tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Paired inputs and targets, both `[n, ...]` with a shared leading
/// dimension.
#[derive(Clone, Debug)]
pub struct Dataset {
    /// Inputs `[n, ...]`.
    pub x: Tensor,
    /// Targets `[n, out]`.
    pub y: Tensor,
}

impl Dataset {
    /// Creates a dataset.
    ///
    /// # Panics
    /// Panics if the leading dimensions differ.
    pub fn new(x: Tensor, y: Tensor) -> Self {
        assert_eq!(x.batch(), y.batch(), "input/target count mismatch");
        Self { x, y }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.x.batch()
    }

    /// True when the dataset has no samples.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns a new dataset with rows permuted by a seeded Fisher–Yates
    /// shuffle.
    pub fn shuffled(&self, seed: u64) -> Self {
        let mut perm = Vec::new();
        shuffle_permutation(&mut perm, self.len(), seed);
        self.select(&perm)
    }

    /// Gathers the given rows into caller-owned batch tensors (resized in
    /// place) — the allocation-free counterpart of
    /// [`Dataset::batch`]: once `x`/`y` are warm, no heap allocation
    /// happens. Gathering `shuffle_permutation`'s output in consecutive
    /// chunks reproduces `self.shuffled(seed)` batching exactly.
    pub fn gather_into(&self, indices: &[usize], x: &mut Tensor, y: &mut Tensor) {
        let (xw, yw) = (self.x.row_len(), self.y.row_len());
        x.resize_like(&self.x, indices.len());
        y.resize_like(&self.y, indices.len());
        for (r, &i) in indices.iter().enumerate() {
            x.data_mut()[r * xw..(r + 1) * xw].copy_from_slice(self.x.row(i));
            y.data_mut()[r * yw..(r + 1) * yw].copy_from_slice(self.y.row(i));
        }
    }

    /// Builds a dataset from the given row indices (in order).
    pub fn select(&self, indices: &[usize]) -> Self {
        let xw = self.x.row_len();
        let yw = self.y.row_len();
        let mut xd = Vec::with_capacity(indices.len() * xw);
        let mut yd = Vec::with_capacity(indices.len() * yw);
        for &i in indices {
            xd.extend_from_slice(self.x.row(i));
            yd.extend_from_slice(self.y.row(i));
        }
        let mut x_shape = self.x.shape().to_vec();
        x_shape[0] = indices.len();
        let mut y_shape = self.y.shape().to_vec();
        y_shape[0] = indices.len();
        Self::new(Tensor::new(xd, &x_shape), Tensor::new(yd, &y_shape))
    }

    /// Splits into consecutive chunks of the given sizes (like the paper's
    /// 38k/1k/1k). The sizes must sum to at most `len`; a final remainder
    /// chunk is NOT returned.
    ///
    /// # Panics
    /// Panics if the sizes exceed the sample count.
    pub fn split(&self, sizes: &[usize]) -> Vec<Dataset> {
        let total: usize = sizes.iter().sum();
        assert!(
            total <= self.len(),
            "split sizes {total} exceed dataset {}",
            self.len()
        );
        let mut out = Vec::with_capacity(sizes.len());
        let mut start = 0;
        for &s in sizes {
            let idx: Vec<usize> = (start..start + s).collect();
            out.push(self.select(&idx));
            start += s;
        }
        out
    }

    /// Copies rows `[start, start+size)` into a batch pair (clamped to the
    /// end of the data).
    pub fn batch(&self, start: usize, size: usize) -> (Tensor, Tensor) {
        let end = (start + size).min(self.len());
        let idx: Vec<usize> = (start..end).collect();
        let d = self.select(&idx);
        (d.x, d.y)
    }

    /// Ranges covering the dataset in batches of `batch_size` (the last
    /// batch may be short).
    pub fn batch_ranges(&self, batch_size: usize) -> Vec<(usize, usize)> {
        assert!(batch_size > 0, "batch size must be positive");
        let mut out = Vec::new();
        let mut start = 0;
        while start < self.len() {
            let end = (start + batch_size).min(self.len());
            out.push((start, end - start));
            start = end;
        }
        out
    }
}

/// Fills `perm` (resized in place) with the seeded Fisher–Yates
/// permutation of `0..n` that [`Dataset::shuffled`] applies — shared so
/// the trainer can shuffle indices without copying the dataset.
pub fn shuffle_permutation(perm: &mut Vec<usize>, n: usize, seed: u64) {
    perm.clear();
    perm.extend(0..n);
    let mut rng = StdRng::seed_from_u64(seed);
    for i in (1..n).rev() {
        perm.swap(i, rng.gen_range(0..=i));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq_dataset(n: usize) -> Dataset {
        let x = Tensor::new((0..n * 2).map(|i| i as f32).collect(), &[n, 2]);
        let y = Tensor::new((0..n).map(|i| i as f32).collect(), &[n, 1]);
        Dataset::new(x, y)
    }

    #[test]
    fn shuffle_preserves_pairing_and_content() {
        let d = seq_dataset(100);
        let s = d.shuffled(7);
        assert_eq!(s.len(), 100);
        // Pairing: row i of x is [2y, 2y+1] for its y.
        for i in 0..100 {
            let label = s.y.row(i)[0];
            assert_eq!(s.x.row(i), &[2.0 * label, 2.0 * label + 1.0]);
        }
        // Content: the multiset of labels is unchanged.
        let mut labels: Vec<f32> = (0..100).map(|i| s.y.row(i)[0]).collect();
        labels.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(labels, (0..100).map(|i| i as f32).collect::<Vec<_>>());
        // Shuffle actually moved something.
        assert_ne!(s.y.data(), d.y.data());
    }

    #[test]
    fn shuffle_is_deterministic() {
        let d = seq_dataset(50);
        assert_eq!(d.shuffled(3).y.data(), d.shuffled(3).y.data());
        assert_ne!(d.shuffled(3).y.data(), d.shuffled(4).y.data());
    }

    #[test]
    fn split_partitions_in_order() {
        let d = seq_dataset(10);
        let parts = d.split(&[7, 2, 1]);
        assert_eq!(parts.len(), 3);
        assert_eq!(parts[0].len(), 7);
        assert_eq!(parts[1].len(), 2);
        assert_eq!(parts[2].len(), 1);
        assert_eq!(parts[1].y.data(), &[7.0, 8.0]);
        assert_eq!(parts[2].y.data(), &[9.0]);
    }

    #[test]
    fn batch_ranges_cover_everything_once() {
        let d = seq_dataset(10);
        let ranges = d.batch_ranges(4);
        assert_eq!(ranges, vec![(0, 4), (4, 4), (8, 2)]);
        let total: usize = ranges.iter().map(|(_, n)| n).sum();
        assert_eq!(total, 10);
    }

    #[test]
    fn batch_extraction() {
        let d = seq_dataset(5);
        let (bx, by) = d.batch(3, 4); // clamped to 2 rows
        assert_eq!(bx.shape(), &[2, 2]);
        assert_eq!(by.data(), &[3.0, 4.0]);
    }

    #[test]
    fn multidim_inputs_keep_trailing_shape() {
        let x = Tensor::zeros(&[6, 1, 4, 4]);
        let y = Tensor::zeros(&[6, 3]);
        let d = Dataset::new(x, y);
        let s = d.shuffled(0);
        assert_eq!(s.x.shape(), &[6, 1, 4, 4]);
        let parts = d.split(&[4, 2]);
        assert_eq!(parts[0].x.shape(), &[4, 1, 4, 4]);
    }

    #[test]
    #[should_panic(expected = "exceed dataset")]
    fn oversized_split_rejected() {
        let _ = seq_dataset(3).split(&[2, 2]);
    }

    #[test]
    fn gathered_permutation_batches_match_shuffled_copy_batches() {
        // The trainer's allocation-free path (shuffle a permutation,
        // gather batches) must reproduce the historical path (copy the
        // whole dataset shuffled, slice batches) bit for bit.
        let d = seq_dataset(23);
        let seed = 99;
        let shuffled = d.shuffled(seed);
        let mut perm = Vec::new();
        shuffle_permutation(&mut perm, d.len(), seed);
        let mut bx = Tensor::zeros(&[0]);
        let mut by = Tensor::zeros(&[0]);
        for (start, size) in d.batch_ranges(7) {
            let (ex, ey) = shuffled.batch(start, size);
            d.gather_into(&perm[start..start + size], &mut bx, &mut by);
            assert_eq!(bx.shape(), ex.shape());
            assert_eq!(bx.data(), ex.data());
            assert_eq!(by.shape(), ey.shape());
            assert_eq!(by.data(), ey.data());
        }
    }
}

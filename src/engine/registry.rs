//! The named scenario registry: every classic experiment of this
//! reproduction as a ready-made [`ScenarioSpec`], sized by [`Scale`].
//!
//! | name            | physics                                            |
//! |-----------------|----------------------------------------------------|
//! | `two_stream`    | the paper's validation run (Figs. 4–5)             |
//! | `two_stream_2d` | the §VII two-dimensional extension                 |
//! | `landau_damping`| collisionless damping at `k·λ_D = 0.5`             |
//! | `cold_beam`     | the linearly *stable* cold-beam stress (Fig. 6)    |
//! | `bump_on_tail`  | gentle-bump beam–plasma instability                |
//! | `thermal_noise` | quiescent Maxwellian: fluctuation floor, no growth |
//!
//! All entries reuse the paper's standard domains
//! ([`DomainSpec::paper_1d`], [`DomainSpec::default_2d`]) and the
//! `pic`/`pic2d` loading machinery underneath.

use super::error::EngineError;
use super::spec::{DomainSpec, LoadingSpec, ScenarioSpec, SpeciesSpec};
use crate::core::presets::Scale;
use crate::pic::constants;

/// Names this registry serves, in canonical order.
pub const SCENARIO_NAMES: [&str; 6] = [
    "two_stream",
    "two_stream_2d",
    "landau_damping",
    "cold_beam",
    "bump_on_tail",
    "thermal_noise",
];

/// The names this registry serves, as an enumerable slice — use this (or
/// [`all_scenarios`]) to iterate the catalogue instead of guessing
/// strings; [`EngineError::UnknownScenario`] carries the same list in its
/// suggestions.
pub fn names() -> &'static [&'static str] {
    &SCENARIO_NAMES
}

/// Particles-per-cell / step-count sizing per scale for 1-D entries.
fn size_1d(scale: Scale) -> (usize, usize) {
    match scale {
        Scale::Smoke => (60, 30),
        Scale::Scaled => (500, constants::PAPER_NSTEPS),
        Scale::Paper => (constants::PAPER_PARTICLES_PER_CELL, constants::PAPER_NSTEPS),
    }
}

/// Particles-per-cell / step-count sizing per scale for 2-D entries.
fn size_2d(scale: Scale) -> (usize, usize) {
    match scale {
        Scale::Smoke => (16, 25),
        Scale::Scaled => (64, 150),
        Scale::Paper => (128, 200),
    }
}

/// Builds the named scenario at the given scale.
pub fn scenario(name: &str, scale: Scale) -> Result<ScenarioSpec, EngineError> {
    let (ppc, n_steps) = size_1d(scale);
    let spec = match name {
        "two_stream" => ScenarioSpec {
            name: name.into(),
            domain: DomainSpec::paper_1d(),
            species: SpeciesSpec::TwoStream {
                v0: constants::PAPER_VALIDATION_V0,
                vth: constants::PAPER_VALIDATION_VTH,
            },
            loading: LoadingSpec::Random,
            scale,
            ppc,
            dt: constants::PAPER_DT,
            n_steps,
            seed: 20210705,
            tracked_modes: vec![1, 2, 3],
        },
        "two_stream_2d" => {
            let (ppc2, steps2) = size_2d(scale);
            ScenarioSpec {
                name: name.into(),
                domain: DomainSpec::default_2d(),
                species: SpeciesSpec::TwoStream { v0: 0.2, vth: 0.0 },
                loading: LoadingSpec::Quiet {
                    mode: 1,
                    amplitude: 1e-3,
                },
                scale,
                ppc: ppc2,
                dt: constants::PAPER_DT,
                n_steps: steps2,
                seed: 11,
                tracked_modes: vec![1, 2],
            }
        }
        "landau_damping" => {
            // k·λ_D = 0.5 at the box's fundamental: vth = 0.5/k₁.
            let vth = 0.5 / constants::PAPER_K1;
            ScenarioSpec {
                name: name.into(),
                domain: DomainSpec::paper_1d(),
                species: SpeciesSpec::Maxwellian { vth },
                loading: LoadingSpec::Quiet {
                    mode: 1,
                    amplitude: 1e-3,
                },
                scale,
                ppc,
                // Resolve the ω ≈ 1.4 Langmuir oscillation.
                dt: 0.1,
                n_steps: match scale {
                    Scale::Smoke => 40,
                    Scale::Scaled => 350,
                    Scale::Paper => 700,
                },
                seed: 42,
                tracked_modes: vec![1, 2],
            }
        }
        "cold_beam" => ScenarioSpec {
            name: name.into(),
            domain: DomainSpec::paper_1d(),
            species: SpeciesSpec::TwoStream {
                v0: constants::PAPER_COLD_BEAM_V0,
                vth: 0.0,
            },
            loading: LoadingSpec::Random,
            scale,
            ppc,
            dt: constants::PAPER_DT,
            n_steps,
            seed: 13,
            tracked_modes: vec![1, 2, 3],
        },
        "bump_on_tail" => ScenarioSpec {
            name: name.into(),
            domain: DomainSpec::paper_1d(),
            // Gentle bump: 10% of the density drifting at 3× the resonant
            // spread of the bulk — unstable to waves resonant with the
            // beam's leading edge.
            species: SpeciesSpec::BumpOnTail {
                bulk_vth: 0.05,
                beam_v: 0.3,
                beam_vth: 0.02,
                beam_fraction: 0.1,
            },
            loading: LoadingSpec::Random,
            scale,
            ppc,
            dt: constants::PAPER_DT,
            n_steps,
            seed: 17,
            tracked_modes: vec![1, 2, 3],
        },
        "thermal_noise" => ScenarioSpec {
            name: name.into(),
            domain: DomainSpec::paper_1d(),
            species: SpeciesSpec::Maxwellian { vth: 0.05 },
            loading: LoadingSpec::Random,
            scale,
            ppc,
            dt: constants::PAPER_DT,
            n_steps,
            seed: 23,
            tracked_modes: vec![1],
        },
        other => {
            return Err(EngineError::UnknownScenario {
                name: other.to_string(),
                known: names().to_vec(),
            })
        }
    };
    spec.validate()?;
    Ok(spec)
}

/// Every registry scenario at the given scale.
pub fn all_scenarios(scale: Scale) -> Vec<ScenarioSpec> {
    SCENARIO_NAMES
        .iter()
        .map(|name| scenario(name, scale).expect("registry entries validate"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_entry_validates_at_every_scale() {
        for scale in [Scale::Smoke, Scale::Scaled, Scale::Paper] {
            for name in SCENARIO_NAMES {
                let spec = scenario(name, scale).unwrap();
                assert_eq!(spec.name, name);
                assert_eq!(spec.scale, scale);
            }
            assert_eq!(all_scenarios(scale).len(), SCENARIO_NAMES.len());
        }
    }

    #[test]
    fn unknown_names_list_the_registry() {
        match scenario("warp_drive", Scale::Smoke) {
            Err(EngineError::UnknownScenario { name, known }) => {
                assert_eq!(name, "warp_drive");
                assert_eq!(known, names().to_vec());
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn names_enumerates_every_entry() {
        assert_eq!(names(), &SCENARIO_NAMES);
        for name in names() {
            assert!(scenario(name, Scale::Smoke).is_ok(), "{name} missing");
        }
    }

    #[test]
    fn paper_scale_two_stream_matches_the_paper() {
        let spec = scenario("two_stream", Scale::Paper).unwrap();
        assert_eq!(spec.n_particles(), 64_000);
        assert_eq!(spec.n_steps, 200);
        assert!((spec.dt - 0.2).abs() < 1e-15);
    }
}

//! Rectified linear activation.

use crate::frozen::{FrozenLayer, Precision};
use crate::layer::Layer;
use crate::tensor::Tensor;

/// Element-wise `max(0, x)`; the hidden activation of the paper's MLP and
/// CNN (§IV.A).
#[derive(Default)]
pub struct Relu {
    mask: Vec<bool>,
}

impl Relu {
    /// Creates a ReLU layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Relu {
    fn forward(&mut self, input: &Tensor, training: bool) -> Tensor {
        if training {
            self.mask.clear();
            self.mask.extend(input.data().iter().map(|&v| v > 0.0));
        }
        input.map(|v| v.max(0.0))
    }

    fn infer_into(&mut self, input: &Tensor, out: &mut Tensor) {
        out.resize_in_place(input.shape());
        for (o, &v) in out.data_mut().iter_mut().zip(input.data()) {
            *o = v.max(0.0);
        }
    }

    fn train_forward_into(&mut self, input: &Tensor, out: &mut Tensor) {
        self.mask.clear();
        self.mask.extend(input.data().iter().map(|&v| v > 0.0));
        self.infer_into(input, out);
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mut grad_in = Tensor::zeros(&[0]);
        self.backward_into(grad_out, &mut grad_in);
        grad_in
    }

    fn backward_into(&mut self, grad_out: &Tensor, grad_in: &mut Tensor) {
        assert_eq!(
            grad_out.len(),
            self.mask.len(),
            "backward before forward(training)"
        );
        grad_in.resize_in_place(grad_out.shape());
        for ((gi, &g), &m) in grad_in
            .data_mut()
            .iter_mut()
            .zip(grad_out.data())
            .zip(&self.mask)
        {
            *gi = if m { g } else { 0.0 };
        }
    }

    fn freeze(&self, _precision: Precision) -> Option<FrozenLayer> {
        Some(FrozenLayer::Relu)
    }

    fn name(&self) -> &'static str {
        "relu"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_clamps_negatives() {
        let mut r = Relu::new();
        let x = Tensor::new(vec![-1.0, 0.0, 2.0], &[1, 3]);
        let y = r.forward(&x, false);
        assert_eq!(y.data(), &[0.0, 0.0, 2.0]);
    }

    #[test]
    fn backward_masks_gradient() {
        let mut r = Relu::new();
        let x = Tensor::new(vec![-1.0, 0.5, 2.0, -0.1], &[2, 2]);
        let _ = r.forward(&x, true);
        let gy = Tensor::new(vec![1.0, 1.0, 1.0, 1.0], &[2, 2]);
        let gx = r.backward(&gy);
        assert_eq!(gx.data(), &[0.0, 1.0, 1.0, 0.0]);
    }

    #[test]
    fn zero_input_has_zero_gradient() {
        // Subgradient convention: d relu/dx at exactly 0 is 0.
        let mut r = Relu::new();
        let x = Tensor::new(vec![0.0], &[1, 1]);
        let _ = r.forward(&x, true);
        let gx = r.backward(&Tensor::new(vec![5.0], &[1, 1]));
        assert_eq!(gx.data(), &[0.0]);
    }
}

//! Landau damping — the second classic kinetic benchmark, run on the
//! Vlasov–Poisson substrate (the paper §VII's noise-free-training-data
//! route) with a traditional PIC cross-check.
//!
//! Setting the two-stream initial condition's drift to zero leaves a
//! single Maxwellian with a density perturbation, `f ∝ G(v)·(1+ε·cos kx)`
//! — exactly the Landau setup. With `k·λ_D = 0.5` (i.e. `vth = 0.5/k`),
//! linear theory gives the textbook root `ω ≈ 1.4156`, `γ ≈ −0.1533`:
//! the field oscillates at the Langmuir frequency while its envelope
//! decays by collisionless phase mixing — physics that no fluid model
//! captures and a good stress of the kinetic substrate's velocity-space
//! resolution.
//!
//! ```sh
//! cargo run --release --example landau_damping
//! ```

use dlpic_repro::pic::grid::Grid1D;
use dlpic_repro::vlasov::solver::{VlasovConfig, VlasovSolver};

/// Textbook least-damped root of the electrostatic dispersion relation at
/// `k·λ_D = 0.5` (e.g. Chen, *Introduction to Plasma Physics*): ω ± iγ.
const OMEGA_THEORY: f64 = 1.4156;
const GAMMA_THEORY: f64 = -0.1533;

fn main() {
    println!("== Landau damping at k·λ_D = 0.5 (Vlasov–Poisson substrate) ==\n");

    let grid = Grid1D::paper(); // k1 = 3.06
    let k = grid.mode_wavenumber(1);
    let vth = 0.5 / k;
    println!("box k₁ = {k:.3}, Maxwellian vth = {vth:.4} (k·λ_D = 0.5)");

    let cfg = VlasovConfig {
        grid,
        nv: 512,
        vmax: 6.0 * vth,
        dt: 0.025,
        v0: 0.0, // zero drift → single Maxwellian
        vth,
        perturbation: 1e-3,
    };
    let mut solver = VlasovSolver::new(cfg);

    // Record E1(t) for ~5 damping times.
    let n_steps = 1400;
    let mut times = Vec::with_capacity(n_steps);
    let mut e1 = Vec::with_capacity(n_steps);
    let start = std::time::Instant::now();
    for _ in 0..n_steps {
        times.push(solver.time());
        e1.push(solver.field_mode(1));
        solver.step();
    }
    println!(
        "ran {n_steps} Vlasov steps (64×512 phase grid) in {:.2?}\n",
        start.elapsed()
    );

    // The envelope: local maxima of |E1|(t). |E| peaks twice per wave
    // period, so ω = π / (peak spacing); γ is the slope of ln(peaks).
    let peaks: Vec<(f64, f64)> = (1..e1.len() - 1)
        .filter(|&i| e1[i] > e1[i - 1] && e1[i] >= e1[i + 1] && e1[i] > 1e-12)
        .map(|i| (times[i], e1[i]))
        .collect();
    assert!(peaks.len() >= 6, "too few envelope peaks: {}", peaks.len());

    // Skip the first few peaks (the cosine perturbation is not a pure
    // eigenmode; its ballistic transient decays faster than the Landau
    // root) and stop before the numerical floor.
    let skip = 3.min(peaks.len() - 6);
    let used = &peaks[skip..peaks.len().min(skip + 10)];
    let n = used.len() as f64;
    let (mut st, mut sy, mut stt, mut sty) = (0.0, 0.0, 0.0, 0.0);
    for &(t, p) in used {
        let y = p.ln();
        st += t;
        sy += y;
        stt += t * t;
        sty += t * y;
    }
    let gamma = (n * sty - st * sy) / (n * stt - st * st);
    let mean_spacing =
        (used.last().unwrap().0 - used[0].0) / (used.len() as f64 - 1.0);
    let omega = std::f64::consts::PI / mean_spacing;

    println!("measured from the E1 envelope ({} peaks):", used.len());
    println!(
        "  damping rate γ = {gamma:.4}   (theory {GAMMA_THEORY:.4}, {:+.1}%)",
        100.0 * (gamma - GAMMA_THEORY) / GAMMA_THEORY.abs()
    );
    println!(
        "  frequency    ω = {omega:.4}   (theory {OMEGA_THEORY:.4}, {:+.1}%)\n",
        100.0 * (omega - OMEGA_THEORY) / OMEGA_THEORY
    );

    // Conservation of the continuum solver over the damped phase.
    let mass_drift = {
        let cfg2 = VlasovConfig {
            grid: Grid1D::paper(),
            nv: 512,
            vmax: 6.0 * vth,
            dt: 0.025,
            v0: 0.0,
            vth,
            perturbation: 1e-3,
        };
        let mut s = VlasovSolver::new(cfg2);
        let m0 = s.mass();
        s.run(200);
        (s.mass() - m0).abs() / m0
    };
    println!("Vlasov mass drift over 200 steps: {mass_drift:.2e}");

    let gamma_ok = (gamma - GAMMA_THEORY).abs() / GAMMA_THEORY.abs() < 0.15;
    let omega_ok = (omega - OMEGA_THEORY).abs() / OMEGA_THEORY < 0.05;
    println!(
        "\nverdict: {}",
        if gamma_ok && omega_ok {
            "PASS — collisionless damping at the textbook rate"
        } else {
            "CHECK — outside expected bands"
        }
    );
}

//! Time-series recording, tabulation and CSV export.
//!
//! The experiment binaries dump every figure's underlying data as CSV (the
//! reproduction's equivalent of the paper's MATLAB plots) and print aligned
//! tables (the equivalent of Table I).

use std::fmt::Write as _;
use std::io::{self, Write};
use std::path::Path;

/// A named time series `(t, y)`.
#[derive(Debug, Clone, Default)]
pub struct TimeSeries {
    /// Series name, used as CSV column header and plot legend.
    pub name: String,
    /// Sample times.
    pub times: Vec<f64>,
    /// Sample values.
    pub values: Vec<f64>,
}

impl TimeSeries {
    /// Creates an empty series with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            times: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Creates a series from existing data.
    ///
    /// # Panics
    /// Panics if the vectors differ in length.
    pub fn from_data(name: impl Into<String>, times: Vec<f64>, values: Vec<f64>) -> Self {
        assert_eq!(times.len(), values.len(), "time/value length mismatch");
        Self {
            name: name.into(),
            times,
            values,
        }
    }

    /// Appends a sample.
    pub fn push(&mut self, t: f64, y: f64) {
        self.times.push(t);
        self.values.push(y);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// True if the series holds no samples.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Minimum and maximum value, or `None` when empty.
    pub fn value_range(&self) -> Option<(f64, f64)> {
        if self.is_empty() {
            return None;
        }
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for &v in &self.values {
            lo = lo.min(v);
            hi = hi.max(v);
        }
        Some((lo, hi))
    }

    /// Last value, or `None` when empty.
    pub fn last(&self) -> Option<f64> {
        self.values.last().copied()
    }
}

/// Writes several series sharing a time base as one CSV file
/// (`time,name1,name2,...`).
///
/// # Panics
/// Panics if the series lengths disagree.
pub fn write_csv(path: impl AsRef<Path>, series: &[&TimeSeries]) -> io::Result<()> {
    let file = std::fs::File::create(path)?;
    let mut w = io::BufWriter::new(file);
    write_csv_to(&mut w, series)
}

/// Same as [`write_csv`] but to any writer (testable without a filesystem).
pub fn write_csv_to<W: Write>(w: &mut W, series: &[&TimeSeries]) -> io::Result<()> {
    assert!(!series.is_empty(), "no series given");
    let n = series[0].len();
    for s in series {
        assert_eq!(s.len(), n, "series `{}` has mismatched length", s.name);
    }
    write!(w, "time")?;
    for s in series {
        write!(w, ",{}", s.name)?;
    }
    writeln!(w)?;
    for i in 0..n {
        write!(w, "{}", series[0].times[i])?;
        for s in series {
            write!(w, ",{}", s.values[i])?;
        }
        writeln!(w)?;
    }
    w.flush()
}

/// A small aligned text table (used to print the paper's Table I).
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Self {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics if the cell count differs from the header count.
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "cell count mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Number of data rows.
    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let sep: String = widths
            .iter()
            .map(|w| "-".repeat(w + 2))
            .collect::<Vec<_>>()
            .join("+");
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for i in 0..ncols {
                let _ = write!(line, " {:<w$} ", cells[i], w = widths[i]);
                if i + 1 < ncols {
                    line.push('|');
                }
            }
            line
        };
        let _ = writeln!(out, "{}", fmt_row(&self.headers, &widths));
        let _ = writeln!(out, "{sep}");
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths));
        }
        out
    }

    /// Renders as CSV (RFC-4180 quoting for cells containing commas,
    /// quotes or newlines).
    pub fn to_csv(&self) -> String {
        fn escape(cell: &str) -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .map(|c| escape(c))
                .collect::<Vec<_>>()
                .join(",")
        };
        let _ = writeln!(out, "{}", fmt_row(&self.headers));
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_range() {
        let mut s = TimeSeries::new("e1");
        s.push(0.0, 1.0);
        s.push(0.2, -3.0);
        s.push(0.4, 2.0);
        assert_eq!(s.len(), 3);
        assert_eq!(s.value_range(), Some((-3.0, 2.0)));
        assert_eq!(s.last(), Some(2.0));
    }

    #[test]
    fn empty_series_behaviour() {
        let s = TimeSeries::new("empty");
        assert!(s.is_empty());
        assert_eq!(s.value_range(), None);
        assert_eq!(s.last(), None);
    }

    #[test]
    fn csv_output_format() {
        let a = TimeSeries::from_data("a", vec![0.0, 1.0], vec![10.0, 20.0]);
        let b = TimeSeries::from_data("b", vec![0.0, 1.0], vec![-1.0, -2.0]);
        let mut buf = Vec::new();
        write_csv_to(&mut buf, &[&a, &b]).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "time,a,b");
        assert_eq!(lines[1], "0,10,-1");
        assert_eq!(lines[2], "1,20,-2");
    }

    #[test]
    #[should_panic(expected = "mismatched length")]
    fn csv_rejects_ragged_series() {
        let a = TimeSeries::from_data("a", vec![0.0, 1.0], vec![1.0, 2.0]);
        let b = TimeSeries::from_data("b", vec![0.0], vec![1.0]);
        let mut buf = Vec::new();
        let _ = write_csv_to(&mut buf, &[&a, &b]);
    }

    #[test]
    fn table_alignment_and_csv() {
        let mut t = Table::new(&["Metric", "Test Set", "MLP", "CNN"]);
        t.row(&["MAE".into(), "I".into(), "0.0019".into(), "0.0020".into()]);
        t.row(&[
            "Max Error".into(),
            "I".into(),
            "0.0690".into(),
            "0.0463".into(),
        ]);
        let text = t.render();
        assert!(text.contains("Metric"));
        assert!(text.contains("0.0019"));
        // All data lines have equal width.
        let widths: Vec<usize> = text.lines().map(|l| l.len()).collect();
        assert!(widths.windows(2).all(|w| w[0] == w[1] || w[1] == 0));
        let csv = t.to_csv();
        assert!(csv.starts_with("Metric,Test Set,MLP,CNN\n"));
        assert_eq!(t.n_rows(), 2);
    }

    #[test]
    fn csv_quotes_cells_with_commas_and_quotes() {
        let mut t = Table::new(&["Stage", "us"]);
        t.row(&["deposit (64k, CIC)".into(), "311".into()]);
        t.row(&["say \"hi\"".into(), "1".into()]);
        let csv = t.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[1], "\"deposit (64k, CIC)\",311");
        assert_eq!(lines[2], "\"say \"\"hi\"\"\",1");
    }
}

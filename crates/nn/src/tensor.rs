//! A minimal dense tensor: row-major `f32` storage plus a shape.
//!
//! The layers interpret tensors as `[batch, features]` matrices or
//! `[batch, channels, height, width]` images; this type only owns storage,
//! shape bookkeeping and element-wise helpers. Heavy lifting (GEMM) lives
//! in [`crate::linalg`].

use std::fmt;

/// Dense row-major `f32` tensor.
#[derive(Clone, PartialEq)]
pub struct Tensor {
    data: Vec<f32>,
    shape: Vec<usize>,
}

impl Tensor {
    /// Creates a tensor from data and shape.
    ///
    /// # Panics
    /// Panics if the element count does not match the shape product.
    pub fn new(data: Vec<f32>, shape: &[usize]) -> Self {
        let expect: usize = shape.iter().product();
        assert_eq!(
            data.len(),
            expect,
            "data length {} != shape product {expect}",
            data.len()
        );
        Self {
            data,
            shape: shape.to_vec(),
        }
    }

    /// Zero-filled tensor.
    pub fn zeros(shape: &[usize]) -> Self {
        Self {
            data: vec![0.0; shape.iter().product()],
            shape: shape.to_vec(),
        }
    }

    /// Constant-filled tensor.
    pub fn full(shape: &[usize], value: f32) -> Self {
        Self {
            data: vec![value; shape.iter().product()],
            shape: shape.to_vec(),
        }
    }

    /// The shape.
    #[inline]
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True for zero-element tensors.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Leading dimension — the batch size for `[batch, ...]` tensors.
    ///
    /// # Panics
    /// Panics for rank-0 tensors.
    #[inline]
    pub fn batch(&self) -> usize {
        assert!(!self.shape.is_empty(), "rank-0 tensor has no batch dim");
        self.shape[0]
    }

    /// Elements per leading-dimension row.
    #[inline]
    pub fn row_len(&self) -> usize {
        if self.shape.is_empty() {
            0
        } else {
            self.shape[1..].iter().product()
        }
    }

    /// Immutable raw data.
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable raw data.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning the raw data.
    pub fn into_data(self) -> Vec<f32> {
        self.data
    }

    /// Row `i` of a `[batch, ...]` tensor as a flat slice.
    pub fn row(&self, i: usize) -> &[f32] {
        let w = self.row_len();
        &self.data[i * w..(i + 1) * w]
    }

    /// Reshapes this tensor in place to `shape`, resizing the backing
    /// buffer as needed (new elements are zero) while keeping its
    /// allocation when the capacity suffices — the warm-up-once primitive
    /// behind allocation-free inference.
    pub fn resize_in_place(&mut self, shape: &[usize]) {
        let len = shape.iter().product();
        self.shape.clear();
        self.shape.extend_from_slice(shape);
        self.data.resize(len, 0.0);
    }

    /// Resizes to `like`'s shape with a different leading dimension,
    /// reusing the backing allocation when the capacity suffices. The
    /// data content is unspecified afterwards (callers overwrite it).
    pub fn resize_like(&mut self, like: &Tensor, rows: usize) {
        assert!(!like.shape.is_empty(), "rank-0 tensor has no batch dim");
        self.shape.clear();
        self.shape.extend_from_slice(&like.shape);
        self.shape[0] = rows;
        self.data.resize(rows * like.row_len(), 0.0);
    }

    /// Copies `src`'s shape and data into this tensor, reusing the
    /// backing allocation when the capacity suffices — the warm-cache
    /// counterpart of `clone` used by the training hot path.
    pub fn copy_from(&mut self, src: &Tensor) {
        self.shape.clear();
        self.shape.extend_from_slice(&src.shape);
        self.data.clear();
        self.data.extend_from_slice(&src.data);
    }

    /// Returns a tensor with the same data and a new shape.
    ///
    /// # Panics
    /// Panics if the element count changes.
    pub fn reshape(mut self, shape: &[usize]) -> Self {
        let expect: usize = shape.iter().product();
        assert_eq!(self.data.len(), expect, "reshape changes element count");
        self.shape = shape.to_vec();
        self
    }

    /// Element-wise map into a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Self {
        Self {
            data: self.data.iter().map(|&v| f(v)).collect(),
            shape: self.shape.clone(),
        }
    }

    /// In-place element-wise `self += other`.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "shape mismatch in add_assign");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// In-place scaling.
    pub fn scale(&mut self, s: f32) {
        for v in &mut self.data {
            *v *= s;
        }
    }

    /// Maximum absolute element (0 when empty).
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, v| m.max(v.abs()))
    }

    /// True if every element is finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{:?}", self.shape)?;
        if self.len() <= 16 {
            write!(f, " {:?}", self.data)
        } else {
            write!(f, " [{} elements]", self.len())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let t = Tensor::new(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        assert_eq!(t.shape(), &[2, 3]);
        assert_eq!(t.batch(), 2);
        assert_eq!(t.row_len(), 3);
        assert_eq!(t.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(t.len(), 6);
    }

    #[test]
    fn zeros_and_full() {
        assert!(Tensor::zeros(&[3, 4]).data().iter().all(|&v| v == 0.0));
        assert!(Tensor::full(&[2, 2], 7.0).data().iter().all(|&v| v == 7.0));
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::new((0..24).map(|i| i as f32).collect(), &[2, 3, 4]);
        let r = t.clone().reshape(&[6, 4]);
        assert_eq!(r.shape(), &[6, 4]);
        assert_eq!(r.data(), t.data());
    }

    #[test]
    #[should_panic(expected = "reshape changes element count")]
    fn reshape_rejects_size_change() {
        let _ = Tensor::zeros(&[2, 3]).reshape(&[7]);
    }

    #[test]
    fn map_and_arithmetic() {
        let t = Tensor::new(vec![1.0, -2.0], &[2]);
        let sq = t.map(|v| v * v);
        assert_eq!(sq.data(), &[1.0, 4.0]);
        let mut a = Tensor::new(vec![1.0, 1.0], &[2]);
        a.add_assign(&t);
        assert_eq!(a.data(), &[2.0, -1.0]);
        a.scale(2.0);
        assert_eq!(a.data(), &[4.0, -2.0]);
    }

    #[test]
    fn max_abs_and_finiteness() {
        let t = Tensor::new(vec![1.0, -3.0, 2.0], &[3]);
        assert_eq!(t.max_abs(), 3.0);
        assert!(t.all_finite());
        let bad = Tensor::new(vec![f32::NAN], &[1]);
        assert!(!bad.all_finite());
    }

    #[test]
    #[should_panic(expected = "shape product")]
    fn bad_shape_rejected() {
        let _ = Tensor::new(vec![0.0; 5], &[2, 3]);
    }
}

//! Domain-decomposed PIC: the paper §VII's distributed-memory claim, live.
//!
//! Runs the same two-stream simulation split over 4 ranks twice — once
//! with the traditional gather/scatter field solve, once with the
//! replicated-DL strategy — and prints the measured per-step communication
//! volume of each, next to proof that the physics is unchanged.
//!
//! ```sh
//! cargo run --release --example distributed_pic
//! ```

use dlpic_repro::analytics::dispersion::TwoStreamDispersion;
use dlpic_repro::analytics::fit::{fit_growth_rate, GrowthFitOptions};
use dlpic_repro::core::builder::ArchSpec;
use dlpic_repro::core::field_solver::DlFieldSolver;
use dlpic_repro::core::normalize::NormStats;
use dlpic_repro::core::phase_space::{BinningShape, PhaseGridSpec};
use dlpic_repro::ddecomp::sim::{DistConfig, DistSimulation};
use dlpic_repro::ddecomp::strategy::{GatherScatter, ReplicatedDl};
use dlpic_repro::pic::grid::Grid1D;
use dlpic_repro::pic::init::TwoStreamInit;
use dlpic_repro::pic::shape::Shape;

fn config() -> DistConfig {
    DistConfig {
        grid: Grid1D::paper(),
        init: TwoStreamInit::quiet(0.2, 0.0, 64_000, 1e-3, 42),
        dt: 0.2,
        n_steps: 200,
        gather_shape: Shape::Cic,
        n_ranks: 4,
        tracked_modes: vec![1],
    }
}

fn main() {
    println!("== Distributed PIC: 64k particles over 4 ranks, 200 steps ==\n");

    // Strategy 1: traditional gather/scatter.
    let start = std::time::Instant::now();
    let mut gs = DistSimulation::new(config(), Box::new(GatherScatter::new(Shape::Cic, 1.0)));
    gs.run();
    let gs_time = start.elapsed();

    // Strategy 2: replicated DL. A quick model trained on one traditional
    // run keeps the DL trajectories physical so the migration columns are
    // comparable (the perf_dist binary runs the full trained pipeline).
    println!("training a quick DL field solver on one traditional run...");
    let dl_solver = quick_train();
    let start = std::time::Instant::now();
    let mut dl = DistSimulation::new(config(), Box::new(ReplicatedDl::new(dl_solver)));
    dl.run();
    let dl_time = start.elapsed();

    // Physics check on the traditional strategy: distribution must not
    // change the answer.
    let theory = TwoStreamDispersion::new(0.2).growth_rate(3.06);
    let h = gs.history();
    let fit = fit_growth_rate(&h.times, &h.mode_amps[0], GrowthFitOptions::default())
        .expect("growth detected");
    println!("physics across 4 ranks (gather/scatter):");
    println!("  growth rate γ = {:.4} vs theory {:.4} ({:+.1}%)", fit.gamma, theory,
        100.0 * (fit.gamma - theory) / theory);
    println!("  momentum drift = {:.2e} (conserved across rank boundaries)",
        h.momentum.iter().fold(0.0f64, |m, p| m.max(p.abs())));
    println!("  particles migrated: {} over the run\n", gs.migrated_total());

    // Communication accounting.
    for (name, sim, time) in
        [("gather-scatter", &gs, gs_time), ("replicated-dl", &dl, dl_time)]
    {
        println!("{name} ({time:.2?} wall, all ranks serial):");
        for (phase, stats) in sim.comm_phases() {
            println!(
                "  {phase:<14} {:>10} msgs  {:>12} bytes",
                stats.messages, stats.bytes
            );
        }
        let total = sim.comm_stats();
        println!("  {:<14} {:>10} msgs  {:>12} bytes\n", "TOTAL", total.messages, total.bytes);
    }

    println!(
        "the DL strategy's only field-solve traffic is the {}-bin histogram\n\
         all-reduce — no charge gather, no field scatter, no deposition halos —\n\
         and it is independent of particle count and grid size (paper §VII).",
        PhaseGridSpec::smoke().cells()
    );
}

/// Harvests (phase-space histogram, E) pairs from one traditional 1-D run
/// and trains a small MLP — enough fidelity that the DL-PIC trajectories
/// (and hence the migration traffic) stay physical.
fn quick_train() -> DlFieldSolver {
    use dlpic_repro::nn::data::Dataset;
    use dlpic_repro::nn::loss::Mse;
    use dlpic_repro::nn::optimizer::Adam;
    use dlpic_repro::nn::tensor::Tensor;
    use dlpic_repro::nn::trainer::{train, TrainConfig};
    use dlpic_repro::core::phase_space::bin_phase_space;
    use dlpic_repro::pic::simulation::{PicConfig, Simulation};
    use dlpic_repro::pic::solver::TraditionalSolver;

    let spec = PhaseGridSpec::smoke();
    let grid = Grid1D::paper();
    let cfg = PicConfig {
        grid: grid.clone(),
        init: TwoStreamInit::quiet(0.2, 0.0, 16_000, 1e-3, 7),
        dt: 0.2,
        n_steps: 200,
        gather_shape: Shape::Cic,
        tracked_modes: vec![],
    };
    let mut sim = Simulation::new(cfg, Box::new(TraditionalSolver::paper_default()));
    let mut inputs: Vec<f32> = Vec::new();
    let mut targets: Vec<f32> = Vec::new();
    let mut hist = vec![0.0f32; spec.cells()];
    let mut n_samples = 0;
    for _ in 0..200 {
        sim.step();
        bin_phase_space(sim.particles(), &grid, &spec, BinningShape::Ngp, &mut hist);
        inputs.extend_from_slice(&hist);
        targets.extend(sim.efield().iter().map(|&v| v as f32));
        n_samples += 1;
    }
    let norm = NormStats::from_data(&inputs);
    norm.apply(&mut inputs);
    let ds = Dataset::new(
        Tensor::new(inputs, &[n_samples, spec.cells()]),
        Tensor::new(targets, &[n_samples, 64]),
    );
    let arch = ArchSpec::Mlp { input: spec.cells(), hidden: vec![128], output: 64 };
    let mut net = arch.build(1);
    let mut opt = Adam::new(1e-3);
    let tc = TrainConfig { epochs: 40, batch_size: 32, shuffle_seed: 1, log_every: 0 };
    train(&mut net, &Mse, &mut opt, &ds, None, &tc);
    DlFieldSolver::new(net, spec, BinningShape::Ngp, norm, arch.input_kind(), "dl-mlp")
        .with_reference_mass(16_000.0)
}

//! Train a DL electric-field solver from scratch — the paper's offline
//! training phase (Fig. 2 left, Fig. 3) — then verify it through the
//! engine facade.
//!
//! Walks the full pipeline on the public API:
//!
//! 1. generate (phase-space histogram, E-field) pairs from traditional PIC
//!    runs over the paper's (v0, vth) sweep;
//! 2. shuffle and split with the paper's 38k/1k/1k proportions;
//! 3. train the paper's MLP with Adam and MSE;
//! 4. evaluate MAE / max error on Test Set I (seen parameters) and
//!    Test Set II (unseen parameters) — the paper's Table I;
//! 5. save a self-describing model bundle, then run the registry's
//!    `two_stream` scenario on `Backend::Dl1D` with it.
//!
//! Defaults to the fast `smoke` scale; set `DLPIC_SCALE=scaled` for the
//! real (minutes-long) configuration.
//!
//! ```sh
//! cargo run --release --example train_field_solver
//! ```

use dlpic_repro::core::phase_space::BinningShape;
use dlpic_repro::core::{ModelBundle, Scale};
use dlpic_repro::dataset::generator::{generate, GeneratorConfig};
use dlpic_repro::dataset::spec::SweepSpec;
use dlpic_repro::dataset::split::{shuffle_split, SplitSizes};
use dlpic_repro::dataset::stats;
use dlpic_repro::engine::{self, Backend, Engine, EngineError};
use dlpic_repro::nn::metrics::evaluate;
use dlpic_repro::nn::trainer::{train, TrainConfig};
use dlpic_repro::nn::{Adam, Mse};

fn main() -> Result<(), EngineError> {
    // Default to smoke so the example finishes in seconds.
    let scale = Scale::from_env_or(Scale::Smoke);
    println!(
        "== training a DL field solver [{} scale] ==\n",
        scale.name()
    );

    // 1. Harvest training data from traditional PIC runs.
    let sweep = SweepSpec::training_for(scale);
    println!(
        "sweep: {} (v0, vth) combos x {} experiments x {} steps = {} samples",
        sweep.combos.len(),
        sweep.experiments_per_combo,
        sweep.steps,
        sweep.total_samples()
    );
    let mut gen_cfg = GeneratorConfig::new(sweep, scale.phase_spec());
    gen_cfg.ppc = scale.dataset_ppc();
    let full = generate(&gen_cfg);
    println!("\ndataset summary:\n{}", stats::summary(&full));

    // 2. Shuffle/split (the paper's proportions).
    let sizes = SplitSizes::paper_proportions(full.len());
    let (train_set, val_set, test1) = shuffle_split(&full, sizes, 1);
    let norm = train_set.input_norm_stats();

    // Test Set II from unseen parameters.
    let mut gen2 = GeneratorConfig::new(SweepSpec::test_set_ii_for(scale), scale.phase_spec());
    gen2.ppc = scale.dataset_ppc();
    let test2 = generate(&gen2);

    // 3. Train the paper's MLP.
    let arch = scale.mlp_arch();
    let mut net = arch.build(42);
    println!(
        "architecture ({} parameters):\n{}",
        net.param_count(),
        net.summary()
    );
    let kind = arch.input_kind();
    let mut opt = Adam::new(scale.learning_rate());
    let cfg = TrainConfig {
        epochs: scale.mlp_epochs(),
        batch_size: 64,
        shuffle_seed: 7,
        log_every: (scale.mlp_epochs() / 6).max(1),
    };
    let history = train(
        &mut net,
        &Mse,
        &mut opt,
        &train_set.to_nn_dataset(&norm, kind),
        Some(&val_set.to_nn_dataset(&norm, kind)),
        &cfg,
    );
    println!(
        "\ntrained {} epochs in {:.1}s (final loss {:.3e})",
        cfg.epochs,
        history.seconds,
        history.final_loss().unwrap_or(f64::NAN)
    );

    // 4. Table-I style evaluation.
    let (mae1, max1) = evaluate(&mut net, &test1.to_nn_dataset(&norm, kind), 64);
    let (mae2, max2) = evaluate(&mut net, &test2.to_nn_dataset(&norm, kind), 64);
    println!("\nTest Set I  (seen params)  : MAE {mae1:.5}  max {max1:.5}");
    println!("Test Set II (unseen params): MAE {mae2:.5}  max {max2:.5}");
    println!("(paper, full scale: MLP MAE 0.0019 / 0.0015, max |E| ~ 0.1)");

    // 5. Persist, then verify through the engine: the bundle drops into
    //    the registry's two_stream scenario as `Backend::Dl1D`.
    let reference_mass: f32 = full.input_row(0).iter().sum();
    let bundle =
        ModelBundle::from_network(&mut net, arch, scale.phase_spec(), BinningShape::Ngp, norm)
            .with_reference_mass(reference_mass);
    std::fs::create_dir_all("out/models")?;
    let path = format!("out/models/example-mlp-{}.dlpb", scale.name());
    bundle.save(&path)?;
    println!("\nsaved model bundle to {path}");

    let mut spec = engine::scenario("two_stream", scale)?;
    spec.n_steps = spec.n_steps.max(100);
    let mut eng = Engine::new().with_model_1d(bundle);
    let summary = eng.run(&spec, Backend::Dl1D)?;
    println!(
        "verification run on Backend::Dl1D: {} steps, ΔE = {:.2}%, all finite: {}",
        summary.steps,
        summary.energy_variation() * 100.0,
        summary.all_finite()
    );
    println!("next: cargo run --release --example two_stream");
    Ok(())
}

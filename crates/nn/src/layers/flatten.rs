//! Flattening layer: `[batch, ...] → [batch, features]` between the
//! convolutional blocks and the dense head of the paper's CNN.

use crate::frozen::{FrozenLayer, Precision};
use crate::layer::Layer;
use crate::tensor::Tensor;

/// Collapses all trailing dimensions into one.
#[derive(Default)]
pub struct Flatten {
    input_shape: Vec<usize>,
}

impl Flatten {
    /// Creates a flatten layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Flatten {
    fn forward(&mut self, input: &Tensor, training: bool) -> Tensor {
        let batch = input.batch();
        let features = input.row_len();
        if training {
            self.input_shape = input.shape().to_vec();
        }
        input.clone().reshape(&[batch, features])
    }

    fn infer_into(&mut self, input: &Tensor, out: &mut Tensor) {
        out.resize_in_place(&[input.batch(), input.row_len()]);
        out.data_mut().copy_from_slice(input.data());
    }

    fn train_forward_into(&mut self, input: &Tensor, out: &mut Tensor) {
        self.input_shape.clear();
        self.input_shape.extend_from_slice(input.shape());
        self.infer_into(input, out);
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        assert!(
            !self.input_shape.is_empty(),
            "backward before forward(training)"
        );
        grad_out.clone().reshape(&self.input_shape)
    }

    fn backward_into(&mut self, grad_out: &Tensor, grad_in: &mut Tensor) {
        assert!(
            !self.input_shape.is_empty(),
            "backward before forward(training)"
        );
        grad_in.resize_in_place(&self.input_shape);
        grad_in.data_mut().copy_from_slice(grad_out.data());
    }

    fn freeze(&self, _precision: Precision) -> Option<FrozenLayer> {
        Some(FrozenLayer::Flatten)
    }

    fn name(&self) -> &'static str {
        "flatten"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_preserves_shape_and_data() {
        let mut fl = Flatten::new();
        let x = Tensor::new((0..24).map(|i| i as f32).collect(), &[2, 3, 2, 2]);
        let y = fl.forward(&x, true);
        assert_eq!(y.shape(), &[2, 12]);
        assert_eq!(y.data(), x.data());
        let gx = fl.backward(&y);
        assert_eq!(gx.shape(), x.shape());
        assert_eq!(gx.data(), x.data());
    }
}
